//! §6 in-text per-variable-class table.
//!
//! The paper grades each benchmark's variable classes by criticality:
//! DGEMM matrices 43% SDC / 19% DUE vs control 38% / 38%; CLAMR Sort 39/43,
//! Tree 20/41, other mesh 33/28; HotSpot control+constants ≈30/40; LavaMD's
//! charge+distance arrays responsible for 57% of SDCs and 11% of DUEs;
//! LUD matrices 54/28, control 24/36. This binary prints the same
//! conditional rates and event shares from the injection campaign.
//!
//! Pointer-typed variables (the C arrays' base pointers) are reported both
//! separately and folded into their array's class, since at GDB level the
//! paper's "matrices" include the pointer variables that name them.

use bench::{injection_records, rule, RunConfig};
use carolfi::target::VarClass;
use kernels::Benchmark;
use sdc_analysis::pvf::{by_class, event_share_by_class, PvfKind};

fn main() {
    let cfg = RunConfig::from_env();
    println!("§6 per-variable-class criticality (conditional rates over injections into the class)");
    println!("trials/benchmark = {}, size = {:?}, seed = {}\n", cfg.trials, cfg.size, cfg.seed);

    for b in Benchmark::ALL {
        let records = injection_records(b, &cfg);
        let sdc = by_class(&records, PvfKind::Sdc);
        let due = by_class(&records, PvfKind::Due);
        let share_sdc = event_share_by_class(&records, PvfKind::Sdc);
        let share_due = event_share_by_class(&records, PvfKind::Due);
        println!("{}:", b.label());
        println!("  {:14} {:>7} {:>8} {:>8} {:>10} {:>10}", "class", "inj", "SDC%", "DUE%", "SDC share", "DUE share");
        rule(64);
        let mut classes: Vec<VarClass> = sdc.groups.keys().copied().collect();
        classes.sort();
        for class in classes {
            let s = sdc.get(class).expect("grouped");
            let d = due.get(class).map(|p| p.percent()).unwrap_or(0.0);
            println!(
                "  {:14} {:7} {:8.1} {:8.1} {:9.1}% {:9.1}%",
                class.label(),
                s.trials,
                s.percent(),
                d,
                100.0 * share_sdc.get(&class).copied().unwrap_or(0.0),
                100.0 * share_due.get(&class).copied().unwrap_or(0.0),
            );
        }
        println!();
    }
    println!("Paper anchors: DGEMM matrices 43/19, control 38/38; CLAMR sort 39/43, tree 20/41,");
    println!("mesh-other 33/28; HotSpot control+constant ≈30/40; LavaMD charge/distance arrays");
    println!("carry 57% of SDCs and 11% of DUEs; LUD matrices 54/28, control 24/36.");
}
