//! `phi-serve` — the campaign-as-a-service daemon.
//!
//! Listens on a Unix socket for `phi-cli` clients: submitted campaign
//! specs run through a fair-share scheduler over the shared worker pool,
//! persist under server-assigned ids in the registry root, and stream
//! status/events to subscribers. A restarted daemon (same `--root`)
//! resumes interrupted campaigns from their journals; results are
//! byte-identical to the same specs run directly through a figure binary.
//!
//! ```text
//! phi-serve --socket <path> --root <dir>
//!           [--max-active N]   # fair-share ring capacity   (default 2)
//!           [--max-queue N]    # admission queue cap        (default 64)
//!           [--slice N]        # trials per scheduling turn (default 256)
//! ```
//!
//! SIGTERM/SIGKILL are safe at any point: slices are store budgets, so the
//! journals always hold a resumable prefix. Run one daemon per root.

use serve::{EventBus, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: phi-serve --socket <path> --root <dir> [--max-active N] [--max-queue N] [--slice N]");
    std::process::exit(2);
}

fn main() {
    // Must run before anything else: isolated campaigns re-exec this
    // binary, and in worker mode it serves trials and never returns.
    bench::maybe_run_worker();

    let mut socket: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut cfg_overrides: Vec<(String, usize)> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = it.next().map(PathBuf::from),
            "--root" => root = it.next().map(PathBuf::from),
            "--max-active" | "--max-queue" | "--slice" => {
                match it.next().and_then(|raw| raw.trim().parse::<usize>().ok()) {
                    Some(n) if n > 0 => cfg_overrides.push((arg, n)),
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let (Some(socket), Some(root)) = (socket, root) else { usage() };
    let mut cfg = ServeConfig::new(socket, root);
    for (flag, n) in cfg_overrides {
        match flag.as_str() {
            "--max-active" => cfg.max_active = n,
            "--max-queue" => cfg.max_queue = n,
            _ => cfg.slice = n,
        }
    }

    // The bus is the process recorder: counters feed the monitor plane and
    // metrics gauges, events fan out to campaign subscribers.
    let bus = Arc::new(EventBus::new());
    obs::install(bus.clone());
    carolfi::monitor::enable();

    let server = match Server::start(cfg, Arc::new(bench::SpecRunner), bus) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("phi-serve: start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("phi-serve: listening on {} (registry {})", server.socket().display(), server.root().display());
    // Serve until killed; campaigns survive any exit via their journals.
    loop {
        std::thread::park();
    }
}
