//! Figure 4 — "Outcomes of fault injections."
//!
//! Regenerates the Masked / SDC / DUE percentage per benchmark over the
//! CAROL-FI injection campaign (≥10,000 faults per benchmark at paper
//! scale; the default harness size uses PHI_TRIALS injections).
//!
//! With `--store <dir>` the campaigns run sharded against a durable
//! journal and can be interrupted and resumed (`--resume`); see
//! README "Resumable campaigns". `--telemetry` prints the counter/span
//! footer (merged across `--isolate` workers); `--monitor <socket>` serves
//! live status for `phi-top` (README "Live monitoring").

use bench::{injection_records_stored, rule};
use kernels::Benchmark;
use sdc_analysis::pvf::OutcomeBreakdown;
use sdc_analysis::stats::normal_margin95;

fn main() {
    let bench::Figure { cfg, store, telemetry } = bench::figure_setup();
    println!("Figure 4 reproduction — outcomes of fault injections");
    println!("trials/benchmark = {}, size = {:?}, seed = {}\n", cfg.trials, cfg.size, cfg.seed);
    println!("{:9} {:>9} {:>9} {:>9} {:>12}", "bench", "masked%", "SDC%", "DUE%", "±95% (worst)");
    rule(54);
    for b in Benchmark::ALL {
        let records = injection_records_stored(b, &cfg, &store);
        let bd = OutcomeBreakdown::of(&records);
        let margin = normal_margin95(0.5, bd.trials) * 100.0;
        println!("{:9} {:9.1} {:9.1} {:9.1} {:11.2}%", b.label(), bd.masked_pct(), bd.sdc_pct(), bd.due_pct(), margin);
    }
    rule(54);
    println!("\nPaper shape targets: majority masked for every benchmark except DGEMM (≈40%);");
    println!("LavaMD the most masked (≈85%); CLAMR & HotSpot ≈75%; LUD & NW balanced SDC/DUE.");
    bench::print_telemetry(telemetry);
}
