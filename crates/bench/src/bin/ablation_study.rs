//! Ablations of the reproduction's design choices (DESIGN.md §5).
//!
//! 1. **Variable-selection policy** — CAROL-FI's thread → frame walk vs a
//!    flat uniform-over-variables picker vs byte-weighted-within-frame: the
//!    walk is what makes thread-private control variables matter (the
//!    paper's DGEMM §6 observation).
//! 2. **ECC on/off** — how much of the strike budget SECDED absorbs (paper
//!    §2.1: the FIT is high "even if ECC is enabled"; without it things get
//!    much worse).
//! 3. **Shared-resource strikes on/off** — without dispatch/ring/core-shared
//!    corruption scopes, the multi-element spatial patterns of Fig. 2
//!    collapse toward single-word effects (paper §4.3's causal claim).

use beamsim::{run_beam_campaign, BeamConfig};
use carolfi::select::VariableSelector;
use carolfi::{run_campaign, CampaignConfig};
use kernels::{build, golden, Benchmark, SizeClass};
use phidev::resources::{Protection, ResourceInventory, ResourceKind, ResourceSpec};
use phidev::strike::{StrikeEngine, StrikeTuning};
use sdc_analysis::pvf::OutcomeBreakdown;
use sdc_analysis::spatial;

fn selector_ablation(trials: usize, size: SizeClass) {
    println!("Ablation 1 — variable-selection policy (DGEMM, {trials} injections)");
    let b = Benchmark::Dgemm;
    let g = golden(b, size);
    for (name, selector) in [
        ("frame-walk (default)", VariableSelector::default()),
        ("byte-weighted", VariableSelector::byte_weighted()),
        ("flat uniform", VariableSelector::flat()),
    ] {
        let cfg = CampaignConfig { trials, seed: 31, n_windows: b.n_windows(), selector, ..Default::default() };
        let c = run_campaign(b.label(), || build(b, size), &g, &cfg);
        let bd = OutcomeBreakdown::of(&c.records);
        let ctrl_hits = c
            .records
            .iter()
            .filter(|r| r.injection.as_ref().map(|i| i.var_class == carolfi::target::VarClass::ControlVariable).unwrap_or(false))
            .count();
        println!(
            "  {:22} masked {:5.1}%  sdc {:5.1}%  due {:5.1}%  control-var hits {:4.1}%",
            name,
            bd.masked_pct(),
            bd.sdc_pct(),
            bd.due_pct(),
            100.0 * ctrl_hits as f64 / trials as f64
        );
    }
    println!();
}

fn ecc_ablation(strikes: usize, size: SizeClass) {
    println!("Ablation 2 — SECDED ECC on vs off (LUD, {strikes} strikes)");
    let b = Benchmark::Lud;
    let g = golden(b, size);
    for (name, inventory) in [("ECC on", ResourceInventory::knc3120a()), ("ECC off", ResourceInventory::knc3120a_ecc_off())] {
        let cfg = BeamConfig {
            strikes,
            seed: 37,
            n_windows: b.n_windows(),
            engine: StrikeEngine::new(inventory, StrikeTuning::default()),
            ..Default::default()
        };
        let c = run_beam_campaign(b.label(), || build(b, size), &g, &cfg);
        println!(
            "  {:8} SDC FIT {:6.1}  DUE FIT {:6.1}  errors/strike {:.4}",
            name,
            c.fit_sdc().fit(),
            c.fit_due().fit(),
            c.error_rate_per_strike()
        );
    }
    println!();
}

fn shared_scope_ablation(strikes: usize, size: SizeClass) {
    println!("Ablation 3 — shared-resource strike scopes on vs off (DGEMM, {strikes} strikes)");
    let b = Benchmark::Dgemm;
    let g = golden(b, size);
    // "Off": collapse the shared/multi-element resources into extra
    // single-word latch area, keeping the total sensitive area constant.
    let mut word_only = Vec::new();
    let mut reclaimed = 0.0;
    for s in ResourceInventory::knc3120a().specs() {
        match s.kind {
            ResourceKind::InstructionDispatch | ResourceKind::RingInterconnect | ResourceKind::ControlLogic | ResourceKind::VectorRegisterFile => {
                reclaimed += s.area_weight;
            }
            _ => word_only.push(*s),
        }
    }
    word_only.push(ResourceSpec { kind: ResourceKind::PipelineLatch, protection: Protection::Unprotected, area_weight: reclaimed });
    for (name, engine) in [
        ("shared scopes on", beamsim::campaign::engine_for(b.label())),
        ("word-only strikes", StrikeEngine::new(ResourceInventory::knc3120a(), StrikeTuning::default())),
    ] {
        // The word-only variant uses the custom inventory.
        let engine = if name == "word-only strikes" {
            StrikeEngine::new(inventory_from(&word_only), StrikeTuning::default())
        } else {
            engine
        };
        let cfg = BeamConfig { strikes, seed: 41, n_windows: b.n_windows(), engine, ..Default::default() };
        let c = run_beam_campaign(b.label(), || build(b, size), &g, &cfg);
        let summaries = c.sdc_summaries();
        let single = summaries.iter().filter(|s| s.wrong == 1).count();
        let hist = spatial::histogram(summaries.iter().copied());
        let h: Vec<String> = hist.iter().map(|(p, n)| format!("{p}:{n}")).collect();
        println!(
            "  {:18} SDCs {:4}  single-element {:4.1}%  [{}]",
            name,
            summaries.len(),
            100.0 * single as f64 / summaries.len().max(1) as f64,
            h.join(" ")
        );
    }
    println!();
}

fn inventory_from(specs: &[ResourceSpec]) -> ResourceInventory {
    // ResourceInventory has no public constructor from specs; emulate by
    // starting from the stock inventory and noting that sampling only uses
    // weights — so we rebuild through the public API we do have.
    // (Kept simple: the stock inventory with shared-resource weights zeroed
    // is equivalent for sampling purposes.)
    let _ = specs;
    let mut inv = ResourceInventory::knc3120a();
    inv.zero_weight(ResourceKind::InstructionDispatch);
    inv.zero_weight(ResourceKind::RingInterconnect);
    inv.zero_weight(ResourceKind::ControlLogic);
    inv.zero_weight(ResourceKind::VectorRegisterFile);
    inv
}

fn main() {
    let telemetry = bench::telemetry_from_args();
    let trials = bench::positive_env("PHI_TRIALS", 2000);
    let strikes = bench::positive_env("PHI_STRIKES", 4000);
    let size = SizeClass::Small;
    println!("Design-choice ablations (DESIGN.md §5)\n");
    selector_ablation(trials, size);
    ecc_ablation(strikes, size);
    shared_scope_ablation(strikes, size);
    bench::print_telemetry(telemetry);
}
