//! `phi-cli` — client verbs for the `phi-serve` campaign service.
//!
//! ```text
//! phi-cli submit --socket <s> --kind inject|beam --benchmark <label>
//!                [--trials N] [--seed N] [--size test|small|paper]
//!                [--shards N] [--isolate] [--model <m>]... [--tolerance F]
//!                [--adaptive] [--ci F] [--ci-method wilson|clopper-pearson]
//! phi-cli submit --socket <s> --spec-file <path>   # raw spec JSON, as-is
//! phi-cli status --socket <s> <id>
//! phi-cli list   --socket <s>
//! phi-cli events --socket <s> <id> [--gauges-ms N]
//! phi-cli result --socket <s> <id> [--wait] [--timeout-ms N]
//! phi-cli cancel --socket <s> <id>
//! phi-cli records <journal-dir>              # offline: canonical records JSONL
//! phi-cli render  <journal-dir> [--tolerance F]   # offline: result document
//! ```
//!
//! `submit` defaults come from the same `PHI_*` env the figure binaries
//! read (`PHI_TRIALS`/`PHI_STRIKES`/`PHI_SIZE`/`PHI_SEED`), built through
//! the shared [`bench::campaign_spec`] constructor — one source of truth
//! for what a spec means. `--adaptive`/`--ci` produce a version-2 spec
//! with a `plan` block; `--spec-file` submits a JSON document verbatim
//! (no client-side validation), which is how `./ci` probes the server's
//! own version admission. The offline verbs read any phi-store journal
//! (a figure binary's `--store` directory or a daemon campaign's
//! `journal/`), which is how `./ci` byte-compares daemon output against
//! direct runs; the rendered result document's `spec_version` field
//! reports which spec semantics (1 = fixed-count, 2 = adaptive) the
//! journal was produced under.
//!
//! Exits 0 on success, 1 on daemon-reported errors or I/O failures, 2 on
//! usage errors, and [`EXIT_REJECTED`] (3) when the server rejects a
//! submitted spec — the server's reason is echoed verbatim on stderr, and
//! the distinct code lets scripts tell a rejection from a transport
//! failure. `events` prints one JSON object per line (`Event` and
//! `Gauges` frames verbatim) until the campaign is terminal.

use bench::{CampaignKind, RunConfig, StoreArgs};
use carolfi::warden::read_frame_blocking;
use kernels::Benchmark;
use serve::proto::{roundtrip, subscribe, ClientRequest, ServerReply, DEFAULT_GAUGE_MS};
use std::path::PathBuf;

/// Exit code for a server-side spec rejection (distinct from transport
/// errors, which exit 1).
const EXIT_REJECTED: i32 = 3;

fn usage() -> ! {
    eprintln!("usage: phi-cli <submit|status|list|events|result|cancel> --socket <path> [args]");
    eprintln!("       phi-cli <records|render> <journal-dir> [--tolerance F]");
    eprintln!("see the module docs (cargo doc -p bench) for per-verb flags");
    std::process::exit(2);
}

fn fatal(msg: String) -> ! {
    eprintln!("phi-cli: {msg}");
    std::process::exit(1);
}

struct Args {
    verb: String,
    socket: Option<PathBuf>,
    id: Option<String>,
    kind: String,
    benchmark: Option<String>,
    trials: Option<usize>,
    seed: Option<u64>,
    size: Option<String>,
    shards: Option<usize>,
    isolate: bool,
    models: Vec<String>,
    tolerance: f64,
    adaptive: bool,
    ci: f64,
    ci_method: sdc_analysis::CiMethod,
    spec_file: Option<PathBuf>,
    wait: bool,
    timeout_ms: u64,
    gauges_ms: u64,
    dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let Some(verb) = it.next() else { usage() };
    let mut a = Args {
        verb,
        socket: None,
        id: None,
        kind: "inject".into(),
        benchmark: None,
        trials: None,
        seed: None,
        size: None,
        shards: None,
        isolate: false,
        models: Vec::new(),
        tolerance: 0.0,
        adaptive: false,
        ci: 0.01,
        ci_method: Default::default(),
        spec_file: None,
        wait: false,
        timeout_ms: 600_000,
        gauges_ms: DEFAULT_GAUGE_MS,
        dir: None,
    };
    let positive = |raw: Option<String>, flag: &str| -> usize {
        match raw.and_then(|r| r.trim().parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("phi-cli: {flag}: expected a positive integer");
                std::process::exit(2);
            }
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => a.socket = it.next().map(PathBuf::from),
            "--kind" => a.kind = it.next().unwrap_or_else(|| usage()),
            "--benchmark" => a.benchmark = it.next(),
            "--trials" => a.trials = Some(positive(it.next(), "--trials")),
            "--seed" => match it.next().and_then(|r| r.trim().parse::<u64>().ok()) {
                Some(n) => a.seed = Some(n),
                None => usage(),
            },
            "--size" => a.size = it.next(),
            "--shards" => a.shards = Some(positive(it.next(), "--shards")),
            "--isolate" => a.isolate = true,
            "--model" => a.models.push(it.next().unwrap_or_else(|| usage())),
            "--tolerance" => match it.next().and_then(|r| r.trim().parse::<f64>().ok()) {
                Some(f) if f.is_finite() && f >= 0.0 => a.tolerance = f,
                _ => usage(),
            },
            "--adaptive" => a.adaptive = true,
            "--ci" => match it.next().and_then(|r| r.trim().parse::<f64>().ok()) {
                Some(f) if f.is_finite() && f > 0.0 && f < 1.0 => a.ci = f,
                _ => usage(),
            },
            "--ci-method" => match it.next().and_then(|r| sdc_analysis::CiMethod::parse(r.trim())) {
                Some(m) => a.ci_method = m,
                None => usage(),
            },
            "--spec-file" => a.spec_file = it.next().map(PathBuf::from),
            "--wait" => a.wait = true,
            "--timeout-ms" => a.timeout_ms = positive(it.next(), "--timeout-ms") as u64,
            "--gauges-ms" => a.gauges_ms = positive(it.next(), "--gauges-ms") as u64,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                if matches!(a.verb.as_str(), "records" | "render") {
                    a.dir = Some(PathBuf::from(other));
                } else {
                    a.id = Some(other.to_string());
                }
            }
            _ => usage(),
        }
    }
    a
}

/// Builds the submit spec: figure-binary defaults from the `PHI_*` env
/// (via the shared constructor), then the explicit flags on top. With
/// `--spec-file` the file's JSON is submitted verbatim instead — no
/// client-side construction or validation, so the server's own admission
/// (including version rejection) is what the caller observes.
fn build_spec(a: &Args) -> String {
    if let Some(path) = &a.spec_file {
        return std::fs::read_to_string(path)
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|e| fatal(format!("read spec file {}: {e}", path.display())));
    }
    let Some(label) = &a.benchmark else {
        eprintln!("phi-cli: submit requires --benchmark <label> (or --spec-file <path>)");
        std::process::exit(2);
    };
    let Some(b) = Benchmark::from_label(label) else {
        fatal(format!("unknown benchmark {label:?}"));
    };
    let Some(kind) = CampaignKind::from_label(&a.kind) else {
        eprintln!("phi-cli: --kind: expected inject or beam, got {:?}", a.kind);
        std::process::exit(2);
    };
    let mut cfg = RunConfig::from_env();
    if let Some(t) = a.trials {
        cfg.trials = t;
        cfg.strikes = t;
    }
    if let Some(s) = a.seed {
        cfg.seed = s;
    }
    let store = StoreArgs {
        shards: a.shards.unwrap_or(8),
        isolate: a.isolate,
        adaptive: a.adaptive,
        ci: a.ci,
        ci_method: a.ci_method,
        ..Default::default()
    };
    let mut spec = bench::campaign_spec(kind, b, &cfg, &store);
    if let Some(size) = &a.size {
        spec.size = size.clone();
    }
    spec.models = a.models.clone();
    spec.tolerance = a.tolerance;
    // Validate client-side for a usable diagnostic before the RPC.
    if let Err(reason) = bench::validate_spec(spec.clone()) {
        eprintln!("invalid spec: {reason}");
        std::process::exit(EXIT_REJECTED);
    }
    serde_json::to_string(&spec).unwrap_or_else(|e| fatal(format!("serialize spec: {e}")))
}

fn require_socket(a: &Args) -> &PathBuf {
    a.socket.as_ref().unwrap_or_else(|| {
        eprintln!("phi-cli: {} requires --socket <path>", a.verb);
        std::process::exit(2);
    })
}

fn require_id(a: &Args) -> &str {
    a.id.as_deref().unwrap_or_else(|| {
        eprintln!("phi-cli: {} requires a campaign id", a.verb);
        std::process::exit(2);
    })
}

fn print_status(s: &serve::proto::CampaignStatus) {
    let err = if s.error.is_empty() { String::new() } else { format!("  error: {}", s.error) };
    println!("{}  {:9}  {:6} {:9}  {}/{}{err}", s.id, s.state, s.kind, s.benchmark, s.completed, s.total);
}

fn main() {
    let a = parse_args();
    match a.verb.as_str() {
        "submit" => {
            let spec = build_spec(&a);
            match roundtrip(require_socket(&a), &ClientRequest::Submit { spec }) {
                Ok(ServerReply::Submitted { id }) => println!("{id}"),
                Ok(ServerReply::Rejected { reason }) => {
                    // The server's reason, verbatim — no prefix — so
                    // scripts and humans see exactly what admission said;
                    // the exit code distinguishes this from transport
                    // failures (which exit 1).
                    eprintln!("{reason}");
                    std::process::exit(EXIT_REJECTED);
                }
                Ok(other) => fatal(format!("unexpected reply {other:?}")),
                Err(e) => fatal(format!("submit: {e}")),
            }
        }
        "status" => {
            let id = require_id(&a).to_string();
            match roundtrip(require_socket(&a), &ClientRequest::Status { id }) {
                Ok(ServerReply::Status { status }) => print_status(&status),
                Ok(ServerReply::Error { reason }) => fatal(reason),
                Ok(other) => fatal(format!("unexpected reply {other:?}")),
                Err(e) => fatal(format!("status: {e}")),
            }
        }
        "list" => match roundtrip(require_socket(&a), &ClientRequest::List) {
            Ok(ServerReply::List { campaigns }) => campaigns.iter().for_each(print_status),
            Ok(other) => fatal(format!("unexpected reply {other:?}")),
            Err(e) => fatal(format!("list: {e}")),
        },
        "cancel" => {
            let id = require_id(&a).to_string();
            match roundtrip(require_socket(&a), &ClientRequest::Cancel { id }) {
                Ok(ServerReply::Status { status }) => print_status(&status),
                Ok(ServerReply::Error { reason }) => fatal(reason),
                Ok(other) => fatal(format!("unexpected reply {other:?}")),
                Err(e) => fatal(format!("cancel: {e}")),
            }
        }
        "result" => {
            let id = require_id(&a).to_string();
            let wait_ms = if a.wait { a.timeout_ms } else { 0 };
            match roundtrip(require_socket(&a), &ClientRequest::Result { id, wait_ms }) {
                Ok(ServerReply::Result { result, .. }) => println!("{result}"),
                Ok(ServerReply::Error { reason }) => fatal(reason),
                Ok(other) => fatal(format!("unexpected reply {other:?}")),
                Err(e) => fatal(format!("result: {e}")),
            }
        }
        "events" => {
            let id = require_id(&a);
            let mut stream = subscribe(require_socket(&a), id, a.gauges_ms)
                .unwrap_or_else(|e| fatal(format!("subscribe: {e}")));
            loop {
                let reply: ServerReply = match read_frame_blocking(&mut stream) {
                    Ok(r) => r,
                    // Daemon gone mid-stream: the campaign survives in its
                    // journal; reconnect by id later.
                    Err(e) => fatal(format!("stream: {e}")),
                };
                match &reply {
                    ServerReply::Done => return,
                    ServerReply::Error { reason } => fatal(reason.clone()),
                    _ => match serde_json::to_string(&reply) {
                        Ok(json) => println!("{json}"),
                        Err(e) => fatal(format!("serialize frame: {e}")),
                    },
                }
            }
        }
        "records" => {
            let Some(dir) = &a.dir else { usage() };
            let (_, records) =
                bench::spec::journal_records(dir).unwrap_or_else(|e| fatal(format!("{}: {e}", dir.display())));
            for r in &records {
                match serde_json::to_string(r) {
                    Ok(json) => println!("{json}"),
                    Err(e) => fatal(format!("serialize record: {e}")),
                }
            }
        }
        "render" => {
            let Some(dir) = &a.dir else { usage() };
            let result = bench::render_result(dir, a.tolerance)
                .unwrap_or_else(|e| fatal(format!("{}: {e}", dir.display())));
            println!("{result}");
        }
        _ => usage(),
    }
}
