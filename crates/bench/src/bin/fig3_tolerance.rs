//! Figure 3 — "FIT decrease rate as a function of relative error tolerance."
//!
//! For every beam benchmark, prints the SDC-FIT reduction (%) when outputs
//! within a relative tolerance of the golden value are accepted, over the
//! paper's 0.1%–15% tolerance grid, plus the headline numbers the paper
//! quotes (HotSpot −85% at 0.5%, ×20 MTBF at 2%; ≥25% drop for everyone at
//! the smallest tolerance; CLAMR and DGEMM flattest).

use bench::{beam_records, rule, RunConfig};
use kernels::Benchmark;
use sdc_analysis::tolerance::{paper_tolerances, ToleranceCurve};

fn main() {
    let cfg = RunConfig::from_env();
    let tolerances = paper_tolerances();
    println!("Figure 3 reproduction — SDC FIT reduction vs tolerated relative error");
    println!("strikes/benchmark = {}, size = {:?}, seed = {}\n", cfg.strikes, cfg.size, cfg.seed);
    print!("{:9}", "bench");
    for t in &tolerances {
        print!(" {:>7}", format!("{:.1}%", t * 100.0));
    }
    println!("   (FIT reduction %)");
    rule(9 + 8 * tolerances.len() + 20);

    let mut curves = Vec::new();
    for b in Benchmark::BEAM {
        let c = beam_records(b, &cfg);
        let summaries = c.sdc_summaries();
        let curve = ToleranceCurve::from_summaries(b.label(), summaries.iter().copied(), &tolerances);
        print!("{:9}", b.label());
        for r in curve.fit_reduction_percent() {
            print!(" {:7.1}", r);
        }
        println!();
        curves.push(curve);
    }
    rule(9 + 8 * tolerances.len() + 20);

    // Headline checks. The grid positions are located by nearest match, not
    // exact float equality — a regenerated or user-supplied tolerance grid
    // (e.g. parsed from a config where 0.005 prints as 0.0050000001) must
    // not panic the figure binary.
    let nearest = |grid: &[f64], want: f64| -> Option<usize> {
        let (idx, dist) = grid
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, (t - want).abs()))
            .min_by(|a, b| a.1.total_cmp(&b.1))?;
        (dist <= want * 0.1).then_some(idx)
    };
    println!();
    for curve in &curves {
        let red = curve.fit_reduction_percent();
        if curve.benchmark == "hotspot" {
            if let (Some(idx_half), Some(idx2)) = (nearest(&tolerances, 0.005), nearest(&tolerances, 0.02)) {
                println!("hotspot: −{:.0}% at 0.5% tolerance (paper: −85%); MTBF ×{:.1} at 2% (paper: ×20)", red[idx_half], curve.mtbf_gain(idx2));
            } else {
                println!("hotspot: tolerance grid lacks the 0.5%/2% headline points; skipping the paper comparison");
            }
        }
        if curve.benchmark == "clamr" || curve.benchmark == "dgemm" {
            println!("{}: −{:.0}% at 15% tolerance (paper: among the smallest decreases)", curve.benchmark, red[red.len() - 1]);
        }
    }
    println!("\nPaper shape targets: every benchmark drops ≥25% already at small tolerances;");
    println!("HotSpot collapses fastest (stencil attenuation); CLAMR & DGEMM flattest; curves saturate.");
}
