//! Log parser — the equivalent of the paper artifact's `parser-scripts`
//! (appendix A.5: "The parser scripts are located in the parser-scripts
//! folder … how to execute and how to interpret the results produced").
//!
//! Reads one or more JSON-lines campaign logs (as written by the campaign
//! runners and cached under `target/campaign_cache/`) and prints the
//! aggregate analyses: outcome breakdown, fault-model and window PVFs,
//! per-class rates and, for SDC records, the spatial-pattern histogram and
//! the tolerance curve.
//!
//! ```text
//! cargo run --release -p bench --bin parse_logs -- target/campaign_cache/*.jsonl
//! ```

use carolfi::record::{read_log, OutcomeRecord, TrialRecord};
use sdc_analysis::pvf::{by_class, by_model, by_window, OutcomeBreakdown, PvfKind};
use sdc_analysis::spatial;
use sdc_analysis::tolerance::{paper_tolerances, ToleranceCurve};
use std::collections::BTreeMap;

fn analyse(benchmark: &str, records: &[TrialRecord]) {
    println!("== {benchmark}: {} records", records.len());
    let bd = OutcomeBreakdown::of(records);
    println!("   masked {:5.1}%  sdc {:5.1}%  due {:5.1}%", bd.masked_pct(), bd.sdc_pct(), bd.due_pct());

    let sdc_m = by_model(records, PvfKind::Sdc);
    if !sdc_m.groups.is_empty() {
        let due_m = by_model(records, PvfKind::Due);
        let cells: Vec<String> = sdc_m
            .groups
            .iter()
            .map(|(m, p)| format!("{}={:.1}/{:.1}", m.label(), p.percent(), due_m.get(*m).map(|d| d.percent()).unwrap_or(0.0)))
            .collect();
        println!("   model sdc/due: {}", cells.join("  "));
    }

    let sdc_w = by_window(records, PvfKind::Sdc);
    let cells: Vec<String> = sdc_w.groups.iter().map(|(w, p)| format!("w{w}={:.1}", p.percent())).collect();
    println!("   window sdc: {}", cells.join(" "));

    let sdc_c = by_class(records, PvfKind::Sdc);
    let due_c = by_class(records, PvfKind::Due);
    let cells: Vec<String> = sdc_c
        .groups
        .iter()
        .map(|(c, p)| format!("{}={:.1}/{:.1}", c.label(), p.percent(), due_c.get(*c).map(|d| d.percent()).unwrap_or(0.0)))
        .collect();
    println!("   class sdc/due: {}", cells.join("  "));

    let summaries: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.outcome {
            OutcomeRecord::Sdc(s) => Some(s),
            _ => None,
        })
        .collect();
    if !summaries.is_empty() {
        let hist = spatial::histogram(summaries.iter().copied());
        let cells: Vec<String> = hist.iter().map(|(p, n)| format!("{p}={n}")).collect();
        println!("   spatial: {}", cells.join(" "));
        let curve = ToleranceCurve::from_summaries(benchmark, summaries.iter().copied(), &paper_tolerances());
        let red: Vec<String> =
            curve.tolerances.iter().zip(curve.fit_reduction_percent()).map(|(t, r)| format!("{:.1}%→−{:.0}%", t * 100.0, r)).collect();
        println!("   tolerance: {}", red.join(" "));
    }
    println!();
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: parse_logs <log.jsonl> [more.jsonl ...]");
        eprintln!("logs are produced by the campaign runners and cached under target/campaign_cache/");
        std::process::exit(2);
    }
    let mut per_benchmark: BTreeMap<String, Vec<TrialRecord>> = BTreeMap::new();
    for path in &paths {
        match std::fs::File::open(path).map(std::io::BufReader::new).map(read_log) {
            Ok(Ok(records)) => {
                for r in records {
                    per_benchmark.entry(r.benchmark.clone()).or_default().push(r);
                }
            }
            Ok(Err(e)) => eprintln!("{path}: parse error: {e}"),
            Err(e) => eprintln!("{path}: {e}"),
        }
    }
    for (benchmark, records) in &per_benchmark {
        analyse(benchmark, records);
    }
}
