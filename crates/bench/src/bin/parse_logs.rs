//! Log parser — the equivalent of the paper artifact's `parser-scripts`
//! (appendix A.5: "The parser scripts are located in the parser-scripts
//! folder … how to execute and how to interpret the results produced").
//!
//! Reads one or more campaign logs and prints the aggregate analyses:
//! outcome breakdown, fault-model and window PVFs, per-class rates and,
//! for SDC records, the spatial-pattern histogram and the tolerance curve.
//!
//! Three input shapes are understood:
//! * **plain JSONL record logs** — one `TrialRecord` per line, as cached
//!   under `target/campaign_cache/`;
//! * **phi-obs event streams** — `{"seq":..,"kind":..,"data":{..}}`
//!   envelopes from `obs::JsonlRecorder`; `trial`/`strike` events carry a
//!   full record, other kinds are counted and skipped;
//! * **phi-store journal directories** (a `--store` campaign sub-dir):
//!   records are recovered from the checksummed segments and the per-shard
//!   completion status is printed.
//!
//! ```text
//! cargo run --release -p bench --bin parse_logs -- target/campaign_cache/*.jsonl
//! cargo run --release -p bench --bin parse_logs -- /tmp/phi-store/inject-nw
//! ```

use carolfi::record::{OutcomeRecord, TrialRecord};
use sdc_analysis::pvf::{by_class, by_model, by_window, OutcomeBreakdown, PvfKind};
use sdc_analysis::spatial;
use sdc_analysis::tolerance::{paper_tolerances, ToleranceCurve};
use std::collections::BTreeMap;
use std::path::Path;
use store::{Journal, JournalEntry, ShardPlan, ShardProgress};

fn analyse(benchmark: &str, records: &[TrialRecord]) {
    println!("== {benchmark}: {} records", records.len());
    let bd = OutcomeBreakdown::of(records);
    println!("   masked {:5.1}%  sdc {:5.1}%  due {:5.1}%", bd.masked_pct(), bd.sdc_pct(), bd.due_pct());

    let sdc_m = by_model(records, PvfKind::Sdc);
    if !sdc_m.groups.is_empty() {
        let due_m = by_model(records, PvfKind::Due);
        let cells: Vec<String> = sdc_m
            .groups
            .iter()
            .map(|(m, p)| format!("{}={:.1}/{:.1}", m.label(), p.percent(), due_m.get(*m).map(|d| d.percent()).unwrap_or(0.0)))
            .collect();
        println!("   model sdc/due: {}", cells.join("  "));
    }

    let sdc_w = by_window(records, PvfKind::Sdc);
    let cells: Vec<String> = sdc_w.groups.iter().map(|(w, p)| format!("w{w}={:.1}", p.percent())).collect();
    println!("   window sdc: {}", cells.join(" "));

    let sdc_c = by_class(records, PvfKind::Sdc);
    let due_c = by_class(records, PvfKind::Due);
    let cells: Vec<String> = sdc_c
        .groups
        .iter()
        .map(|(c, p)| format!("{}={:.1}/{:.1}", c.label(), p.percent(), due_c.get(*c).map(|d| d.percent()).unwrap_or(0.0)))
        .collect();
    println!("   class sdc/due: {}", cells.join("  "));

    let summaries: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.outcome {
            OutcomeRecord::Sdc(s) => Some(s),
            _ => None,
        })
        .collect();
    if !summaries.is_empty() {
        let hist = spatial::histogram(summaries.iter().copied());
        let cells: Vec<String> = hist.iter().map(|(p, n)| format!("{p}={n}")).collect();
        println!("   spatial: {}", cells.join(" "));
        let curve = ToleranceCurve::from_summaries(benchmark, summaries.iter().copied(), &paper_tolerances());
        let red: Vec<String> =
            curve.tolerances.iter().zip(curve.fit_reduction_percent()).map(|(t, r)| format!("{:.1}%→−{:.0}%", t * 100.0, r)).collect();
        println!("   tolerance: {}", red.join(" "));
    }
    println!();
}

/// One line of a `obs::JsonlRecorder` export. `trial` and `strike` events
/// carry a full [`TrialRecord`] as their payload.
#[derive(serde::Deserialize)]
struct ObsEnvelope {
    #[allow(dead_code)]
    seq: u64,
    kind: String,
    data: TrialRecord,
}

/// Loads a flat JSONL file, accepting both plain record lines and phi-obs
/// event envelopes; unrecognised lines are counted, not fatal.
fn load_file(path: &str) -> Vec<TrialRecord> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return Vec::new();
        }
    };
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        if let Ok(r) = serde_json::from_str::<TrialRecord>(line) {
            records.push(r);
        } else if let Ok(env) = serde_json::from_str::<ObsEnvelope>(line) {
            if env.kind == "trial" || env.kind == "strike" {
                records.push(env.data);
            } else {
                skipped += 1;
            }
        } else {
            skipped += 1;
        }
    }
    if skipped > 0 {
        eprintln!("{path}: skipped {skipped} non-record line(s)");
    }
    records
}

/// Loads a phi-store journal directory, printing the campaign header and
/// per-shard completion status before handing the records to the analyses.
fn load_journal(dir: &Path) -> Vec<TrialRecord> {
    let scan = match Journal::scan(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", dir.display());
            return Vec::new();
        }
    };
    let Some(meta) = scan.meta else {
        eprintln!("{}: journal holds no campaign metadata", dir.display());
        return Vec::new();
    };
    let progress = match ShardProgress::replay(meta.shards, &scan.entries) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", dir.display());
            return Vec::new();
        }
    };
    println!(
        "journal {} — {} campaign on {}, seed {}, {} trials over {} shards, {} segment(s)",
        dir.display(),
        meta.kind,
        meta.benchmark,
        meta.seed,
        meta.trials,
        meta.shards,
        scan.segments.len()
    );
    if scan.torn_bytes > 0 {
        println!("   recovered: dropped {}-byte torn tail from the newest segment", scan.torn_bytes);
    }
    let plan = ShardPlan::new(meta.trials, meta.shards);
    for (shard, state) in progress.shards.iter().enumerate() {
        let range = plan.range(shard);
        let status = if state.done {
            "done".to_string()
        } else {
            format!("{}/{} in progress", state.completed, range.len())
        };
        println!("   shard {shard}: trials {}..{} — {status}", range.start, range.end);
    }
    let total = progress.completed();
    println!(
        "   {} of {} trials journaled{}",
        total,
        meta.trials,
        if progress.all_done() { ", campaign complete" } else { " (resumable with --resume)" }
    );
    println!();

    let mut records = Vec::new();
    for entry in &scan.entries {
        if let JournalEntry::Trial { payload, .. } = entry {
            match serde_json::from_str::<TrialRecord>(payload) {
                Ok(r) => records.push(r),
                Err(e) => eprintln!("{}: undecodable trial payload: {e}", dir.display()),
            }
        }
    }
    records.sort_by_key(|r| r.trial);
    records
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: parse_logs <log.jsonl | journal-dir> [more ...]");
        eprintln!("logs are produced by the campaign runners and cached under target/campaign_cache/;");
        eprintln!("journal directories are the per-campaign sub-directories of a --store root");
        std::process::exit(2);
    }
    let mut per_benchmark: BTreeMap<String, Vec<TrialRecord>> = BTreeMap::new();
    for path in &paths {
        let records = if Path::new(path).is_dir() { load_journal(Path::new(path)) } else { load_file(path) };
        for r in records {
            per_benchmark.entry(r.benchmark.clone()).or_default().push(r);
        }
    }
    for (benchmark, records) in &per_benchmark {
        analyse(benchmark, records);
    }
}
