//! Figure 2 — "Benchmarks FIT and spatial distribution."
//!
//! Regenerates the beam-experiment figure: per-benchmark SDC and DUE FIT
//! rates at sea level, with the SDC bar split into the five spatial error
//! patterns (cubic / square / line / single / random), plus the §4.2
//! machine-scale extrapolations (Trinity and 10× exascale).

use bench::{beam_records_stored, rule};
use kernels::Benchmark;
use sdc_analysis::fit::MachineProjection;
use sdc_analysis::spatial::{self, SpatialPattern};

fn main() {
    let bench::Figure { cfg, store, telemetry } = bench::figure_setup();
    println!("Figure 2 reproduction — SDC/DUE FIT and spatial distribution (sea level)");
    println!("strikes/benchmark = {}, size = {:?}, seed = {}\n", cfg.strikes, cfg.size, cfg.seed);
    println!(
        "{:9} {:>9} {:>9} {:>17} {:>8}   SDC split by pattern (FIT)",
        "bench", "SDC FIT", "DUE FIT", "SDC 95% CI", "multi%"
    );
    rule(110);

    let mut max_sdc_fit = 0.0f64;
    let mut max_sdc_bench = Benchmark::Clamr;
    let mut max_due_fit = 0.0f64;
    let mut max_due_bench = Benchmark::Clamr;

    let mut reports = Vec::new();
    for b in Benchmark::BEAM {
        let c = beam_records_stored(b, &cfg, &store);
        if telemetry.is_some() {
            reports.push(c.report.clone());
        }
        let sdc = c.fit_sdc();
        let due = c.fit_due();
        let iv = sdc.fit_interval();
        let summaries = c.sdc_summaries();
        let hist = spatial::histogram(summaries.iter().copied());
        let total_sdc = summaries.len().max(1);
        let split: Vec<String> = SpatialPattern::ALL
            .iter()
            .filter_map(|p| hist.get(p).map(|&n| format!("{}={:.1}", p.label(), sdc.fit() * n as f64 / total_sdc as f64)))
            .collect();
        let multi = summaries.iter().filter(|s| s.wrong > 1).count();
        println!(
            "{:9} {:9.1} {:9.1} [{:6.1}, {:6.1}] {:7.1}%   {}",
            b.label(),
            sdc.fit(),
            due.fit(),
            iv.lo,
            iv.hi,
            100.0 * multi as f64 / total_sdc as f64,
            split.join(" ")
        );
        if sdc.fit() > max_sdc_fit {
            max_sdc_fit = sdc.fit();
            max_sdc_bench = b;
        }
        if due.fit() > max_due_fit {
            max_due_fit = due.fit();
            max_due_bench = b;
        }
    }

    rule(110);
    println!("\n§4.2 machine-scale extrapolation (19,000 boards at sea level):");
    let sdc_proj = MachineProjection::trinity(max_sdc_fit);
    let due_proj = MachineProjection::trinity(max_due_fit);
    println!("  one {} SDC every {:5.1} days; one {} DUE every {:5.1} days", max_sdc_bench, sdc_proj.mtbf_days(), max_due_bench, due_proj.mtbf_days());
    let exa = sdc_proj.scaled(10);
    println!("  hypothetical exascale machine (10x boards): one SDC every {:4.1} days", exa.mtbf_days());
    println!("\nPaper shape targets: LUD & HotSpot highest SDC FIT (max ≈193); HotSpot highest DUE;");
    println!("DGEMM & LavaMD lowest DUE; CLAMR lowest SDC with SDC ≈ DUE; <10% single-element SDCs;");
    println!("cubic pattern only for LavaMD; Trinity-scale events every ~11-12 days.");

    if !reports.is_empty() {
        println!();
        for r in &reports {
            print!("{r}");
        }
    }
    bench::print_telemetry(telemetry);
}
