//! `phi-coord` — distributed campaign coordinator and executor.
//!
//! One binary, two roles (DESIGN.md §14):
//!
//! ```text
//! # Coordinator: owns the campaign journal, leases shard ranges out.
//! phi-coord --listen <addr> --store <journal-dir> --benchmark <label>
//!           [--trials N] [--seed N] [--size test|small|paper] [--shards N]
//!           [--resume] [--addr-file <path>] [--lease-timeout-ms N]
//!           [--monitor <socket>]
//!
//! # Executor: computes leased ranges, streams trial records back.
//! phi-coord --executor --name <id> --store <local-journal-root>
//!           (--connect <addr> | --connect-file <path>) [--throttle-ms N]
//! ```
//!
//! The coordinator binds `--listen` (use port 0 for an ephemeral port),
//! writes the resolved address to `--addr-file` (atomically, so executors
//! polling the file never read a torn address), and runs until every shard
//! of the campaign is merged and sealed. On completion it prints the
//! deterministic result document ([`bench::render_result`]) on stdout —
//! byte-identical to a single-host run of the same spec — and a merge
//! summary on stderr. A SIGKILLed coordinator is restarted with `--resume`
//! (and a fresh `--listen`): the checksummed lease ledger plus the journal
//! bring it back mid-campaign with every granted-but-unfinished shard
//! immediately re-dispatchable.
//!
//! Executors are restartable the same way: each keeps a per-shard local
//! journal under its `--store`, so a killed-and-relaunched executor (same
//! `--name`) replays computed trials from disk instead of redoing them.
//! `--connect-file` re-reads the address file on every reconnect attempt,
//! which is how executors ride out a coordinator restart onto a new port.
//!
//! Distributed mode covers plain fixed-count injection specs (the paper's
//! 90k-trial campaigns): no `--isolate`, no adaptive plan — those modes
//! schedule trials dynamically, which contradicts range leasing.
//!
//! `--throttle-ms` paces each computed trial; `./ci` uses it to hold kill
//! windows open. Exits 0 on a completed campaign, 1 on I/O or protocol
//! failures, 2 on usage errors.

use bench::{positive_env, RunConfig};
use carolfi::{run_coordinator, run_executor, ConnectTarget, CoordConfig, ExecutorConfig};
use kernels::{build, golden, Benchmark};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: phi-coord --listen <addr> --store <dir> --benchmark <label> [flags]");
    eprintln!("       phi-coord --executor --name <id> --store <dir> --connect <addr>|--connect-file <path> [flags]");
    eprintln!("see the module docs (cargo doc -p bench) for the full flag set");
    std::process::exit(2);
}

fn fatal(msg: String) -> ! {
    eprintln!("phi-coord: {msg}");
    std::process::exit(1);
}

struct Args {
    executor: bool,
    listen: Option<String>,
    addr_file: Option<PathBuf>,
    store: Option<PathBuf>,
    benchmark: Option<String>,
    trials: Option<usize>,
    seed: Option<u64>,
    size: Option<String>,
    shards: usize,
    resume: bool,
    lease_timeout_ms: u64,
    monitor: Option<PathBuf>,
    name: Option<String>,
    connect: Option<String>,
    connect_file: Option<PathBuf>,
    throttle_ms: u64,
}

fn parse_args() -> Args {
    let mut a = Args {
        executor: false,
        listen: None,
        addr_file: None,
        store: None,
        benchmark: None,
        trials: None,
        seed: None,
        size: None,
        shards: 8,
        resume: false,
        lease_timeout_ms: 2000,
        monitor: None,
        name: None,
        connect: None,
        connect_file: None,
        throttle_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    let positive = |raw: Option<String>, flag: &str| -> usize {
        match raw.and_then(|r| r.trim().parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("phi-coord: {flag}: expected a positive integer");
                std::process::exit(2);
            }
        }
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--executor" => a.executor = true,
            "--listen" => a.listen = it.next(),
            "--addr-file" => a.addr_file = it.next().map(PathBuf::from),
            "--store" => a.store = it.next().map(PathBuf::from),
            "--benchmark" => a.benchmark = it.next(),
            "--trials" => a.trials = Some(positive(it.next(), "--trials")),
            "--seed" => match it.next().and_then(|r| r.trim().parse::<u64>().ok()) {
                Some(n) => a.seed = Some(n),
                None => usage(),
            },
            "--size" => a.size = it.next(),
            "--shards" => a.shards = positive(it.next(), "--shards"),
            "--resume" => a.resume = true,
            "--lease-timeout-ms" => a.lease_timeout_ms = positive(it.next(), "--lease-timeout-ms") as u64,
            "--monitor" => a.monitor = it.next().map(PathBuf::from),
            "--name" => a.name = it.next(),
            "--connect" => a.connect = it.next(),
            "--connect-file" => a.connect_file = it.next().map(PathBuf::from),
            "--throttle-ms" => a.throttle_ms = positive(it.next(), "--throttle-ms") as u64,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a
}

/// Writes the bound address where executors will look for it: temp file +
/// rename, so a polling reader sees either the old address or the new one,
/// never a torn prefix.
fn write_addr_file(path: &PathBuf, addr: &str) {
    let tmp = path.with_extension("tmp");
    if let Err(e) = std::fs::write(&tmp, format!("{addr}\n")).and_then(|()| std::fs::rename(&tmp, path)) {
        fatal(format!("write addr file {}: {e}", path.display()));
    }
}

fn run_coordinator_mode(a: &Args) -> ! {
    let Some(dir) = &a.store else {
        eprintln!("phi-coord: coordinator mode requires --store <journal-dir>");
        std::process::exit(2);
    };
    let Some(listen) = &a.listen else {
        eprintln!("phi-coord: coordinator mode requires --listen <addr> (port 0 for ephemeral)");
        std::process::exit(2);
    };
    let Some(label) = &a.benchmark else {
        eprintln!("phi-coord: coordinator mode requires --benchmark <label>");
        std::process::exit(2);
    };
    let Some(b) = Benchmark::from_label(label) else {
        fatal(format!("unknown benchmark {label:?}"));
    };
    let mut cfg = RunConfig::from_env();
    if let Some(t) = a.trials {
        cfg.trials = t;
    }
    if let Some(s) = a.seed {
        cfg.seed = s;
    }
    let mut spec = bench::campaign_spec(
        bench::CampaignKind::Inject,
        b,
        &cfg,
        &bench::StoreArgs { shards: a.shards, ..Default::default() },
    );
    if let Some(size) = &a.size {
        spec.size = size.clone();
    }
    let parsed = bench::validate_spec(spec).unwrap_or_else(|reason| fatal(format!("invalid spec: {reason}")));
    let meta = store::CampaignMeta {
        kind: parsed.spec.kind.label().to_string(),
        benchmark: parsed.spec.benchmark.clone(),
        seed: parsed.spec.seed,
        trials: parsed.spec.trials,
        shards: parsed.spec.shards,
        n_windows: parsed.benchmark.n_windows(),
        version: store::journal::FORMAT_VERSION,
    };
    let spec_json =
        serde_json::to_string(&parsed.spec).unwrap_or_else(|e| fatal(format!("serialize spec: {e}")));

    if let Some(socket) = &a.monitor {
        if obs::snapshot().is_none() {
            obs::install(std::sync::Arc::new(obs::CounterRecorder::new()));
        }
        if let Err(e) = carolfi::monitor::serve_monitor(socket) {
            fatal(format!("bind monitor socket {}: {e}", socket.display()));
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            fatal(format!("create store dir {}: {e}", dir.display()));
        }
        carolfi::monitor::start_heartbeat(dir.join("heartbeat.json"));
    }

    let listener = TcpListener::bind(listen).unwrap_or_else(|e| fatal(format!("bind {listen}: {e}")));
    let addr = listener.local_addr().unwrap_or_else(|e| fatal(format!("local addr: {e}"))).to_string();
    if let Some(path) = &a.addr_file {
        write_addr_file(path, &addr);
    }
    eprintln!("phi-coord: listening on {addr} ({} trials, {} shards)", meta.trials, meta.shards);

    let mut ccfg = CoordConfig::new(dir.clone(), meta, spec_json);
    ccfg.resume = a.resume;
    ccfg.lease_timeout = Duration::from_millis(a.lease_timeout_ms);
    // Undocumented test hook for ./ci's crash drill: abandon (as a SIGKILL
    // would) after merging this many trials.
    if std::env::var("PHI_COORD_STOP_AFTER").is_ok() {
        ccfg.stop_after_merged = Some(positive_env("PHI_COORD_STOP_AFTER", 1) as u64);
    }

    let summary = run_coordinator(listener, &ccfg).unwrap_or_else(|e| fatal(format!("coordinator: {e}")));
    eprintln!(
        "phi-coord: merged {} trials ({} duplicates dropped), {} leases granted, {} expired, {} re-dispatched",
        summary.merged, summary.duplicates, summary.leases_granted, summary.leases_expired, summary.redispatched
    );
    if summary.abandoned {
        // The stop hook fired: the journal is mid-campaign by design.
        eprintln!("phi-coord: abandoned after {} merged trials (PHI_COORD_STOP_AFTER)", summary.merged);
        std::process::exit(1);
    }
    let result = bench::render_result(dir, 0.0).unwrap_or_else(|e| fatal(format!("render result: {e}")));
    println!("{result}");
    std::process::exit(0);
}

fn run_executor_mode(a: &Args) -> ! {
    let Some(name) = &a.name else {
        eprintln!("phi-coord: executor mode requires --name <id> (stable across restarts)");
        std::process::exit(2);
    };
    let Some(dir) = &a.store else {
        eprintln!("phi-coord: executor mode requires --store <local-journal-root>");
        std::process::exit(2);
    };
    let target = match (&a.connect, &a.connect_file) {
        (Some(addr), None) => ConnectTarget::Addr(addr.clone()),
        (None, Some(path)) => ConnectTarget::File(path.clone()),
        _ => {
            eprintln!("phi-coord: executor mode requires exactly one of --connect <addr> / --connect-file <path>");
            std::process::exit(2);
        }
    };
    let mut ecfg = ExecutorConfig::new(name.clone(), dir.clone(), target);
    ecfg.throttle = Duration::from_millis(a.throttle_ms);

    let summary = run_executor(&ecfg, |meta, spec| {
        let p = bench::parse_spec(spec).unwrap_or_else(|reason| fatal(format!("coordinator spec: {reason}")));
        if p.spec.kind != bench::CampaignKind::Inject || p.spec.isolate || p.spec.plan.is_some() {
            fatal("distributed executors run plain fixed-count injection specs only".into());
        }
        if p.spec.benchmark != meta.benchmark || p.spec.seed != meta.seed || p.spec.trials != meta.trials {
            fatal("coordinator spec disagrees with its campaign meta".into());
        }
        let (b, size, label) = (p.benchmark, p.size, p.benchmark.label());
        let ccfg = p.campaign_config();
        let g = golden(b, size);
        // Same execution path as the single-host stored runner: pooled
        // targets, `execute_trial` keyed by global index, records serialized
        // with the identical serializer — the byte-identity contract.
        let pool = carolfi::TargetPool::new(move || build(b, size));
        let total_steps = {
            let probe = pool.acquire();
            let steps = probe.total_steps().max(1);
            pool.release(probe, false);
            steps
        };
        move |global: u64| {
            let mut target = pool.acquire();
            let (record, _) =
                carolfi::campaign::execute_trial(label, &mut target, &g, &ccfg, total_steps, global as usize);
            pool.release(target, record.outcome.is_due());
            serde_json::to_string(&record).expect("trial records serialize")
        }
    })
    .unwrap_or_else(|e| fatal(format!("{e}")));
    eprintln!(
        "phi-coord: executor {name} done: {} computed, {} served from local journal, {} streamed over {} leases",
        summary.computed, summary.served_local, summary.streamed, summary.leases
    );
    std::process::exit(0);
}

fn main() {
    let a = parse_args();
    if a.executor {
        run_executor_mode(&a);
    } else {
        run_coordinator_mode(&a);
    }
}
