//! §7 future-work validation: run the *same* injection campaign against the
//! plain benchmarks and against their DWC-control-hardened versions, and
//! measure what the mitigation buys.
//!
//! Expected effect (and what the §6 analysis predicts): control-variable
//! faults that previously caused SDCs, wild crashes or watchdog timeouts
//! become immediate, attributable *detections* (DUEs with a DWC message —
//! recoverable by checkpoint/restart); data-class faults are untouched, so
//! the SDC rate drops by roughly the control class's SDC share while the
//! masked fraction stays put.

use carolfi::record::{DueKind, OutcomeRecord};
use carolfi::{run_campaign, Campaign, CampaignConfig};
use kernels::{build, golden, Benchmark, SizeClass};
use mitigation::dwc_target::{DwcControls, DWC_DETECTION};
use sdc_analysis::pvf::OutcomeBreakdown;

fn summarise(c: &Campaign) -> (f64, f64, f64, f64) {
    let bd = OutcomeBreakdown::of(&c.records);
    let detected = c
        .records
        .iter()
        .filter(|r| matches!(&r.outcome, OutcomeRecord::Due(DueKind::Crash { message }) if message.contains(DWC_DETECTION)))
        .count();
    (bd.masked_pct(), bd.sdc_pct(), bd.due_pct(), 100.0 * detected as f64 / bd.trials as f64)
}

fn control_sdc_share(c: &Campaign) -> f64 {
    let ctrl_sdc = c
        .records
        .iter()
        .filter(|r| {
            r.outcome.is_sdc()
                && r.injection.as_ref().map(|i| i.var_class == carolfi::target::VarClass::ControlVariable).unwrap_or(false)
        })
        .count();
    100.0 * ctrl_sdc as f64 / c.records.len() as f64
}

fn main() {
    let trials: usize = std::env::var("PHI_TRIALS").ok().and_then(|v| v.parse().ok()).unwrap_or(2500);
    let size = SizeClass::Small;
    println!("Hardening validation — DWC on control variables (paper §6 recommendation, §7 future work)");
    println!("trials/benchmark = {trials}\n");
    println!(
        "{:9} {:>9} {:>7} {:>7} {:>7} {:>10} | {:>7} {:>7} {:>7} {:>10}",
        "bench", "variant", "masked", "SDC", "DUE", "detected", "masked", "SDC", "DUE", "detected"
    );
    bench::rule(100);
    for b in [Benchmark::Dgemm, Benchmark::Lud, Benchmark::Hotspot] {
        let g = golden(b, size);
        let cfg = CampaignConfig { trials, seed: 77, n_windows: b.n_windows(), ..Default::default() };
        let plain = run_campaign(b.label(), || build(b, size), &g, &cfg);
        let hardened = run_campaign(b.label(), || DwcControls::new(build(b, size)), &g, &cfg);
        let (pm, ps, pd, pdet) = summarise(&plain);
        let (hm, hs, hd, hdet) = summarise(&hardened);
        println!(
            "{:9} plain → DWC: {:6.1} {:6.1} {:6.1} {:9.1}% | {:6.1} {:6.1} {:6.1} {:9.1}%",
            b.label(),
            pm,
            ps,
            pd,
            pdet,
            hm,
            hs,
            hd,
            hdet
        );
        println!(
            "{:9}   control-SDC contribution: {:4.1}% → {:4.1}%",
            "",
            control_sdc_share(&plain),
            control_sdc_share(&hardened)
        );
    }
    bench::rule(100);
    println!("\nReading: the hardened column's 'detected' DUEs carry the DWC signature and are");
    println!("recoverable by restart; the control class's silent-corruption contribution collapses");
    println!("to zero. Note the over-detection cost: DWC cannot tell live control state from dead");
    println!("cursors, so faults that would have been masked also trip the comparator — the");
    println!("classic detection-vs-availability trade-off selective hardening navigates.");
}
