//! `phi-top` — live status viewer for a running campaign.
//!
//! Connects to the Unix socket a figure binary opened with
//! `--monitor <socket>` and renders its [`StatusSnapshot`] stream as a
//! per-shard progress table (done/total, trials/s, ETA, outcome mix, warden
//! worker health), refreshing in place like `top`. Alternatively reads the
//! durable `heartbeat.json` a store-backed run leaves behind (`--file`),
//! which also works post-mortem on a SIGKILLed campaign.
//!
//! ```text
//! phi-top <socket> [--interval <ms>]   # live, refreshing table
//! phi-top <socket> --once [--json]     # one snapshot, table or raw JSON
//! phi-top --file <heartbeat.json> [--once] [--json]
//! ```
//!
//! Exits 0 when the campaign reports `finished` (or a live `--once`
//! snapshot shows a started campaign), 1 on connection or parse failures,
//! 2 on usage errors, 4 when a `--once` snapshot is still `pending` (no
//! campaign has begun) — scripts polling `--once` can trust a zero exit to
//! mean real progress data, never an empty table.

use carolfi::monitor::{MonitorRequest, StatusSnapshot};
use carolfi::warden::{read_frame_blocking, write_frame};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

struct TopArgs {
    socket: Option<PathBuf>,
    file: Option<PathBuf>,
    once: bool,
    json: bool,
    interval_ms: u64,
}

fn usage() -> ! {
    eprintln!("usage: phi-top <socket> [--once] [--json] [--interval <ms>]");
    eprintln!("       phi-top --file <heartbeat.json> [--once] [--json] [--interval <ms>]");
    std::process::exit(2);
}

fn parse_args() -> TopArgs {
    let mut out = TopArgs { socket: None, file: None, once: false, json: false, interval_ms: 500 };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => out.once = true,
            "--json" => out.json = true,
            "--file" => match it.next() {
                Some(p) => out.file = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--interval" => match it.next().and_then(|raw| raw.trim().parse::<u64>().ok()) {
                Some(ms) if ms > 0 => out.interval_ms = ms,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && out.socket.is_none() => out.socket = Some(PathBuf::from(other)),
            _ => usage(),
        }
    }
    if out.socket.is_some() == out.file.is_some() {
        usage(); // exactly one source
    }
    out
}

fn fatal(msg: String) -> ! {
    eprintln!("phi-top: {msg}");
    std::process::exit(1);
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 3600.0 {
        format!("{:.0}h{:02.0}m", (secs / 3600.0).floor(), (secs % 3600.0) / 60.0)
    } else if secs >= 60.0 {
        format!("{:.0}m{:02.0}s", (secs / 60.0).floor(), secs % 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn render(s: &StatusSnapshot, clear: bool) {
    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H"); // clear screen, home cursor
    }
    let state = if s.finished {
        "finished"
    } else if s.kind == "pending" {
        "starting"
    } else {
        "running"
    };
    let title = if s.label.is_empty() { s.kind.clone() } else { format!("{} {}", s.label, s.kind) };
    out.push_str(&format!("phi-top — {title} campaign  pid {}  [{state}]\n", s.pid));
    let pct = if s.total > 0 { 100.0 * s.done as f64 / s.total as f64 } else { 0.0 };
    let eta = s.eta_secs.map_or_else(|| "—".to_string(), fmt_secs);
    out.push_str(&format!(
        "  progress  {}/{} ({pct:.1}%)   rate {:.1} trials/s   eta {eta}   elapsed {}\n",
        s.done,
        s.total,
        s.trials_per_sec,
        fmt_secs(s.elapsed_secs)
    ));
    if s.prior > 0 {
        out.push_str(&format!("  resumed   {} trials were already journaled at startup\n", s.prior));
    }
    out.push_str(&format!(
        "  mix       masked {}   hw-masked {}   sdc {}   due {}\n",
        s.mix.masked, s.mix.hw_masked, s.mix.sdc, s.mix.due
    ));
    out.push_str(&format!("  pool      hits {}   rebuilds {}\n", s.pool_hits, s.pool_rebuilds));
    if let Some(p) = &s.planner {
        out.push_str(&format!(
            "  planner   strata {}/{} open   widest ci {:.4}   batches {}\n",
            p.strata_open, p.strata_total, p.widest_ci, p.batches
        ));
    }
    if let Some(d) = &s.dist {
        out.push_str(&format!(
            "  dist      executors {}   leases {} active / {} granted / {} expired   merged {}   dups {}\n",
            d.executors, d.leases_active, d.leases_granted, d.leases_expired, d.merged_trials, d.dup_trials
        ));
    }
    let w = &s.workers;
    out.push_str(&format!(
        "  workers   spawned {}   killed {}   retries {}   quarantined {}   metric-frames {}\n",
        w.spawned, w.killed, w.retries, w.quarantined, w.metric_frames
    ));
    if !s.shards.is_empty() {
        out.push_str(&format!("\n  {:>5} {:>10} {:>10} {:>7}  {}\n", "shard", "done", "total", "pct", "state"));
        for sh in &s.shards {
            let pct = if sh.total > 0 { 100.0 * sh.done as f64 / sh.total as f64 } else { 100.0 };
            let state = if sh.sealed {
                "sealed"
            } else if sh.done > 0 {
                "active"
            } else {
                "queued"
            };
            out.push_str(&format!("  {:>5} {:>10} {:>10} {:>6.1}%  {}\n", sh.shard, sh.done, sh.total, pct, state));
        }
    }
    if !s.spans.is_empty() {
        out.push_str(&format!(
            "\n  {:<22} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "p50", "p95", "p99"
        ));
        for sp in &s.spans {
            out.push_str(&format!(
                "  {:<22} {:>10} {:>10} {:>10} {:>10}\n",
                sp.name,
                sp.count,
                fmt_ns(sp.p50_ns),
                fmt_ns(sp.p95_ns),
                fmt_ns(sp.p99_ns)
            ));
        }
    }
    print!("{out}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
}

/// Exit code for a `--once` snapshot taken before any campaign started.
const EXIT_PENDING: i32 = 4;

/// Under `--once`, a `pending` snapshot would render an all-zero table
/// that scripts could mistake for a finished-instantly campaign; emit it
/// (JSON consumers still get the frame) but exit non-zero with a
/// diagnostic.
fn reject_pending_once(s: &StatusSnapshot, args: &TopArgs) {
    if args.once && s.kind == "pending" && !s.finished {
        emit(s, args, false);
        eprintln!("phi-top: no campaign has started yet (snapshot is pending); retry --once later or stream instead");
        std::process::exit(EXIT_PENDING);
    }
}

fn emit(s: &StatusSnapshot, args: &TopArgs, clear: bool) {
    if args.json {
        match serde_json::to_string(s) {
            Ok(json) => println!("{json}"),
            Err(e) => fatal(format!("serialize snapshot: {e}")),
        }
    } else {
        render(s, clear);
    }
}

fn read_heartbeat(path: &std::path::Path) -> StatusSnapshot {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| fatal(format!("read {}: {e}", path.display())));
    serde_json::from_str(&raw).unwrap_or_else(|e| fatal(format!("parse {}: {e}", path.display())))
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.file {
        loop {
            let snap = read_heartbeat(path);
            let done = snap.finished;
            reject_pending_once(&snap, &args);
            emit(&snap, &args, !args.once && !args.json);
            if args.once || done {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
        }
    }

    let socket = args.socket.as_ref().expect("parse_args guarantees a source");
    let mut stream =
        UnixStream::connect(socket).unwrap_or_else(|e| fatal(format!("connect {}: {e}", socket.display())));
    let request = if args.once {
        MonitorRequest::Snapshot
    } else {
        MonitorRequest::Subscribe { interval_ms: args.interval_ms }
    };
    if let Err(e) = write_frame(&mut stream, &request) {
        fatal(format!("send request: {e}"));
    }
    loop {
        let snap: StatusSnapshot = match read_frame_blocking(&mut stream) {
            Ok(s) => s,
            Err(e) if args.once => fatal(format!("read snapshot: {e}")),
            // A dropped subscription stream means the campaign process
            // exited; that is the normal end of a live session.
            Err(_) => return,
        };
        let done = snap.finished;
        reject_pending_once(&snap, &args);
        emit(&snap, &args, !args.once && !args.json);
        if args.once || done {
            return;
        }
    }
}
