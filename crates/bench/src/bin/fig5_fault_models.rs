//! Figures 5a/5b — "The PVF of the benchmarks for the different fault
//! models."
//!
//! Per benchmark and per fault model (Single, Double, Random, Zero), the SDC
//! and DUE Program Vulnerability Factors of the injection campaign.

use bench::{injection_records_stored, pvf_row, rule};
use carolfi::models::FaultModel;
use carolfi::record::TrialRecord;
use kernels::Benchmark;
use sdc_analysis::pvf::PvfKind;

fn print_table(kind: PvfKind, corpus: &[(Benchmark, Vec<TrialRecord>)]) {
    let title = match kind {
        PvfKind::Sdc => "Figure 5a — SDC PVF per fault model [%]",
        PvfKind::Due => "Figure 5b — DUE PVF per fault model [%]",
    };
    println!("{title}");
    print!("{:9}", "bench");
    for m in FaultModel::ALL {
        print!(" {:>8}", m.label());
    }
    println!();
    rule(9 + 9 * 4);
    for (b, records) in corpus {
        // The same row the campaign service persists in its result
        // documents — byte-comparable by construction.
        println!("{}", pvf_row(b.label(), records, kind));
    }
    rule(9 + 9 * 4);
    println!();
}

fn main() {
    let bench::Figure { cfg, store, telemetry } = bench::figure_setup();
    println!("Figures 5a/5b reproduction — fault-model PVFs");
    println!("trials/benchmark = {}, size = {:?}, seed = {}\n", cfg.trials, cfg.size, cfg.seed);
    // One campaign per benchmark, shared by both tables and the telemetry
    // footer (a journal-backed campaign can only be opened once per run).
    let corpus: Vec<(Benchmark, Vec<TrialRecord>)> =
        Benchmark::ALL.into_iter().map(|b| (b, injection_records_stored(b, &cfg, &store))).collect();
    print_table(PvfKind::Sdc, &corpus);
    print_table(PvfKind::Due, &corpus);
    println!("Paper shape targets: Zero model yields the lowest DUE everywhere (zeroed values are");
    println!("valid pointers/indices); DGEMM & LUD (algebraic class) show similar model profiles;");
    println!("NW: Zero ⇒ (almost) no SDCs, Single the highest SDC, Double/Random the highest DUE.");

    if telemetry.is_some() {
        println!();
        for (b, records) in &corpus {
            // Cached records carry no timing; the report still gives the
            // per-model outcome counts behind the PVF tables.
            print!("{}", carolfi::campaign::report_for(b.label(), records, 0, 0, 0));
        }
    }
    bench::print_telemetry(telemetry);
}
