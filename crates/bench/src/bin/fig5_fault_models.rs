//! Figures 5a/5b — "The PVF of the benchmarks for the different fault
//! models."
//!
//! Per benchmark and per fault model (Single, Double, Random, Zero), the SDC
//! and DUE Program Vulnerability Factors of the injection campaign.

use bench::{injection_records, rule, RunConfig};
use carolfi::models::FaultModel;
use kernels::Benchmark;
use sdc_analysis::pvf::{by_model, PvfKind};

fn print_table(kind: PvfKind, cfg: &RunConfig) {
    let title = match kind {
        PvfKind::Sdc => "Figure 5a — SDC PVF per fault model [%]",
        PvfKind::Due => "Figure 5b — DUE PVF per fault model [%]",
    };
    println!("{title}");
    print!("{:9}", "bench");
    for m in FaultModel::ALL {
        print!(" {:>8}", m.label());
    }
    println!();
    rule(9 + 9 * 4);
    for b in Benchmark::ALL {
        let records = injection_records(b, cfg);
        let table = by_model(&records, kind);
        print!("{:9}", b.label());
        for m in FaultModel::ALL {
            let pct = table.get(m).map(|p| p.percent()).unwrap_or(0.0);
            print!(" {:8.1}", pct);
        }
        println!();
    }
    rule(9 + 9 * 4);
    println!();
}

fn main() {
    let telemetry = bench::telemetry_from_args();
    let cfg = RunConfig::from_env();
    println!("Figures 5a/5b reproduction — fault-model PVFs");
    println!("trials/benchmark = {}, size = {:?}, seed = {}\n", cfg.trials, cfg.size, cfg.seed);
    print_table(PvfKind::Sdc, &cfg);
    print_table(PvfKind::Due, &cfg);
    println!("Paper shape targets: Zero model yields the lowest DUE everywhere (zeroed values are");
    println!("valid pointers/indices); DGEMM & LUD (algebraic class) show similar model profiles;");
    println!("NW: Zero ⇒ (almost) no SDCs, Single the highest SDC, Double/Random the highest DUE.");

    if telemetry.is_some() {
        println!();
        for b in Benchmark::ALL {
            // Cached records carry no timing; the report still gives the
            // per-model outcome counts behind the PVF tables.
            let records = injection_records(b, &cfg);
            print!("{}", carolfi::campaign::report_for(b.label(), &records, 0, 0, 0));
        }
    }
    bench::print_telemetry(telemetry);
}
