//! Figures 6a/6b — "The dependence of the PVF of the benchmarks on the
//! execution time window."
//!
//! Per benchmark, the SDC/DUE PVF of each execution-time window (CLAMR: 9
//! windows; DGEMM & HotSpot: 5; LUD & NW: 4 — paper §6). As the paper notes,
//! these are per-window PVFs, not contributions, so rows can sum past 100%.

use bench::{injection_records_stored, rule};
use carolfi::record::TrialRecord;
use kernels::Benchmark;
use sdc_analysis::pvf::{by_window, PvfKind};

/// The benchmarks shown in the paper's Fig. 6 (LavaMD is not plotted).
const FIG6: [Benchmark; 5] = [Benchmark::Clamr, Benchmark::Dgemm, Benchmark::Hotspot, Benchmark::Lud, Benchmark::Nw];

fn print_table(kind: PvfKind, corpus: &[(Benchmark, Vec<TrialRecord>)]) {
    let title = match kind {
        PvfKind::Sdc => "Figure 6a — SDC PVF per execution-time window [%]",
        PvfKind::Due => "Figure 6b — DUE PVF per execution-time window [%]",
    };
    println!("{title}");
    println!("{:9} w1 .. wN", "bench");
    rule(88);
    for (b, records) in corpus {
        let table = by_window(records, kind);
        let cells: Vec<String> = (0..b.n_windows())
            .map(|w| table.get(w).map(|p| format!("{:5.1}", p.percent())).unwrap_or_else(|| "    -".into()))
            .collect();
        println!("{:9} {}", b.label(), cells.join(" "));
    }
    rule(88);
    println!();
}

fn main() {
    let bench::Figure { cfg, store, telemetry } = bench::figure_setup();
    println!("Figures 6a/6b reproduction — time-window PVFs");
    println!("trials/benchmark = {}, size = {:?}, seed = {}\n", cfg.trials, cfg.size, cfg.seed);
    // One campaign per benchmark, shared by both tables (a journal-backed
    // campaign can only be opened once per run).
    let corpus: Vec<(Benchmark, Vec<TrialRecord>)> =
        FIG6.into_iter().map(|b| (b, injection_records_stored(b, &cfg, &store))).collect();
    print_table(PvfKind::Sdc, &corpus);
    print_table(PvfKind::Due, &corpus);
    println!("Paper shape targets: DGEMM SDC flat across windows with DUE lower at the start;");
    println!("CLAMR most sensitive around window 3 (active-cell maximum); LUD most critical");
    println!("mid-run; NW DUE lower in the first window while the wavefront is still small.");
    bench::print_telemetry(telemetry);
}
