//! Calibration diagnostics: per-class and per-model PVFs per benchmark.
use carolfi::{run_campaign, CampaignConfig};
use kernels::{build, golden, Benchmark, SizeClass};
use sdc_analysis::pvf::{self, OutcomeBreakdown, PvfKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let size = SizeClass::Small;
    for b in Benchmark::ALL {
        let g = golden(b, size);
        let cfg = CampaignConfig { trials, seed: 42, n_windows: b.n_windows(), ..Default::default() };
        let c = run_campaign(b.label(), || build(b, size), &g, &cfg);
        let bd = OutcomeBreakdown::of(&c.records);
        println!("=== {} masked={:.1}% sdc={:.1}% due={:.1}%", b, bd.masked_pct(), bd.sdc_pct(), bd.due_pct());
        let sdc_c = pvf::by_class(&c.records, PvfKind::Sdc);
        let due_c = pvf::by_class(&c.records, PvfKind::Due);
        for (class, p) in &sdc_c.groups {
            let d = due_c.get(*class).map(|p| p.percent()).unwrap_or(0.0);
            println!("   class {:12} n={:5} sdc={:5.1}% due={:5.1}%", class.label(), p.trials, p.percent(), d);
        }
        let sdc_m = pvf::by_model(&c.records, PvfKind::Sdc);
        let due_m = pvf::by_model(&c.records, PvfKind::Due);
        for (m, p) in &sdc_m.groups {
            let d = due_m.get(*m).map(|p| p.percent()).unwrap_or(0.0);
            println!("   model {:12} n={:5} sdc={:5.1}% due={:5.1}%", m.label(), p.trials, p.percent(), d);
        }
        let sdc_w = pvf::by_window(&c.records, PvfKind::Sdc);
        let due_w = pvf::by_window(&c.records, PvfKind::Due);
        let ws: Vec<String> = sdc_w.groups.iter().map(|(w, p)| {
            let d = due_w.get(*w).map(|p| p.percent()).unwrap_or(0.0);
            format!("w{w}:{:.0}/{:.0}", p.percent(), d)
        }).collect();
        println!("   windows sdc/due: {}", ws.join(" "));
    }
}
