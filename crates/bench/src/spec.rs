//! Campaign specs — the single source of truth for campaign construction.
//!
//! A [`CampaignSpec`] is the JSON document `phi-serve` accepts over the
//! wire, and the figure binaries build the *same* struct from their
//! `PHI_*` env + store flags before running: every execution path
//! (in-process, `--isolate`, daemon slice) derives its `CampaignConfig` /
//! `BeamConfig` / `IsolateConfig` / `StoreConfig` from one
//! [`ParsedSpec`], which is what makes the daemon's byte-identity
//! guarantee a structural property instead of a test-enforced hope.
//!
//! ## Wire versioning
//!
//! The spec wire format is versioned (DESIGN.md §12.3). A document without
//! a `version` key is version 1 — the original fixed-trial-count format,
//! which still parses and serializes byte-for-byte unchanged. Version 2
//! adds the optional `plan` block configuring the adaptive stratified
//! planner ([`PlanSpec`]); unknown versions are rejected at admission with
//! a reason naming the supported set. This module is the *only* place spec
//! JSON is parsed or emitted — `phi-cli`, `phi-serve` and the figure
//! binaries all route through [`parse_spec`] / [`validate_spec`].
//!
//! [`spec_result`] renders the deterministic result document (outcome
//! counts, fig5-style PVF rows, tolerance analysis, a CRC over the
//! serialized records); [`render_result`] recomputes it offline from any
//! journal directory — including adaptive decision-ordered journals — so
//! `phi-cli render <dir>` of a direct figure-binary run byte-compares
//! against the daemon's `result.json`.

use crate::{RunConfig, StoreArgs, WorkerSpec};
use beamsim::{run_beam_campaign_isolated, run_beam_campaign_stored, BeamCampaign, BeamConfig};
use carolfi::models::FaultModel;
use carolfi::orchestrator::{StoreConfig, StoredRun};
use carolfi::record::TrialRecord;
use carolfi::{run_campaign_adaptive, run_campaign_isolated, run_campaign_stored, CampaignConfig, IsolateConfig};
use kernels::{build, golden, Benchmark, SizeClass};
use sdc_analysis::planner::{CiMethod, WilsonPlanner, DEFAULT_BATCH};
use sdc_analysis::pvf::{by_model, PvfKind};
use serde::__private::{as_map, field, field_content, to_content, Content, ContentError, FromContent};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The two campaign families a spec can describe. Serializes to the
/// original wire strings (`"inject"` / `"beam"`), so the enum is invisible
/// on the wire — it only replaces the stringly-typed dispatch in code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// CAROL-FI fault injection.
    Inject,
    /// Beam-strike simulation.
    Beam,
}

impl CampaignKind {
    /// The wire/cache/journal tag of this kind.
    pub fn label(self) -> &'static str {
        match self {
            CampaignKind::Inject => "inject",
            CampaignKind::Beam => "beam",
        }
    }

    /// Resolves a wire tag; `None` for anything but `inject`/`beam`.
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "inject" => Some(CampaignKind::Inject),
            "beam" => Some(CampaignKind::Beam),
            _ => None,
        }
    }
}

impl Serialize for CampaignKind {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.label())
    }
}

impl FromContent for CampaignKind {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        let label = String::from_content(c)?;
        CampaignKind::from_label(&label)
            .ok_or_else(|| ContentError::msg(&format!("kind: expected \"inject\" or \"beam\", got {label:?}")))
    }
}

impl<'de> Deserialize<'de> for CampaignKind {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.content()?;
        CampaignKind::from_content(&c).map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// Adaptive-planner configuration — the `plan` block of a version-2 spec.
///
/// Present ⇒ the campaign runs under the widest-CI-first stratified
/// planner ([`WilsonPlanner`]) instead of executing the full fixed trial
/// count: `trials` becomes the *horizon* (upper bound), and the campaign
/// stops early once every (fault model × time window) stratum's 95 %
/// Wilson interval per outcome class is narrower than `ci`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Target full CI width per stratum per outcome class, in (0, 1).
    pub ci: f64,
    /// Trials per allocation decision (default [`DEFAULT_BATCH`]).
    pub batch: usize,
    /// Interval method the stopping rule measures (default Wilson;
    /// `clopper-pearson` for the conservative exact interval). Omitted
    /// from the wire when Wilson, so pre-existing v2 specs round-trip
    /// byte-identically.
    pub method: CiMethod,
}

impl Serialize for PlanSpec {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut m = vec![
            ("ci".to_string(), Content::F64(self.ci)),
            ("batch".to_string(), Content::U64(self.batch as u64)),
        ];
        if self.method != CiMethod::Wilson {
            m.push(("method".to_string(), Content::Str(self.method.label().to_string())));
        }
        s.serialize_content(Content::Map(m))
    }
}

impl FromContent for PlanSpec {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        let m = as_map(c).map_err(|e| ContentError::msg(&format!("plan: {e}")))?;
        let ci: f64 = field(m, "ci").map_err(|e| ContentError::msg(&format!("plan: {e}")))?;
        let batch = match field_content(m, "batch") {
            Ok(v) => usize::from_content(v).map_err(|e| ContentError::msg(&format!("plan: field \"batch\": {e}")))?,
            Err(_) => DEFAULT_BATCH,
        };
        let method = match field_content(m, "method") {
            Ok(v) => {
                let label = String::from_content(v).map_err(|e| ContentError::msg(&format!("plan: field \"method\": {e}")))?;
                CiMethod::parse(&label)
                    .ok_or_else(|| ContentError::msg(&format!("plan.method: expected wilson or clopper-pearson, got {label:?}")))?
            }
            Err(_) => CiMethod::Wilson,
        };
        Ok(PlanSpec { ci, batch, method })
    }
}

impl<'de> Deserialize<'de> for PlanSpec {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.content()?;
        PlanSpec::from_content(&c).map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// One campaign, fully specified. This is the daemon's wire spec and the
/// figure binaries' internal campaign description; see the module docs.
///
/// All version-1 fields are required on the wire; `phi-cli submit` fills
/// defaults client-side from the same `PHI_*` env the figure binaries
/// read. `version` and `plan` are the version-2 extensions: both are
/// omitted from serialized version-1 specs, so a v1 document round-trips
/// byte-identically through this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    pub kind: CampaignKind,
    /// Wire-format version; absent on the wire ⇒ 1. [`validate_spec`]
    /// rejects anything outside the supported set {1, 2} with a reason.
    pub version: u32,
    /// Benchmark label (see [`Benchmark::from_label`]).
    pub benchmark: String,
    /// Trials (injection) or strikes (beam); under an adaptive `plan` this
    /// is the horizon — the planner may stop well short of it.
    pub trials: usize,
    pub seed: u64,
    /// Size-class tag: `test`, `small` or `paper`.
    pub size: String,
    /// Journal shard count (aggregates are bit-identical for any value).
    /// Adaptive campaigns journal single-sharded regardless.
    pub shards: usize,
    /// Run every trial in a supervised child process.
    pub isolate: bool,
    /// Fault-model subset by label (`single`/`double`/`random`/`zero`);
    /// empty = all four. Injection only, incompatible with `isolate`.
    pub models: Vec<String>,
    /// SDC relative-error tolerance for the result document's
    /// `sdc_beyond_tolerance` count (0 = every SDC counts).
    pub tolerance: f64,
    /// Adaptive-planner block (version 2 only).
    pub plan: Option<PlanSpec>,
}

impl Serialize for CampaignSpec {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        // Hand-rolled so the version-1 byte layout is preserved exactly:
        // the original field order, no `version` key for v1, and `plan`
        // only when present.
        let err = <S::Error as serde::ser::Error>::custom;
        let mut m: Vec<(String, Content)> = Vec::with_capacity(11);
        m.push(("kind".into(), to_content(&self.kind).map_err(err)?));
        if self.version != 1 {
            m.push(("version".into(), Content::U64(self.version as u64)));
        }
        m.push(("benchmark".into(), Content::Str(self.benchmark.clone())));
        m.push(("trials".into(), Content::U64(self.trials as u64)));
        m.push(("seed".into(), Content::U64(self.seed)));
        m.push(("size".into(), Content::Str(self.size.clone())));
        m.push(("shards".into(), Content::U64(self.shards as u64)));
        m.push(("isolate".into(), Content::Bool(self.isolate)));
        m.push(("models".into(), to_content(&self.models).map_err(err)?));
        m.push(("tolerance".into(), Content::F64(self.tolerance)));
        if let Some(plan) = &self.plan {
            m.push(("plan".into(), to_content(plan).map_err(err)?));
        }
        s.serialize_content(Content::Map(m))
    }
}

impl FromContent for CampaignSpec {
    fn from_content(c: &Content) -> Result<Self, ContentError> {
        let m = as_map(c)?;
        // `version` is carried through as-parsed; range-checking it is
        // validate_spec's job, so the rejection reason reaches clients
        // verbatim instead of wrapped in a parse diagnostic.
        let version = match field_content(m, "version") {
            Ok(v) => u32::from_content(v).map_err(|e| ContentError::msg(&format!("field \"version\": {e}")))?,
            Err(_) => 1,
        };
        let plan = match field_content(m, "plan") {
            Ok(Content::Null) => None,
            Ok(v) => Some(PlanSpec::from_content(v)?),
            Err(_) => None,
        };
        Ok(CampaignSpec {
            kind: field(m, "kind")?,
            version,
            benchmark: field(m, "benchmark")?,
            trials: field(m, "trials")?,
            seed: field(m, "seed")?,
            size: field(m, "size")?,
            shards: field(m, "shards")?,
            isolate: field(m, "isolate")?,
            models: field(m, "models")?,
            tolerance: field(m, "tolerance")?,
            plan,
        })
    }
}

impl<'de> Deserialize<'de> for CampaignSpec {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.content()?;
        CampaignSpec::from_content(&c).map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// Builds the spec a figure binary's env + flags describe — the shared
/// constructor `phi-cli submit` and the stored-run helpers both use.
/// `--adaptive`/`--ci` flags become a version-2 `plan` block; without them
/// the spec is version 1, bit-identical to what earlier releases emitted.
pub fn campaign_spec(kind: CampaignKind, b: Benchmark, cfg: &RunConfig, store: &StoreArgs) -> CampaignSpec {
    let plan = store.adaptive.then_some(PlanSpec { ci: store.ci, batch: DEFAULT_BATCH, method: store.ci_method });
    CampaignSpec {
        kind,
        version: if plan.is_some() { 2 } else { 1 },
        benchmark: b.label().to_string(),
        trials: if kind == CampaignKind::Beam { cfg.strikes } else { cfg.trials },
        seed: cfg.seed,
        size: cfg.size_tag().to_string(),
        shards: store.shards,
        isolate: store.isolate,
        models: Vec::new(),
        tolerance: 0.0,
        plan,
    }
}

/// A validated spec with its labels resolved against the registries.
#[derive(Debug)]
pub struct ParsedSpec {
    pub spec: CampaignSpec,
    pub benchmark: Benchmark,
    pub size: SizeClass,
    /// Resolved model subset; the full set when `spec.models` is empty.
    pub models: Vec<FaultModel>,
}

fn model_from_label(label: &str) -> Option<FaultModel> {
    FaultModel::ALL.into_iter().find(|m| m.label() == label)
}

/// Parses and validates a JSON spec; `Err` is a client-facing reason.
pub fn parse_spec(json: &str) -> Result<ParsedSpec, String> {
    let spec: CampaignSpec = serde_json::from_str(json).map_err(|e| format!("malformed spec JSON: {e}"))?;
    validate_spec(spec)
}

/// Validates an already-decoded spec.
pub fn validate_spec(spec: CampaignSpec) -> Result<ParsedSpec, String> {
    if spec.version != 1 && spec.version != 2 {
        return Err(format!("unsupported spec version {} (supported: 1, 2; absent = 1)", spec.version));
    }
    let Some(benchmark) = Benchmark::from_label(&spec.benchmark) else {
        return Err(format!("benchmark: unknown label {:?}", spec.benchmark));
    };
    let size = match spec.size.as_str() {
        "test" => SizeClass::Test,
        "small" => SizeClass::Small,
        "paper" => SizeClass::Paper,
        other => return Err(format!("size: expected test, small or paper, got {other:?}")),
    };
    if spec.trials == 0 {
        return Err("trials: must be at least 1".into());
    }
    if spec.shards == 0 {
        return Err("shards: must be at least 1".into());
    }
    if !(spec.tolerance.is_finite() && spec.tolerance >= 0.0) {
        return Err(format!("tolerance: must be a finite non-negative number, got {}", spec.tolerance));
    }
    if let Some(plan) = &spec.plan {
        if spec.version < 2 {
            return Err("plan: adaptive planning requires spec version 2".into());
        }
        if spec.kind == CampaignKind::Beam {
            return Err("plan: adaptive planning stratifies by fault model; it applies to inject only".into());
        }
        if spec.isolate {
            return Err("plan: adaptive planning is not supported together with isolate".into());
        }
        if !spec.models.is_empty() {
            // The adaptive journal's offline reader re-derives strata from
            // the journal meta alone, which does not carry a model subset.
            return Err("plan: adaptive planning is not supported together with a models subset".into());
        }
        if !(plan.ci.is_finite() && plan.ci > 0.0 && plan.ci < 1.0) {
            return Err(format!("plan.ci: target CI width must be in (0, 1), got {}", plan.ci));
        }
        if plan.batch == 0 {
            return Err("plan.batch: must be at least 1".into());
        }
    }
    let models = if spec.models.is_empty() {
        FaultModel::ALL.to_vec()
    } else {
        if spec.kind == CampaignKind::Beam {
            return Err("models: beam campaigns draw their own mechanisms; model subsets apply to inject only".into());
        }
        if spec.isolate {
            // Isolated workers rebuild the default model rotation from the
            // WorkerSpec, which does not carry a subset; refusing beats
            // running a different campaign than the one submitted.
            return Err("models: subsets are not supported together with isolate".into());
        }
        spec.models
            .iter()
            .map(|l| model_from_label(l).ok_or_else(|| format!("models: unknown fault model {l:?}")))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(ParsedSpec { spec, benchmark, size, models })
}

impl ParsedSpec {
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            trials: self.spec.trials,
            models: self.models.clone(),
            seed: self.spec.seed,
            n_windows: self.benchmark.n_windows(),
            ..Default::default()
        }
    }

    pub fn beam_config(&self) -> BeamConfig {
        BeamConfig {
            strikes: self.spec.trials,
            seed: self.spec.seed,
            n_windows: self.benchmark.n_windows(),
            engine: beamsim::campaign::engine_for(self.benchmark.label()),
            ..Default::default()
        }
    }

    /// The version stamped into this campaign's result document: 2 when
    /// the run is adaptive (its journal uses the decision-ordered v2
    /// layout), 1 otherwise. Derived from execution semantics — not the
    /// submitted document's `version` field — so [`render_result`] can
    /// recompute the identical value offline from the journal meta alone.
    pub fn result_version(&self) -> u32 {
        if self.spec.plan.is_some() {
            2
        } else {
            1
        }
    }

    /// Store configuration rooted at `dir`. `resume`/`budget` vary per
    /// invocation (a daemon slice is resume-if-journal-exists plus a slice
    /// budget; a figure binary passes its `--resume`/`--budget` flags).
    pub fn store_config(&self, dir: &Path, resume: bool, budget: Option<usize>) -> StoreConfig {
        let mut sc = StoreConfig::new(dir.to_path_buf());
        sc.shards = self.spec.shards;
        sc.resume = resume;
        sc.budget = budget;
        sc
    }

    /// Isolation settings: re-exec the current executable as a warden
    /// worker carrying this spec's [`WorkerSpec`] identity.
    pub fn isolate_config(&self) -> io::Result<IsolateConfig> {
        let ws = WorkerSpec {
            kind: self.spec.kind.label().to_string(),
            benchmark: self.spec.benchmark.clone(),
            size: self.spec.size.clone(),
            count: self.spec.trials,
            seed: self.spec.seed,
        };
        let ws = serde_json::to_string(&ws).map_err(io::Error::other)?;
        let exe = std::env::current_exe()?;
        let mut iso = IsolateConfig::new(exe, Vec::new(), ws);
        iso.trial_wall =
            std::time::Duration::from_millis(crate::positive_env("PHI_TRIAL_WALL_MS", 30_000) as u64);
        Ok(iso)
    }
}

/// Outcome of executing (a slice of) a spec against a journal directory.
pub enum SpecRun {
    /// Budget exhausted; the journal holds a resumable prefix.
    Paused { completed: u64, total: usize },
    Inject(Vec<TrialRecord>),
    Beam(BeamCampaign),
}

/// Executes a spec against `dir` — the one dispatch point over
/// kind × isolation × planning every caller (figure binaries, daemon
/// slices) shares.
pub fn run_spec(p: &ParsedSpec, dir: &Path, resume: bool, budget: Option<usize>) -> io::Result<SpecRun> {
    let sc = p.store_config(dir, resume, budget);
    let (b, size, label) = (p.benchmark, p.size, p.benchmark.label());
    let paused = |completed, total| SpecRun::Paused { completed, total };
    match p.spec.kind {
        CampaignKind::Beam => {
            let bcfg = p.beam_config();
            let run = if p.spec.isolate {
                let total_steps = build(b, size).total_steps().max(1);
                run_beam_campaign_isolated(label, total_steps, &bcfg, &sc, &p.isolate_config()?)?
            } else {
                let g = {
                    let _span = obs::span!("golden");
                    golden(b, size)
                };
                run_beam_campaign_stored(label, || build(b, size), &g, &bcfg, &sc)?
            };
            Ok(match run {
                StoredRun::Paused { completed, total } => paused(completed, total),
                StoredRun::Complete(c) => SpecRun::Beam(c),
            })
        }
        CampaignKind::Inject => {
            let ccfg = p.campaign_config();
            let run = if let Some(plan) = &p.spec.plan {
                let total_steps = build(b, size).total_steps().max(1);
                let mut planner =
                    WilsonPlanner::for_injection(&ccfg, total_steps, plan.ci, plan.batch).with_method(plan.method);
                let g = {
                    let _span = obs::span!("golden");
                    golden(b, size)
                };
                let run = run_campaign_adaptive(label, || build(b, size), &g, &ccfg, &sc, &mut planner)?;
                if let StoredRun::Complete(c) = &run {
                    // One stderr line per completed adaptive campaign so
                    // humans (and ./ci) can read the early-stopping verdict
                    // without parsing the result document.
                    let r = &c.report;
                    if r.strata_open == 0 {
                        eprintln!(
                            "{label}: adaptive planner closed every stratum at ci <= {} after {} of {} trials",
                            plan.ci,
                            c.records.len(),
                            p.spec.trials
                        );
                    } else {
                        eprintln!(
                            "{label}: adaptive planner exhausted its horizon with {}/{} strata open (widest ci {:.4})",
                            r.strata_open, r.strata_total, r.widest_ci
                        );
                    }
                }
                run
            } else if p.spec.isolate {
                let total_steps = build(b, size).total_steps().max(1);
                run_campaign_isolated(label, total_steps, &ccfg, &sc, &p.isolate_config()?)?
            } else {
                let g = {
                    let _span = obs::span!("golden");
                    golden(b, size)
                };
                run_campaign_stored(label, || build(b, size), &g, &ccfg, &sc)?
            };
            Ok(match run {
                StoredRun::Paused { completed, total } => paused(completed, total),
                StoredRun::Complete(c) => SpecRun::Inject(c.records),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic result documents.

/// One fig5-style PVF row: label column plus one ` {:8.1}` percentage per
/// fault model — shared by `fig5_fault_models` and the result documents so
/// the daemon's aggregates are byte-comparable against figure output.
pub fn pvf_row(label: &str, records: &[TrialRecord], kind: PvfKind) -> String {
    let table = by_model(records, kind);
    let mut row = format!("{label:9}");
    for m in FaultModel::ALL {
        let pct = table.get(m).map(|p| p.percent()).unwrap_or(0.0);
        row.push_str(&format!(" {pct:8.1}"));
    }
    row
}

/// The deterministic aggregate document persisted as a campaign's
/// `result.json`. Field order is fixed by declaration order, so two
/// documents built from identical records serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecResult {
    pub kind: CampaignKind,
    /// Version of the campaign semantics this document was rendered under:
    /// 2 for adaptive (early-stopped, decision-ordered) campaigns, 1 for
    /// fixed-count.
    pub spec_version: u32,
    pub benchmark: String,
    /// Trials actually executed — under an adaptive plan this is where the
    /// planner stopped, not the horizon.
    pub trials: usize,
    pub seed: u64,
    pub masked: u64,
    pub hw_masked: u64,
    pub sdc: u64,
    pub due: u64,
    /// Fig5-style PVF rows ([`pvf_row`]); empty for beam campaigns (their
    /// records carry no injection fault model).
    pub sdc_pvf_row: String,
    pub due_pvf_row: String,
    pub tolerance: f64,
    /// SDCs whose worst per-element relative error exceeds `tolerance`
    /// (paper §5 tolerance analysis; non-finite corruption always counts).
    pub sdc_beyond_tolerance: u64,
    pub records: u64,
    /// CRC-32 over the newline-terminated serialized records in global
    /// trial order (decision order for adaptive campaigns) — the
    /// byte-identity digest of the whole campaign.
    pub records_crc: u32,
}

/// Renders the result document for a completed campaign.
pub fn spec_result(
    kind: CampaignKind,
    spec_version: u32,
    benchmark: &str,
    seed: u64,
    tolerance: f64,
    records: &[TrialRecord],
) -> String {
    let mut masked = 0u64;
    let mut hw_masked = 0u64;
    let mut sdc = 0u64;
    let mut due = 0u64;
    let mut beyond = 0u64;
    let mut bytes = Vec::new();
    for r in records {
        match &r.outcome {
            carolfi::record::OutcomeRecord::Masked => masked += 1,
            carolfi::record::OutcomeRecord::HardwareMasked => hw_masked += 1,
            carolfi::record::OutcomeRecord::Sdc(diff) => {
                sdc += 1;
                if diff.max_rel_err > tolerance || diff.max_rel_err.is_nan() {
                    beyond += 1;
                }
            }
            carolfi::record::OutcomeRecord::Due(_) => due += 1,
        }
        bytes.extend_from_slice(serde_json::to_string(r).expect("trial records serialize").as_bytes());
        bytes.push(b'\n');
    }
    let (sdc_pvf_row, due_pvf_row) = if kind == CampaignKind::Inject {
        (pvf_row(benchmark, records, PvfKind::Sdc), pvf_row(benchmark, records, PvfKind::Due))
    } else {
        (String::new(), String::new())
    };
    let result = SpecResult {
        kind,
        spec_version,
        benchmark: benchmark.to_string(),
        trials: records.len(),
        seed,
        masked,
        hw_masked,
        sdc,
        due,
        sdc_pvf_row,
        due_pvf_row,
        tolerance,
        sdc_beyond_tolerance: beyond,
        records: records.len() as u64,
        records_crc: store::crc32(&bytes),
    };
    serde_json::to_string(&result).expect("spec results serialize")
}

// ---------------------------------------------------------------------------
// Offline journal readers (byte-compare tooling).

/// Reads a complete journal's trial records in global trial order,
/// reconstructed from the shard plan (shard ranges are contiguous; global
/// index = range start + shard-local seq). Adaptive journals
/// (`meta.version ≥ 2`) are single-sharded and decision-ordered: records
/// come back in journal order, complete once the shard is sealed. Errors
/// on incomplete journals.
pub fn journal_records(dir: &Path) -> io::Result<(store::CampaignMeta, Vec<TrialRecord>)> {
    let scan = store::Journal::scan(dir)?;
    let meta = scan
        .meta
        .clone()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("{}: empty journal", dir.display())))?;
    let parse = |payload: &str| -> io::Result<TrialRecord> {
        serde_json::from_str(payload).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: bad trial payload: {e}", dir.display()))
        })
    };
    if meta.version >= store::ADAPTIVE_FORMAT_VERSION {
        // Adaptive campaigns stop early, so the journal's own record
        // sequence — not the horizon in `meta.trials` — defines the
        // campaign; "complete" is the planner's seal, not a trial count.
        let mut records = Vec::new();
        let mut sealed = false;
        for entry in &scan.entries {
            match entry {
                store::JournalEntry::Trial { payload, .. } => records.push(parse(payload)?),
                store::JournalEntry::ShardDone { .. } => sealed = true,
                _ => {}
            }
        }
        if !sealed {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: adaptive journal incomplete ({} trials executed, not sealed)",
                    dir.display(),
                    records.len()
                ),
            ));
        }
        return Ok((meta, records));
    }
    let plan = store::ShardPlan { trials: meta.trials, shards: meta.shards };
    let mut slots: Vec<Option<TrialRecord>> = vec![None; meta.trials];
    for entry in &scan.entries {
        if let store::JournalEntry::Trial { shard, seq, payload } = entry {
            let global = plan.range(*shard).start + *seq as usize;
            if global < slots.len() {
                slots[global] = Some(parse(payload)?);
            }
        }
    }
    let done = slots.iter().filter(|s| s.is_some()).count();
    if done < meta.trials {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: journal incomplete ({done}/{} trials)", dir.display(), meta.trials),
        ));
    }
    Ok((meta, slots.into_iter().map(|s| s.expect("checked complete")).collect()))
}

/// Recomputes the result document from a journal directory — the offline
/// counterpart of what the daemon persists, for byte-comparison. The
/// rendered `spec_version` is derived from the journal format (adaptive
/// v2 journals render as spec version 2), matching what the executing
/// path stamped.
pub fn render_result(dir: &Path, tolerance: f64) -> io::Result<String> {
    let (meta, records) = journal_records(dir)?;
    let kind = CampaignKind::from_label(&meta.kind).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, format!("{}: unknown campaign kind {:?}", dir.display(), meta.kind))
    })?;
    let version = if meta.version >= store::ADAPTIVE_FORMAT_VERSION { 2 } else { 1 };
    Ok(spec_result(kind, version, &meta.benchmark, meta.seed, tolerance, &records))
}

// ---------------------------------------------------------------------------
// The daemon's runner.

/// [`serve::Runner`] over real campaigns: validates specs with
/// [`parse_spec`] and executes slices through [`run_spec`] — the same
/// code path as the figure binaries, which is the byte-identity guarantee.
pub struct SpecRunner;

impl serve::Runner for SpecRunner {
    fn validate(&self, spec: &str) -> Result<serve::SpecInfo, String> {
        let p = parse_spec(spec)?;
        Ok(serve::SpecInfo {
            kind: p.spec.kind.label().to_string(),
            benchmark: p.spec.benchmark.clone(),
            total: p.spec.trials as u64,
        })
    }

    fn run_slice(&self, spec: &str, journal: &Path, budget: usize) -> io::Result<serve::SliceRun> {
        let p = parse_spec(spec).map_err(io::Error::other)?;
        let resume = store::Journal::exists(journal);
        let version = p.result_version();
        match run_spec(&p, journal, resume, Some(budget))? {
            SpecRun::Paused { completed, .. } => Ok(serve::SliceRun::Paused { completed }),
            SpecRun::Inject(records) => Ok(serve::SliceRun::Complete {
                result: spec_result(
                    CampaignKind::Inject,
                    version,
                    &p.spec.benchmark,
                    p.spec.seed,
                    p.spec.tolerance,
                    &records,
                ),
            }),
            SpecRun::Beam(campaign) => Ok(serve::SliceRun::Complete {
                result: spec_result(
                    CampaignKind::Beam,
                    version,
                    &p.spec.benchmark,
                    p.spec.seed,
                    p.spec.tolerance,
                    &campaign.records,
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v1_spec() -> CampaignSpec {
        CampaignSpec {
            kind: CampaignKind::Inject,
            version: 1,
            benchmark: "dgemm".into(),
            trials: 64,
            seed: 2017,
            size: "test".into(),
            shards: 4,
            isolate: false,
            models: Vec::new(),
            tolerance: 0.0,
            plan: None,
        }
    }

    #[test]
    fn v1_wire_format_is_byte_compatible() {
        // The exact document earlier releases emitted: original field
        // order, no version, no plan.
        let json = serde_json::to_string(&v1_spec()).unwrap();
        assert_eq!(
            json,
            "{\"kind\":\"inject\",\"benchmark\":\"dgemm\",\"trials\":64,\"seed\":2017,\
             \"size\":\"test\",\"shards\":4,\"isolate\":false,\"models\":[],\"tolerance\":0.0}"
        );
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v1_spec());
    }

    #[test]
    fn absent_version_means_one() {
        let p = parse_spec(
            "{\"kind\":\"beam\",\"benchmark\":\"dgemm\",\"trials\":8,\"seed\":1,\
             \"size\":\"test\",\"shards\":1,\"isolate\":false,\"models\":[],\"tolerance\":0.0}",
        )
        .unwrap();
        assert_eq!(p.spec.version, 1);
        assert_eq!(p.spec.kind, CampaignKind::Beam);
        assert!(p.spec.plan.is_none());
    }

    #[test]
    fn v2_spec_with_plan_roundtrips() {
        let mut spec = v1_spec();
        spec.version = 2;
        spec.plan = Some(PlanSpec { ci: 0.05, batch: 16, method: CiMethod::Wilson });
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"version\":2"), "{json}");
        assert!(json.contains("\"plan\":{\"ci\":0.05,\"batch\":16}"), "{json}");
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert!(validate_spec(back).is_ok());
    }

    #[test]
    fn plan_method_is_on_the_wire_only_when_not_wilson() {
        // Wilson is the default and stays invisible, so pre-existing v2
        // documents keep their byte layout.
        let mut spec = v1_spec();
        spec.version = 2;
        spec.plan = Some(PlanSpec { ci: 0.05, batch: 16, method: CiMethod::Wilson });
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"plan\":{\"ci\":0.05,\"batch\":16}"), "{json}");

        spec.plan = Some(PlanSpec { ci: 0.05, batch: 16, method: CiMethod::ClopperPearson });
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"plan\":{\"ci\":0.05,\"batch\":16,\"method\":\"clopper-pearson\"}"), "{json}");
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert!(validate_spec(back).is_ok());

        let err = parse_spec(
            "{\"kind\":\"inject\",\"version\":2,\"benchmark\":\"dgemm\",\"trials\":64,\"seed\":1,\
             \"size\":\"test\",\"shards\":1,\"isolate\":false,\"models\":[],\"tolerance\":0.0,\
             \"plan\":{\"ci\":0.1,\"method\":\"exact\"}}",
        )
        .unwrap_err();
        assert!(err.contains("wilson or clopper-pearson"), "{err}");
    }

    #[test]
    fn plan_batch_defaults_when_absent() {
        let p = parse_spec(
            "{\"kind\":\"inject\",\"version\":2,\"benchmark\":\"dgemm\",\"trials\":64,\"seed\":1,\
             \"size\":\"test\",\"shards\":1,\"isolate\":false,\"models\":[],\"tolerance\":0.0,\
             \"plan\":{\"ci\":0.1}}",
        )
        .unwrap();
        assert_eq!(p.spec.plan, Some(PlanSpec { ci: 0.1, batch: DEFAULT_BATCH, method: CiMethod::Wilson }));
    }

    #[test]
    fn unknown_versions_are_rejected_with_a_reason() {
        let mut spec = v1_spec();
        spec.version = 3;
        let err = validate_spec(spec).unwrap_err();
        assert_eq!(err, "unsupported spec version 3 (supported: 1, 2; absent = 1)");
    }

    #[test]
    fn plan_is_rejected_outside_version_2() {
        let mut spec = v1_spec();
        spec.plan = Some(PlanSpec { ci: 0.05, batch: 32, method: CiMethod::Wilson });
        let err = validate_spec(spec).unwrap_err();
        assert!(err.contains("requires spec version 2"), "{err}");
    }

    #[test]
    fn plan_restrictions_are_enforced() {
        let adaptive = |f: fn(&mut CampaignSpec)| {
            let mut spec = v1_spec();
            spec.version = 2;
            spec.plan = Some(PlanSpec { ci: 0.05, batch: 32, method: CiMethod::Wilson });
            f(&mut spec);
            validate_spec(spec).unwrap_err()
        };
        assert!(adaptive(|s| s.kind = CampaignKind::Beam).contains("inject only"));
        assert!(adaptive(|s| s.isolate = true).contains("isolate"));
        assert!(adaptive(|s| s.models = vec!["single".into()]).contains("models subset"));
        assert!(adaptive(|s| s.plan = Some(PlanSpec { ci: 1.5, batch: 32, method: CiMethod::Wilson })).contains("plan.ci"));
        assert!(adaptive(|s| s.plan = Some(PlanSpec { ci: 0.05, batch: 0, method: CiMethod::Wilson })).contains("plan.batch"));
    }

    #[test]
    fn malformed_kind_is_rejected() {
        let err = parse_spec(
            "{\"kind\":\"laser\",\"benchmark\":\"dgemm\",\"trials\":8,\"seed\":1,\
             \"size\":\"test\",\"shards\":1,\"isolate\":false,\"models\":[],\"tolerance\":0.0}",
        )
        .unwrap_err();
        assert!(err.contains("expected \"inject\" or \"beam\""), "{err}");
        assert!(err.contains("laser"), "{err}");
    }

    #[test]
    fn result_documents_carry_the_spec_version() {
        let doc = spec_result(CampaignKind::Inject, 2, "dgemm", 1, 0.0, &[]);
        assert!(doc.starts_with("{\"kind\":\"inject\",\"spec_version\":2,"), "{doc}");
        let back: SpecResult = serde_json::from_str(&doc).unwrap();
        assert_eq!(back.spec_version, 2);
        assert_eq!(back.kind, CampaignKind::Inject);
    }
}
