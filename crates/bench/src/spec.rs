//! Campaign specs — the single source of truth for campaign construction.
//!
//! A [`CampaignSpec`] is the JSON document `phi-serve` accepts over the
//! wire, and the figure binaries build the *same* struct from their
//! `PHI_*` env + store flags before running: every execution path
//! (in-process, `--isolate`, daemon slice) derives its `CampaignConfig` /
//! `BeamConfig` / `IsolateConfig` / `StoreConfig` from one
//! [`ParsedSpec`], which is what makes the daemon's byte-identity
//! guarantee a structural property instead of a test-enforced hope.
//!
//! [`spec_result`] renders the deterministic result document (outcome
//! counts, fig5-style PVF rows, tolerance analysis, a CRC over the
//! serialized records); [`render_result`] recomputes it offline from any
//! journal directory, so `phi-cli render <dir>` of a direct figure-binary
//! run byte-compares against the daemon's `result.json`.

use crate::{RunConfig, StoreArgs, WorkerSpec};
use beamsim::{run_beam_campaign_isolated, run_beam_campaign_stored, BeamCampaign, BeamConfig};
use carolfi::models::FaultModel;
use carolfi::orchestrator::{StoreConfig, StoredRun};
use carolfi::record::TrialRecord;
use carolfi::{run_campaign_isolated, run_campaign_stored, CampaignConfig, IsolateConfig};
use kernels::{build, golden, Benchmark, SizeClass};
use sdc_analysis::pvf::{by_model, PvfKind};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One campaign, fully specified. This is the daemon's wire spec and the
/// figure binaries' internal campaign description; see the module docs.
///
/// All fields are required on the wire (the vendored serde has no
/// `#[serde(default)]`); `phi-cli submit` fills defaults client-side from
/// the same `PHI_*` env the figure binaries read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// `"inject"` (CAROL-FI fault injection) or `"beam"` (strike simulation).
    pub kind: String,
    /// Benchmark label (see [`Benchmark::from_label`]).
    pub benchmark: String,
    /// Trials (injection) or strikes (beam).
    pub trials: usize,
    pub seed: u64,
    /// Size-class tag: `test`, `small` or `paper`.
    pub size: String,
    /// Journal shard count (aggregates are bit-identical for any value).
    pub shards: usize,
    /// Run every trial in a supervised child process.
    pub isolate: bool,
    /// Fault-model subset by label (`single`/`double`/`random`/`zero`);
    /// empty = all four. Injection only, incompatible with `isolate`.
    pub models: Vec<String>,
    /// SDC relative-error tolerance for the result document's
    /// `sdc_beyond_tolerance` count (0 = every SDC counts).
    pub tolerance: f64,
}

/// Builds the spec a figure binary's env + flags describe — the shared
/// constructor `phi-cli submit` and the stored-run helpers both use.
pub fn campaign_spec(kind: &str, b: Benchmark, cfg: &RunConfig, store: &StoreArgs) -> CampaignSpec {
    CampaignSpec {
        kind: kind.to_string(),
        benchmark: b.label().to_string(),
        trials: if kind == "beam" { cfg.strikes } else { cfg.trials },
        seed: cfg.seed,
        size: cfg.size_tag().to_string(),
        shards: store.shards,
        isolate: store.isolate,
        models: Vec::new(),
        tolerance: 0.0,
    }
}

/// A validated spec with its labels resolved against the registries.
pub struct ParsedSpec {
    pub spec: CampaignSpec,
    pub benchmark: Benchmark,
    pub size: SizeClass,
    /// Resolved model subset; the full set when `spec.models` is empty.
    pub models: Vec<FaultModel>,
}

fn model_from_label(label: &str) -> Option<FaultModel> {
    FaultModel::ALL.into_iter().find(|m| m.label() == label)
}

/// Parses and validates a JSON spec; `Err` is a client-facing reason.
pub fn parse_spec(json: &str) -> Result<ParsedSpec, String> {
    let spec: CampaignSpec = serde_json::from_str(json).map_err(|e| format!("malformed spec JSON: {e}"))?;
    validate_spec(spec)
}

/// Validates an already-decoded spec.
pub fn validate_spec(spec: CampaignSpec) -> Result<ParsedSpec, String> {
    if spec.kind != "inject" && spec.kind != "beam" {
        return Err(format!("kind: expected \"inject\" or \"beam\", got {:?}", spec.kind));
    }
    let Some(benchmark) = Benchmark::from_label(&spec.benchmark) else {
        return Err(format!("benchmark: unknown label {:?}", spec.benchmark));
    };
    let size = match spec.size.as_str() {
        "test" => SizeClass::Test,
        "small" => SizeClass::Small,
        "paper" => SizeClass::Paper,
        other => return Err(format!("size: expected test, small or paper, got {other:?}")),
    };
    if spec.trials == 0 {
        return Err("trials: must be at least 1".into());
    }
    if spec.shards == 0 {
        return Err("shards: must be at least 1".into());
    }
    if !(spec.tolerance.is_finite() && spec.tolerance >= 0.0) {
        return Err(format!("tolerance: must be a finite non-negative number, got {}", spec.tolerance));
    }
    let models = if spec.models.is_empty() {
        FaultModel::ALL.to_vec()
    } else {
        if spec.kind == "beam" {
            return Err("models: beam campaigns draw their own mechanisms; model subsets apply to inject only".into());
        }
        if spec.isolate {
            // Isolated workers rebuild the default model rotation from the
            // WorkerSpec, which does not carry a subset; refusing beats
            // running a different campaign than the one submitted.
            return Err("models: subsets are not supported together with isolate".into());
        }
        spec.models
            .iter()
            .map(|l| model_from_label(l).ok_or_else(|| format!("models: unknown fault model {l:?}")))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(ParsedSpec { spec, benchmark, size, models })
}

impl ParsedSpec {
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            trials: self.spec.trials,
            models: self.models.clone(),
            seed: self.spec.seed,
            n_windows: self.benchmark.n_windows(),
            ..Default::default()
        }
    }

    pub fn beam_config(&self) -> BeamConfig {
        BeamConfig {
            strikes: self.spec.trials,
            seed: self.spec.seed,
            n_windows: self.benchmark.n_windows(),
            engine: beamsim::campaign::engine_for(self.benchmark.label()),
            ..Default::default()
        }
    }

    /// Store configuration rooted at `dir`. `resume`/`budget` vary per
    /// invocation (a daemon slice is resume-if-journal-exists plus a slice
    /// budget; a figure binary passes its `--resume`/`--budget` flags).
    pub fn store_config(&self, dir: &Path, resume: bool, budget: Option<usize>) -> StoreConfig {
        let mut sc = StoreConfig::new(dir.to_path_buf());
        sc.shards = self.spec.shards;
        sc.resume = resume;
        sc.budget = budget;
        sc
    }

    /// Isolation settings: re-exec the current executable as a warden
    /// worker carrying this spec's [`WorkerSpec`] identity.
    pub fn isolate_config(&self) -> io::Result<IsolateConfig> {
        let ws = WorkerSpec {
            kind: self.spec.kind.clone(),
            benchmark: self.spec.benchmark.clone(),
            size: self.spec.size.clone(),
            count: self.spec.trials,
            seed: self.spec.seed,
        };
        let ws = serde_json::to_string(&ws).map_err(io::Error::other)?;
        let exe = std::env::current_exe()?;
        let mut iso = IsolateConfig::new(exe, Vec::new(), ws);
        iso.trial_wall =
            std::time::Duration::from_millis(crate::positive_env("PHI_TRIAL_WALL_MS", 30_000) as u64);
        Ok(iso)
    }
}

/// Outcome of executing (a slice of) a spec against a journal directory.
pub enum SpecRun {
    /// Budget exhausted; the journal holds a resumable prefix.
    Paused { completed: u64, total: usize },
    Inject(Vec<TrialRecord>),
    Beam(BeamCampaign),
}

/// Executes a spec against `dir` — the one dispatch point over
/// kind × isolation every caller (figure binaries, daemon slices) shares.
pub fn run_spec(p: &ParsedSpec, dir: &Path, resume: bool, budget: Option<usize>) -> io::Result<SpecRun> {
    let sc = p.store_config(dir, resume, budget);
    let (b, size, label) = (p.benchmark, p.size, p.benchmark.label());
    let paused = |completed, total| SpecRun::Paused { completed, total };
    if p.spec.kind == "beam" {
        let bcfg = p.beam_config();
        let run = if p.spec.isolate {
            let total_steps = build(b, size).total_steps().max(1);
            run_beam_campaign_isolated(label, total_steps, &bcfg, &sc, &p.isolate_config()?)?
        } else {
            let g = {
                let _span = obs::span!("golden");
                golden(b, size)
            };
            run_beam_campaign_stored(label, || build(b, size), &g, &bcfg, &sc)?
        };
        Ok(match run {
            StoredRun::Paused { completed, total } => paused(completed, total),
            StoredRun::Complete(c) => SpecRun::Beam(c),
        })
    } else {
        let ccfg = p.campaign_config();
        let run = if p.spec.isolate {
            let total_steps = build(b, size).total_steps().max(1);
            run_campaign_isolated(label, total_steps, &ccfg, &sc, &p.isolate_config()?)?
        } else {
            let g = {
                let _span = obs::span!("golden");
                golden(b, size)
            };
            run_campaign_stored(label, || build(b, size), &g, &ccfg, &sc)?
        };
        Ok(match run {
            StoredRun::Paused { completed, total } => paused(completed, total),
            StoredRun::Complete(c) => SpecRun::Inject(c.records),
        })
    }
}

// ---------------------------------------------------------------------------
// Deterministic result documents.

/// One fig5-style PVF row: label column plus one ` {:8.1}` percentage per
/// fault model — shared by `fig5_fault_models` and the result documents so
/// the daemon's aggregates are byte-comparable against figure output.
pub fn pvf_row(label: &str, records: &[TrialRecord], kind: PvfKind) -> String {
    let table = by_model(records, kind);
    let mut row = format!("{label:9}");
    for m in FaultModel::ALL {
        let pct = table.get(m).map(|p| p.percent()).unwrap_or(0.0);
        row.push_str(&format!(" {pct:8.1}"));
    }
    row
}

/// The deterministic aggregate document persisted as a campaign's
/// `result.json`. Field order is fixed by declaration order, so two
/// documents built from identical records serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecResult {
    pub kind: String,
    pub benchmark: String,
    pub trials: usize,
    pub seed: u64,
    pub masked: u64,
    pub hw_masked: u64,
    pub sdc: u64,
    pub due: u64,
    /// Fig5-style PVF rows ([`pvf_row`]); empty for beam campaigns (their
    /// records carry no injection fault model).
    pub sdc_pvf_row: String,
    pub due_pvf_row: String,
    pub tolerance: f64,
    /// SDCs whose worst per-element relative error exceeds `tolerance`
    /// (paper §5 tolerance analysis; non-finite corruption always counts).
    pub sdc_beyond_tolerance: u64,
    pub records: u64,
    /// CRC-32 over the newline-terminated serialized records in global
    /// trial order — the byte-identity digest of the whole campaign.
    pub records_crc: u32,
}

/// Renders the result document for a completed campaign.
pub fn spec_result(kind: &str, benchmark: &str, seed: u64, tolerance: f64, records: &[TrialRecord]) -> String {
    let mut masked = 0u64;
    let mut hw_masked = 0u64;
    let mut sdc = 0u64;
    let mut due = 0u64;
    let mut beyond = 0u64;
    let mut bytes = Vec::new();
    for r in records {
        match &r.outcome {
            carolfi::record::OutcomeRecord::Masked => masked += 1,
            carolfi::record::OutcomeRecord::HardwareMasked => hw_masked += 1,
            carolfi::record::OutcomeRecord::Sdc(diff) => {
                sdc += 1;
                if diff.max_rel_err > tolerance || diff.max_rel_err.is_nan() {
                    beyond += 1;
                }
            }
            carolfi::record::OutcomeRecord::Due(_) => due += 1,
        }
        bytes.extend_from_slice(serde_json::to_string(r).expect("trial records serialize").as_bytes());
        bytes.push(b'\n');
    }
    let (sdc_pvf_row, due_pvf_row) = if kind == "inject" {
        (pvf_row(benchmark, records, PvfKind::Sdc), pvf_row(benchmark, records, PvfKind::Due))
    } else {
        (String::new(), String::new())
    };
    let result = SpecResult {
        kind: kind.to_string(),
        benchmark: benchmark.to_string(),
        trials: records.len(),
        seed,
        masked,
        hw_masked,
        sdc,
        due,
        sdc_pvf_row,
        due_pvf_row,
        tolerance,
        sdc_beyond_tolerance: beyond,
        records: records.len() as u64,
        records_crc: store::crc32(&bytes),
    };
    serde_json::to_string(&result).expect("spec results serialize")
}

// ---------------------------------------------------------------------------
// Offline journal readers (byte-compare tooling).

/// Reads a complete journal's trial records in global trial order,
/// reconstructed from the shard plan (shard ranges are contiguous; global
/// index = range start + shard-local seq). Errors on incomplete journals.
pub fn journal_records(dir: &Path) -> io::Result<(store::CampaignMeta, Vec<TrialRecord>)> {
    let scan = store::Journal::scan(dir)?;
    let meta = scan
        .meta
        .clone()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("{}: empty journal", dir.display())))?;
    let plan = store::ShardPlan { trials: meta.trials, shards: meta.shards };
    let mut slots: Vec<Option<TrialRecord>> = vec![None; meta.trials];
    for entry in &scan.entries {
        if let store::JournalEntry::Trial { shard, seq, payload } = entry {
            let global = plan.range(*shard).start + *seq as usize;
            let record: TrialRecord = serde_json::from_str(payload).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("{}: bad trial payload: {e}", dir.display()))
            })?;
            if global < slots.len() {
                slots[global] = Some(record);
            }
        }
    }
    let done = slots.iter().filter(|s| s.is_some()).count();
    if done < meta.trials {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: journal incomplete ({done}/{} trials)", dir.display(), meta.trials),
        ));
    }
    Ok((meta, slots.into_iter().map(|s| s.expect("checked complete")).collect()))
}

/// Recomputes the result document from a journal directory — the offline
/// counterpart of what the daemon persists, for byte-comparison.
pub fn render_result(dir: &Path, tolerance: f64) -> io::Result<String> {
    let (meta, records) = journal_records(dir)?;
    Ok(spec_result(&meta.kind, &meta.benchmark, meta.seed, tolerance, &records))
}

// ---------------------------------------------------------------------------
// The daemon's runner.

/// [`serve::Runner`] over real campaigns: validates specs with
/// [`parse_spec`] and executes slices through [`run_spec`] — the same
/// code path as the figure binaries, which is the byte-identity guarantee.
pub struct SpecRunner;

impl serve::Runner for SpecRunner {
    fn validate(&self, spec: &str) -> Result<serve::SpecInfo, String> {
        let p = parse_spec(spec)?;
        Ok(serve::SpecInfo {
            kind: p.spec.kind.clone(),
            benchmark: p.spec.benchmark.clone(),
            total: p.spec.trials as u64,
        })
    }

    fn run_slice(&self, spec: &str, journal: &Path, budget: usize) -> io::Result<serve::SliceRun> {
        let p = parse_spec(spec).map_err(io::Error::other)?;
        let resume = store::Journal::exists(journal);
        match run_spec(&p, journal, resume, Some(budget))? {
            SpecRun::Paused { completed, .. } => Ok(serve::SliceRun::Paused { completed }),
            SpecRun::Inject(records) => Ok(serve::SliceRun::Complete {
                result: spec_result("inject", &p.spec.benchmark, p.spec.seed, p.spec.tolerance, &records),
            }),
            SpecRun::Beam(campaign) => Ok(serve::SliceRun::Complete {
                result: spec_result("beam", &p.spec.benchmark, p.spec.seed, p.spec.tolerance, &campaign.records),
            }),
        }
    }
}
