//! Byte-identity of the campaign service against direct runs: a spec
//! submitted to `phi-serve` (and therefore sliced, paused and resumed at
//! slice boundaries) must produce exactly the journal records and exactly
//! the result document of the same spec executed directly — the tentpole
//! invariant of the daemon.

use bench::spec::journal_records;
use bench::{
    render_result, run_spec, spec_result, validate_spec, CampaignKind, CampaignSpec, PlanSpec, SpecRun, SpecRunner,
};
use serve::proto::{roundtrip, ClientRequest, ServerReply};
use serve::{EventBus, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-serve-bench").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn spec(kind: CampaignKind, benchmark: &str, trials: usize, seed: u64) -> CampaignSpec {
    CampaignSpec {
        kind,
        version: 1,
        benchmark: benchmark.into(),
        trials,
        seed,
        size: "test".into(),
        shards: 3,
        isolate: false,
        models: Vec::new(),
        tolerance: 0.0,
        plan: None,
    }
}

/// Runs a spec directly (no daemon, no slicing) and renders its result.
fn direct_run(spec: &CampaignSpec, dir: &Path) -> String {
    let parsed = validate_spec(spec.clone()).expect("valid spec");
    let version = parsed.result_version();
    let records = match run_spec(&parsed, dir, false, None).expect("direct run") {
        SpecRun::Inject(records) => records,
        SpecRun::Beam(campaign) => campaign.records,
        SpecRun::Paused { .. } => panic!("unbudgeted direct run paused"),
    };
    spec_result(spec.kind, version, &spec.benchmark, spec.seed, spec.tolerance, &records)
}

fn start_server(dir: &Path, max_active: usize, slice: usize) -> Server {
    let mut cfg = ServeConfig::new(dir.join("sock"), dir.join("root"));
    cfg.max_active = max_active;
    cfg.slice = slice;
    Server::start(cfg, Arc::new(SpecRunner), Arc::new(EventBus::new())).expect("start server")
}

fn submit(server: &Server, spec: &CampaignSpec) -> String {
    let raw = serde_json::to_string(spec).expect("serialize spec");
    match roundtrip(server.socket(), &ClientRequest::Submit { spec: raw }).expect("submit rpc") {
        ServerReply::Submitted { id } => id,
        other => panic!("unexpected submit reply: {other:?}"),
    }
}

fn fetch_result(server: &Server, id: &str) -> String {
    match roundtrip(server.socket(), &ClientRequest::Result { id: id.to_string(), wait_ms: 300_000 })
        .expect("result rpc")
    {
        ServerReply::Result { result, .. } => result,
        other => panic!("unexpected result reply: {other:?}"),
    }
}

/// Serializes journal records to the canonical JSONL byte stream (what
/// `phi-cli records` prints), for whole-campaign byte comparison.
fn record_bytes(dir: &Path) -> (String, String) {
    let (meta, records) = journal_records(dir).expect("complete journal");
    let meta = serde_json::to_string(&meta).expect("meta serializes");
    let mut lines = String::new();
    for r in &records {
        lines.push_str(&serde_json::to_string(r).expect("record serializes"));
        lines.push('\n');
    }
    (meta, lines)
}

/// An injection campaign submitted to the daemon — and therefore executed
/// as several budgeted slices with journal resumes in between — yields
/// byte-identical journal records and an identical result document to the
/// same spec run directly in one go.
#[test]
fn daemon_campaign_is_byte_identical_to_a_direct_run() {
    let dir = test_dir("byte-identity");
    let spec = spec(CampaignKind::Inject, "nw", 24, 91);

    let direct_dir = dir.join("direct");
    let direct_result = direct_run(&spec, &direct_dir);

    // Slice of 7 forces ceil(24/7) = 4 scheduling turns with three
    // pause/resume boundaries — the adversarial case for identity.
    let server = start_server(&dir, 2, 7);
    let id = submit(&server, &spec);
    let daemon_result = fetch_result(&server, &id);
    assert_eq!(daemon_result, direct_result, "daemon result document diverged from the direct run");

    let daemon_journal = server.root().join(&id).join("journal");
    let (direct_meta, direct_records) = record_bytes(&direct_dir);
    let (daemon_meta, daemon_records) = record_bytes(&daemon_journal);
    assert_eq!(daemon_meta, direct_meta, "journal metadata diverged");
    assert_eq!(daemon_records, direct_records, "journal trial records diverged");

    // The offline renderer agrees with both, from either journal.
    assert_eq!(render_result(&direct_dir, 0.0).expect("render direct"), direct_result);
    assert_eq!(render_result(&daemon_journal, 0.0).expect("render daemon"), direct_result);

    // The persisted result.json is the same bytes clients received.
    let persisted = std::fs::read_to_string(server.root().join(&id).join("result.json")).expect("result.json");
    assert_eq!(persisted, daemon_result);
    server.stop();
}

/// Two campaigns of different kinds submitted concurrently both complete,
/// and each matches its own direct-run result — fair-share slicing does
/// not bleed state between campaigns.
#[test]
fn concurrent_inject_and_beam_campaigns_stay_independent() {
    let dir = test_dir("concurrent");
    let inject = spec(CampaignKind::Inject, "hotspot", 16, 77);
    let beam = spec(CampaignKind::Beam, "dgemm", 16, 77);

    let inject_direct = direct_run(&inject, &dir.join("direct-inject"));
    let beam_direct = direct_run(&beam, &dir.join("direct-beam"));

    let server = start_server(&dir, 2, 5);
    let inject_id = submit(&server, &inject);
    let beam_id = submit(&server, &beam);
    assert_ne!(inject_id, beam_id);

    assert_eq!(fetch_result(&server, &inject_id), inject_direct);
    assert_eq!(fetch_result(&server, &beam_id), beam_direct);
    server.stop();
}

/// A fig5-equivalent model-subset campaign round-trips through the daemon
/// identically too (subsets change the trial stream, so identity here
/// pins the spec → config mapping, not just the default path).
#[test]
fn model_subset_campaigns_match_their_direct_run() {
    let dir = test_dir("model-subset");
    let mut subset = spec(CampaignKind::Inject, "lud", 12, 5);
    subset.models = vec!["single".into(), "zero".into()];
    subset.tolerance = 1e-6;

    let direct_result = direct_run(&subset, &dir.join("direct"));
    let server = start_server(&dir, 1, 5);
    let id = submit(&server, &subset);
    assert_eq!(fetch_result(&server, &id), direct_result);
    server.stop();
}

/// An adaptive (version-2, `plan`-bearing) campaign submitted to the
/// daemon — executed as budgeted slices, each resume replaying the
/// journaled planner decisions — produces the byte-identical journal and
/// result document of the same spec run adaptively in one go.
#[test]
fn adaptive_daemon_campaign_is_byte_identical_to_a_direct_run() {
    let dir = test_dir("adaptive-identity");
    let mut adaptive = spec(CampaignKind::Inject, "nw", 400, 91);
    adaptive.version = 2;
    adaptive.shards = 1;
    // Loose target + small batch: converges quickly at test size while
    // still exercising several allocation decisions.
    adaptive.plan = Some(PlanSpec { ci: 0.5, batch: 8, method: Default::default() });

    let direct_dir = dir.join("direct");
    let direct_result = direct_run(&adaptive, &direct_dir);

    // A slice budget below the batch size forces pauses between (and
    // inside) decisions, so every resume goes through decision replay.
    let server = start_server(&dir, 1, 12);
    let id = submit(&server, &adaptive);
    let daemon_result = fetch_result(&server, &id);
    assert_eq!(daemon_result, direct_result, "adaptive daemon result diverged from the direct adaptive run");
    assert!(daemon_result.contains("\"spec_version\":2"), "{daemon_result}");

    let daemon_journal = server.root().join(&id).join("journal");
    let (direct_meta, direct_records) = record_bytes(&direct_dir);
    let (daemon_meta, daemon_records) = record_bytes(&daemon_journal);
    assert_eq!(daemon_meta, direct_meta, "adaptive journal metadata diverged");
    assert_eq!(daemon_records, direct_records, "adaptive journal trial records diverged");

    // Early stopping actually happened: the executed count is visible in
    // the rendered document and sits below the 400-trial horizon.
    let executed = journal_records(&daemon_journal).expect("complete adaptive journal").1.len();
    assert!(executed < 400, "expected early stop, executed {executed}/400");

    // The offline renderer agrees with both journals.
    assert_eq!(render_result(&direct_dir, 0.0).expect("render direct"), direct_result);
    assert_eq!(render_result(&daemon_journal, 0.0).expect("render daemon"), direct_result);
    server.stop();
}

/// Version admission at the daemon boundary: a version the server does not
/// support is rejected with a reason, while v1 (version-absent) specs are
/// admitted unchanged.
#[test]
fn unsupported_spec_versions_are_rejected_at_submission() {
    let dir = test_dir("version-admission");
    let server = start_server(&dir, 1, 50);
    let raw = "{\"kind\":\"inject\",\"version\":3,\"benchmark\":\"nw\",\"trials\":8,\"seed\":1,\
               \"size\":\"test\",\"shards\":1,\"isolate\":false,\"models\":[],\"tolerance\":0.0}";
    match roundtrip(server.socket(), &ClientRequest::Submit { spec: raw.to_string() }).expect("submit rpc") {
        ServerReply::Rejected { reason } => {
            assert_eq!(reason, "invalid spec: unsupported spec version 3 (supported: 1, 2; absent = 1)");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    // The same document minus the version key is a valid v1 spec.
    let v1 = spec(CampaignKind::Inject, "nw", 8, 1);
    let id = submit(&server, &v1);
    let result = fetch_result(&server, &id);
    assert!(result.contains("\"spec_version\":1"), "{result}");
    server.stop();
}
