//! Injector overhead — the paper's §5.1 performance claim.
//!
//! "CAROL-FI is very fast. On the average, its overhead is about 4× the
//! normal execution time, with a worst case of 8×", because GDB forces
//! debug-mode compilation. Our injector needs no debugger: the supervised
//! trial adds only the step-boundary bookkeeping, one frame-walk/variable
//! enumeration at the interrupt, and the golden comparison. The three
//! benchmarks here measure (a) the raw run, (b) a supervised masked trial,
//! and (c) a full trial with a fault applied — their ratios are this
//! reproduction's analogue of the 4×/8× figure.

use carolfi::models::{CarolFiApplicator, FaultModel, InjectionDetail};
use carolfi::supervisor::{run_trial, TrialConfig};
use carolfi::target::{StepOutcome, Variable};
use criterion::{criterion_group, criterion_main, Criterion};
use kernels::{build, golden, Benchmark, SizeClass};
use std::hint::black_box;

/// Applies a fault that changes nothing (flips a bit twice), so the
/// supervised run proceeds to completion and the golden comparison runs —
/// the full cost of supervision without an actual outcome change.
struct NullFault;
impl carolfi::models::FaultApplicator for NullFault {
    fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut rand::rngs::StdRng) -> Option<InjectionDetail> {
        let v = &mut vars[0];
        v.bytes[0] ^= 1;
        v.bytes[0] ^= 1;
        Some(InjectionDetail {
            var_name: v.info.name.into(),
            var_class: v.info.class,
            frame: v.info.frame.label().into(),
            thread: v.info.thread,
            decl: String::new(),
            elem_index: 0,
            bits: vec![],
            mechanism: "null".into(),
        })
    }
}

fn bench_overhead(c: &mut Criterion) {
    let b = Benchmark::Hotspot;
    let gold = golden(b, SizeClass::Test);
    let mut group = c.benchmark_group("injector_overhead");
    group.sample_size(20);

    group.bench_function("raw_run", |bench| {
        bench.iter(|| {
            let mut t = build(b, SizeClass::Test);
            while t.step() == StepOutcome::Continue {}
            black_box(t.output().len())
        });
    });

    group.bench_function("supervised_masked_trial", |bench| {
        bench.iter(|| {
            let mut rng = carolfi::rng::fork(1, 0);
            let r = run_trial(build(b, SizeClass::Test), &gold, &mut NullFault, TrialConfig { inject_step: 10, ..Default::default() }, &mut rng);
            black_box(r.executed_steps)
        });
    });

    group.bench_function("supervised_with_fault", |bench| {
        let _quiet = carolfi::panic_guard::silence_panics();
        bench.iter(|| {
            let mut rng = carolfi::rng::fork(2, 0);
            let mut app = CarolFiApplicator::new(FaultModel::Single);
            let r = run_trial(build(b, SizeClass::Test), &gold, &mut app, TrialConfig { inject_step: 10, ..Default::default() }, &mut rng);
            black_box(r.executed_steps)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
