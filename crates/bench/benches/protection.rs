//! Overheads of the mitigation techniques (paper §6.1's cost side).
//!
//! * SECDED(72,64) encode/decode throughput — the ECC in every cache line;
//! * ABFT-checked matrix product vs the plain product — Huang & Abraham's
//!   classic result is that the checksums add O(n²) work to an O(n³)
//!   computation;
//! * residue-checked integer arithmetic vs raw arithmetic — the 2-bit mod-3
//!   check the paper suggests for the algebraic kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use mitigation::abft::AbftCheckedProduct;
use mitigation::residue::ResidueChecked;
use phidev::ecc::SecdedCodec;
use rand::Rng;
use std::hint::black_box;

fn bench_ecc(c: &mut Criterion) {
    let codec = SecdedCodec;
    let mut group = c.benchmark_group("secded");
    group.bench_function("encode_decode_word", |bench| {
        let mut x = 0xdead_beef_cafe_babeu64;
        bench.iter(|| {
            x = x.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let cw = codec.encode(x);
            black_box(codec.decode(cw))
        });
    });
    group.finish();
}

fn bench_abft(c: &mut Criterion) {
    let n = 64;
    let mut rng = carolfi::rng::fork(0xBE, 0);
    let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut group = c.benchmark_group("abft");
    group.sample_size(20);
    group.bench_function("plain_multiply", |bench| {
        bench.iter(|| {
            let mut cm = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += a[i * n + k] * b[k * n + j];
                    }
                    cm[i * n + j] = acc;
                }
            }
            black_box(cm[0])
        });
    });
    group.bench_function("abft_multiply_and_verify", |bench| {
        bench.iter(|| {
            let mut p = AbftCheckedProduct::multiply(&a, &b, n);
            black_box(p.verify_and_correct())
        });
    });
    group.finish();
}

fn bench_residue(c: &mut Criterion) {
    let mut group = c.benchmark_group("residue");
    group.bench_function("raw_i64_macs", |bench| {
        bench.iter(|| {
            let mut acc = 1i64;
            for i in 0..1000i64 {
                acc = acc.wrapping_mul(3).wrapping_add(i);
            }
            black_box(acc)
        });
    });
    group.bench_function("mod15_checked_macs", |bench| {
        bench.iter(|| {
            let mut acc = ResidueChecked::<15>::new(1);
            let three = ResidueChecked::<15>::new(3);
            for i in 0..1000i64 {
                acc = acc.mul(three).add(ResidueChecked::new(i));
            }
            black_box(acc.check())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ecc, bench_abft, bench_residue);
criterion_main!(benches);
