//! Throughput of the six benchmark ports (fault-free golden runs).
//!
//! Not a paper figure by itself, but the baseline every overhead claim
//! (injector, ABFT, residue) is measured against.

use criterion::{criterion_group, criterion_main, Criterion};
use kernels::{build, Benchmark, SizeClass};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden_run");
    group.sample_size(10);
    for b in Benchmark::ALL {
        group.bench_function(b.label(), |bench| {
            bench.iter(|| {
                let mut t = build(b, SizeClass::Test);
                while t.step() == carolfi::target::StepOutcome::Continue {}
                black_box(t.output().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
