//! Holds `phi-obs` to its overhead contract: with no recorder installed, a
//! telemetry call is one relaxed atomic load — under 5 ns per event on any
//! remotely modern core, and indistinguishable from the un-instrumented
//! baseline. The enabled cases quantify what `--telemetry` actually costs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");

    // Baseline: the arithmetic a hot loop would do with no telemetry at all.
    g.bench_function("baseline_no_calls", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(x)
        });
    });

    // The contract: disabled telemetry adds a single relaxed load per call.
    // The name stays a literal — that is what every instrumentation site
    // passes; black_box on the operand keeps the call from being elided.
    obs::uninstall();
    g.bench_function("disabled_incr", |b| {
        b.iter(|| obs::incr("bench.counter", black_box(1)));
    });
    g.bench_function("disabled_span", |b| {
        b.iter(|| {
            let _span = obs::span!("bench.span");
        });
    });

    // Enabled with a NullRecorder: the cost of the global lookup + dispatch.
    obs::install(Arc::new(obs::NullRecorder));
    g.bench_function("null_recorder_incr", |b| {
        b.iter(|| obs::incr("bench.counter", black_box(1)));
    });

    // Enabled with a CounterRecorder: what --telemetry costs per event.
    obs::install(Arc::new(obs::CounterRecorder::new()));
    g.bench_function("counter_recorder_incr", |b| {
        b.iter(|| obs::incr("bench.counter", black_box(1)));
    });
    g.bench_function("counter_recorder_span", |b| {
        b.iter(|| {
            let _span = obs::span!("bench.span");
        });
    });
    obs::uninstall();

    g.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
