//! Trial hot path — pins the two per-trial optimisations this repo makes
//! over a naive CAROL-FI reproduction:
//!
//! * **Pooled targets**: `TargetPool::acquire` serves a recycled instance
//!   via an in-place `FaultTarget::reset` (a handful of `memcpy`s) instead
//!   of a full `factory()` reconstruction (allocations + RNG input
//!   regeneration). The `provisioning/*` pair isolates that ratio; the
//!   `full_trial/*` pair shows what it buys end to end.
//! * **Bitwise fast-path compare**: `Output::bits_equal` classifies the
//!   (overwhelmingly common) masked outcome with a chunked `u64` word scan,
//!   only falling back to the elementwise `mismatches()` walk — which
//!   allocates coordinates and computes relative errors — on inequality.
//!
//! With `TRIAL_HOT_PATH_JSON=<path>`, a machine-readable baseline
//! (`pooled`/`factory` trials-per-second and the compare timings) is written
//! after the criterion run — `./ci` uses this to track the speedup.

use carolfi::supervisor::{run_trial, run_trial_mut, TrialConfig};
use carolfi::target::{FaultTarget, Variable};
use carolfi::{InjectionDetail, TargetPool};
use criterion::{criterion_group, Criterion};
use kernels::{build, golden, Benchmark, SizeClass};
use std::hint::black_box;
use std::time::Instant;

/// Applies a fault that changes nothing (flips a bit twice), so every trial
/// runs to completion and classifies Masked — the dominant, hot outcome.
struct NullFault;
impl carolfi::models::FaultApplicator for NullFault {
    fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut rand::rngs::StdRng) -> Option<InjectionDetail> {
        let v = &mut vars[0];
        v.bytes[0] ^= 1;
        v.bytes[0] ^= 1;
        Some(InjectionDetail {
            var_name: v.info.name.into(),
            var_class: v.info.class,
            frame: v.info.frame.label().into(),
            thread: v.info.thread,
            decl: String::new(),
            elem_index: 0,
            bits: vec![],
            mechanism: "null".into(),
        })
    }
}

const BENCH: Benchmark = Benchmark::Dgemm;

fn bench_provisioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("provisioning");
    group.sample_size(30);

    group.bench_function("factory_build", |bench| {
        bench.iter(|| black_box(build(BENCH, SizeClass::Test).total_steps()));
    });

    group.bench_function("pooled_reset", |bench| {
        let pool = TargetPool::new(|| build(BENCH, SizeClass::Test));
        pool.seed(build(BENCH, SizeClass::Test));
        bench.iter(|| {
            let t = pool.acquire();
            let steps = t.total_steps();
            pool.release(t, false);
            black_box(steps)
        });
    });
    group.finish();
}

fn run_one_pooled<F: Fn() -> Box<dyn FaultTarget>>(pool: &TargetPool<Box<dyn FaultTarget>, F>, gold: &carolfi::Output) -> usize {
    let mut rng = carolfi::rng::fork(1, 0);
    let mut target = pool.acquire();
    let r = run_trial_mut(&mut target, gold, &mut NullFault, TrialConfig { inject_step: 2, ..Default::default() }, &mut rng);
    pool.release(target, false);
    r.executed_steps
}

fn run_one_factory(gold: &carolfi::Output) -> usize {
    let mut rng = carolfi::rng::fork(1, 0);
    let r = run_trial(build(BENCH, SizeClass::Test), gold, &mut NullFault, TrialConfig { inject_step: 2, ..Default::default() }, &mut rng);
    r.executed_steps
}

fn bench_full_trial(c: &mut Criterion) {
    let gold = golden(BENCH, SizeClass::Test);
    let mut group = c.benchmark_group("full_trial");
    group.sample_size(20);

    group.bench_function("factory_per_trial", |bench| {
        bench.iter(|| black_box(run_one_factory(&gold)));
    });

    group.bench_function("pooled", |bench| {
        let pool = TargetPool::new(|| build(BENCH, SizeClass::Test));
        pool.seed(build(BENCH, SizeClass::Test));
        bench.iter(|| black_box(run_one_pooled(&pool, &gold)));
    });
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    // Two bit-identical outputs: the masked case both compare paths must
    // classify. The fast path scans u64 words; the elementwise walk decodes
    // every scalar and checks its bits.
    let gold = golden(BENCH, SizeClass::Test);
    let same = golden(BENCH, SizeClass::Test);
    let mut group = c.benchmark_group("compare");
    group.sample_size(30);

    group.bench_function("fast_path_bits_equal", |bench| {
        bench.iter(|| black_box(same.bits_equal(&gold)));
    });

    group.bench_function("elementwise_scan", |bench| {
        bench.iter(|| black_box(same.mismatches(&gold).is_empty()));
    });
    group.finish();
}

/// Wall-clock trials/sec over `n` trials for the JSON baseline.
fn measure_trials_per_sec(n: usize, pooled: bool) -> f64 {
    let gold = golden(BENCH, SizeClass::Test);
    let pool = TargetPool::new(|| build(BENCH, SizeClass::Test));
    pool.seed(build(BENCH, SizeClass::Test));
    let start = Instant::now();
    for _ in 0..n {
        if pooled {
            black_box(run_one_pooled(&pool, &gold));
        } else {
            black_box(run_one_factory(&gold));
        }
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn time_ns<F: FnMut() -> bool>(n: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..n {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e9 / n as f64
}

fn emit_json(path: &str) {
    let trials = 200;
    let factory_tps = measure_trials_per_sec(trials, false);
    let pooled_tps = measure_trials_per_sec(trials, true);

    // Provisioning in isolation: what a trial pays before its first step.
    // Full-trial speedup is Amdahl-bounded by the provisioning fraction
    // (build is 3–18% of a Test-size trial), so this is the ratio pooling
    // is pinned on; the trials/sec pair above reports the end-to-end gain.
    let build_ns = {
        let start = Instant::now();
        for _ in 0..200 {
            black_box(build(BENCH, SizeClass::Test).total_steps());
        }
        start.elapsed().as_secs_f64() * 1e9 / 200.0
    };
    let reset_ns = {
        let pool = TargetPool::new(|| build(BENCH, SizeClass::Test));
        pool.seed(build(BENCH, SizeClass::Test));
        let start = Instant::now();
        for _ in 0..200 {
            let t = pool.acquire();
            black_box(t.total_steps());
            pool.release(t, false);
        }
        start.elapsed().as_secs_f64() * 1e9 / 200.0
    };

    let gold = golden(BENCH, SizeClass::Test);
    let same = golden(BENCH, SizeClass::Test);
    let fast_ns = time_ns(2000, || same.bits_equal(&gold));
    let scan_ns = time_ns(2000, || same.mismatches(&gold).is_empty());
    let body = format!(
        "{{\n  \"benchmark\": \"{}\",\n  \"size\": \"test\",\n  \"trials\": {},\n  \
         \"factory_trials_per_sec\": {:.3},\n  \"pooled_trials_per_sec\": {:.3},\n  \
         \"pooled_speedup\": {:.3},\n  \"factory_build_ns\": {:.1},\n  \
         \"pooled_reset_ns\": {:.1},\n  \"provisioning_speedup\": {:.3},\n  \
         \"fast_path_compare_ns\": {:.1},\n  \
         \"elementwise_scan_ns\": {:.1},\n  \"compare_speedup\": {:.3}\n}}\n",
        BENCH.label(),
        trials,
        factory_tps,
        pooled_tps,
        pooled_tps / factory_tps,
        build_ns,
        reset_ns,
        build_ns / reset_ns,
        fast_ns,
        scan_ns,
        scan_ns / fast_ns,
    );
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("trial_hot_path baseline written to {path}");
}

criterion_group!(benches, bench_provisioning, bench_full_trial, bench_compare);

fn main() {
    benches();
    if let Ok(path) = std::env::var("TRIAL_HOT_PATH_JSON") {
        emit_json(&path);
    }
}
