//! JSONL event export: one JSON object per line, gapless sequence numbers.
//!
//! The sequence number is assigned *inside* the writer lock, so line order
//! on disk and `seq` order always agree and the set of seqs in a finished
//! stream is exactly `0..n` — the property the multi-worker campaign test
//! pins down.

use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

use crate::Recorder;

struct Inner {
    out: BufWriter<Box<dyn Write + Send>>,
    seq: u64,
}

/// Thread-safe recorder that streams [`Recorder::event`]s as JSON lines:
///
/// ```json
/// {"seq":17,"kind":"trial","data":{...}}
/// ```
///
/// `incr`/`observe_ns` are no-ops — pair with a [`crate::CounterRecorder`]
/// when both live metrics and the event stream are wanted.
pub struct JsonlRecorder {
    inner: Mutex<Inner>,
}

impl JsonlRecorder {
    pub fn new(out: impl Write + Send + 'static) -> Self {
        JsonlRecorder { inner: Mutex::new(Inner { out: BufWriter::new(Box::new(out)), seq: 0 }) }
    }

    /// Number of events written so far.
    pub fn events_written(&self) -> u64 {
        self.lock().seq
    }

    /// Flushes the underlying writer. Also happens on drop.
    pub fn flush(&self) {
        let _ = self.lock().out.flush();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for JsonlRecorder {
    fn incr(&self, _: &'static str, _: u64) {}
    fn observe_ns(&self, _: &'static str, _: u64) {}

    fn event(&self, kind: &'static str, payload_json: &str) {
        let payload = if payload_json.is_empty() { "null" } else { payload_json };
        let mut inner = self.lock();
        let seq = inner.seq;
        inner.seq += 1;
        // `kind` is a static identifier (no escaping needed); the payload is
        // pre-serialized JSON inserted verbatim.
        let _ = writeln!(inner.out, "{{\"seq\":{seq},\"kind\":\"{kind}\",\"data\":{payload}}}");
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        let _ = self.inner.get_mut().unwrap_or_else(|e| e.into_inner()).out.flush();
    }
}

/// Cloneable in-memory sink for a [`JsonlRecorder`], used by tests and the
/// figure binaries' buffered export: every clone appends to the same byte
/// buffer.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(buf: &SharedBuf) -> Vec<String> {
        String::from_utf8(buf.contents()).unwrap().lines().map(str::to_owned).collect()
    }

    #[test]
    fn events_become_one_json_line_each() {
        let buf = SharedBuf::new();
        let rec = JsonlRecorder::new(buf.clone());
        rec.event("trial", "{\"outcome\":\"sdc\"}");
        rec.event("strike", "null");
        rec.event("empty", "");
        rec.flush();
        let got = lines(&buf);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], "{\"seq\":0,\"kind\":\"trial\",\"data\":{\"outcome\":\"sdc\"}}");
        assert_eq!(got[1], "{\"seq\":1,\"kind\":\"strike\",\"data\":null}");
        assert_eq!(got[2], "{\"seq\":2,\"kind\":\"empty\",\"data\":null}");
        assert_eq!(rec.events_written(), 3);
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let buf = SharedBuf::new();
        {
            let rec = JsonlRecorder::new(buf.clone());
            rec.event("e", "1");
        }
        assert_eq!(lines(&buf).len(), 1);
    }

    #[test]
    fn concurrent_writers_produce_valid_lines_and_gapless_seq() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 500;
        let buf = SharedBuf::new();
        let rec = std::sync::Arc::new(JsonlRecorder::new(buf.clone()));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = std::sync::Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let payload = format!("{{\"t\":{t},\"i\":{i}}}");
                        rec.event("w", &payload);
                    }
                });
            }
        });
        rec.flush();
        let got = lines(&buf);
        assert_eq!(got.len(), (THREADS * PER_THREAD) as usize);
        // Every line is standalone-parseable JSON and the seqs are exactly
        // the permutation 0..n (here even in order, since seq assignment and
        // the write share one critical section). Parsing the envelope
        // validates the whole line, payload included.
        #[derive(serde::Deserialize)]
        struct Line {
            seq: u64,
            kind: String,
        }
        let mut seqs = Vec::new();
        for line in &got {
            let parsed: Line = serde_json::from_str(line).expect("torn JSONL line");
            assert_eq!(parsed.kind, "w");
            seqs.push(parsed.seq);
        }
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..THREADS * PER_THREAD).collect::<Vec<_>>());
        assert_eq!(seqs, sorted, "seq order matches line order");
    }
}
