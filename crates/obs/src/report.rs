//! Campaign-level gauges: one summary struct per finished campaign.
//!
//! Unlike the recorder plumbing (opt-in, global), a [`CampaignReport`] is
//! always computed — the campaign runners fill one in as they go and attach
//! it to the returned `Campaign`/`BeamCampaign`, so throughput and
//! utilization are available even with telemetry off. The struct stays
//! domain-agnostic: outcome keys are strings chosen by the caller
//! (`"single/sdc"`, `"beam:vpu/due"`, ...).

use std::fmt;

/// Summary gauges for one campaign run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignReport {
    /// Benchmark or campaign label.
    pub label: String,
    /// Trials (or strikes) executed.
    pub trials: usize,
    /// Wall-clock duration of the whole campaign.
    pub wall_ns: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Sum over workers of time spent inside trials.
    pub busy_ns: u64,
    /// Watchdog-terminated trials (timeout DUEs).
    pub watchdog_fires: usize,
    /// Target-pool trials served by an in-place `reset()` instead of a
    /// fresh factory construction. Zero for cache-loaded reports.
    pub pool_hits: u64,
    /// Target-pool trials that built a fresh target (cold start, target
    /// without reset support, or rebuild after a DUE left state torn).
    pub pool_rebuilds: u64,
    /// Trials classified by the chunked bitwise compare alone, without an
    /// elementwise mismatch scan.
    pub fast_path_compares: u64,
    /// Strata the adaptive planner tracked; 0 for fixed-count campaigns
    /// (which hides the planner gauges from `Display`).
    pub strata_total: usize,
    /// Strata whose widest outcome-class CI still exceeded the target when
    /// the campaign ended (0 = every stratum converged).
    pub strata_open: usize,
    /// Widest outcome-class CI width across strata at campaign end.
    pub widest_ci: f64,
    /// Outcome counts keyed by caller-chosen labels, sorted by key.
    pub outcomes: Vec<(String, usize)>,
}

impl CampaignReport {
    /// Throughput in trials per second; 0 when wall time was not measured
    /// (e.g. records loaded from a cache).
    pub fn trials_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.trials as f64 / (self.wall_ns as f64 / 1e9)
        }
    }

    /// Fraction of worker capacity spent inside trials, in `[0, 1]`.
    /// 0 when wall time was not measured.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_ns.saturating_mul(self.workers as u64);
        if capacity == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / capacity as f64).min(1.0)
        }
    }

    /// Count for one outcome key (0 when absent).
    pub fn outcome(&self, key: &str) -> usize {
        self.outcomes.iter().find(|(k, _)| k == key).map_or(0, |&(_, n)| n)
    }

    /// Fraction of pooled acquisitions served by `reset()` instead of a
    /// factory rebuild, in `[0, 1]`; 0 when the run didn't pool.
    pub fn pool_reuse(&self) -> f64 {
        let total = self.pool_hits + self.pool_rebuilds;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "campaign report: {}", self.label)?;
        writeln!(f, "  trials          {:>10}", self.trials)?;
        if self.wall_ns > 0 {
            writeln!(f, "  wall time       {:>10.2}s", self.wall_ns as f64 / 1e9)?;
            writeln!(f, "  throughput      {:>10.1} trials/s", self.trials_per_sec())?;
            writeln!(f, "  workers         {:>10}", self.workers)?;
            writeln!(f, "  utilization     {:>10.1}%", self.utilization() * 100.0)?;
        }
        writeln!(f, "  watchdog fires  {:>10}", self.watchdog_fires)?;
        if self.pool_hits + self.pool_rebuilds > 0 {
            writeln!(
                f,
                "  pool reuse      {:>10.1}%  ({} hits, {} rebuilds)",
                self.pool_reuse() * 100.0,
                self.pool_hits,
                self.pool_rebuilds
            )?;
        }
        if self.fast_path_compares > 0 {
            let pct = if self.trials > 0 { 100.0 * self.fast_path_compares as f64 / self.trials as f64 } else { 0.0 };
            writeln!(f, "  fast-path cmp   {:>10}  ({:>5.1}% of trials)", self.fast_path_compares, pct)?;
        }
        if self.strata_total > 0 {
            writeln!(
                f,
                "  planner         {:>6}/{} strata converged, widest ci {:.4}",
                self.strata_total - self.strata_open.min(self.strata_total),
                self.strata_total,
                self.widest_ci
            )?;
        }
        if !self.outcomes.is_empty() {
            writeln!(f, "  outcomes")?;
            for (key, n) in &self.outcomes {
                let pct = if self.trials > 0 { 100.0 * *n as f64 / self.trials as f64 } else { 0.0 };
                writeln!(f, "    {:<28} {:>8}  ({:>5.1}%)", key, n, pct)?;
            }
        }
        Ok(())
    }
}

/// Incremental builder used by the campaign runners: workers feed outcome
/// labels and busy time through it, then `finish` sorts and seals.
#[derive(Debug, Default)]
pub struct ReportBuilder {
    report: CampaignReport,
}

impl ReportBuilder {
    pub fn new(label: impl Into<String>, workers: usize) -> Self {
        ReportBuilder {
            report: CampaignReport { label: label.into(), workers, ..CampaignReport::default() },
        }
    }

    pub fn record_outcome(&mut self, key: impl Into<String>, watchdog: bool) {
        self.report.trials += 1;
        if watchdog {
            self.report.watchdog_fires += 1;
        }
        let key = key.into();
        match self.report.outcomes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => self.report.outcomes.push((key, 1)),
        }
    }

    pub fn add_busy_ns(&mut self, ns: u64) {
        self.report.busy_ns += ns;
    }

    pub fn finish(mut self, wall_ns: u64) -> CampaignReport {
        self.report.wall_ns = wall_ns;
        self.report.outcomes.sort_by(|a, b| a.0.cmp(&b.0));
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignReport {
        let mut b = ReportBuilder::new("hotspot", 4);
        for _ in 0..6 {
            b.record_outcome("single/sdc", false);
        }
        for _ in 0..3 {
            b.record_outcome("single/masked", false);
        }
        b.record_outcome("single/due-timeout", true);
        b.add_busy_ns(2_000_000_000);
        b.finish(1_000_000_000)
    }

    #[test]
    fn builder_counts_and_sorts_outcomes() {
        let r = sample();
        assert_eq!(r.trials, 10);
        assert_eq!(r.watchdog_fires, 1);
        assert_eq!(
            r.outcomes,
            vec![
                ("single/due-timeout".to_string(), 1),
                ("single/masked".to_string(), 3),
                ("single/sdc".to_string(), 6),
            ]
        );
        assert_eq!(r.outcome("single/sdc"), 6);
        assert_eq!(r.outcome("absent"), 0);
    }

    #[test]
    fn gauges_derive_from_raw_fields() {
        let r = sample();
        assert!((r.trials_per_sec() - 10.0).abs() < 1e-9);
        assert!((r.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cache_loaded_reports_have_zero_rates() {
        let mut b = ReportBuilder::new("cached", 0);
        b.record_outcome("single/sdc", false);
        let r = b.finish(0);
        assert_eq!(r.trials_per_sec(), 0.0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn display_includes_label_and_percentages() {
        let s = sample().to_string();
        assert!(s.contains("hotspot"));
        assert!(s.contains("single/sdc"));
        assert!(s.contains("60.0%"));
        assert!(s.contains("watchdog fires"));
        // Hot-path gauges stay hidden when the run didn't pool...
        assert!(!s.contains("pool reuse"));
        assert!(!s.contains("fast-path cmp"));
        // ...and planner gauges when the campaign was fixed-count.
        assert!(!s.contains("planner"));
    }

    #[test]
    fn planner_gauges_display_when_present() {
        let mut r = sample();
        r.strata_total = 16;
        r.strata_open = 2;
        r.widest_ci = 0.0625;
        let s = r.to_string();
        assert!(s.contains("14/16 strata converged"), "{s}");
        assert!(s.contains("widest ci 0.0625"), "{s}");
    }

    #[test]
    fn hot_path_gauges_display_when_present() {
        let mut r = sample();
        r.pool_hits = 9;
        r.pool_rebuilds = 1;
        r.fast_path_compares = 3;
        assert!((r.pool_reuse() - 0.9).abs() < 1e-9);
        let s = r.to_string();
        assert!(s.contains("pool reuse"), "{s}");
        assert!(s.contains("9 hits, 1 rebuilds"), "{s}");
        assert!(s.contains("fast-path cmp"), "{s}");
    }

    #[test]
    fn pool_reuse_is_zero_without_pooling() {
        assert_eq!(sample().pool_reuse(), 0.0);
    }
}
