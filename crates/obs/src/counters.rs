//! Lock-free counters and log₂ latency histograms.
//!
//! Registration (first observation of a name) takes a mutex; every later
//! observation of the same name is wait-free: a linear scan over at most
//! `len` published slots followed by a relaxed `fetch_add`. The name tables
//! are append-only — slots are published by a release store of `len` after
//! the `OnceLock` name is set, so readers that see index `i < len` always
//! see its name initialized.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::hub::{HistData, MetricsSnapshot};
use crate::Recorder;

/// Max distinct counter names. Campaign instrumentation uses well under
/// this; overflowing names are silently dropped (telemetry must never
/// panic a worker).
const MAX_COUNTERS: usize = 256;

/// Max distinct span/histogram names.
const MAX_HISTS: usize = 64;

/// Histogram buckets: bucket `i` counts durations in `[2^(i-1), 2^i)` ns
/// (bucket 0 is exactly 0 ns). 40 buckets cover up to ~9 minutes, far past
/// any single trial phase.
pub const HIST_BUCKETS: usize = 40;

struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, ns: u64) {
        let idx = bucket_index(ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Bucket for a duration: 0 → 0, otherwise 1 + floor(log₂ ns), clamped.
fn bucket_index(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive-exclusive upper bound of bucket `i` in nanoseconds.
fn bucket_upper_ns(idx: usize) -> u64 {
    if idx == 0 {
        1
    } else {
        1u64 << idx
    }
}

/// Append-only name → slot registry shared by the counter and histogram
/// tables.
struct SlotTable {
    names: Vec<OnceLock<&'static str>>,
    len: AtomicUsize,
    register: Mutex<()>,
}

impl SlotTable {
    fn new(capacity: usize) -> Self {
        SlotTable {
            names: (0..capacity).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
            register: Mutex::new(()),
        }
    }

    /// Slot for `name`, registering it on first use. `None` when the table
    /// is full.
    fn slot(&self, name: &'static str) -> Option<usize> {
        let published = self.len.load(Ordering::Acquire);
        if let Some(i) = self.find(name, published) {
            return Some(i);
        }
        let _guard = self.register.lock().unwrap_or_else(|e| e.into_inner());
        // Re-scan: another thread may have registered `name` between our
        // fast-path scan and taking the lock.
        let published = self.len.load(Ordering::Acquire);
        if let Some(i) = self.find(name, published) {
            return Some(i);
        }
        if published == self.names.len() {
            return None;
        }
        self.names[published].set(name).ok()?;
        self.len.store(published + 1, Ordering::Release);
        Some(published)
    }

    fn find(&self, name: &str, upto: usize) -> Option<usize> {
        (0..upto).find(|&i| self.names[i].get().copied() == Some(name))
    }

    fn snapshot(&self) -> Vec<(usize, &'static str)> {
        let published = self.len.load(Ordering::Acquire);
        (0..published).filter_map(|i| self.names[i].get().map(|&n| (i, n))).collect()
    }
}

/// In-memory metrics recorder: atomic counters plus log₂-bucket latency
/// histograms, both keyed by `&'static str` names. `Display` renders the
/// diagnose-style report behind the figure binaries' `--telemetry` flag.
pub struct CounterRecorder {
    counter_slots: SlotTable,
    counter_values: Vec<AtomicU64>,
    hist_slots: SlotTable,
    hists: Vec<Hist>,
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: &'static str,
    pub value: u64,
}

/// Point-in-time contents of one latency histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// `(upper_bound_ns, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (ns) of the bucket containing the q-quantile
    /// observation. Resolution is one log₂ bucket, which is plenty for
    /// order-of-magnitude phase profiles.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return upper;
            }
        }
        self.max_ns
    }

    /// Interpolated q-percentile estimate: walks the cumulative bucket
    /// counts to the bucket containing the target rank, then interpolates
    /// linearly within that bucket's `[lower, upper)` range. One log₂
    /// bucket of true resolution, but without `quantile_ns`'s systematic
    /// round-up to the bucket edge; capped at the exact observed max.
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from_buckets(self.count, self.max_ns, &self.buckets, q)
    }
}

/// Shared percentile estimator over `(upper_bound_ns, count)` log₂ buckets
/// (ascending, non-empty). Bucket 0 (upper 1) spans exactly `[0, 1)`; every
/// other bucket spans `[upper/2, upper)`.
pub(crate) fn percentile_from_buckets(count: u64, max_ns: u64, buckets: &[(u64, u64)], q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((count as f64) * q.clamp(0.0, 1.0)).max(1.0).min(count as f64);
    let mut seen = 0u64;
    for &(upper, n) in buckets {
        let below = seen;
        seen += n;
        if (seen as f64) >= target {
            let lower = if upper <= 1 { 0 } else { upper / 2 };
            let frac = (target - below as f64) / n as f64;
            let est = lower as f64 + frac * (upper - lower) as f64;
            return (est as u64).min(max_ns);
        }
    }
    max_ns
}

impl CounterRecorder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        CounterRecorder {
            counter_slots: SlotTable::new(MAX_COUNTERS),
            counter_values: (0..MAX_COUNTERS).map(|_| AtomicU64::new(0)).collect(),
            hist_slots: SlotTable::new(MAX_HISTS),
            hists: (0..MAX_HISTS).map(|_| Hist::new()).collect(),
        }
    }

    /// Counters with non-zero registration, sorted by name.
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        let mut out: Vec<CounterSnapshot> = self
            .counter_slots
            .snapshot()
            .into_iter()
            .map(|(i, name)| CounterSnapshot { name, value: self.counter_values[i].load(Ordering::Relaxed) })
            .collect();
        out.sort_by_key(|c| c.name);
        out
    }

    /// Histograms with at least one registration, sorted by name.
    pub fn histograms(&self) -> Vec<HistogramSnapshot> {
        let mut out: Vec<HistogramSnapshot> = self
            .hist_slots
            .snapshot()
            .into_iter()
            .map(|(i, name)| {
                let h = &self.hists[i];
                let buckets = (0..HIST_BUCKETS)
                    .filter_map(|b| {
                        let n = h.buckets[b].load(Ordering::Relaxed);
                        (n > 0).then(|| (bucket_upper_ns(b), n))
                    })
                    .collect();
                HistogramSnapshot {
                    name,
                    count: h.count.load(Ordering::Relaxed),
                    sum_ns: h.sum_ns.load(Ordering::Relaxed),
                    max_ns: h.max_ns.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        out.sort_by_key(|h| h.name);
        out
    }

    /// Value of one counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters().iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Owned, portable snapshot of every counter and histogram — the value
    /// a worker ships to the supervisor's [`crate::MetricsHub`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for c in self.counters() {
            snap.counters.insert(c.name.to_string(), c.value);
        }
        for h in self.histograms() {
            snap.hists.insert(
                h.name.to_string(),
                HistData { count: h.count, sum_ns: h.sum_ns, max_ns: h.max_ns, buckets: h.buckets },
            );
        }
        snap
    }
}

impl Recorder for CounterRecorder {
    fn incr(&self, counter: &'static str, by: u64) {
        if let Some(i) = self.counter_slots.slot(counter) {
            self.counter_values[i].fetch_add(by, Ordering::Relaxed);
        }
    }

    fn observe_ns(&self, span: &'static str, ns: u64) {
        if let Some(i) = self.hist_slots.slot(span) {
            self.hists[i].record(ns);
        }
    }

    fn event(&self, kind: &'static str, _payload_json: &str) {
        // Metrics mode keeps a volume counter per event kind rather than the
        // payloads themselves; pair with a JsonlRecorder for full export.
        if let Some(i) = self.counter_slots.slot(kind) {
            self.counter_values[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Option<MetricsSnapshot> {
        Some(CounterRecorder::snapshot(self))
    }
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl fmt::Display for CounterRecorder {
    /// Diagnose-style report: counters first, then a per-span latency table
    /// with interpolated percentiles (the [`MetricsSnapshot`] renderer, so
    /// local-only and hub-merged footers read identically).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        CounterRecorder::snapshot(self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_log2() {
        // Bucket 0 is exactly zero; each later bucket is [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Upper bounds match: a value lands strictly below its bucket bound.
        for ns in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789] {
            let idx = bucket_index(ns);
            assert!(ns < bucket_upper_ns(idx), "ns={ns} idx={idx}");
            if idx > 1 {
                assert!(ns >= bucket_upper_ns(idx - 1), "ns={ns} idx={idx}");
            }
        }
    }

    #[test]
    fn histogram_aggregates_are_exact() {
        let rec = CounterRecorder::new();
        for ns in [0u64, 1, 5, 5, 1000] {
            rec.observe_ns("h", ns);
        }
        let h = &rec.histograms()[0];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_ns, 1011);
        assert_eq!(h.max_ns, 1000);
        assert_eq!(h.mean_ns(), 202);
        // Buckets: 0ns → b0; 1 → b1; 5,5 → b3; 1000 → b10.
        assert_eq!(h.buckets, vec![(1, 1), (2, 1), (8, 2), (1024, 1)]);
        // Quantiles walk the cumulative bucket counts.
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.quantile_ns(0.5), 8);
        assert_eq!(h.quantile_ns(1.0), 1024);
    }

    #[test]
    fn concurrent_increments_from_many_threads_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let rec = Arc::new(CounterRecorder::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    // All threads race on the shared counter AND register
                    // their own, exercising both slot paths concurrently.
                    let own: &'static str = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"][t];
                    for _ in 0..PER_THREAD {
                        rec.incr("shared", 1);
                        rec.incr(own, 1);
                        rec.observe_ns("span", 100);
                    }
                });
            }
        });
        assert_eq!(rec.counter("shared"), THREADS as u64 * PER_THREAD);
        for t in 0..THREADS {
            assert_eq!(rec.counter(["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"][t]), PER_THREAD);
        }
        assert_eq!(rec.histograms()[0].count, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn slot_table_overflow_drops_silently() {
        let table = SlotTable::new(2);
        // Leak two distinct names to get 'static strs beyond literals.
        assert_eq!(table.slot("a"), Some(0));
        assert_eq!(table.slot("b"), Some(1));
        assert_eq!(table.slot("c"), None);
        assert_eq!(table.slot("a"), Some(0), "existing names still resolve when full");
    }

    #[test]
    fn event_counts_per_kind() {
        let rec = CounterRecorder::new();
        rec.event("trial", "{\"x\":1}");
        rec.event("trial", "{\"x\":2}");
        assert_eq!(rec.counter("trial"), 2);
    }

    #[test]
    fn percentiles_interpolate_within_known_distributions() {
        // 1000 observations uniform over [0, 1000): percentile(q) should
        // track q*1000 to within one log₂ bucket of the true value.
        let rec = CounterRecorder::new();
        for ns in 0..1000u64 {
            rec.observe_ns("u", ns);
        }
        let h = &rec.histograms()[0];
        for (q, exact) in [(0.50, 500u64), (0.95, 950), (0.99, 990)] {
            let est = h.percentile(q);
            assert!(est <= h.max_ns, "q={q} est={est}");
            // True value and estimate must share an order of magnitude: the
            // estimate may be off by at most the containing bucket's width.
            let err = est.abs_diff(exact);
            assert!(err <= exact / 2 + 1, "q={q} exact={exact} est={est}");
        }
        assert_eq!(h.percentile(1.0), 999, "p100 is capped at the exact max");

        // Constant distribution: every percentile lands in the single
        // bucket [64, 128) and is capped at the observed max.
        let rec = CounterRecorder::new();
        for _ in 0..100 {
            rec.observe_ns("c", 100);
        }
        let h = &rec.histograms()[0];
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = h.percentile(q);
            assert!((64..=100).contains(&est), "q={q} est={est}");
        }

        // Bimodal: 90 fast (≈8ns) + 10 slow (≈1µs). p50 stays in the fast
        // mode's bucket, p99 in the slow mode's.
        let rec = CounterRecorder::new();
        for _ in 0..90 {
            rec.observe_ns("b", 8);
        }
        for _ in 0..10 {
            rec.observe_ns("b", 1000);
        }
        let h = &rec.histograms()[0];
        assert!((8..16).contains(&h.percentile(0.5)), "p50={}", h.percentile(0.5));
        assert!((512..=1000).contains(&h.percentile(0.99)), "p99={}", h.percentile(0.99));

        // Monotone in q.
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let est = h.percentile(q);
            assert!(est >= prev, "q={q}: {est} < {prev}");
            prev = est;
        }
    }

    #[test]
    fn percentile_of_empty_and_zero_histograms() {
        let rec = CounterRecorder::new();
        rec.observe_ns("zeros", 0);
        rec.observe_ns("zeros", 0);
        let h = &rec.histograms()[0];
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
        let empty = HistogramSnapshot { name: "e", count: 0, sum_ns: 0, max_ns: 0, buckets: vec![] };
        assert_eq!(empty.percentile(0.5), 0);
    }

    #[test]
    fn display_renders_counters_and_spans() {
        let rec = CounterRecorder::new();
        rec.incr("outcomes.sdc", 3);
        rec.observe_ns("trial", 1500);
        let s = rec.to_string();
        assert!(s.contains("outcomes.sdc"));
        assert!(s.contains("trial"));
        assert!(s.contains("1.5us"));
    }
}
