//! Lock-free counters and log₂ latency histograms.
//!
//! Registration (first observation of a name) takes a mutex; every later
//! observation of the same name is wait-free: a linear scan over at most
//! `len` published slots followed by a relaxed `fetch_add`. The name tables
//! are append-only — slots are published by a release store of `len` after
//! the `OnceLock` name is set, so readers that see index `i < len` always
//! see its name initialized.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::Recorder;

/// Max distinct counter names. Campaign instrumentation uses well under
/// this; overflowing names are silently dropped (telemetry must never
/// panic a worker).
const MAX_COUNTERS: usize = 256;

/// Max distinct span/histogram names.
const MAX_HISTS: usize = 64;

/// Histogram buckets: bucket `i` counts durations in `[2^(i-1), 2^i)` ns
/// (bucket 0 is exactly 0 ns). 40 buckets cover up to ~9 minutes, far past
/// any single trial phase.
pub const HIST_BUCKETS: usize = 40;

struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, ns: u64) {
        let idx = bucket_index(ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Bucket for a duration: 0 → 0, otherwise 1 + floor(log₂ ns), clamped.
fn bucket_index(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive-exclusive upper bound of bucket `i` in nanoseconds.
fn bucket_upper_ns(idx: usize) -> u64 {
    if idx == 0 {
        1
    } else {
        1u64 << idx
    }
}

/// Append-only name → slot registry shared by the counter and histogram
/// tables.
struct SlotTable {
    names: Vec<OnceLock<&'static str>>,
    len: AtomicUsize,
    register: Mutex<()>,
}

impl SlotTable {
    fn new(capacity: usize) -> Self {
        SlotTable {
            names: (0..capacity).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(0),
            register: Mutex::new(()),
        }
    }

    /// Slot for `name`, registering it on first use. `None` when the table
    /// is full.
    fn slot(&self, name: &'static str) -> Option<usize> {
        let published = self.len.load(Ordering::Acquire);
        if let Some(i) = self.find(name, published) {
            return Some(i);
        }
        let _guard = self.register.lock().unwrap_or_else(|e| e.into_inner());
        // Re-scan: another thread may have registered `name` between our
        // fast-path scan and taking the lock.
        let published = self.len.load(Ordering::Acquire);
        if let Some(i) = self.find(name, published) {
            return Some(i);
        }
        if published == self.names.len() {
            return None;
        }
        self.names[published].set(name).ok()?;
        self.len.store(published + 1, Ordering::Release);
        Some(published)
    }

    fn find(&self, name: &str, upto: usize) -> Option<usize> {
        (0..upto).find(|&i| self.names[i].get().copied() == Some(name))
    }

    fn snapshot(&self) -> Vec<(usize, &'static str)> {
        let published = self.len.load(Ordering::Acquire);
        (0..published).filter_map(|i| self.names[i].get().map(|&n| (i, n))).collect()
    }
}

/// In-memory metrics recorder: atomic counters plus log₂-bucket latency
/// histograms, both keyed by `&'static str` names. `Display` renders the
/// diagnose-style report behind the figure binaries' `--telemetry` flag.
pub struct CounterRecorder {
    counter_slots: SlotTable,
    counter_values: Vec<AtomicU64>,
    hist_slots: SlotTable,
    hists: Vec<Hist>,
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub name: &'static str,
    pub value: u64,
}

/// Point-in-time contents of one latency histogram.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// `(upper_bound_ns, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (ns) of the bucket containing the q-quantile
    /// observation. Resolution is one log₂ bucket, which is plenty for
    /// order-of-magnitude phase profiles.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return upper;
            }
        }
        self.max_ns
    }
}

impl CounterRecorder {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        CounterRecorder {
            counter_slots: SlotTable::new(MAX_COUNTERS),
            counter_values: (0..MAX_COUNTERS).map(|_| AtomicU64::new(0)).collect(),
            hist_slots: SlotTable::new(MAX_HISTS),
            hists: (0..MAX_HISTS).map(|_| Hist::new()).collect(),
        }
    }

    /// Counters with non-zero registration, sorted by name.
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        let mut out: Vec<CounterSnapshot> = self
            .counter_slots
            .snapshot()
            .into_iter()
            .map(|(i, name)| CounterSnapshot { name, value: self.counter_values[i].load(Ordering::Relaxed) })
            .collect();
        out.sort_by_key(|c| c.name);
        out
    }

    /// Histograms with at least one registration, sorted by name.
    pub fn histograms(&self) -> Vec<HistogramSnapshot> {
        let mut out: Vec<HistogramSnapshot> = self
            .hist_slots
            .snapshot()
            .into_iter()
            .map(|(i, name)| {
                let h = &self.hists[i];
                let buckets = (0..HIST_BUCKETS)
                    .filter_map(|b| {
                        let n = h.buckets[b].load(Ordering::Relaxed);
                        (n > 0).then(|| (bucket_upper_ns(b), n))
                    })
                    .collect();
                HistogramSnapshot {
                    name,
                    count: h.count.load(Ordering::Relaxed),
                    sum_ns: h.sum_ns.load(Ordering::Relaxed),
                    max_ns: h.max_ns.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        out.sort_by_key(|h| h.name);
        out
    }

    /// Value of one counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters().iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }
}

impl Recorder for CounterRecorder {
    fn incr(&self, counter: &'static str, by: u64) {
        if let Some(i) = self.counter_slots.slot(counter) {
            self.counter_values[i].fetch_add(by, Ordering::Relaxed);
        }
    }

    fn observe_ns(&self, span: &'static str, ns: u64) {
        if let Some(i) = self.hist_slots.slot(span) {
            self.hists[i].record(ns);
        }
    }

    fn event(&self, kind: &'static str, _payload_json: &str) {
        // Metrics mode keeps a volume counter per event kind rather than the
        // payloads themselves; pair with a JsonlRecorder for full export.
        if let Some(i) = self.counter_slots.slot(kind) {
            self.counter_values[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl fmt::Display for CounterRecorder {
    /// Diagnose-style report: counters first, then per-span latency tables
    /// with a log₂ bucket bar chart.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry {}", "─".repeat(60))?;
        let counters = self.counters();
        if !counters.is_empty() {
            writeln!(f, "  counters")?;
            for c in &counters {
                writeln!(f, "    {:<44} {:>12}", c.name, c.value)?;
            }
        }
        let hists = self.histograms();
        if !hists.is_empty() {
            writeln!(
                f,
                "  {:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "spans", "count", "mean", "p50", "p99", "max"
            )?;
            for h in &hists {
                writeln!(
                    f,
                    "    {:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.quantile_ns(0.5)),
                    fmt_ns(h.quantile_ns(0.99)),
                    fmt_ns(h.max_ns),
                )?;
                let peak = h.buckets.iter().map(|&(_, n)| n).max().unwrap_or(1);
                for &(upper, n) in &h.buckets {
                    let bar = "█".repeat(((n * 24).div_ceil(peak)) as usize);
                    writeln!(f, "      <{:<9} {:<24} {}", fmt_ns(upper), bar, n)?;
                }
            }
        }
        if counters.is_empty() && hists.is_empty() {
            writeln!(f, "  (no events recorded)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_log2() {
        // Bucket 0 is exactly zero; each later bucket is [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Upper bounds match: a value lands strictly below its bucket bound.
        for ns in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789] {
            let idx = bucket_index(ns);
            assert!(ns < bucket_upper_ns(idx), "ns={ns} idx={idx}");
            if idx > 1 {
                assert!(ns >= bucket_upper_ns(idx - 1), "ns={ns} idx={idx}");
            }
        }
    }

    #[test]
    fn histogram_aggregates_are_exact() {
        let rec = CounterRecorder::new();
        for ns in [0u64, 1, 5, 5, 1000] {
            rec.observe_ns("h", ns);
        }
        let h = &rec.histograms()[0];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_ns, 1011);
        assert_eq!(h.max_ns, 1000);
        assert_eq!(h.mean_ns(), 202);
        // Buckets: 0ns → b0; 1 → b1; 5,5 → b3; 1000 → b10.
        assert_eq!(h.buckets, vec![(1, 1), (2, 1), (8, 2), (1024, 1)]);
        // Quantiles walk the cumulative bucket counts.
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.quantile_ns(0.5), 8);
        assert_eq!(h.quantile_ns(1.0), 1024);
    }

    #[test]
    fn concurrent_increments_from_many_threads_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let rec = Arc::new(CounterRecorder::new());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    // All threads race on the shared counter AND register
                    // their own, exercising both slot paths concurrently.
                    let own: &'static str = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"][t];
                    for _ in 0..PER_THREAD {
                        rec.incr("shared", 1);
                        rec.incr(own, 1);
                        rec.observe_ns("span", 100);
                    }
                });
            }
        });
        assert_eq!(rec.counter("shared"), THREADS as u64 * PER_THREAD);
        for t in 0..THREADS {
            assert_eq!(rec.counter(["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"][t]), PER_THREAD);
        }
        assert_eq!(rec.histograms()[0].count, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn slot_table_overflow_drops_silently() {
        let table = SlotTable::new(2);
        // Leak two distinct names to get 'static strs beyond literals.
        assert_eq!(table.slot("a"), Some(0));
        assert_eq!(table.slot("b"), Some(1));
        assert_eq!(table.slot("c"), None);
        assert_eq!(table.slot("a"), Some(0), "existing names still resolve when full");
    }

    #[test]
    fn event_counts_per_kind() {
        let rec = CounterRecorder::new();
        rec.event("trial", "{\"x\":1}");
        rec.event("trial", "{\"x\":2}");
        assert_eq!(rec.counter("trial"), 2);
    }

    #[test]
    fn display_renders_counters_and_spans() {
        let rec = CounterRecorder::new();
        rec.incr("outcomes.sdc", 3);
        rec.observe_ns("trial", 1500);
        let s = rec.to_string();
        assert!(s.contains("outcomes.sdc"));
        assert!(s.contains("trial"));
        assert!(s.contains("1.5us"));
    }
}
