//! Cross-process metrics aggregation.
//!
//! [`CounterRecorder`] is process-local; a sharded or `--isolate` campaign
//! has many processes each holding a slice of the telemetry. This module is
//! the merge side: [`MetricsSnapshot`] is a portable, name-keyed value type
//! (no `&'static str`, no atomics) that any process can serialize and ship,
//! and [`MetricsHub`] folds *cumulative* snapshots from many sources into
//! one aggregate. The supervisor keys sources by worker identity; a source
//! that re-sends replaces its previous contribution, so totals never
//! double-count a worker that reports repeatedly, while a *new* source (a
//! respawned worker) accumulates on top of whatever its predecessors left
//! behind.
//!
//! Like the rest of `phi-obs` this is `std`-only; the wire encoding of a
//! snapshot lives with the transport (the warden frame protocol in
//! `carolfi`), not here.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use crate::counters::{fmt_ns, percentile_from_buckets};

/// Portable contents of one latency histogram (the owned, mergeable
/// counterpart of [`crate::HistogramSnapshot`], keyed externally by name).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistData {
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    /// `(upper_bound_ns, count)` for every non-empty log₂ bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistData {
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Interpolated q-percentile, same estimator as
    /// [`crate::HistogramSnapshot::percentile`].
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_from_buckets(self.count, self.max_ns, &self.buckets, q)
    }

    /// Adds `other`'s observations to this histogram.
    pub fn merge(&mut self, other: &HistData) {
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.buckets = merge_buckets(&self.buckets, &other.buckets, |a, b| a + b);
    }

    /// Observations in `newer` but not in `older`, assuming both are
    /// cumulative snapshots of the same histogram. A shrinking count means
    /// the source restarted (counter rotation): the delta is then `newer`
    /// wholesale.
    pub fn delta(newer: &HistData, older: &HistData) -> HistData {
        if newer.count < older.count {
            return newer.clone();
        }
        HistData {
            count: newer.count - older.count,
            sum_ns: newer.sum_ns.saturating_sub(older.sum_ns),
            max_ns: newer.max_ns,
            buckets: merge_buckets(&newer.buckets, &older.buckets, |n, o| n.saturating_sub(o))
                .into_iter()
                .filter(|&(_, n)| n > 0)
                .collect(),
        }
    }
}

/// Merge-walk two ascending `(upper, count)` bucket lists, combining counts
/// of equal uppers with `op` (missing buckets count 0).
fn merge_buckets(a: &[(u64, u64)], b: &[(u64, u64)], op: impl Fn(u64, u64) -> u64) -> Vec<(u64, u64)> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    while i < a.len() || j < b.len() {
        let (upper, n) = match (a.get(i), b.get(j)) {
            (Some(&(ua, na)), Some(&(ub, nb))) if ua == ub => {
                i += 1;
                j += 1;
                (ua, op(na, nb))
            }
            (Some(&(ua, na)), Some(&(ub, _))) if ua < ub => {
                i += 1;
                (ua, op(na, 0))
            }
            (Some(_), Some(&(ub, nb))) => {
                j += 1;
                (ub, op(0, nb))
            }
            (Some(&(ua, na)), None) => {
                i += 1;
                (ua, op(na, 0))
            }
            (None, Some(&(ub, nb))) => {
                j += 1;
                (ub, op(0, nb))
            }
            (None, None) => unreachable!(),
        };
        out.push((upper, n));
    }
    out
}

/// Point-in-time value of every counter and histogram of one source, as an
/// owned, order-independent value. Name-sorted by construction (`BTreeMap`),
/// so two snapshots with the same contents compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub hists: BTreeMap<String, HistData>,
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Value of one counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds every counter and histogram of `other` into `self`.
    /// Commutative and associative up to equal results (proptested in
    /// `tests/hub_properties.rs`).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// `newer - older` for two cumulative snapshots of the same source.
    /// Reset-aware per name: a counter that shrank is taken wholesale from
    /// `newer` (the source rotated), so deltas are never negative.
    pub fn delta(newer: &MetricsSnapshot, older: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, &value) in &newer.counters {
            let base = older.counter(name);
            let d = if value >= base { value - base } else { value };
            if d > 0 {
                out.counters.insert(name.clone(), d);
            }
        }
        for (name, hist) in &newer.hists {
            let d = match older.hists.get(name) {
                Some(old) => HistData::delta(hist, old),
                None => hist.clone(),
            };
            if d.count > 0 {
                out.hists.insert(name.clone(), d);
            }
        }
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    /// The `--telemetry` footer: counters first, then a per-span latency
    /// table with interpolated percentiles.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry {}", "─".repeat(60))?;
        if !self.counters.is_empty() {
            writeln!(f, "  counters")?;
            for (name, value) in &self.counters {
                writeln!(f, "    {:<44} {:>12}", name, value)?;
            }
        }
        if !self.hists.is_empty() {
            writeln!(
                f,
                "  {:<22} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "spans", "count", "mean", "p50", "p95", "p99", "max"
            )?;
            for (name, h) in &self.hists {
                writeln!(
                    f,
                    "    {:<20} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    name,
                    h.count,
                    fmt_ns(h.mean_ns()),
                    fmt_ns(h.percentile(0.50)),
                    fmt_ns(h.percentile(0.95)),
                    fmt_ns(h.percentile(0.99)),
                    fmt_ns(h.max_ns),
                )?;
            }
        }
        if self.is_empty() {
            writeln!(f, "  (no events recorded)")?;
        }
        Ok(())
    }
}

/// Aggregator of cumulative [`MetricsSnapshot`]s from many sources (the
/// local process, shard workers, isolated warden workers). [`fold`] with the
/// same source key *replaces* that source's contribution — sources ship
/// cumulative state, so re-reports are idempotent — while distinct keys add
/// up. A respawned worker gets a fresh key, so everything its predecessors
/// reported stays in the totals.
///
/// [`fold`]: MetricsHub::fold
pub struct MetricsHub {
    sources: Mutex<BTreeMap<String, MetricsSnapshot>>,
}

impl MetricsHub {
    pub const fn new() -> Self {
        MetricsHub { sources: Mutex::new(BTreeMap::new()) }
    }

    /// Records `cumulative` as the latest state of `source`.
    pub fn fold(&self, source: &str, cumulative: MetricsSnapshot) {
        let mut sources = self.sources.lock().unwrap_or_else(|e| e.into_inner());
        sources.insert(source.to_string(), cumulative);
    }

    /// Sum over the latest snapshot of every source.
    pub fn merged(&self) -> MetricsSnapshot {
        let sources = self.sources.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = MetricsSnapshot::new();
        for snap in sources.values() {
            out.merge(snap);
        }
        out
    }

    /// Source keys currently folded, sorted.
    pub fn sources(&self) -> Vec<String> {
        self.sources.lock().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// Drops every source (tests and campaign boundaries).
    pub fn clear(&self) {
        self.sources.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

static HUB: MetricsHub = MetricsHub::new();

/// The process-global hub. Supervisors fold worker snapshots here; the
/// monitor endpoint and the `--telemetry` footer read [`merged_snapshot`].
pub fn hub() -> &'static MetricsHub {
    &HUB
}

/// Local recorder state (if the installed recorder keeps any) merged with
/// everything folded into the global hub — the whole-campaign view.
pub fn merged_snapshot() -> MetricsSnapshot {
    let mut snap = crate::snapshot().unwrap_or_default();
    snap.merge(&hub().merged());
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)], hist_ns: &[u64]) -> MetricsSnapshot {
        let rec = crate::CounterRecorder::new();
        // Names must be 'static for the recorder; route through fixed ones.
        for &(name, by) in counters {
            let name: &'static str = ["a", "b", "c", "d"][["a", "b", "c", "d"].iter().position(|&n| n == name).unwrap()];
            crate::Recorder::incr(&rec, name, by);
        }
        for &ns in hist_ns {
            crate::Recorder::observe_ns(&rec, "h", ns);
        }
        rec.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut x = snap(&[("a", 2), ("b", 1)], &[5, 1000]);
        let y = snap(&[("a", 3), ("c", 7)], &[5]);
        x.merge(&y);
        assert_eq!(x.counter("a"), 5);
        assert_eq!(x.counter("b"), 1);
        assert_eq!(x.counter("c"), 7);
        let h = &x.hists["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_ns, 1010);
        assert_eq!(h.max_ns, 1000);
        assert_eq!(h.buckets, vec![(8, 2), (1024, 1)]);
    }

    #[test]
    fn delta_is_exact_for_growing_sources_and_reset_aware() {
        let older = snap(&[("a", 2)], &[5]);
        let newer = snap(&[("a", 6), ("b", 1)], &[5, 5, 1000]);
        let d = MetricsSnapshot::delta(&newer, &older);
        assert_eq!(d.counter("a"), 4);
        assert_eq!(d.counter("b"), 1);
        assert_eq!(d.hists["h"].count, 2);
        assert_eq!(d.hists["h"].sum_ns, 1005);
        assert_eq!(d.hists["h"].buckets, vec![(8, 1), (1024, 1)]);

        // A shrinking counter means the source restarted: take newer as-is.
        let restarted = snap(&[("a", 1)], &[5]);
        let d = MetricsSnapshot::delta(&restarted, &newer);
        assert_eq!(d.counter("a"), 1);
        assert_eq!(d.hists["h"].count, 1);
    }

    #[test]
    fn hub_refold_replaces_but_new_sources_accumulate() {
        let hub = MetricsHub::new();
        hub.fold("w-1", snap(&[("a", 5)], &[]));
        hub.fold("w-1", snap(&[("a", 7)], &[])); // cumulative re-report
        assert_eq!(hub.merged().counter("a"), 7);
        hub.fold("w-2", snap(&[("a", 2)], &[]));
        assert_eq!(hub.merged().counter("a"), 9);
        assert_eq!(hub.sources(), vec!["w-1".to_string(), "w-2".to_string()]);
        hub.clear();
        assert!(hub.merged().is_empty());
    }

    #[test]
    fn display_renders_percentile_columns() {
        let s = snap(&[("a", 3)], &[1500]);
        let text = s.to_string();
        assert!(text.contains("p95"), "{text}");
        assert!(text.contains("1.5us"), "{text}");
        assert!(!text.contains('█'), "bucket bars were removed from the footer:\n{text}");
    }
}
