//! Campaign telemetry for the injection and beam pipelines.
//!
//! Observability layer in the spirit of the paper's experimental logging
//! discipline (§4.1: every run is logged; the analysis is only as good as
//! the telemetry). The design constraints, in order:
//!
//! 1. **Near-zero cost when off.** Telemetry is opt-in; campaign hot paths
//!    ([`carolfi::supervisor::run_trial`] runs millions of steps) must pay a
//!    single relaxed atomic load per event when no recorder is installed.
//!    `crates/bench/benches/telemetry_overhead.rs` holds that claim to
//!    account.
//! 2. **Zero dependencies.** `phi-obs` sits below every other crate
//!    (carolfi, beamsim, bench all record into it), so it uses only `std`.
//! 3. **Domain-agnostic.** Events are `&'static str` names, payloads are
//!    pre-serialized JSON; nothing in here knows what a trial is.
//!
//! Three recorders ship with the crate:
//!
//! * [`NullRecorder`] — explicit no-op (the implicit default is "nothing
//!   installed", which is cheaper still);
//! * [`CounterRecorder`] — lock-free atomic counters and log₂-bucket latency
//!   histograms keyed by static names, with a diagnose-style pretty printer
//!   (the `--telemetry` flag of the figure binaries);
//! * [`JsonlRecorder`] — buffered, thread-safe JSONL event stream with
//!   gapless per-event sequence numbers, the machine-readable export.
//!
//! Instrumentation sites use the free functions ([`incr`], [`observe_ns`],
//! [`event`]) and the [`span!`] guard macro; all of them forward to the
//! globally [`install`]ed recorder, if any.

mod counters;
mod hub;
mod jsonl;
mod report;

pub use counters::{CounterRecorder, CounterSnapshot, HistogramSnapshot, HIST_BUCKETS};
pub use hub::{hub, merged_snapshot, HistData, MetricsHub, MetricsSnapshot};
pub use jsonl::{JsonlRecorder, SharedBuf};
pub use report::{CampaignReport, ReportBuilder};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Sink for telemetry. Implementations must be cheap and non-blocking-ish:
/// they are called from campaign worker threads.
pub trait Recorder: Send + Sync {
    /// Adds `by` to the named monotonic counter.
    fn incr(&self, counter: &'static str, by: u64);

    /// Records one duration observation for the named span.
    fn observe_ns(&self, span: &'static str, ns: u64);

    /// Records a structured event; `payload_json` must be valid JSON (the
    /// callers serialize with `serde_json` before handing it over).
    fn event(&self, kind: &'static str, payload_json: &str);

    /// Point-in-time aggregate state, for recorders that keep any (the
    /// [`CounterRecorder`] does; streaming recorders return `None`). This
    /// is what isolated workers ship to the supervisor's [`MetricsHub`].
    fn snapshot(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// A recorder that drops everything. Useful to keep the enabled-path code
/// exercised (e.g. in overhead benches) without accumulating state.
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn incr(&self, _: &'static str, _: u64) {}
    fn observe_ns(&self, _: &'static str, _: u64) {}
    fn event(&self, _: &'static str, _: &str) {}
}

/// Fast-path gate. `false` (the default) means every telemetry call is a
/// single relaxed load and a predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Installs `recorder` as the global sink and enables telemetry.
pub fn install(recorder: Arc<dyn Recorder>) {
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables telemetry and returns the previously installed recorder (so a
/// caller can drain/flush/print it).
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::SeqCst);
    RECORDER.write().unwrap_or_else(|e| e.into_inner()).take()
}

/// Whether a recorder is installed. Instrumentation sites may use this to
/// skip *preparing* expensive payloads (e.g. serializing a record) — the
/// recording functions below already gate themselves.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[cold]
#[inline(never)]
fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if let Some(r) = RECORDER.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        f(&**r);
    }
}

/// Adds `by` to a named counter on the installed recorder, if any.
#[inline]
pub fn incr(counter: &'static str, by: u64) {
    if enabled() {
        with_recorder(|r| r.incr(counter, by));
    }
}

/// Records a span duration on the installed recorder, if any.
#[inline]
pub fn observe_ns(span: &'static str, ns: u64) {
    if enabled() {
        with_recorder(|r| r.observe_ns(span, ns));
    }
}

/// Records a structured JSON event on the installed recorder, if any.
#[inline]
pub fn event(kind: &'static str, payload_json: &str) {
    if enabled() {
        with_recorder(|r| r.event(kind, payload_json));
    }
}

/// Snapshot of the installed recorder's aggregate state, if it keeps any.
/// Off the hot path (called at monitor/footer cadence), so it reads the
/// recorder lock directly rather than the `enabled` gate.
pub fn snapshot() -> Option<MetricsSnapshot> {
    RECORDER.read().unwrap_or_else(|e| e.into_inner()).as_ref().and_then(|r| r.snapshot())
}

/// RAII timing guard: measures from construction to drop and feeds the
/// duration into the named histogram. When telemetry is disabled at
/// construction it never reads the clock.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    #[inline]
    pub fn new(name: &'static str) -> Self {
        Span { name, start: if enabled() { Some(Instant::now()) } else { None } }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            observe_ns(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a [`Span`] timing guard: `let _span = obs::span!("trial");`.
/// The guard records into the histogram named by its argument on drop —
/// including drops during unwinding, so crashed trials still report their
/// phase timings.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::new($name)
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard};

    /// The recorder is process-global; tests that install one serialize on
    /// this so `cargo test`'s thread pool can't interleave them.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_inert() {
        let _guard = test_lock::hold();
        uninstall();
        assert!(!enabled());
        // None of these may panic or record anywhere.
        incr("c", 1);
        observe_ns("s", 10);
        event("e", "{}");
        let _span = span!("s2");
    }

    #[test]
    fn install_routes_to_recorder_and_uninstall_returns_it() {
        let _guard = test_lock::hold();
        let rec = Arc::new(CounterRecorder::new());
        install(rec.clone());
        assert!(enabled());
        incr("unit.test.counter", 2);
        incr("unit.test.counter", 3);
        {
            let _span = span!("unit.test.span");
        }
        let back = uninstall().expect("recorder was installed");
        assert!(!enabled());
        drop(back);
        let counters = rec.counters();
        let c = counters.iter().find(|c| c.name == "unit.test.counter").unwrap();
        assert_eq!(c.value, 5);
        let hists = rec.histograms();
        assert_eq!(hists.iter().find(|h| h.name == "unit.test.span").unwrap().count, 1);
    }

    #[test]
    fn span_survives_unwinding() {
        let _guard = test_lock::hold();
        let rec = Arc::new(CounterRecorder::new());
        install(rec.clone());
        let _ = std::panic::catch_unwind(|| {
            let _span = span!("unit.unwind.span");
            panic!("boom");
        });
        uninstall();
        assert_eq!(rec.histograms().iter().find(|h| h.name == "unit.unwind.span").unwrap().count, 1);
    }

    #[test]
    fn null_recorder_accepts_everything() {
        let r = NullRecorder;
        r.incr("a", 1);
        r.observe_ns("b", 2);
        r.event("c", "{}");
    }
}
