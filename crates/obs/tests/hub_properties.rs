//! Property tests for the cross-process metrics hub (DESIGN.md §10):
//! snapshot merge/delta arithmetic must behave like a commutative monoid
//! with an exact reset-aware difference, or the supervisor's fold of
//! worker frames would drift from the single-process truth.

use obs::{CounterRecorder, MetricsSnapshot, Recorder};
use proptest::prelude::*;

/// Fixed name universe — recorder names must be `&'static str`.
const COUNTERS: [&str; 4] = ["warden/spawned", "pool/hits", "single/sdc", "zero/masked"];
const SPANS: [&str; 3] = ["trial", "golden", "trial_wall"];

/// One recorded op: counter increment or span observation, drawn from the
/// fixed name universe by index.
fn apply(rec: &CounterRecorder, ops: &[(u64, u64, u64)]) {
    for &(kind, name, value) in ops {
        if kind % 2 == 0 {
            rec.incr(COUNTERS[(name % COUNTERS.len() as u64) as usize], value % 1_000);
        } else {
            rec.observe_ns(SPANS[(name % SPANS.len() as u64) as usize], value % 5_000_000);
        }
    }
}

fn snap(ops: &[(u64, u64, u64)]) -> MetricsSnapshot {
    let rec = CounterRecorder::new();
    apply(&rec, ops);
    rec.snapshot()
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn ops() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..40)
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(a in ops(), b in ops(), c in ops()) {
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        prop_assert_eq!(merged(&merged(&sa, &sb), &sc), merged(&sa, &merged(&sb, &sc)));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
    }

    #[test]
    fn empty_is_the_merge_identity_and_self_delta_is_empty(a in ops()) {
        let sa = snap(&a);
        let empty = MetricsSnapshot::new();
        prop_assert_eq!(merged(&sa, &empty), sa.clone());
        prop_assert_eq!(merged(&empty, &sa), sa.clone());
        prop_assert!(MetricsSnapshot::delta(&sa, &sa).is_empty());
    }

    #[test]
    fn merging_per_source_snapshots_equals_one_recorder_seeing_everything(a in ops(), b in ops()) {
        // Two workers each recording their slice, folded, must equal one
        // process recording both slices — the hub's core soundness claim.
        let both: Vec<_> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged(&snap(&a), &snap(&b)), snap(&both));
    }

    #[test]
    fn delta_of_a_cumulative_extension_is_exactly_the_new_ops(prefix in ops(), extra in ops()) {
        // A worker's periodic frames are cumulative: frame N+1 = frame N
        // plus whatever happened in between. delta() must recover exactly
        // the in-between part, and folding it back must reconstruct N+1.
        let rec = CounterRecorder::new();
        apply(&rec, &prefix);
        let older = rec.snapshot();
        apply(&rec, &extra);
        let newer = rec.snapshot();
        let d = MetricsSnapshot::delta(&newer, &older);
        let expect = snap(&extra);
        prop_assert_eq!(&d.counters, &expect.counters);
        prop_assert_eq!(d.hists.keys().collect::<Vec<_>>(), expect.hists.keys().collect::<Vec<_>>());
        for (name, h) in &d.hists {
            let e = &expect.hists[name];
            prop_assert_eq!(h.count, e.count);
            prop_assert_eq!(h.sum_ns, e.sum_ns);
            prop_assert_eq!(&h.buckets, &e.buckets);
            // The delta window's true max is unknowable from cumulative
            // state; delta carries the source's running max as the bound.
            prop_assert_eq!(h.max_ns, newer.hists[name].max_ns);
            prop_assert!(h.max_ns >= e.max_ns);
        }
        prop_assert_eq!(merged(&older, &d), newer);
    }

    #[test]
    fn delta_never_goes_negative_across_rotation(a in ops(), b in ops()) {
        // Arbitrary old/new pairs model a source that restarted (rotation):
        // every surviving delta entry must be positive-and-meaningful, and
        // a shrunken counter must fall back to the restarted value.
        let (older, newer) = (snap(&a), snap(&b));
        let d = MetricsSnapshot::delta(&newer, &older);
        for (name, &v) in &d.counters {
            prop_assert!(v > 0, "zero-delta counter {name} should be omitted");
            let (new_v, old_v) = (newer.counter(name), older.counter(name));
            prop_assert_eq!(v, if new_v >= old_v { new_v - old_v } else { new_v });
        }
        for (name, h) in &d.hists {
            prop_assert!(h.count > 0, "empty-delta hist {name} should be omitted");
            let (new_h, old_count) = (&newer.hists[name], older.hists.get(name).map_or(0, |h| h.count));
            if new_h.count < old_count {
                // Rotation fallback: the restarted source's state, wholesale.
                prop_assert_eq!(h, new_h);
            } else {
                prop_assert_eq!(h.count, new_h.count - old_count);
            }
        }
    }

    #[test]
    fn concurrent_increments_are_consistent_with_the_serial_sum(per_thread in ops(), threads in 1usize..6) {
        // N threads racing the same ops on one recorder must lose nothing:
        // the result equals the serial application of all N copies.
        let rec = CounterRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| apply(&rec, &per_thread));
            }
        });
        let serial = CounterRecorder::new();
        for _ in 0..threads {
            apply(&serial, &per_thread);
        }
        prop_assert_eq!(rec.snapshot(), serial.snapshot());
    }
}
