//! FIT / MTBF algebra and machine-scale extrapolation (paper §4.1–§4.2).
//!
//! Beam methodology: the cross-section `σ = N_events / Φ` (events per unit
//! fluence) scales to the natural environment as `FIT = σ × flux × 10⁹`,
//! with the reference sea-level flux of 13 n/(cm²·h) (JESD89A, paper §2.1).
//! The paper extrapolates the measured FIT to a Trinity-sized machine
//! (19 000 Xeon Phis ⇒ an LUD SDC or HotSpot DUE every 11–12 days) and to a
//! 10× exascale machine (⇒ almost daily events).

use crate::stats::{poisson95, Interval};
use serde::{Deserialize, Serialize};

/// Reference sea-level neutron flux, n/(cm²·h) (JESD89A; paper §2.1).
pub const SEA_LEVEL_FLUX: f64 = 13.0;
/// Hours per 10⁹ device-hours (the FIT normalisation).
pub const FIT_HOURS: f64 = 1e9;
/// Trinity-scale board count used in §4.2.
pub const TRINITY_BOARDS: usize = 19_000;

/// A FIT-rate estimate from a counted number of events over a fluence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitEstimate {
    /// Events observed (SDCs or DUEs).
    pub events: usize,
    /// Total fluence the device absorbed, n/cm².
    pub fluence: f64,
    /// Natural flux to scale to, n/(cm²·h).
    pub flux: f64,
}

impl FitEstimate {
    /// Standard sea-level estimate.
    pub fn sea_level(events: usize, fluence: f64) -> Self {
        FitEstimate { events, fluence, flux: SEA_LEVEL_FLUX }
    }

    /// Cross-section σ in cm².
    pub fn cross_section(&self) -> f64 {
        self.events as f64 / self.fluence
    }

    /// Failures in 10⁹ device-hours.
    pub fn fit(&self) -> f64 {
        self.cross_section() * self.flux * FIT_HOURS
    }

    /// 95 % interval on the FIT (Poisson on the event count).
    pub fn fit_interval(&self) -> Interval {
        let iv = poisson95(self.events);
        let scale = self.flux * FIT_HOURS / self.fluence;
        Interval { estimate: iv.estimate * scale, lo: iv.lo * scale, hi: iv.hi * scale }
    }

    /// Mean time between failures for one device, hours.
    pub fn mtbf_hours(&self) -> f64 {
        FIT_HOURS / self.fit()
    }
}

/// Extrapolation of a per-device FIT to a machine of `boards` devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineProjection {
    pub boards: usize,
    pub per_device_fit: f64,
}

impl MachineProjection {
    pub fn trinity(per_device_fit: f64) -> Self {
        MachineProjection { boards: TRINITY_BOARDS, per_device_fit }
    }

    /// Machine-level MTBF in hours (failure rates add across boards).
    pub fn mtbf_hours(&self) -> f64 {
        FIT_HOURS / (self.per_device_fit * self.boards as f64)
    }

    /// Machine-level MTBF in days.
    pub fn mtbf_days(&self) -> f64 {
        self.mtbf_hours() / 24.0
    }

    /// The same machine scaled by a factor (the paper's 10× exascale case).
    pub fn scaled(&self, factor: usize) -> Self {
        MachineProjection { boards: self.boards * factor, per_device_fit: self.per_device_fit }
    }
}

/// Converts accelerated-beam exposure to equivalent natural-environment
/// hours: `fluence / natural_flux` (the paper's "57,000 years" per board).
pub fn natural_equivalent_hours(fluence: f64, natural_flux: f64) -> f64 {
    fluence / natural_flux
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_matches_hand_computation() {
        // σ = 100 events / 1e12 n/cm² = 1e-10 cm²;
        // FIT = 1e-10 × 13 × 1e9 = 1.3.
        let est = FitEstimate::sea_level(100, 1e12);
        assert!((est.fit() - 1.3).abs() < 1e-9);
        assert!((est.cross_section() - 1e-10).abs() < 1e-22);
    }

    #[test]
    fn paper_trinity_projection_order_of_magnitude() {
        // §4.2: LUD's ~193 FIT over 19,000 boards ⇒ an event every ~11 days.
        let proj = MachineProjection::trinity(193.0);
        let days = proj.mtbf_days();
        assert!((10.0..13.0).contains(&days), "got {days} days");
    }

    #[test]
    fn exascale_scaling_makes_events_near_daily() {
        let proj = MachineProjection::trinity(193.0).scaled(10);
        assert!(proj.mtbf_days() < 1.5, "got {} days", proj.mtbf_days());
    }

    #[test]
    fn paper_beam_time_equivalence() {
        // §4.1: ≥500 h of beam at 1e5–2.5e6 n/cm²/s covers ≥5e8 natural
        // hours (~57,000 years).
        let beam_seconds = 500.0 * 3600.0;
        let fluence = 1e5 * beam_seconds; // most conservative flux
        let hours = natural_equivalent_hours(fluence, SEA_LEVEL_FLUX);
        assert!(hours >= 1.3e7, "got {hours}");
        let fluence_hi = 2.5e6 * beam_seconds;
        let hours_hi = natural_equivalent_hours(fluence_hi, SEA_LEVEL_FLUX);
        assert!(hours_hi >= 5e8, "got {hours_hi}");
    }

    #[test]
    fn mtbf_is_inverse_of_fit() {
        let est = FitEstimate::sea_level(130, 1e13);
        let fit = est.fit();
        assert!((est.mtbf_hours() - 1e9 / fit).abs() < 1e-6);
    }

    #[test]
    fn interval_scales_with_counts() {
        let a = FitEstimate::sea_level(100, 1e12).fit_interval();
        // Paper: ≥100 events keeps the 95% CI under ~20% of the estimate.
        assert!((a.hi - a.lo) / a.estimate < 0.45);
        let b = FitEstimate::sea_level(10_000, 1e14).fit_interval();
        assert!((b.hi - b.lo) / b.estimate < 0.05);
    }
}
