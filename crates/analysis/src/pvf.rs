//! Program Vulnerability Factors over campaign records
//! (paper Fig. 4, Fig. 5, Fig. 6 and the §6 per-variable-class text).
//!
//! The PVF of a group of injections is the fraction that produced a given
//! outcome (SDC or DUE). Grouping by fault model reproduces Fig. 5; by
//! execution-time window, Fig. 6 ("Figures 6a and 6b show the PVF for each
//! time window, not … the contribution of each time window to the benchmark
//! PVF, which is why the sum of percentages is higher than 100%"); by
//! variable class, the per-portion criticality analysis of §6.

use crate::stats::{wilson95, Interval};
use carolfi::models::FaultModel;
use carolfi::record::{OutcomeRecord, TrialRecord};
use carolfi::target::VarClass;
use std::collections::BTreeMap;

/// Masked / SDC / DUE fractions (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeBreakdown {
    pub trials: usize,
    pub masked: usize,
    pub sdc: usize,
    pub due: usize,
}

impl OutcomeBreakdown {
    pub fn of<'a>(records: impl IntoIterator<Item = &'a TrialRecord>) -> Self {
        let mut b = OutcomeBreakdown { trials: 0, masked: 0, sdc: 0, due: 0 };
        for r in records {
            b.trials += 1;
            match &r.outcome {
                OutcomeRecord::Masked | OutcomeRecord::HardwareMasked => b.masked += 1,
                OutcomeRecord::Sdc(_) => b.sdc += 1,
                OutcomeRecord::Due(_) => b.due += 1,
            }
        }
        b
    }

    pub fn masked_pct(&self) -> f64 {
        100.0 * self.masked as f64 / self.trials.max(1) as f64
    }
    pub fn sdc_pct(&self) -> f64 {
        100.0 * self.sdc as f64 / self.trials.max(1) as f64
    }
    pub fn due_pct(&self) -> f64 {
        100.0 * self.due as f64 / self.trials.max(1) as f64
    }

    /// Wilson 95 % interval on the SDC fraction.
    pub fn sdc_interval(&self) -> Interval {
        wilson95(self.sdc, self.trials)
    }

    /// Wilson 95 % interval on the DUE fraction.
    pub fn due_interval(&self) -> Interval {
        wilson95(self.due, self.trials)
    }
}

/// A PVF value for one group of injections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pvf {
    pub trials: usize,
    pub events: usize,
}

impl Pvf {
    pub fn percent(&self) -> f64 {
        100.0 * self.events as f64 / self.trials.max(1) as f64
    }
    pub fn interval(&self) -> Interval {
        wilson95(self.events, self.trials)
    }
}

/// Which outcome a PVF counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PvfKind {
    Sdc,
    Due,
}

fn counts(records: &[&TrialRecord], kind: PvfKind) -> Pvf {
    let events = records
        .iter()
        .filter(|r| match kind {
            PvfKind::Sdc => r.outcome.is_sdc(),
            PvfKind::Due => r.outcome.is_due(),
        })
        .count();
    Pvf { trials: records.len(), events }
}

/// PVFs grouped along one axis (model, window, or variable class).
#[derive(Debug, Clone)]
pub struct PvfTable<K: Ord> {
    pub groups: BTreeMap<K, Pvf>,
}

impl<K: Ord + Copy> PvfTable<K> {
    pub fn get(&self, key: K) -> Option<Pvf> {
        self.groups.get(&key).copied()
    }
}

/// Fig. 5: PVF per fault model.
pub fn by_model(records: &[TrialRecord], kind: PvfKind) -> PvfTable<FaultModel> {
    let mut groups: BTreeMap<FaultModel, Vec<&TrialRecord>> = BTreeMap::new();
    for r in records {
        if let Some(m) = r.model {
            groups.entry(m).or_default().push(r);
        }
    }
    PvfTable { groups: groups.into_iter().map(|(k, v)| (k, counts(&v, kind))).collect() }
}

/// Fig. 6: PVF per execution-time window.
pub fn by_window(records: &[TrialRecord], kind: PvfKind) -> PvfTable<usize> {
    let mut groups: BTreeMap<usize, Vec<&TrialRecord>> = BTreeMap::new();
    for r in records {
        groups.entry(r.window).or_default().push(r);
    }
    PvfTable { groups: groups.into_iter().map(|(k, v)| (k, counts(&v, kind))).collect() }
}

/// §6 text: PVF per variable class (only trials whose fault reached
/// architectural state carry a class).
pub fn by_class(records: &[TrialRecord], kind: PvfKind) -> PvfTable<VarClass> {
    let mut groups: BTreeMap<VarClass, Vec<&TrialRecord>> = BTreeMap::new();
    for r in records {
        if let Some(inj) = &r.injection {
            groups.entry(inj.var_class).or_default().push(r);
        }
    }
    PvfTable { groups: groups.into_iter().map(|(k, v)| (k, counts(&v, kind))).collect() }
}

/// Share of all SDC (or DUE) events attributable to each variable class —
/// the "charge and distance arrays are responsible for 57% of the SDCs"
/// style of statement in §6.
pub fn event_share_by_class(records: &[TrialRecord], kind: PvfKind) -> BTreeMap<VarClass, f64> {
    let mut per_class: BTreeMap<VarClass, usize> = BTreeMap::new();
    let mut total = 0usize;
    for r in records {
        let is_event = match kind {
            PvfKind::Sdc => r.outcome.is_sdc(),
            PvfKind::Due => r.outcome.is_due(),
        };
        if is_event {
            if let Some(inj) = &r.injection {
                *per_class.entry(inj.var_class).or_insert(0) += 1;
                total += 1;
            }
        }
    }
    per_class.into_iter().map(|(k, v)| (k, v as f64 / total.max(1) as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use carolfi::models::InjectionDetail;
    use carolfi::record::{DiffSummary, DueKind};

    fn record(model: FaultModel, window: usize, class: VarClass, outcome: OutcomeRecord) -> TrialRecord {
        TrialRecord {
            trial: 0,
            benchmark: "t".into(),
            model: Some(model),
            mechanism: model.label().into(),
            inject_step: window,
            total_steps: 4,
            window,
            n_windows: 4,
            injection: Some(InjectionDetail {
                var_name: "v".into(),
                var_class: class,
                frame: "<global>".into(),
                thread: None,
                decl: "f:1".into(),
                elem_index: 0,
                bits: vec![0],
                mechanism: model.label().into(),
            }),
            outcome,
            executed_steps: 4,
        }
    }

    fn sdc() -> OutcomeRecord {
        OutcomeRecord::Sdc(DiffSummary::from_mismatches(
            &[carolfi::output::Mismatch { coord: [0, 0, 0], expected: 0.0, got: 1.0, rel_err: 1.0 }],
            [2, 2, 1],
        ))
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let rs = vec![
            record(FaultModel::Single, 0, VarClass::Matrix, sdc()),
            record(FaultModel::Double, 1, VarClass::Matrix, OutcomeRecord::Masked),
            record(FaultModel::Zero, 2, VarClass::ControlVariable, OutcomeRecord::Due(DueKind::Timeout)),
            record(FaultModel::Random, 3, VarClass::ControlVariable, OutcomeRecord::Masked),
        ];
        let b = OutcomeBreakdown::of(&rs);
        assert_eq!(b.trials, 4);
        assert!((b.masked_pct() + b.sdc_pct() + b.due_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn model_pvf_separates_models() {
        let rs = vec![
            record(FaultModel::Single, 0, VarClass::Matrix, sdc()),
            record(FaultModel::Single, 0, VarClass::Matrix, sdc()),
            record(FaultModel::Zero, 0, VarClass::Matrix, OutcomeRecord::Masked),
        ];
        let t = by_model(&rs, PvfKind::Sdc);
        assert_eq!(t.get(FaultModel::Single).unwrap().percent(), 100.0);
        assert_eq!(t.get(FaultModel::Zero).unwrap().percent(), 0.0);
    }

    #[test]
    fn window_pvf_is_per_window_not_contribution() {
        // One SDC in each of two windows with one trial each -> both 100%;
        // the "sum over windows" exceeds 100% exactly as the paper notes.
        let rs = vec![record(FaultModel::Single, 0, VarClass::Matrix, sdc()), record(FaultModel::Single, 1, VarClass::Matrix, sdc())];
        let t = by_window(&rs, PvfKind::Sdc);
        let total: f64 = t.groups.values().map(|p| p.percent()).sum();
        assert!(total > 100.0);
    }

    #[test]
    fn class_share_sums_to_one() {
        let rs = vec![
            record(FaultModel::Single, 0, VarClass::Matrix, sdc()),
            record(FaultModel::Single, 0, VarClass::Matrix, sdc()),
            record(FaultModel::Single, 0, VarClass::ControlVariable, sdc()),
            record(FaultModel::Single, 0, VarClass::ControlVariable, OutcomeRecord::Masked),
        ];
        let share = event_share_by_class(&rs, PvfKind::Sdc);
        let total: f64 = share.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((share[&VarClass::Matrix] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn due_pvf_counts_due_only() {
        let rs = vec![
            record(FaultModel::Random, 0, VarClass::Matrix, OutcomeRecord::Due(DueKind::Timeout)),
            record(FaultModel::Random, 0, VarClass::Matrix, sdc()),
        ];
        let t = by_model(&rs, PvfKind::Due);
        assert_eq!(t.get(FaultModel::Random).unwrap().percent(), 50.0);
    }
}
