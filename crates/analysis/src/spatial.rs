//! Spatial classification of corrupted outputs (paper §4.3, Fig. 2).
//!
//! "We categorize the outputs as having one of five failure patterns:
//! (i) *single*, when a single output value is wrong; (ii) *line*, when more
//! than one value in a row or column of an output matrix is wrong;
//! (iii) *square*, when more than one value in two dimensions of an output
//! matrix is wrong; (iv) *cubic*, when more than one value in three
//! dimensions of the output matrices is wrong; and (v) *random*, when more
//! than one value is wrong but with no clear pattern."
//!
//! The classifier works from the compact [`DiffSummary`] geometry: the
//! number of distinct coordinates touched per dimension separates
//! single/line/square/cubic; the corrupted-cell density inside the bounding
//! box separates a coherent square/cubic *region* from a scattered *random*
//! spray.

use carolfi::record::DiffSummary;
use serde::{Deserialize, Serialize};

/// The five output-error patterns of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpatialPattern {
    Single,
    Line,
    Square,
    Cubic,
    Random,
}

impl SpatialPattern {
    pub const ALL: [SpatialPattern; 5] =
        [SpatialPattern::Cubic, SpatialPattern::Square, SpatialPattern::Line, SpatialPattern::Single, SpatialPattern::Random];

    pub fn label(self) -> &'static str {
        match self {
            SpatialPattern::Single => "single",
            SpatialPattern::Line => "line",
            SpatialPattern::Square => "square",
            SpatialPattern::Cubic => "cubic",
            SpatialPattern::Random => "random",
        }
    }
}

impl std::fmt::Display for SpatialPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Minimum corrupted-cell density inside the bounding box for a
/// multi-dimensional spread to count as a coherent square/cubic region
/// rather than a random spray.
pub const REGION_DENSITY_THRESHOLD: f64 = 0.25;

/// Classifies one SDC's corruption geometry.
pub fn classify(s: &DiffSummary) -> SpatialPattern {
    if s.wrong == 1 {
        return SpatialPattern::Single;
    }
    let spread = [s.distinct[0] > 1, s.distinct[1] > 1, s.distinct[2] > 1];
    let dims_spread = spread.iter().filter(|&&b| b).count();
    match dims_spread {
        0 => SpatialPattern::Single, // duplicate coords cannot happen, but be safe
        1 => SpatialPattern::Line,
        2 => {
            if s.density() >= REGION_DENSITY_THRESHOLD {
                SpatialPattern::Square
            } else {
                SpatialPattern::Random
            }
        }
        _ => {
            if s.density() >= REGION_DENSITY_THRESHOLD {
                SpatialPattern::Cubic
            } else {
                SpatialPattern::Random
            }
        }
    }
}

/// Pattern histogram over a set of SDC summaries.
pub fn histogram<'a>(summaries: impl IntoIterator<Item = &'a DiffSummary>) -> std::collections::BTreeMap<SpatialPattern, usize> {
    let mut h = std::collections::BTreeMap::new();
    for s in summaries {
        *h.entry(classify(s)).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use carolfi::output::Mismatch;

    fn summary(coords: &[[usize; 3]], dims: [usize; 3]) -> DiffSummary {
        let ms: Vec<Mismatch> =
            coords.iter().map(|&coord| Mismatch { coord, expected: 1.0, got: 2.0, rel_err: 1.0 }).collect();
        DiffSummary::from_mismatches(&ms, dims)
    }

    #[test]
    fn one_wrong_value_is_single() {
        let s = summary(&[[3, 4, 0]], [8, 8, 1]);
        assert_eq!(classify(&s), SpatialPattern::Single);
    }

    #[test]
    fn row_and_column_runs_are_lines() {
        let row: Vec<[usize; 3]> = (0..6).map(|j| [2, j, 0]).collect();
        assert_eq!(classify(&summary(&row, [8, 8, 1])), SpatialPattern::Line);
        let col: Vec<[usize; 3]> = (0..5).map(|i| [i, 7, 0]).collect();
        assert_eq!(classify(&summary(&col, [8, 8, 1])), SpatialPattern::Line);
    }

    #[test]
    fn broken_line_is_still_a_line() {
        // "more than one value in a row or column" — gaps allowed.
        let row: Vec<[usize; 3]> = vec![[2, 0, 0], [2, 3, 0], [2, 7, 0]];
        assert_eq!(classify(&summary(&row, [8, 8, 1])), SpatialPattern::Line);
    }

    #[test]
    fn dense_block_is_square() {
        let mut cs = Vec::new();
        for i in 2..5 {
            for j in 3..7 {
                cs.push([i, j, 0]);
            }
        }
        assert_eq!(classify(&summary(&cs, [16, 16, 1])), SpatialPattern::Square);
    }

    #[test]
    fn scattered_spray_is_random() {
        let cs = [[0, 0, 0], [5, 9, 0], [11, 2, 0], [15, 15, 0]];
        assert_eq!(classify(&summary(&cs, [16, 16, 1])), SpatialPattern::Random);
    }

    #[test]
    fn dense_3d_block_is_cubic() {
        let mut cs = Vec::new();
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..3 {
                    cs.push([i, j, k]);
                }
            }
        }
        assert_eq!(classify(&summary(&cs, [4, 4, 8])), SpatialPattern::Cubic);
    }

    #[test]
    fn sparse_3d_spray_is_random() {
        let cs = [[0, 0, 0], [3, 3, 7], [1, 2, 5], [2, 0, 3]];
        assert_eq!(classify(&summary(&cs, [4, 4, 8])), SpatialPattern::Random);
    }

    #[test]
    fn two_d_output_never_classifies_cubic() {
        // A 2-D output has distinct[2] == 1 always.
        let mut cs = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                cs.push([i, j, 0]);
            }
        }
        assert_ne!(classify(&summary(&cs, [8, 8, 1])), SpatialPattern::Cubic);
    }

    #[test]
    fn histogram_counts_all() {
        let sums = vec![summary(&[[0, 0, 0]], [4, 4, 1]), summary(&[[1, 0, 0], [1, 1, 0]], [4, 4, 1])];
        let h = histogram(&sums);
        assert_eq!(h[&SpatialPattern::Single], 1);
        assert_eq!(h[&SpatialPattern::Line], 1);
    }
}
