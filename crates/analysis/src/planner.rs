//! Adaptive stratified campaign planner (DESIGN.md §12).
//!
//! The paper sizes every injection campaign to a fixed trial count chosen
//! for the *worst-case* stratum (§6's 10 000-trial rule), which wastes
//! trials on strata whose outcome mix converges early and under-samples the
//! rare ones. [`WilsonPlanner`] treats PVF estimation as a two-level
//! sampling problem instead: the trial horizon is stratified by
//! (fault model × time window), each stratum maintains a 95 % Wilson score
//! interval per outcome class (masked / hw-masked / SDC / DUE), every batch
//! goes to the stratum whose widest interval is widest, and a stratum
//! closes once all four intervals are inside the target width.
//!
//! Determinism contract (what the adaptive orchestrator's journal replay
//! relies on): a planner's decision sequence is a pure function of its
//! construction parameters and the sequence of records fed to
//! [`AllocationPlanner::observe`]. Nothing here reads a clock, an RNG or
//! global state; ties between equally wide strata resolve to the lowest
//! stratum index.

use crate::stats::{clopper_pearson95, wilson95, Interval};
use carolfi::adaptive::{AllocationPlanner, PlanDecision};
use carolfi::campaign::{trial_stratum, CampaignConfig};
use carolfi::monitor::PlannerStatus;
use carolfi::record::{OutcomeRecord, TrialRecord};

/// Default trials per allocation decision. Small enough that the planner
/// re-evaluates interval widths frequently, large enough to keep the worker
/// pool busy between decisions.
pub const DEFAULT_BATCH: usize = 32;

/// Which 95 % binomial interval the planner's stopping rule measures.
///
/// Wilson (the default) is the score interval the paper's error-bar sizing
/// approximates; Clopper–Pearson is the exact interval — guaranteed ≥ 95 %
/// coverage, always at least as wide, so strata close later but never on an
/// under-covering interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CiMethod {
    #[default]
    Wilson,
    ClopperPearson,
}

impl CiMethod {
    /// Parses the CLI/spec label (`wilson` / `clopper-pearson`).
    pub fn parse(label: &str) -> Option<CiMethod> {
        match label {
            "wilson" => Some(CiMethod::Wilson),
            "clopper-pearson" => Some(CiMethod::ClopperPearson),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            CiMethod::Wilson => "wilson",
            CiMethod::ClopperPearson => "clopper-pearson",
        }
    }

    /// The 95 % interval this method assigns to `successes`/`trials`.
    pub fn interval(self, successes: usize, trials: usize) -> Interval {
        match self {
            CiMethod::Wilson => wilson95(successes, trials),
            CiMethod::ClopperPearson => clopper_pearson95(successes, trials),
        }
    }
}

/// One stratum's sampling state.
struct Stratum {
    label: String,
    /// Trial indices belonging to this stratum, ascending. The prefix up to
    /// `cursor` has been handed out in previous batches.
    members: Vec<usize>,
    cursor: usize,
    n: usize,
    masked: usize,
    hw_masked: usize,
    sdc: usize,
    due: usize,
}

impl Stratum {
    /// Widest 95 % interval (under `method`) across the four outcome
    /// classes — the quantity the planner drives below the target. 1.0
    /// before the first observation.
    fn width(&self, method: CiMethod) -> f64 {
        [self.masked, self.hw_masked, self.sdc, self.due]
            .into_iter()
            .map(|k| {
                let iv = method.interval(k, self.n);
                iv.hi - iv.lo
            })
            .fold(0.0, f64::max)
    }
}

/// Widest-CI-first allocation over a stratified trial horizon.
pub struct WilsonPlanner {
    /// Target full interval width; a stratum is *open* while any class
    /// interval is wider.
    target: f64,
    batch: usize,
    /// Stratum index of every trial in the horizon.
    assignment: Vec<usize>,
    strata: Vec<Stratum>,
    batches: u64,
    method: CiMethod,
}

impl WilsonPlanner {
    /// Planner over an explicit stratification: `assignment[trial]` is the
    /// stratum (an index into `labels`) of each trial in the horizon.
    pub fn new(labels: Vec<String>, assignment: Vec<usize>, target_ci: f64, batch: usize) -> Self {
        assert!(target_ci > 0.0 && target_ci < 1.0, "target CI width must be in (0, 1), got {target_ci}");
        assert!(batch > 0, "batch size must be positive");
        let mut strata: Vec<Stratum> = labels
            .into_iter()
            .map(|label| Stratum { label, members: Vec::new(), cursor: 0, n: 0, masked: 0, hw_masked: 0, sdc: 0, due: 0 })
            .collect();
        for (trial, &s) in assignment.iter().enumerate() {
            strata[s].members.push(trial);
        }
        WilsonPlanner { target: target_ci, batch, assignment, strata, batches: 0, method: CiMethod::Wilson }
    }

    /// Switches the stopping rule's interval method (default Wilson). The
    /// determinism contract extends to the method: it is part of the
    /// planner's construction parameters and is recorded in the campaign
    /// spec, so replay rebuilds the same decision sequence.
    pub fn with_method(mut self, method: CiMethod) -> Self {
        self.method = method;
        self
    }

    /// Stratifies the full horizon of an injection campaign by
    /// (fault model × time window), using the same per-index derivation the
    /// campaign runner performs ([`trial_stratum`]) — so a trial lands in
    /// the stratum it would occupy in the fixed-count run, bit for bit.
    pub fn for_injection(cfg: &CampaignConfig, total_steps: usize, target_ci: f64, batch: usize) -> Self {
        let n_windows = cfg.n_windows.max(1);
        let mut labels = Vec::with_capacity(cfg.models.len() * n_windows);
        for model in &cfg.models {
            for w in 0..n_windows {
                labels.push(format!("{}/w{w}", model.label()));
            }
        }
        let assignment = (0..cfg.trials)
            .map(|t| {
                let (m, w) = trial_stratum(cfg, total_steps, t);
                m * n_windows + w
            })
            .collect();
        WilsonPlanner::new(labels, assignment, target_ci, batch)
    }

    /// Strata whose widest class interval still exceeds the target.
    fn open_count(&self) -> u64 {
        self.strata.iter().filter(|s| s.width(self.method) > self.target).count() as u64
    }
}

impl AllocationPlanner for WilsonPlanner {
    fn observe(&mut self, record: &TrialRecord) {
        let s = &mut self.strata[self.assignment[record.trial]];
        s.n += 1;
        match &record.outcome {
            OutcomeRecord::Masked => s.masked += 1,
            OutcomeRecord::HardwareMasked => s.hw_masked += 1,
            OutcomeRecord::Sdc(_) => s.sdc += 1,
            OutcomeRecord::Due(_) => s.due += 1,
        }
    }

    fn next_batch(&mut self) -> Option<PlanDecision> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.strata.iter().enumerate() {
            if s.cursor >= s.members.len() {
                continue; // exhausted its share of the horizon
            }
            let w = s.width(self.method);
            if w <= self.target {
                continue; // converged
            }
            // Strict `>`: ties resolve to the lowest stratum index.
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((i, w));
            }
        }
        let (i, widest_ci) = best?;
        let strata_open = self.open_count();
        let s = &mut self.strata[i];
        let take = self.batch.min(s.members.len() - s.cursor);
        let trials = s.members[s.cursor..s.cursor + take].to_vec();
        s.cursor += take;
        let decision =
            PlanDecision { batch: self.batches, stratum: s.label.clone(), widest_ci, strata_open, trials };
        self.batches += 1;
        Some(decision)
    }

    fn gauges(&self) -> PlannerStatus {
        PlannerStatus {
            strata_total: self.strata.len() as u64,
            strata_open: self.open_count(),
            widest_ci: self.strata.iter().map(|s| s.width(self.method)).fold(0.0, f64::max),
            batches: self.batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trial: usize, outcome: OutcomeRecord) -> TrialRecord {
        TrialRecord {
            trial,
            benchmark: "synthetic".into(),
            model: None,
            mechanism: "synthetic".into(),
            inject_step: 0,
            total_steps: 1,
            window: 0,
            n_windows: 1,
            injection: None,
            outcome,
            executed_steps: 1,
        }
    }

    /// Two strata: trials alternate between them.
    fn two_strata(horizon: usize, batch: usize, ci: f64) -> WilsonPlanner {
        let assignment: Vec<usize> = (0..horizon).map(|t| t % 2).collect();
        WilsonPlanner::new(vec!["a".into(), "b".into()], assignment, ci, batch)
    }

    #[test]
    fn allocation_prefers_the_widest_stratum() {
        let mut p = two_strata(1000, 4, 0.05);
        // First decision: both strata at width 1.0, tie resolves to "a".
        let d0 = p.next_batch().unwrap();
        assert_eq!(d0.stratum, "a");
        assert_eq!(d0.batch, 0);
        assert_eq!(d0.trials, vec![0, 2, 4, 6]);
        // Feed "a" deterministic outcomes; "b" stays at width 1.0 and must
        // be picked next.
        for &t in &d0.trials {
            p.observe(&record(t, OutcomeRecord::Masked));
        }
        let d1 = p.next_batch().unwrap();
        assert_eq!(d1.stratum, "b");
        assert!((d1.widest_ci - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strata_close_at_the_target_width_and_the_planner_converges() {
        let mut p = two_strata(4000, 50, 0.1);
        let mut executed = 0usize;
        while let Some(d) = p.next_batch() {
            for &t in &d.trials {
                // All-masked outcomes: p̂ = 0 and 1 per class, the
                // fastest-converging case.
                p.observe(&record(t, OutcomeRecord::Masked));
            }
            executed += d.trials.len();
            assert!(executed <= 4000, "planner over-allocated");
        }
        let g = p.gauges();
        assert_eq!(g.strata_open, 0, "both strata should converge");
        assert!(g.widest_ci <= 0.1);
        // Early stopping: convergence at p̂ = 0 takes ~40 trials per
        // stratum, far below the 4000-trial horizon.
        assert!(executed < 400, "executed {executed} trials, expected early stop");
    }

    #[test]
    fn exhausted_strata_stop_allocating_but_stay_open() {
        // Stratum "a" holds only 3 trials — too few to converge at 1%.
        let assignment = vec![0, 0, 0, 1, 1, 1, 1, 1, 1, 1];
        let mut p = WilsonPlanner::new(vec!["a".into(), "b".into()], assignment, 0.01, 2);
        let mut from_a = 0;
        while let Some(d) = p.next_batch() {
            if d.stratum == "a" {
                from_a += d.trials.len();
            }
            for &t in &d.trials {
                p.observe(&record(t, OutcomeRecord::Masked));
            }
        }
        assert_eq!(from_a, 3, "allocations from a stratum never exceed its population");
        // Neither stratum can reach a 1% interval with ≤7 trials; the
        // planner stops by exhaustion and reports the strata still open.
        assert_eq!(p.gauges().strata_open, 2);
    }

    #[test]
    fn decision_sequence_is_a_pure_function_of_observations() {
        let run = |flip: bool| {
            let mut p = two_strata(600, 8, 0.2);
            let mut decisions = Vec::new();
            while let Some(d) = p.next_batch() {
                for &t in &d.trials {
                    let outcome = if flip && t % 5 == 0 {
                        OutcomeRecord::Due(carolfi::record::DueKind::Timeout)
                    } else {
                        OutcomeRecord::Masked
                    };
                    p.observe(&record(t, outcome));
                }
                decisions.push(d);
            }
            decisions
        };
        assert_eq!(run(false), run(false), "identical observations, identical decisions");
        assert_ne!(run(false), run(true), "different outcomes must steer allocation");
    }

    #[test]
    fn clopper_pearson_stopping_rule_is_more_conservative() {
        // Same horizon, same mixed observations (every 5th trial an SDC, so
        // the widest class interval sits in the interior where the exact
        // interval is strictly wider than Wilson): the CP planner needs
        // strictly more trials before every stratum closes.
        let drain = |method: CiMethod| {
            let assignment: Vec<usize> = (0..4000).map(|t| t % 2).collect();
            let mut p = WilsonPlanner::new(vec!["a".into(), "b".into()], assignment, 0.15, 10).with_method(method);
            let mut executed = 0usize;
            while let Some(d) = p.next_batch() {
                for &t in &d.trials {
                    let outcome =
                        if t % 5 == 0 { OutcomeRecord::Due(carolfi::record::DueKind::Timeout) } else { OutcomeRecord::Masked };
                    p.observe(&record(t, outcome));
                }
                executed += d.trials.len();
            }
            assert_eq!(p.gauges().strata_open, 0);
            executed
        };
        let wilson = drain(CiMethod::Wilson);
        let exact = drain(CiMethod::ClopperPearson);
        assert!(exact > wilson, "clopper-pearson stopped at {exact} trials, not after wilson's {wilson}");
    }

    #[test]
    fn ci_method_labels_roundtrip() {
        for method in [CiMethod::Wilson, CiMethod::ClopperPearson] {
            assert_eq!(CiMethod::parse(method.label()), Some(method));
        }
        assert_eq!(CiMethod::parse("exact"), None);
        assert_eq!(CiMethod::default(), CiMethod::Wilson);
    }

    #[test]
    fn injection_stratification_matches_the_campaign_derivation() {
        let cfg = CampaignConfig { trials: 256, ..CampaignConfig::default() };
        let total_steps = 37;
        let p = WilsonPlanner::for_injection(&cfg, total_steps, 0.05, DEFAULT_BATCH);
        assert_eq!(p.strata.len(), cfg.models.len() * cfg.n_windows);
        assert_eq!(p.assignment.len(), cfg.trials);
        for trial in [0usize, 1, 17, 255] {
            let (m, w) = trial_stratum(&cfg, total_steps, trial);
            assert_eq!(p.assignment[trial], m * cfg.n_windows + w);
        }
        // Every trial is in exactly one stratum and members are ascending.
        let total: usize = p.strata.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, cfg.trials);
        for s in &p.strata {
            assert!(s.members.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
