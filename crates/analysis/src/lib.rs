//! # sdc-analysis — outcome analysis for beam and injection campaigns
//!
//! The analytical half of *Experimental and Analytical Study of Xeon Phi
//! Reliability* (SC'17):
//!
//! * [`spatial`] — the five output-error patterns of Fig. 2 (single, line,
//!   square, cubic, random);
//! * [`tolerance`] — SDC-rate reduction as a function of the accepted
//!   relative output error (Fig. 3);
//! * [`pvf`] — Program Vulnerability Factors per fault model (Fig. 5), per
//!   execution-time window (Fig. 6), per variable class (§6 text), and the
//!   Masked/SDC/DUE breakdown (Fig. 4);
//! * [`fit`] — FIT/MTBF algebra, cross-sections, machine-scale
//!   extrapolation (§4.2: Trinity and exascale projections);
//! * [`stats`] — confidence intervals (Wilson binomial, Poisson exact
//!   approximation) backing the paper's error bars;
//! * [`planner`] — adaptive stratified campaign planning: per-stratum
//!   Wilson intervals with widest-CI-first batch allocation and CI-driven
//!   early stopping, driven by the `carolfi` adaptive orchestrator.

pub mod fit;
pub mod planner;
pub mod pvf;
pub mod spatial;
pub mod stats;
pub mod tolerance;

pub use fit::{FitEstimate, MachineProjection};
pub use planner::{CiMethod, WilsonPlanner};
pub use pvf::{OutcomeBreakdown, PvfTable};
pub use spatial::SpatialPattern;
pub use tolerance::ToleranceCurve;
