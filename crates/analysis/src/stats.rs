//! Confidence intervals and small statistical helpers.
//!
//! The paper reports Normal 95 % confidence intervals below 10 % of the
//! estimated FIT values (§4.2) and sizes its injection campaigns so "the
//! worst case statistical error bars at 95 % confidence level [are] at most
//! 1.96 %" (§6). These helpers reproduce both calculations.

/// z-value of the two-sided 95 % normal interval.
pub const Z95: f64 = 1.959_963_984_540_054;

/// A symmetric-ish interval `[lo, hi]` around an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub estimate: f64,
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Relative half-width (half-width ÷ estimate).
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            f64::INFINITY
        } else {
            self.half_width() / self.estimate
        }
    }
}

/// Wilson score interval for a binomial proportion at 95 % confidence.
///
/// Behaves sensibly at the extremes (k = 0 or k = n), unlike the plain
/// normal approximation.
pub fn wilson95(successes: usize, trials: usize) -> Interval {
    assert!(successes <= trials, "successes {successes} > trials {trials}");
    if trials == 0 {
        return Interval { estimate: 0.0, lo: 0.0, hi: 1.0 };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = Z95 * Z95;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let margin = (Z95 / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Interval { estimate: p, lo: (centre - margin).max(0.0), hi: (centre + margin).min(1.0) }
}

/// Natural log of the gamma function (Lanczos approximation, |ε| < 2e-10
/// for x > 0 — Numerical-Recipes-style coefficients).
fn ln_gamma(x: f64) -> f64 {
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut y = x;
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Continued fraction for the regularized incomplete beta (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 3e-14 {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_bt = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_bt.exp() * betacf(a, b, x) / a
    } else {
        1.0 - ln_bt.exp() * betacf(b, a, 1.0 - x) / b
    }
}

/// Inverse of `I_x(a, b)` in `x`, by bisection (monotone increasing).
fn beta_inv(a: f64, b: f64, target: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if beta_inc(a, b, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Clopper–Pearson ("exact") 95 % interval for a binomial proportion:
/// `lo = BetaInv(0.025; k, n−k+1)`, `hi = BetaInv(0.975; k+1, n−k)`, with
/// the closed forms `lo = 0` at k = 0 and `hi = 1` at k = n.
///
/// Guaranteed ≥ 95 % coverage for every true p — conservative where Wilson
/// is approximate — so the adaptive planner offers it as the cautious
/// stopping rule (`--ci-method clopper-pearson`): strata close a little
/// later, never on an interval that under-covers.
pub fn clopper_pearson95(successes: usize, trials: usize) -> Interval {
    assert!(successes <= trials, "successes {successes} > trials {trials}");
    if trials == 0 {
        return Interval { estimate: 0.0, lo: 0.0, hi: 1.0 };
    }
    const HALF_ALPHA: f64 = 0.025;
    let n = trials as f64;
    let k = successes as f64;
    let lo = if successes == 0 { 0.0 } else { beta_inv(k, n - k + 1.0, HALF_ALPHA) };
    let hi = if successes == trials { 1.0 } else { beta_inv(k + 1.0, n - k, 1.0 - HALF_ALPHA) };
    Interval { estimate: k / n, lo, hi }
}

/// Normal-approximation 95 % error bar for a binomial proportion — the
/// `1.96 · sqrt(p(1-p)/n)` the paper quotes. Returned as an absolute margin.
pub fn normal_margin95(p: f64, trials: usize) -> f64 {
    if trials == 0 {
        return f64::INFINITY;
    }
    Z95 * (p * (1.0 - p) / trials as f64).sqrt()
}

/// 95 % interval for a Poisson count (normal approximation on the count,
/// suitable for the ≥100-event samples the paper collects).
pub fn poisson95(count: usize) -> Interval {
    let k = count as f64;
    let margin = Z95 * k.sqrt();
    Interval { estimate: k, lo: (k - margin).max(0.0), hi: k + margin }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Number of injection trials needed so the worst-case (p = 0.5) normal 95 %
/// error bar is at most `margin` — the paper's 10 000-trial sizing rule.
pub fn trials_for_margin(margin: f64) -> usize {
    assert!(margin > 0.0);
    ((Z95 * 0.5 / margin).powi(2)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_rule_holds() {
        // "at least 10,000 faults … sufficient to guarantee the worst case
        // statistical error bars at 95% confidence level to be at most 1.96%"
        let margin = normal_margin95(0.5, 10_000);
        assert!(margin <= 0.0098 + 1e-12, "worst-case margin {margin}");
        assert!(trials_for_margin(0.0098) <= 10_000);
    }

    #[test]
    fn wilson_contains_the_estimate() {
        for (k, n) in [(0usize, 50usize), (1, 50), (25, 50), (49, 50), (50, 50)] {
            let iv = wilson95(k, n);
            assert!(iv.lo <= iv.estimate + 1e-12 && iv.estimate <= iv.hi + 1e-12, "{k}/{n}: {iv:?}");
            assert!(iv.lo >= 0.0 && iv.hi <= 1.0);
        }
    }

    #[test]
    fn wilson_bounds_match_published_reference_values() {
        // Reference values of the 95 % Wilson score interval (z = 1.95996…)
        // as tabulated in the standard literature (Wilson 1927; Brown, Cai
        // & DasGupta 2001, "Interval Estimation for a Binomial
        // Proportion"), at n = 10/100/1000 for p̂ = 0, 0.05 and 0.5. These
        // pins also freeze the planner's stopping rule: a stratum's target
        // width is measured on exactly these bounds.
        let cases: &[(usize, usize, f64, f64)] = &[
            // (successes, trials, lo, hi)
            (0, 10, 0.0, 0.277533),
            (0, 100, 0.0, 0.036993),
            (0, 1000, 0.0, 0.003827),
            (5, 100, 0.021544, 0.111750),
            (50, 1000, 0.038130, 0.065314),
            (5, 10, 0.236593, 0.763407),
            (50, 100, 0.403832, 0.596168),
            (500, 1000, 0.469070, 0.530930),
        ];
        for &(k, n, lo, hi) in cases {
            let iv = wilson95(k, n);
            assert!((iv.lo - lo).abs() < 1e-6, "wilson95({k}, {n}).lo = {}, reference {lo}", iv.lo);
            assert!((iv.hi - hi).abs() < 1e-6, "wilson95({k}, {n}).hi = {}, reference {hi}", iv.hi);
        }
    }

    #[test]
    fn clopper_pearson_bounds_match_published_reference_values() {
        // Reference values of the 95 % Clopper–Pearson exact interval
        // (Clopper & Pearson 1934; tabulated in Brown, Cai & DasGupta 2001
        // and every binomial-CI reference since), independently reproduced
        // from the defining binomial tail equations
        // P(X ≥ k | p = lo) = 0.025 and P(X ≤ k | p = hi) = 0.025.
        let cases: &[(usize, usize, f64, f64)] = &[
            // (successes, trials, lo, hi)
            (0, 10, 0.0, 0.308497),
            (1, 10, 0.002529, 0.445016),
            (5, 10, 0.187086, 0.812914),
            (10, 10, 0.691503, 1.0),
            (0, 100, 0.0, 0.036217),
            (5, 100, 0.016432, 0.112835),
            (50, 100, 0.398321, 0.601679),
            (1, 1000, 0.000025, 0.005559),
            (500, 1000, 0.468549, 0.531451),
        ];
        for &(k, n, lo, hi) in cases {
            let iv = clopper_pearson95(k, n);
            assert!((iv.lo - lo).abs() < 1e-5, "clopper_pearson95({k}, {n}).lo = {}, reference {lo}", iv.lo);
            assert!((iv.hi - hi).abs() < 1e-5, "clopper_pearson95({k}, {n}).hi = {}, reference {hi}", iv.hi);
        }
    }

    #[test]
    fn clopper_pearson_is_conservative_relative_to_wilson() {
        // On interior observations (0 < k < n) the exact interval is never
        // narrower than the score interval on the same data. (At k = 0 and
        // k = n the comparison legitimately flips — Wilson's boundary
        // correction overshoots the exact tail — which is why this loop
        // stays strictly interior.)
        for (k, n) in [(1usize, 10usize), (5, 10), (3, 25), (5, 100), (50, 100), (99, 100), (500, 1000)] {
            let cp = clopper_pearson95(k, n);
            let w = wilson95(k, n);
            assert!(cp.hi - cp.lo >= w.hi - w.lo - 1e-12, "{k}/{n}: CP {cp:?} narrower than Wilson {w:?}");
            assert!(cp.lo <= cp.estimate + 1e-12 && cp.estimate <= cp.hi + 1e-12, "{k}/{n}: {cp:?}");
            assert!(cp.lo >= 0.0 && cp.hi <= 1.0);
        }
        // k = 0 / k = n closed forms: hi = 1 − 0.025^(1/n) and its mirror.
        let iv = clopper_pearson95(0, 20);
        assert!((iv.hi - (1.0 - 0.025f64.powf(1.0 / 20.0))).abs() < 1e-9);
        assert_eq!(iv.lo, 0.0);
        let iv = clopper_pearson95(20, 20);
        assert!((iv.lo - 0.025f64.powf(1.0 / 20.0)).abs() < 1e-9);
        assert_eq!(iv.hi, 1.0);
        let iv = clopper_pearson95(0, 0);
        assert_eq!((iv.lo, iv.hi), (0.0, 1.0));
    }

    #[test]
    fn wilson_tightens_with_more_trials() {
        let a = wilson95(10, 100);
        let b = wilson95(100, 1000);
        assert!(b.half_width() < a.half_width());
    }

    #[test]
    fn poisson_interval_for_100_events_is_under_20_percent() {
        // The paper collects ≥100 SDC/DUE events so the FIT interval stays
        // below 10% of the value on each side (2·sqrt(100)/100 ≈ 20% total).
        let iv = poisson95(100);
        assert!((iv.hi - iv.estimate) / iv.estimate < 0.2);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        let iv = wilson95(0, 0);
        assert_eq!(iv.lo, 0.0);
        assert_eq!(iv.hi, 1.0);
    }

    #[test]
    fn mean_and_stddev_match_hand_values() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }
}
