//! SDC-rate reduction under an accepted output-error tolerance
//! (paper §4.4, Fig. 3).
//!
//! "For each benchmark, we provide how much its SDC FIT rate changes when we
//! increase the acceptable error margin from 0.1% up to 15%." An execution
//! counts as an SDC at tolerance `t` only if at least one corrupted element
//! differs from its expected value by more than `t` (relative); NaN/Inf
//! corruptions (`rel_err = ∞`) are never tolerated.

use carolfi::record::DiffSummary;
use serde::{Deserialize, Serialize};

/// The tolerance grid of Fig. 3 (fractions, not percent).
pub fn paper_tolerances() -> Vec<f64> {
    vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15]
}

/// One benchmark's Fig. 3 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToleranceCurve {
    pub benchmark: String,
    /// Relative tolerances (fraction of the expected value).
    pub tolerances: Vec<f64>,
    /// SDCs surviving each tolerance.
    pub surviving: Vec<usize>,
    /// SDCs at zero tolerance (any bit mismatch).
    pub total: usize,
}

impl ToleranceCurve {
    /// Builds the curve from the SDC summaries of a campaign.
    pub fn from_summaries<'a>(
        benchmark: &str,
        summaries: impl IntoIterator<Item = &'a DiffSummary>,
        tolerances: &[f64],
    ) -> Self {
        let max_errs: Vec<f64> = summaries.into_iter().map(|s| s.max_rel_err).collect();
        let surviving = tolerances.iter().map(|&t| max_errs.iter().filter(|&&e| e > t).count()).collect();
        ToleranceCurve {
            benchmark: benchmark.to_string(),
            tolerances: tolerances.to_vec(),
            surviving,
            total: max_errs.len(),
        }
    }

    /// FIT reduction (%) at each tolerance — the Fig. 3 vertical axis.
    pub fn fit_reduction_percent(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.tolerances.len()];
        }
        self.surviving.iter().map(|&s| 100.0 * (1.0 - s as f64 / self.total as f64)).collect()
    }

    /// Surviving-SDC fraction at each tolerance.
    pub fn surviving_fraction(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![1.0; self.tolerances.len()];
        }
        self.surviving.iter().map(|&s| s as f64 / self.total as f64).collect()
    }

    /// MTBF improvement factor at a given tolerance index (MTBF ∝ 1/FIT).
    pub fn mtbf_gain(&self, idx: usize) -> f64 {
        let frac = self.surviving_fraction()[idx];
        if frac == 0.0 {
            f64::INFINITY
        } else {
            1.0 / frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carolfi::output::Mismatch;

    fn s(rel: f64) -> DiffSummary {
        DiffSummary::from_mismatches(&[Mismatch { coord: [0, 0, 0], expected: 1.0, got: 1.0 + rel, rel_err: rel }], [4, 4, 1])
    }

    #[test]
    fn reductions_are_monotone_in_tolerance() {
        let sums = vec![s(0.0005), s(0.003), s(0.03), s(0.5), s(f64::INFINITY)];
        let curve = ToleranceCurve::from_summaries("x", &sums, &paper_tolerances());
        let red = curve.fit_reduction_percent();
        for w in red.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "reduction must not decrease: {red:?}");
        }
    }

    #[test]
    fn nan_corruptions_survive_every_tolerance() {
        let sums = vec![s(f64::INFINITY); 4];
        let curve = ToleranceCurve::from_summaries("x", &sums, &paper_tolerances());
        assert!(curve.surviving.iter().all(|&n| n == 4));
        assert!(curve.fit_reduction_percent().iter().all(|&r| r == 0.0));
    }

    #[test]
    fn exact_threshold_is_tolerated() {
        // rel_err must EXCEED the tolerance to count.
        let sums = vec![s(0.01)];
        let curve = ToleranceCurve::from_summaries("x", &sums, &[0.01]);
        assert_eq!(curve.surviving, vec![0]);
    }

    #[test]
    fn mtbf_gain_is_inverse_of_surviving_fraction() {
        let sums = vec![s(0.0001), s(0.0001), s(0.0001), s(1.0)];
        let curve = ToleranceCurve::from_summaries("x", &sums, &[0.001]);
        // 1 of 4 survives => FIT/4 => MTBF x4.
        assert!((curve.mtbf_gain(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let curve = ToleranceCurve::from_summaries("x", &[], &paper_tolerances());
        assert_eq!(curve.total, 0);
        assert!(curve.fit_reduction_percent().iter().all(|&r| r == 0.0));
    }
}
