//! Property-based tests for the adaptive planner (DESIGN.md §12): the
//! decision sequence must be a pure function of (stratification, target,
//! batch size, observed records) — which is exactly what lets the adaptive
//! orchestrator replay a truncated journal and re-derive the identical
//! next-batch decisions after an interruption.

use carolfi::adaptive::{AllocationPlanner, PlanDecision};
use carolfi::record::{DueKind, OutcomeRecord, TrialRecord};
use proptest::prelude::*;
use sdc_analysis::planner::WilsonPlanner;

/// Deterministic synthetic outcome: a pure hash of (seed, trial), standing
/// in for the (equally deterministic) execute_trial result.
fn outcome_for(seed: u64, trial: usize) -> OutcomeRecord {
    let h = (seed ^ (trial as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    match (h >> 32) % 10 {
        0..=5 => OutcomeRecord::Masked,
        6..=7 => OutcomeRecord::HardwareMasked,
        _ => OutcomeRecord::Due(DueKind::Timeout),
    }
}

fn rec(trial: usize, outcome: OutcomeRecord) -> TrialRecord {
    TrialRecord {
        trial,
        benchmark: "synthetic".into(),
        model: None,
        mechanism: "synthetic".into(),
        inject_step: 0,
        total_steps: 1,
        window: 0,
        n_windows: 1,
        injection: None,
        outcome,
        executed_steps: 1,
    }
}

/// Runs a planner to completion, returning the journal-shaped trace:
/// each decision paired with the records observed for it.
fn full_run(
    labels: &[String],
    assignment: &[usize],
    target: f64,
    batch: usize,
    seed: u64,
) -> Vec<(PlanDecision, Vec<TrialRecord>)> {
    let mut p = WilsonPlanner::new(labels.to_vec(), assignment.to_vec(), target, batch);
    let mut journal = Vec::new();
    while let Some(d) = p.next_batch() {
        let recs: Vec<TrialRecord> = d.trials.iter().map(|&t| rec(t, outcome_for(seed, t))).collect();
        for r in &recs {
            p.observe(r);
        }
        journal.push((d, recs));
    }
    journal
}

proptest! {
    /// Replaying any truncated journal prefix re-derives the identical
    /// decision sequence, including the first post-truncation decision —
    /// the invariant the adaptive orchestrator's resume path checks
    /// against the journaled `Plan` entries.
    #[test]
    fn truncated_journal_replay_re_derives_identical_decisions(
        seed in any::<u64>(),
        horizon in 50usize..300,
        batch in 1usize..12,
        strata in 1usize..6,
        cut_sel in 0usize..1000,
    ) {
        let labels: Vec<String> = (0..strata).map(|i| format!("s{i}")).collect();
        let assignment: Vec<usize> = (0..horizon).map(|t| t % strata).collect();
        let target = 0.15;
        let journal = full_run(&labels, &assignment, target, batch, seed);
        prop_assert!(!journal.is_empty());

        let cut = cut_sel % journal.len();
        let mut q = WilsonPlanner::new(labels, assignment, target, batch);
        for (d, recs) in &journal[..cut] {
            let replayed = q.next_batch().expect("replay ended before the journal did");
            prop_assert_eq!(&replayed, d);
            for r in recs {
                q.observe(r);
            }
        }
        let next = q.next_batch().expect("journal holds a decision the replay cannot derive");
        prop_assert_eq!(&next, &journal[cut].0);
    }

    /// End-to-end purity: two full runs over the same inputs produce the
    /// same decisions, the planner never allocates a trial twice, and
    /// every allocated index is inside the horizon.
    #[test]
    fn full_runs_are_deterministic_and_gapless(
        seed in any::<u64>(),
        horizon in 50usize..300,
        batch in 1usize..12,
        strata in 1usize..6,
    ) {
        let labels: Vec<String> = (0..strata).map(|i| format!("s{i}")).collect();
        let assignment: Vec<usize> = (0..horizon).map(|t| t % strata).collect();
        let a = full_run(&labels, &assignment, 0.15, batch, seed);
        let b = full_run(&labels, &assignment, 0.15, batch, seed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.0, &y.0);
        }
        let mut seen = std::collections::HashSet::new();
        for (d, _) in &a {
            for &t in &d.trials {
                prop_assert!(t < horizon, "trial {} outside horizon {}", t, horizon);
                prop_assert!(seen.insert(t), "trial {} allocated twice", t);
            }
        }
    }
}
