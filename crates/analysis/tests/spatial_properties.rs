//! Property-based tests for the spatial-pattern classifier (DESIGN.md §6):
//! the classification must be invariant under translation of the corrupted
//! region, and each generator of a pattern must classify as that pattern.

use carolfi::output::Mismatch;
use carolfi::record::DiffSummary;
use proptest::prelude::*;
use sdc_analysis::spatial::{classify, SpatialPattern};

fn mismatches(coords: &[[usize; 3]]) -> Vec<Mismatch> {
    coords.iter().map(|&coord| Mismatch { coord, expected: 1.0, got: 2.0, rel_err: 1.0 }).collect()
}

fn summary(coords: &[[usize; 3]], dims: [usize; 3]) -> DiffSummary {
    DiffSummary::from_mismatches(&mismatches(coords), dims)
}

proptest! {
    #[test]
    fn any_single_coordinate_is_single(i in 0usize..64, j in 0usize..64) {
        let s = summary(&[[i, j, 0]], [64, 64, 1]);
        prop_assert_eq!(classify(&s), SpatialPattern::Single);
    }

    #[test]
    fn any_row_run_is_a_line(row in 0usize..32, start in 0usize..24, len in 2usize..8) {
        let coords: Vec<[usize; 3]> = (start..start + len).map(|j| [row, j, 0]).collect();
        let s = summary(&coords, [32, 32, 1]);
        prop_assert_eq!(classify(&s), SpatialPattern::Line);
    }

    #[test]
    fn any_column_run_is_a_line(col in 0usize..32, start in 0usize..24, len in 2usize..8) {
        let coords: Vec<[usize; 3]> = (start..start + len).map(|i| [i, col, 0]).collect();
        let s = summary(&coords, [32, 32, 1]);
        prop_assert_eq!(classify(&s), SpatialPattern::Line);
    }

    #[test]
    fn any_dense_block_is_a_square(oi in 0usize..16, oj in 0usize..16, h in 2usize..5, w in 2usize..5) {
        let mut coords = Vec::new();
        for i in oi..oi + h {
            for j in oj..oj + w {
                coords.push([i, j, 0]);
            }
        }
        let s = summary(&coords, [32, 32, 1]);
        prop_assert_eq!(classify(&s), SpatialPattern::Square);
    }

    #[test]
    fn classification_is_translation_invariant(
        di in 0usize..10,
        dj in 0usize..10,
        pattern in prop::sample::select(vec![0usize, 1, 2]),
    ) {
        let base: Vec<[usize; 3]> = match pattern {
            0 => vec![[1, 1, 0]],
            1 => (0..5).map(|j| [3, j, 0]).collect(),
            _ => (0..3).flat_map(|i| (0..3).map(move |j| [i, j, 0])).collect(),
        };
        let moved: Vec<[usize; 3]> = base.iter().map(|&[i, j, k]| [i + di, j + dj, k]).collect();
        let a = classify(&summary(&base, [64, 64, 1]));
        let b = classify(&summary(&moved, [64, 64, 1]));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn classification_ignores_mismatch_order(seed in 0u64..1000) {
        // A fixed scattered set, presented in two different orders.
        let mut coords = vec![[0usize, 0, 0], [7, 13, 0], [21, 4, 0], [30, 30, 0], [14, 25, 0]];
        let a = classify(&summary(&coords, [32, 32, 1]));
        // Deterministic shuffle from the seed.
        let n = coords.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 7)) % n;
            coords.swap(i, j);
        }
        let b = classify(&summary(&coords, [32, 32, 1]));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dense_3d_blocks_are_cubic(h in 2usize..4, w in 2usize..4, d in 2usize..4) {
        let mut coords = Vec::new();
        for i in 0..h {
            for j in 0..w {
                for k in 0..d {
                    coords.push([i, j, k]);
                }
            }
        }
        let s = summary(&coords, [8, 8, 8]);
        prop_assert_eq!(classify(&s), SpatialPattern::Cubic);
    }

    #[test]
    fn every_summary_classifies_without_panicking(
        coords in prop::collection::vec((0usize..16, 0usize..16, 0usize..4), 1..40)
    ) {
        let mut uniq: Vec<[usize; 3]> = coords.into_iter().map(|(i, j, k)| [i, j, k]).collect();
        uniq.sort();
        uniq.dedup();
        let s = summary(&uniq, [16, 16, 4]);
        let p = classify(&s);
        if uniq.len() == 1 {
            prop_assert_eq!(p, SpatialPattern::Single);
        }
    }
}
