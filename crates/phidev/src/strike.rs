//! Strike propagation: from a neutron hit on a resource to an architectural
//! effect.
//!
//! The beam observes only end-to-end outcomes; everything between the
//! particle and the application output is this state machine:
//!
//! 1. sample the struck resource ∝ sensitive area ([`ResourceInventory`]);
//! 2. decide whether the upset touches *live* state (a strike on a cache
//!    line holding dead data, an unused register, or an idle latch has no
//!    effect — the dominant masking mechanism);
//! 3. for protected storage, run the actual SECDED codec on the upset:
//!    single-bit ⇒ corrected, double-bit ⇒ machine check (DUE);
//! 4. for unprotected resources, emit a *silent corruption* with a scope
//!    describing how far the upset smears — one word, a 512-bit vector's
//!    worth of lanes, a cache line in flight on the ring, one thread's
//!    control state, or a core's worth of shared state — or a direct
//!    control-flow crash for dispatch/sequencer upsets.
//!
//! The scope distinctions are what generate the paper's multi-element
//! spatial error patterns (§4.3): "Multiple output errors are then caused by
//! a single particle corrupting multiple resources, by a corruption in a
//! resource shared among parallel processes or corruptions that spread
//! during computation."

use crate::ecc::{DecodeOutcome, SecdedCodec};
use crate::resources::{Protection, ResourceInventory, ResourceKind, ResourceSpec};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How far a silent corruption smears across application state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionScope {
    /// One machine word of one data structure.
    SingleWord,
    /// `lanes` consecutive elements (one 512-bit vector register).
    VectorLanes { lanes: usize },
    /// A cache line (`bytes` consecutive bytes) corrupted in flight.
    CacheLine { bytes: usize },
    /// One logical thread's private control state (loop counters, cursors).
    ThreadControl,
    /// Control state shared by all hardware threads of one core — the
    /// "resource shared among parallel processes" case.
    CoreShared,
}

/// Architectural consequence of one strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchEffect {
    /// Upset hit dead/idle state; nothing observable.
    NoEffect,
    /// SECDED corrected a single-bit upset (corrected MCA event).
    Corrected,
    /// SECDED detected an uncorrectable upset ⇒ machine check ⇒ DUE.
    DetectedUncorrectable,
    /// Parity detected an upset ⇒ crash ⇒ DUE.
    ParityDetected,
    /// Unprotected upset reaches application state.
    SilentCorruption {
        scope: CorruptionScope,
        /// True when the upset flipped more than one bit per word.
        multi_bit: bool,
    },
    /// Dispatch/sequencer upset derails execution directly (crash DUE).
    ControlFlowCrash,
}

impl ArchEffect {
    pub fn is_silent(&self) -> bool {
        matches!(self, ArchEffect::SilentCorruption { .. })
    }
    pub fn is_due(&self) -> bool {
        matches!(self, ArchEffect::DetectedUncorrectable | ArchEffect::ParityDetected | ArchEffect::ControlFlowCrash)
    }
    pub fn is_benign(&self) -> bool {
        matches!(self, ArchEffect::NoEffect | ArchEffect::Corrected)
    }

    /// Short label for logs.
    pub fn label(&self) -> &'static str {
        match self {
            ArchEffect::NoEffect => "no-effect",
            ArchEffect::Corrected => "ecc-corrected",
            ArchEffect::DetectedUncorrectable => "ecc-due",
            ArchEffect::ParityDetected => "parity-due",
            ArchEffect::SilentCorruption { .. } => "silent",
            ArchEffect::ControlFlowCrash => "control-flow-crash",
        }
    }
}

/// Propagation probabilities. Defaults follow the qualitative structure the
/// paper reports; the per-benchmark live fraction is supplied by the beam
/// campaign from the victim's actual memory footprint.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StrikeTuning {
    /// Probability that a storage strike lands on live application data
    /// (footprint ÷ capacity, clamped).
    pub live_data_fraction: f64,
    /// Fraction of storage upsets affecting two cells of one word
    /// (multi-cell upsets in 22 nm SRAM; Fang & Oates 2016, paper ref [20]).
    pub double_bit_fraction: f64,
    /// Probability a combinational-logic upset is latched (Buchner 1997,
    /// paper ref [8]: logic error rates are lower than sequential ones).
    pub logic_latch_fraction: f64,
    /// Probability a latched dispatch/sequencer upset derails control flow
    /// immediately (vs. corrupting the instruction's data effect).
    pub dispatch_crash_fraction: f64,
    /// Probability a register-file strike hits a register holding control
    /// state rather than data (GPRs hold loop counters in these kernels).
    pub gpr_control_fraction: f64,
}

impl Default for StrikeTuning {
    fn default() -> Self {
        StrikeTuning {
            live_data_fraction: 0.35,
            double_bit_fraction: 0.08,
            logic_latch_fraction: 0.25,
            dispatch_crash_fraction: 0.55,
            gpr_control_fraction: 0.6,
        }
    }
}

impl StrikeTuning {
    /// Tuning for a workload of a given *control-flow density* — the
    /// fraction of issue slots occupied by branches, address generation and
    /// scalar bookkeeping rather than straight-line SIMD arithmetic.
    ///
    /// Paper §4.2 ties DUE sensitivity to exactly this: "[HotSpot's]
    /// prevailing use of control flow statements and low arithmetic
    /// intensity seem to make it more prone to DUE. In contrast, more
    /// regular codes like DGEMM and LavaMD have the lowest DUE FITs."
    /// A denser control stream keeps dispatch/sequencer state live more of
    /// the time, raising the probability that a logic upset is latched and
    /// that a latched upset derails execution.
    pub fn with_control_flow_density(density: f64) -> Self {
        let density = density.clamp(0.0, 1.0);
        StrikeTuning {
            logic_latch_fraction: (0.1 + 0.8 * density).min(0.95),
            dispatch_crash_fraction: (0.3 + 0.5 * density).min(0.95),
            ..Default::default()
        }
    }
}

/// Samples strikes and propagates them to architectural effects.
#[derive(Debug, Clone)]
pub struct StrikeEngine {
    pub inventory: ResourceInventory,
    pub tuning: StrikeTuning,
    codec: SecdedCodec,
    /// f64 lanes of one vector register (8 on KNC).
    pub vector_lanes: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl StrikeEngine {
    pub fn new(inventory: ResourceInventory, tuning: StrikeTuning) -> Self {
        StrikeEngine {
            inventory,
            tuning,
            codec: SecdedCodec,
            vector_lanes: crate::topology::Knc3120a::default().f64_lanes(),
            line_bytes: crate::topology::KNC_LINE_BYTES,
        }
    }

    /// Default-configured engine for the 3120A.
    pub fn knc3120a() -> Self {
        Self::new(ResourceInventory::knc3120a(), StrikeTuning::default())
    }

    /// Simulates one strike: samples the resource and propagates the upset.
    pub fn strike<R: Rng>(&self, rng: &mut R) -> (ResourceKind, ArchEffect) {
        let spec = self.inventory.sample(rng);
        (spec.kind, self.propagate(spec, rng))
    }

    /// Propagates an upset on a known resource.
    pub fn propagate<R: Rng>(&self, spec: ResourceSpec, rng: &mut R) -> ArchEffect {
        let t = &self.tuning;
        match spec.protection {
            Protection::EccSecded => {
                // Storage strike: dead data is still scrubbed/corrected
                // invisibly, so the live check only gates the DUE path.
                let double = rng.gen_bool(t.double_bit_fraction);
                // Exercise the real codec: encode a random word, flip bits.
                let mut cw = self.codec.encode(rng.gen());
                let b1 = rng.gen_range(0..72);
                cw.flip(b1);
                if double {
                    let mut b2 = rng.gen_range(0..71);
                    if b2 >= b1 {
                        b2 += 1;
                    }
                    cw.flip(b2);
                }
                match self.codec.decode(cw) {
                    DecodeOutcome::Clean(_) | DecodeOutcome::Corrected(_) => ArchEffect::Corrected,
                    DecodeOutcome::DetectedUncorrectable => {
                        if rng.gen_bool(t.live_data_fraction) {
                            ArchEffect::DetectedUncorrectable
                        } else {
                            // Line never accessed again — error invisible.
                            ArchEffect::NoEffect
                        }
                    }
                }
            }
            Protection::Parity => {
                if rng.gen_bool(t.live_data_fraction) {
                    ArchEffect::ParityDetected
                } else {
                    ArchEffect::NoEffect
                }
            }
            Protection::Unprotected => self.propagate_unprotected(spec.kind, rng),
        }
    }

    fn propagate_unprotected<R: Rng>(&self, kind: ResourceKind, rng: &mut R) -> ArchEffect {
        let t = &self.tuning;
        let multi_bit = rng.gen_bool(t.double_bit_fraction);
        match kind {
            ResourceKind::VectorRegisterFile => {
                if !rng.gen_bool(t.live_data_fraction) {
                    return ArchEffect::NoEffect;
                }
                // A register strike clips one lane; an upset in the shared
                // read/write port logic smears across the lanes — on a
                // 512-bit machine the port logic is a large share.
                if rng.gen_bool(0.5) {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::VectorLanes { lanes: self.vector_lanes }, multi_bit }
                } else {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit }
                }
            }
            ResourceKind::GprRegisterFile => {
                if !rng.gen_bool(t.live_data_fraction) {
                    return ArchEffect::NoEffect;
                }
                if rng.gen_bool(t.gpr_control_fraction) {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::ThreadControl, multi_bit }
                } else {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit }
                }
            }
            ResourceKind::PipelineLatch => {
                // A latch holds a value in flight only a fraction of the time.
                if rng.gen_bool(t.live_data_fraction) {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit }
                } else {
                    ArchEffect::NoEffect
                }
            }
            ResourceKind::InstructionDispatch => {
                if !rng.gen_bool(t.logic_latch_fraction) {
                    return ArchEffect::NoEffect;
                }
                if rng.gen_bool(t.dispatch_crash_fraction) {
                    ArchEffect::ControlFlowCrash
                } else {
                    // Wrong instruction issued for a whole core's threads.
                    ArchEffect::SilentCorruption { scope: CorruptionScope::CoreShared, multi_bit: true }
                }
            }
            ResourceKind::RingInterconnect => {
                if !rng.gen_bool(t.live_data_fraction) {
                    return ArchEffect::NoEffect;
                }
                ArchEffect::SilentCorruption { scope: CorruptionScope::CacheLine { bytes: self.line_bytes }, multi_bit }
            }
            ResourceKind::AddressGen => {
                if !rng.gen_bool(t.logic_latch_fraction) {
                    return ArchEffect::NoEffect;
                }
                // A wrong address reads/writes somebody else's data: reaches
                // application state as corrupted control (wrong cursor).
                if rng.gen_bool(0.3) {
                    ArchEffect::ControlFlowCrash
                } else {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::ThreadControl, multi_bit: true }
                }
            }
            ResourceKind::FpuLogic => {
                if !rng.gen_bool(t.logic_latch_fraction) {
                    return ArchEffect::NoEffect;
                }
                if rng.gen_bool(0.5) {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::VectorLanes { lanes: self.vector_lanes }, multi_bit }
                } else {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit }
                }
            }
            ResourceKind::ControlLogic => {
                if !rng.gen_bool(t.logic_latch_fraction) {
                    return ArchEffect::NoEffect;
                }
                if rng.gen_bool(0.4) {
                    ArchEffect::ControlFlowCrash
                } else {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::CoreShared, multi_bit: true }
                }
            }
            ResourceKind::L1Cache | ResourceKind::L2Cache => {
                // Only reachable in the ECC-off ablation: an unprotected
                // storage strike corrupts live words silently.
                if !rng.gen_bool(t.live_data_fraction) {
                    return ArchEffect::NoEffect;
                }
                if multi_bit {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::CacheLine { bytes: self.line_bytes }, multi_bit: true }
                } else {
                    ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit: false }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn cache_strikes_never_corrupt_silently_with_ecc_on() {
        let engine = StrikeEngine::knc3120a();
        let mut r = rng(1);
        for _ in 0..20_000 {
            let (kind, effect) = engine.strike(&mut r);
            if matches!(kind, ResourceKind::L1Cache | ResourceKind::L2Cache) {
                assert!(
                    matches!(effect, ArchEffect::Corrected | ArchEffect::DetectedUncorrectable | ArchEffect::NoEffect),
                    "{kind:?} produced {effect:?}"
                );
            }
        }
    }

    #[test]
    fn ecc_off_lets_cache_strikes_through() {
        let engine = StrikeEngine::new(ResourceInventory::knc3120a_ecc_off(), StrikeTuning::default());
        let mut r = rng(2);
        let mut silent_cache = 0;
        for _ in 0..20_000 {
            let (kind, effect) = engine.strike(&mut r);
            if matches!(kind, ResourceKind::L1Cache | ResourceKind::L2Cache) && effect.is_silent() {
                silent_cache += 1;
            }
        }
        assert!(silent_cache > 0);
    }

    #[test]
    fn most_strikes_are_benign() {
        // Paper §4.1 keeps error rates below 1e-4 per execution; the
        // propagation chain must mask the overwhelming majority of strikes.
        let engine = StrikeEngine::knc3120a();
        let mut r = rng(3);
        let n = 50_000;
        let benign = (0..n).filter(|_| engine.strike(&mut r).1.is_benign()).count();
        assert!(benign as f64 / n as f64 > 0.5, "benign fraction {}", benign as f64 / n as f64);
    }

    #[test]
    fn all_effect_categories_occur() {
        let engine = StrikeEngine::knc3120a();
        let mut r = rng(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100_000 {
            seen.insert(engine.strike(&mut r).1.label());
        }
        for label in ["no-effect", "ecc-corrected", "ecc-due", "silent", "control-flow-crash"] {
            assert!(seen.contains(label), "missing {label}; saw {seen:?}");
        }
    }

    #[test]
    fn shared_scope_effects_exist() {
        // The multi-element spatial patterns of Fig. 2 require shared-scope
        // corruptions to occur with non-trivial probability.
        let engine = StrikeEngine::knc3120a();
        let mut r = rng(5);
        let mut shared = 0;
        let mut silent = 0;
        for _ in 0..100_000 {
            if let (_, ArchEffect::SilentCorruption { scope, .. }) = engine.strike(&mut r) {
                silent += 1;
                if matches!(scope, CorruptionScope::CoreShared | CorruptionScope::CacheLine { .. } | CorruptionScope::VectorLanes { .. }) {
                    shared += 1;
                }
            }
        }
        assert!(silent > 0);
        let frac = shared as f64 / silent as f64;
        assert!(frac > 0.10, "multi-element scope fraction {frac}");
    }

    #[test]
    fn effect_predicates_are_consistent() {
        let e = ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit: false };
        assert!(e.is_silent() && !e.is_due() && !e.is_benign());
        assert!(ArchEffect::DetectedUncorrectable.is_due());
        assert!(ArchEffect::ControlFlowCrash.is_due());
        assert!(ArchEffect::NoEffect.is_benign());
    }
}
