//! # phidev — a Knights Corner (Xeon Phi 3120A) device model
//!
//! The paper's beam experiments irradiate a physical Intel Xeon Phi 3120A
//! coprocessor (paper §3.1): 57 in-order cores, 4 hardware threads and
//! 32 × 512-bit vector registers per core, 64 KB L1 + 512 KB L2 per core,
//! 6 GB GDDR5, 22 nm Tri-gate process, protected by Intel's Machine Check
//! Architecture with SECDED ECC on the main memory structures.
//!
//! This crate models the parts of that device that determine how a neutron
//! strike becomes (or does not become) an architectural error:
//!
//! * [`topology`] — the chip's resource geometry and sizes;
//! * [`ecc`] — a real Hamming SECDED(72,64) codec: single-bit strikes on
//!   protected structures are corrected, double-bit strikes raise machine
//!   checks (paper §2.1: "SECDED ECC normally triggers application crash
//!   when a double bit error is detected");
//! * [`resources`] — the inventory of strike targets with protection domains
//!   and relative sensitive areas, distinguishing the ECC-protected storage
//!   from the unprotected pipeline flip-flops, dispatch logic and
//!   interconnect that the paper holds responsible for the residual 193 FIT;
//! * [`strike`] — propagation of a raw strike into an [`strike::ArchEffect`]
//!   (corrected / detected-uncorrectable / silent corruption of a given
//!   scope / control-flow upset / no effect);
//! * [`mca`] — a minimal Machine Check Architecture event log.

pub mod ecc;
pub mod mca;
pub mod resources;
pub mod strike;
pub mod topology;

pub use ecc::{Codeword, DecodeOutcome, SecdedCodec};
pub use resources::{Protection, ResourceInventory, ResourceKind, ResourceSpec};
pub use strike::{ArchEffect, CorruptionScope, StrikeEngine, StrikeTuning};
pub use topology::{Knc3120a, KNC_CORES, KNC_HW_THREADS, KNC_LOGICAL_THREADS};
