//! A minimal Machine Check Architecture event log.
//!
//! The 3120A reports ECC events through MCA banks (paper §3.1). The beam
//! simulator records corrected events (CMCI) and uncorrectable events
//! (MCERR, which abort the application) so campaigns can report the
//! corrected-to-uncorrected ratio alongside the SDC/DUE counts — the measure
//! Cher et al. used for BlueGene/Q (paper §2.2).

use crate::resources::ResourceKind;
use serde::{Deserialize, Serialize};

/// Severity of a machine-check event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum McaSeverity {
    /// Corrected (CMCI): SECDED fixed a single-bit upset.
    Corrected,
    /// Uncorrectable (MCERR): application aborts — a DUE.
    Uncorrectable,
}

/// One MCA event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct McaEvent {
    pub severity: McaSeverity,
    pub resource: ResourceKind,
    /// Strike index within the campaign that produced the event.
    pub strike: u64,
}

/// Accumulates MCA events over a campaign.
#[derive(Debug, Clone, Default)]
pub struct McaLog {
    events: Vec<McaEvent>,
}

impl McaLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, severity: McaSeverity, resource: ResourceKind, strike: u64) {
        self.events.push(McaEvent { severity, resource, strike });
    }

    pub fn events(&self) -> &[McaEvent] {
        &self.events
    }

    pub fn corrected_count(&self) -> usize {
        self.events.iter().filter(|e| e.severity == McaSeverity::Corrected).count()
    }

    pub fn uncorrectable_count(&self) -> usize {
        self.events.iter().filter(|e| e.severity == McaSeverity::Uncorrectable).count()
    }

    /// Corrected events per uncorrectable event (∞ when none uncorrectable).
    pub fn corrected_ratio(&self) -> f64 {
        let unc = self.uncorrectable_count();
        if unc == 0 {
            f64::INFINITY
        } else {
            self.corrected_count() as f64 / unc as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ratio() {
        let mut log = McaLog::new();
        log.record(McaSeverity::Corrected, ResourceKind::L2Cache, 1);
        log.record(McaSeverity::Corrected, ResourceKind::L1Cache, 2);
        log.record(McaSeverity::Uncorrectable, ResourceKind::L2Cache, 3);
        assert_eq!(log.corrected_count(), 2);
        assert_eq!(log.uncorrectable_count(), 1);
        assert_eq!(log.corrected_ratio(), 2.0);
        assert_eq!(log.events().len(), 3);
    }

    #[test]
    fn ratio_is_infinite_without_uncorrectables() {
        let mut log = McaLog::new();
        log.record(McaSeverity::Corrected, ResourceKind::L1Cache, 0);
        assert!(log.corrected_ratio().is_infinite());
    }
}
