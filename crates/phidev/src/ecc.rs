//! Hamming SECDED(72,64): the ECC scheme guarding KNC's memory structures.
//!
//! The 3120A's Machine Check Architecture protects caches and memory with
//! Single-Error-Correction / Double-Error-Detection codes (paper §3.1). The
//! beam simulator uses this codec to decide a strike's fate on a protected
//! structure: one flipped bit is silently corrected (a *corrected* machine
//! check event), two flipped bits raise an uncorrectable machine check which
//! crashes the application — a DUE (paper §5.2: "SECDED ECC normally
//! triggers application crash when a double bit error is detected").
//!
//! Layout: an extended Hamming code. Codeword positions are 1-indexed
//! 1..=71; positions that are powers of two hold the 7 check bits; the other
//! 64 positions hold data bits in ascending order; one extra overall-parity
//! bit (position 0) covers the whole 71-bit word, upgrading SEC to SECDED.

/// A 72-bit codeword: 64 data bits + 7 Hamming check bits + overall parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codeword {
    /// Bits 0..=70 are codeword positions 1..=71; bit 71 is overall parity.
    raw: u128,
}

/// Result of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Codeword clean; payload returned.
    Clean(u64),
    /// One bit was flipped and has been corrected; payload returned.
    Corrected(u64),
    /// Two-bit error detected; data unrecoverable (machine check).
    DetectedUncorrectable,
}

/// The SECDED(72,64) encoder/decoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct SecdedCodec;

const CODE_BITS: u32 = 71; // positions 1..=71
const PARITY_POS: u32 = 71; // overall parity stored in raw bit 71

fn is_pow2(x: u32) -> bool {
    x.count_ones() == 1
}

/// Data-bit positions (1..=71 minus the 7 power-of-two positions), ascending.
fn data_positions() -> impl Iterator<Item = u32> {
    (1..=CODE_BITS).filter(|&p| !is_pow2(p))
}

impl SecdedCodec {
    /// Encodes 64 data bits into a 72-bit codeword.
    pub fn encode(self, data: u64) -> Codeword {
        let mut raw: u128 = 0;
        for (i, pos) in data_positions().enumerate() {
            if (data >> i) & 1 == 1 {
                raw |= 1u128 << (pos - 1);
            }
        }
        // Check bit at position 2^k covers every position with bit k set.
        for k in 0..7u32 {
            let cpos = 1u32 << k;
            let mut parity = 0u32;
            for pos in 1..=CODE_BITS {
                if pos != cpos && (pos & cpos) != 0 && (raw >> (pos - 1)) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                raw |= 1u128 << (cpos - 1);
            }
        }
        // Overall parity over positions 1..=71 (even parity).
        let ones = (raw & ((1u128 << CODE_BITS) - 1)).count_ones();
        if ones % 2 == 1 {
            raw |= 1u128 << PARITY_POS;
        }
        Codeword { raw }
    }

    /// Decodes a codeword, correcting a single-bit error and detecting
    /// double-bit errors.
    pub fn decode(self, mut cw: Codeword) -> DecodeOutcome {
        let mut syndrome = 0u32;
        for k in 0..7u32 {
            let cpos = 1u32 << k;
            let mut parity = 0u32;
            for pos in 1..=CODE_BITS {
                if (pos & cpos) != 0 && (cw.raw >> (pos - 1)) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                syndrome |= cpos;
            }
        }
        let overall = cw.raw.count_ones() % 2; // includes parity bit ⇒ should be 0

        match (syndrome, overall) {
            (0, 0) => DecodeOutcome::Clean(self.extract(cw)),
            (0, 1) => {
                // Error in the overall-parity bit itself; data intact.
                DecodeOutcome::Corrected(self.extract(cw))
            }
            (s, 1) => {
                if s > CODE_BITS {
                    // Syndrome points outside the codeword — multi-bit upset.
                    return DecodeOutcome::DetectedUncorrectable;
                }
                cw.raw ^= 1u128 << (s - 1);
                DecodeOutcome::Corrected(self.extract(cw))
            }
            (_, 0) => DecodeOutcome::DetectedUncorrectable,
            _ => unreachable!(),
        }
    }

    fn extract(self, cw: Codeword) -> u64 {
        let mut data = 0u64;
        for (i, pos) in data_positions().enumerate() {
            if (cw.raw >> (pos - 1)) & 1 == 1 {
                data |= 1u64 << i;
            }
        }
        data
    }
}

impl Codeword {
    /// Flips bit `bit` (0..72) of the stored codeword — a particle strike.
    pub fn flip(&mut self, bit: u32) {
        assert!(bit < 72, "codeword has 72 bits");
        self.raw ^= 1u128 << bit;
    }

    /// Number of codeword bits (including overall parity).
    pub const BITS: u32 = 72;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_roundtrip() {
        let codec = SecdedCodec;
        for data in [0u64, 1, u64::MAX, 0xdead_beef_cafe_babe, 0x5555_5555_5555_5555] {
            assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean(data));
        }
    }

    #[test]
    fn single_bit_errors_are_corrected_everywhere() {
        let codec = SecdedCodec;
        let data = 0x0123_4567_89ab_cdef;
        for bit in 0..72 {
            let mut cw = codec.encode(data);
            cw.flip(bit);
            assert_eq!(codec.decode(cw), DecodeOutcome::Corrected(data), "bit {bit}");
        }
    }

    #[test]
    fn double_bit_errors_are_detected_not_miscorrected() {
        let codec = SecdedCodec;
        let data = 0xfeed_f00d_dead_c0de;
        for b1 in 0..72u32 {
            for b2 in (b1 + 1)..72 {
                let mut cw = codec.encode(data);
                cw.flip(b1);
                cw.flip(b2);
                assert_eq!(codec.decode(cw), DecodeOutcome::DetectedUncorrectable, "bits {b1},{b2}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data: u64) {
            let codec = SecdedCodec;
            prop_assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean(data));
        }

        #[test]
        fn prop_single_error_corrected(data: u64, bit in 0u32..72) {
            let codec = SecdedCodec;
            let mut cw = codec.encode(data);
            cw.flip(bit);
            prop_assert_eq!(codec.decode(cw), DecodeOutcome::Corrected(data));
        }

        #[test]
        fn prop_double_error_detected(data: u64, b1 in 0u32..72, b2 in 0u32..72) {
            prop_assume!(b1 != b2);
            let codec = SecdedCodec;
            let mut cw = codec.encode(data);
            cw.flip(b1);
            cw.flip(b2);
            prop_assert_eq!(codec.decode(cw), DecodeOutcome::DetectedUncorrectable);
        }
    }
}
