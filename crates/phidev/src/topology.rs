//! Geometry and sizes of the Xeon Phi 3120A (Knights Corner).
//!
//! Numbers from paper §3.1 and the Intel KNC system software developer's
//! guide the paper cites: 57 physical in-order cores, 4 hardware threads per
//! core, 32 × 512-bit vector registers per thread context, 64 KB L1 and
//! 512 KB L2 per core, 6 GB GDDR5, cores joined by a bidirectional ring.

/// Physical in-order cores on the 3120A.
pub const KNC_CORES: usize = 57;
/// Hardware threads per core.
pub const KNC_HW_THREADS: usize = 4;
/// Logical threads the paper's OpenMP runs use (57 cores × 4 threads = 228).
pub const KNC_LOGICAL_THREADS: usize = KNC_CORES * KNC_HW_THREADS;
/// 512-bit vector registers per thread context.
pub const KNC_VECTOR_REGS: usize = 32;
/// Vector register width in bits.
pub const KNC_VECTOR_BITS: usize = 512;
/// L1 data cache per core, bytes.
pub const KNC_L1_BYTES: usize = 64 * 1024;
/// L2 cache per core, bytes.
pub const KNC_L2_BYTES: usize = 512 * 1024;
/// GDDR5 main memory, bytes (excluded from the beam in the paper).
pub const KNC_GDDR_BYTES: usize = 6 * 1024 * 1024 * 1024;
/// Cache line size, bytes.
pub const KNC_LINE_BYTES: usize = 64;
/// Process node, nanometres (22 nm Tri-gate).
pub const KNC_PROCESS_NM: u32 = 22;

/// Identifier of a logical (hardware) thread on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalThread(pub u16);

impl LogicalThread {
    /// The physical core hosting this thread.
    pub fn core(self) -> u16 {
        self.0 / KNC_HW_THREADS as u16
    }

    /// The hardware-thread slot within the core.
    pub fn slot(self) -> u16 {
        self.0 % KNC_HW_THREADS as u16
    }

    /// All logical threads sharing this thread's core (including itself).
    pub fn core_siblings(self) -> [LogicalThread; KNC_HW_THREADS] {
        let base = self.core() * KNC_HW_THREADS as u16;
        [LogicalThread(base), LogicalThread(base + 1), LogicalThread(base + 2), LogicalThread(base + 3)]
    }
}

/// The modelled device.
#[derive(Debug, Clone)]
pub struct Knc3120a {
    pub cores: usize,
    pub hw_threads: usize,
    pub l1_bytes: usize,
    pub l2_bytes: usize,
    pub vector_regs: usize,
    pub vector_bits: usize,
    pub line_bytes: usize,
}

impl Default for Knc3120a {
    fn default() -> Self {
        Knc3120a {
            cores: KNC_CORES,
            hw_threads: KNC_HW_THREADS,
            l1_bytes: KNC_L1_BYTES,
            l2_bytes: KNC_L2_BYTES,
            vector_regs: KNC_VECTOR_REGS,
            vector_bits: KNC_VECTOR_BITS,
            line_bytes: KNC_LINE_BYTES,
        }
    }
}

impl Knc3120a {
    /// Logical threads available to an application.
    pub fn logical_threads(&self) -> usize {
        self.cores * self.hw_threads
    }

    /// Total on-die SRAM bytes (L1 + L2, all cores) — the ECC-protected
    /// storage the beam can reach (GDDR5 is shielded in the experiments).
    pub fn on_die_sram_bytes(&self) -> usize {
        self.cores * (self.l1_bytes + self.l2_bytes)
    }

    /// Total vector-register file bytes across the chip.
    pub fn vector_file_bytes(&self) -> usize {
        self.cores * self.hw_threads * self.vector_regs * self.vector_bits / 8
    }

    /// f64 lanes per vector register.
    pub fn f64_lanes(&self) -> usize {
        self.vector_bits / 64
    }

    /// f32 lanes per vector register.
    pub fn f32_lanes(&self) -> usize {
        self.vector_bits / 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures_match() {
        let d = Knc3120a::default();
        assert_eq!(d.logical_threads(), 228);
        assert_eq!(d.f64_lanes(), 8);
        assert_eq!(d.f32_lanes(), 16);
        assert_eq!(d.on_die_sram_bytes(), 57 * (64 + 512) * 1024);
    }

    #[test]
    fn logical_thread_core_mapping() {
        assert_eq!(LogicalThread(0).core(), 0);
        assert_eq!(LogicalThread(3).core(), 0);
        assert_eq!(LogicalThread(4).core(), 1);
        assert_eq!(LogicalThread(227).core(), 56);
        assert_eq!(LogicalThread(5).slot(), 1);
    }

    #[test]
    fn core_siblings_share_a_core() {
        let sibs = LogicalThread(9).core_siblings();
        assert_eq!(sibs.map(|t| t.core()), [2, 2, 2, 2]);
        assert!(sibs.contains(&LogicalThread(9)));
    }

    #[test]
    fn vector_file_size() {
        let d = Knc3120a::default();
        // 57 cores * 4 threads * 32 regs * 64 B = 466944 B.
        assert_eq!(d.vector_file_bytes(), 57 * 4 * 32 * 64);
    }
}
