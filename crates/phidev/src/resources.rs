//! Strike-target inventory with protection domains.
//!
//! Paper §2.1: "while HPC accelerators have the main storage structures
//! protected with ECC implementing SECDED, some major resources are left
//! unprotected, such as flip-flops in pipelines queues, logic gates,
//! instruction dispatch units, and interconnect network." This module lists
//! those targets for the modelled 3120A with their protection scheme and a
//! relative sensitive-area weight.
//!
//! The weights are the calibration constants of the reproduction (the real
//! per-structure sensitive areas are proprietary — paper §4.2: "radiation
//! experiments alone cannot provide the exact answer without additional
//! (proprietary) details about the hardware"). They are chosen so that the
//! simulated per-benchmark FIT rates land in the measured range while every
//! propagation step downstream of the weights remains mechanistic.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Strike-sensitive structures of the modelled device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Per-core L1 data cache (SECDED).
    L1Cache,
    /// Per-core L2 cache (SECDED).
    L2Cache,
    /// 512-bit vector register file (unprotected on the model).
    VectorRegisterFile,
    /// Scalar/general-purpose register file (holds loop counters, cursors).
    GprRegisterFile,
    /// Flip-flops in pipeline queues — values in flight.
    PipelineLatch,
    /// Instruction dispatch / decode logic.
    InstructionDispatch,
    /// The bidirectional ring interconnect carrying cache lines.
    RingInterconnect,
    /// Address-generation units.
    AddressGen,
    /// FPU combinational logic.
    FpuLogic,
    /// Remaining control logic (sequencers, state machines).
    ControlLogic,
}

impl ResourceKind {
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::L1Cache => "l1-cache",
            ResourceKind::L2Cache => "l2-cache",
            ResourceKind::VectorRegisterFile => "vector-regfile",
            ResourceKind::GprRegisterFile => "gpr-regfile",
            ResourceKind::PipelineLatch => "pipeline-latch",
            ResourceKind::InstructionDispatch => "dispatch",
            ResourceKind::RingInterconnect => "ring",
            ResourceKind::AddressGen => "agu",
            ResourceKind::FpuLogic => "fpu-logic",
            ResourceKind::ControlLogic => "control-logic",
        }
    }
}

/// Protection applied to a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protection {
    /// SECDED ECC (corrects 1-bit, detects 2-bit upsets).
    EccSecded,
    /// Parity (detects odd-bit upsets; detection crashes the app).
    Parity,
    /// No protection — upsets propagate silently.
    Unprotected,
}

/// One inventory entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    pub kind: ResourceKind,
    pub protection: Protection,
    /// Relative sensitive area (arbitrary units; sampling is ∝ weight).
    pub area_weight: f64,
}

/// The device's inventory of strike targets.
#[derive(Debug, Clone)]
pub struct ResourceInventory {
    specs: Vec<ResourceSpec>,
}

impl ResourceInventory {
    /// The 3120A model: SRAM dominates sensitive area but is SECDED-covered;
    /// the unprotected latch/logic/dispatch/interconnect population carries
    /// the silent-error budget.
    pub fn knc3120a() -> Self {
        use Protection::*;
        use ResourceKind::*;
        ResourceInventory {
            specs: vec![
                ResourceSpec { kind: L1Cache, protection: EccSecded, area_weight: 14.0 },
                ResourceSpec { kind: L2Cache, protection: EccSecded, area_weight: 36.0 },
                ResourceSpec { kind: VectorRegisterFile, protection: Unprotected, area_weight: 9.0 },
                ResourceSpec { kind: GprRegisterFile, protection: Unprotected, area_weight: 4.0 },
                ResourceSpec { kind: PipelineLatch, protection: Unprotected, area_weight: 12.0 },
                ResourceSpec { kind: InstructionDispatch, protection: Unprotected, area_weight: 6.0 },
                ResourceSpec { kind: RingInterconnect, protection: Unprotected, area_weight: 7.0 },
                ResourceSpec { kind: AddressGen, protection: Unprotected, area_weight: 4.0 },
                ResourceSpec { kind: FpuLogic, protection: Unprotected, area_weight: 5.0 },
                ResourceSpec { kind: ControlLogic, protection: Unprotected, area_weight: 3.0 },
            ],
        }
    }

    /// Ablation: the same device with ECC disabled (cache strikes propagate
    /// silently). Used to quantify how much of the FIT budget SECDED absorbs.
    pub fn knc3120a_ecc_off() -> Self {
        let mut inv = Self::knc3120a();
        for s in &mut inv.specs {
            if s.protection == Protection::EccSecded {
                s.protection = Protection::Unprotected;
            }
        }
        inv
    }

    /// All entries.
    pub fn specs(&self) -> &[ResourceSpec] {
        &self.specs
    }

    /// Total sensitive area (sampling normaliser).
    pub fn total_weight(&self) -> f64 {
        self.specs.iter().map(|s| s.area_weight).sum()
    }

    /// Zeroes a resource's sensitive area (ablation support: the resource
    /// can no longer be struck; total area shrinks accordingly).
    pub fn zero_weight(&mut self, kind: ResourceKind) {
        for s in &mut self.specs {
            if s.kind == kind {
                s.area_weight = 0.0;
            }
        }
    }

    /// Samples a strike target ∝ area weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ResourceSpec {
        let total = self.total_weight();
        let mut x = rng.gen_range(0.0..total);
        for s in &self.specs {
            if x < s.area_weight {
                return *s;
            }
            x -= s.area_weight;
        }
        *self.specs.last().expect("inventory is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn inventory_covers_the_papers_unprotected_list() {
        let inv = ResourceInventory::knc3120a();
        let unprotected: Vec<ResourceKind> =
            inv.specs().iter().filter(|s| s.protection == Protection::Unprotected).map(|s| s.kind).collect();
        // Paper §2.1 names pipeline flip-flops, logic gates, dispatch and
        // interconnect explicitly.
        assert!(unprotected.contains(&ResourceKind::PipelineLatch));
        assert!(unprotected.contains(&ResourceKind::InstructionDispatch));
        assert!(unprotected.contains(&ResourceKind::RingInterconnect));
        assert!(unprotected.contains(&ResourceKind::ControlLogic));
    }

    #[test]
    fn caches_are_secded_protected() {
        let inv = ResourceInventory::knc3120a();
        for s in inv.specs() {
            if matches!(s.kind, ResourceKind::L1Cache | ResourceKind::L2Cache) {
                assert_eq!(s.protection, Protection::EccSecded);
            }
        }
    }

    #[test]
    fn ecc_off_ablation_removes_all_secded() {
        let inv = ResourceInventory::knc3120a_ecc_off();
        assert!(inv.specs().iter().all(|s| s.protection != Protection::EccSecded));
    }

    #[test]
    fn sampling_follows_weights() {
        let inv = ResourceInventory::knc3120a();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut cache_hits = 0usize;
        for _ in 0..n {
            let s = inv.sample(&mut rng);
            if matches!(s.kind, ResourceKind::L1Cache | ResourceKind::L2Cache) {
                cache_hits += 1;
            }
        }
        let expected = 50.0 / inv.total_weight();
        let got = cache_hits as f64 / n as f64;
        assert!((got - expected).abs() < 0.01, "expected {expected}, got {got}");
    }

    #[test]
    fn weights_are_positive() {
        for s in ResourceInventory::knc3120a().specs() {
            assert!(s.area_weight > 0.0);
        }
    }
}
