//! # beamsim — a LANSCE neutron-beam experiment simulator
//!
//! Reproduces the beam-experiment half of *Experimental and Analytical Study
//! of Xeon Phi Reliability* (paper §4) without a particle accelerator:
//!
//! * [`flux`] models the neutron environments — the JESD89A sea-level
//!   reference flux (13 n/cm²·h), its altitude scaling, and the accelerated
//!   LANSCE beam (10⁵–2.5 × 10⁶ n/cm²·s, "6 to 8 orders of magnitude higher
//!   than the atmospheric flux");
//! * [`effects`] turns a [`phidev::strike::ArchEffect`] into an actual
//!   corruption of the victim program's architectural state, through the
//!   same [`carolfi::FaultApplicator`] interface the injector uses — one
//!   word, a 512-bit vector's worth of lanes, a cache line in flight, one
//!   thread's control state, or a core's shared state;
//! * [`campaign`] runs strike-executions end to end: sample a strike,
//!   propagate it through the device model (SECDED corrects or machine-checks
//!   protected storage; unprotected latch/logic/dispatch upsets corrupt
//!   silently), run the victim to completion and classify against the
//!   golden output, then estimate SDC/DUE **FIT rates** with Poisson
//!   confidence intervals.
//!
//! ## What is measured vs. what is calibrated
//!
//! The per-outcome probabilities P(SDC | strike), P(DUE | strike) and the
//! spatial/severity structure of the corrupted outputs are *measured* by
//! running the actual kernels. The device's total sensitive cross-section
//! [`campaign::SIGMA_RAW_CM2`] is a calibration constant (the real value is
//! proprietary silicon data); it converts outcome probabilities into
//! absolute FIT and is chosen so the most sensitive benchmark lands near the
//! paper's ≈193 FIT ceiling.

pub mod campaign;
pub mod effects;
pub mod flux;
pub mod orchestrator;

pub use campaign::{run_beam_campaign, BeamCampaign, BeamConfig};
pub use orchestrator::{run_beam_campaign_isolated, run_beam_campaign_stored};
pub use effects::BeamApplicator;
pub use flux::{FluxEnvironment, LANSCE_FLUX_HIGH, LANSCE_FLUX_LOW, SEA_LEVEL_FLUX};
