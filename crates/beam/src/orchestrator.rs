//! Durable, sharded, resumable beam campaigns.
//!
//! [`run_beam_campaign_stored`] is the journal-backed counterpart of
//! [`crate::run_beam_campaign`], built on the same `phi-store` plumbing as
//! `carolfi::orchestrator`: strikes shard by global index (which pins their
//! RNG stream, struck resource and architectural effect), every strike
//! record is journaled before the next one starts, and an interrupted
//! campaign resumes from its per-shard cursors into an aggregate
//! bit-identical to the uninterrupted run. The MCA log — a live-campaign
//! by-product — is rebuilt from the journaled mechanism labels on
//! completion ([`crate::campaign::mca_from_records`]).

use crate::campaign::{execute_strike, mca_from_records, outcome_key, report_for, synth_due_strike, BeamCampaign, BeamConfig};
use carolfi::orchestrator::{drive_isolated, drive_shards, open_journal, StoreConfig, StoredRun};
use carolfi::output::Output;
use carolfi::target::FaultTarget;
use carolfi::warden::IsolateConfig;
use std::sync::atomic::AtomicU64;
use store::{CampaignMeta, ShardPlan};

/// Journal-backed, sharded, resumable version of
/// [`crate::run_beam_campaign`]. For a fixed `cfg.seed` the completed
/// aggregate is bit-identical to the single-shot run, for any shard count,
/// worker count or interruption pattern.
pub fn run_beam_campaign_stored<T, F>(
    benchmark: &str,
    factory: F,
    golden: &Output,
    cfg: &BeamConfig,
    store_cfg: &StoreConfig,
) -> std::io::Result<StoredRun<BeamCampaign>>
where
    T: FaultTarget,
    F: Fn() -> T + Sync,
{
    let _quiet = carolfi::panic_guard::silence_panics();
    let probe = factory();
    let total_steps = probe.total_steps().max(1);
    let pool = carolfi::TargetPool::new(&factory);
    pool.seed(probe);
    let fast_compares = AtomicU64::new(0);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);

    let meta = CampaignMeta {
        kind: "beam".into(),
        benchmark: benchmark.into(),
        seed: cfg.seed,
        trials: cfg.strikes,
        shards: store_cfg.shards,
        n_windows: cfg.n_windows,
        version: store::journal::FORMAT_VERSION,
    };
    let (writer, progress, prior) = open_journal(store_cfg, meta)?;
    let plan = ShardPlan::new(cfg.strikes, store_cfg.shards);
    carolfi::monitor::begin_campaign(benchmark, "beam", &plan, &progress);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };

    let run = drive_shards(plan, &progress, prior, writer, store_cfg, workers, &busy_ns, |strike| {
        let (record, _mca, _resource, fast) = execute_strike(benchmark, &pool, golden, cfg, total_steps, strike);
        if fast {
            fast_compares.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        record
    })?;
    Ok(match run {
        StoredRun::Paused { completed, total } => StoredRun::Paused { completed, total },
        StoredRun::Complete(records) => {
            carolfi::monitor::complete_campaign();
            let mca = mca_from_records(&cfg.engine, &records);
            let mut report = report_for(benchmark, &records, workers, busy_ns.into_inner(), wall.elapsed().as_nanos() as u64);
            report.pool_hits = pool.hits();
            report.pool_rebuilds = pool.rebuilds();
            report.fast_path_compares = fast_compares.into_inner();
            StoredRun::Complete(BeamCampaign {
                benchmark: benchmark.to_string(),
                records,
                mca,
                sigma_raw: cfg.sigma_raw,
                environment: cfg.environment,
                report,
            })
        }
    })
}

/// Process-isolated version of [`run_beam_campaign_stored`]: the opt-in
/// `--isolate` backend for beam campaigns. The calling binary must re-exec
/// itself in worker mode (see [`carolfi::warden::worker_active`] /
/// [`carolfi::warden::serve`]) and execute strikes by global index; this
/// function supervises those workers and journals the results. Worker
/// deaths are quarantined into deterministic DUE records
/// ([`crate::campaign::synth_due_strike`]) and the campaign completes.
///
/// Journal metadata is identical to [`run_beam_campaign_stored`]'s, so the
/// two backends can resume each other's journals; `total_steps` is the
/// victim's step count (the parent never builds a target).
pub fn run_beam_campaign_isolated(
    benchmark: &str,
    total_steps: usize,
    cfg: &BeamConfig,
    store_cfg: &StoreConfig,
    iso: &IsolateConfig,
) -> std::io::Result<StoredRun<BeamCampaign>> {
    let total_steps = total_steps.max(1);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);

    let meta = CampaignMeta {
        kind: "beam".into(),
        benchmark: benchmark.into(),
        seed: cfg.seed,
        trials: cfg.strikes,
        shards: store_cfg.shards,
        n_windows: cfg.n_windows,
        version: store::journal::FORMAT_VERSION,
    };
    let (writer, progress, prior) = open_journal(store_cfg, meta)?;
    let plan = ShardPlan::new(cfg.strikes, store_cfg.shards);
    carolfi::monitor::begin_campaign(benchmark, "beam", &plan, &progress);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };

    let run = drive_isolated(
        plan,
        &progress,
        prior,
        writer,
        store_cfg,
        workers,
        &busy_ns,
        iso,
        |strike, kind| synth_due_strike(benchmark, cfg, total_steps, strike, kind),
        |record| Some(outcome_key(&record.outcome)),
    )?;
    Ok(match run {
        StoredRun::Paused { completed, total } => StoredRun::Paused { completed, total },
        StoredRun::Complete(records) => {
            carolfi::monitor::complete_campaign();
            let mca = mca_from_records(&cfg.engine, &records);
            let report = report_for(benchmark, &records, workers, busy_ns.into_inner(), wall.elapsed().as_nanos() as u64);
            StoredRun::Complete(BeamCampaign {
                benchmark: benchmark.to_string(),
                records,
                mca,
                sigma_raw: cfg.sigma_raw,
                environment: cfg.environment,
                report,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_beam_campaign;
    use kernels::{build, golden, Benchmark, SizeClass};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-beam-orchestrator").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sharded_beam_campaign_matches_single_shot_including_mca() {
        let b = Benchmark::Dgemm;
        let g = golden(b, SizeClass::Test);
        let cfg = BeamConfig { strikes: 240, seed: 11, n_windows: b.n_windows(), ..Default::default() };
        let single = run_beam_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

        let mut sc = StoreConfig::new(tmp("shards-5"));
        sc.shards = 5;
        let stored = run_beam_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc)
            .unwrap()
            .expect_complete();
        assert_eq!(single.records.len(), stored.records.len());
        for (x, y) in single.records.iter().zip(&stored.records) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.mechanism, y.mechanism);
            assert_eq!(x.outcome, y.outcome);
        }
        assert_eq!(single.mca.events(), stored.mca.events(), "MCA log must survive the journal round-trip");
        assert_eq!(single.report.outcomes, stored.report.outcomes);
    }

    #[test]
    fn interrupted_beam_campaign_resumes_bit_identically() {
        let b = Benchmark::Nw;
        let g = golden(b, SizeClass::Test);
        let cfg = BeamConfig { strikes: 150, seed: 3, n_windows: b.n_windows(), ..Default::default() };
        let uninterrupted = run_beam_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);

        let mut sc = StoreConfig::new(tmp("interrupt"));
        sc.shards = 3;
        sc.checkpoint_every = 10;
        sc.budget = Some(40);
        let mut rounds = 0;
        let stored = loop {
            rounds += 1;
            assert!(rounds < 30, "campaign never completed");
            match run_beam_campaign_stored(b.label(), || build(b, SizeClass::Test), &g, &cfg, &sc).unwrap() {
                StoredRun::Complete(c) => break c,
                StoredRun::Paused { .. } => sc.resume = true,
            }
        };
        assert!(rounds > 1, "budget of 40/150 should pause at least once");
        assert_eq!(uninterrupted.records.len(), stored.records.len());
        for (x, y) in uninterrupted.records.iter().zip(&stored.records) {
            assert_eq!(x.mechanism, y.mechanism);
            assert_eq!(x.inject_step, y.inject_step);
            assert_eq!(x.outcome, y.outcome);
        }
        assert_eq!(uninterrupted.mca.events(), stored.mca.events());
    }

    /// Worker entry for the isolated beam test below: when spawned by a
    /// warden (socket env set) it serves real strike-executions by global
    /// index, aborting on the scripted strike; as an ordinary test run it
    /// is a no-op. Spec format: `<mode>,<seed>,<strikes>`.
    #[test]
    fn beam_isolated_worker_entry() {
        let Some(spec) = carolfi::warden::worker_spec() else { return };
        let mut parts = spec.split(',');
        let mode = parts.next().unwrap().to_string();
        let seed: u64 = parts.next().unwrap().parse().unwrap();
        let strikes: usize = parts.next().unwrap().parse().unwrap();
        let b = Benchmark::Dgemm;
        let cfg = BeamConfig { strikes, seed, n_windows: b.n_windows(), ..Default::default() };
        let g = golden(b, SizeClass::Test);
        let factory = || build(b, SizeClass::Test);
        let probe = factory();
        let total_steps = probe.total_steps().max(1);
        let pool = carolfi::TargetPool::new(&factory);
        pool.seed(probe);
        let abort_on: Option<usize> = mode.strip_prefix("abort-").map(|n| n.parse().unwrap());
        let result = carolfi::warden::serve(|strike, attempt| {
            if abort_on == Some(strike) {
                std::process::abort();
            }
            crate::campaign::execute_strike_attempt(b.label(), &pool, &g, &cfg, total_steps, strike, attempt, false).0
        });
        std::process::exit(if result.is_ok() { 0 } else { 1 });
    }

    #[test]
    fn isolated_beam_campaign_matches_in_process_and_quarantines_deaths() {
        use carolfi::record::{DueKind, OutcomeRecord};
        let b = Benchmark::Dgemm;
        let g = golden(b, SizeClass::Test);
        let cfg = BeamConfig { strikes: 60, seed: 11, workers: 2, n_windows: b.n_windows(), ..Default::default() };
        let reference = run_beam_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg);
        let total_steps = build(b, SizeClass::Test).total_steps().max(1);

        let mut sc = StoreConfig::new(tmp("isolated"));
        sc.shards = 2;
        let mut iso = IsolateConfig::new(
            std::env::current_exe().expect("test binary path"),
            vec![
                "orchestrator::tests::beam_isolated_worker_entry".into(),
                "--exact".into(),
                "--test-threads=1".into(),
                "--nocapture".into(),
            ],
            format!("abort-7,{},{}", cfg.seed, cfg.strikes),
        );
        iso.backoff_base = std::time::Duration::from_millis(1);
        iso.backoff_cap = std::time::Duration::from_millis(10);

        let stored = run_beam_campaign_isolated(b.label(), total_steps, &cfg, &sc, &iso).unwrap().expect_complete();
        assert_eq!(stored.records.len(), cfg.strikes);
        assert_eq!(stored.records[7].outcome, OutcomeRecord::Due(DueKind::Signal { signo: 6 }), "SIGABRT strike");
        for (x, y) in reference.records.iter().zip(&stored.records) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.mechanism, y.mechanism, "strike identity is deterministic even for quarantined strikes");
            assert_eq!(x.inject_step, y.inject_step);
            if x.trial != 7 {
                assert_eq!(x.outcome, y.outcome, "strike {}", x.trial);
            }
        }
        // MCA reconstruction rests only on mechanism labels, which survive
        // quarantine, so it must match the in-process log.
        assert_eq!(stored.mca.events(), mca_from_records(&cfg.engine, &reference.records).events());
    }
}
