//! Beam campaigns: strike-executions, outcome accounting, FIT estimation.
//!
//! The experimental methodology of paper §4.1: the device runs the benchmark
//! back to back under the beam; output errors per execution are kept below
//! 10⁻⁴ so at most one neutron contributes per run, and every mismatch or
//! crash is logged. FIT scaling: with at most one strike per execution, the
//! per-outcome cross-section is `σ_outcome = σ_raw · P(outcome | strike)`
//! and `FIT = σ_outcome × flux × 10⁹`.
//!
//! Strikes whose architectural effect is benign (hit dead state, or
//! corrected by SECDED) don't need the program executed at all — only silent
//! corruptions and machine checks run the victim, which is what makes a
//! 57 000-year campaign simulable in seconds.

use crate::effects::BeamApplicator;
use crate::flux::FluxEnvironment;
use carolfi::output::Output;
use carolfi::record::{DueKind, OutcomeRecord, TrialRecord};
use carolfi::supervisor::{run_trial_mut, TrialConfig, TrialOutcome};
use carolfi::target::FaultTarget;
use carolfi::TargetPool;
use phidev::mca::{McaLog, McaSeverity};
use phidev::strike::{ArchEffect, StrikeEngine};
use rand::Rng;
use sdc_analysis::fit::FitEstimate;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Calibrated total sensitive cross-section of the modelled 3120A, cm².
///
/// Proprietary silicon data in reality (paper §4.2: "radiation experiments
/// alone cannot provide the exact answer without additional (proprietary)
/// details about the hardware"); chosen so the most SDC-sensitive benchmark
/// lands near the paper's ≈193 FIT ceiling.
pub const SIGMA_RAW_CM2: f64 = 9.0e-8;

/// Per-strike result slot: the record, the MCA severity (if any), the
/// outcome-counter key and whether the bitwise fast-path compare classified
/// the strike, filled by whichever worker executed the strike.
type StrikeSlot = Option<(TrialRecord, Option<McaSeverity>, &'static str, bool)>;

/// Per-benchmark control-flow densities used to build the strike engine for
/// the Fig. 2 reproduction. Derived from each benchmark's character (paper
/// §3.2, §4.2): HotSpot is a memory-bound stencil full of branches and
/// address arithmetic; CLAMR's mesh bookkeeping is branchy but interleaved
/// with dense flux math; LUD mixes panel logic with BLAS-like updates;
/// DGEMM and LavaMD are regular, compute-bound SIMD codes.
pub fn control_flow_density(benchmark: &str) -> f64 {
    match benchmark {
        "hotspot" => 0.50,
        "clamr" => 0.22,
        "lud" => 0.28,
        "nw" => 0.35,
        "dgemm" => 0.10,
        "lavamd" => 0.10,
        _ => 0.25,
    }
}

/// Per-benchmark memory-boundedness (0 = compute-bound, 1 = streaming):
/// memory-bound codes keep a larger share of cache/register state live, so
/// more storage strikes land on data that matters (paper §4.2 attributes
/// HotSpot's and LUD's high SDC FIT to their data-intensive single-precision
/// stencil/solver structure).
pub fn memory_boundedness(benchmark: &str) -> f64 {
    match benchmark {
        "hotspot" => 0.85,
        "lud" => 0.55,
        "nw" => 0.55,
        "clamr" => 0.40,
        "dgemm" => 0.25,
        "lavamd" => 0.15,
        _ => 0.4,
    }
}

/// The strike engine configured for a benchmark's control-flow density and
/// memory-boundedness.
pub fn engine_for(benchmark: &str) -> StrikeEngine {
    let mut tuning = phidev::strike::StrikeTuning::with_control_flow_density(control_flow_density(benchmark));
    tuning.live_data_fraction = 0.25 + 0.5 * memory_boundedness(benchmark);
    StrikeEngine::new(phidev::resources::ResourceInventory::knc3120a(), tuning)
}

/// Beam campaign parameters.
#[derive(Debug, Clone)]
pub struct BeamConfig {
    /// Number of strike-executions to simulate.
    pub strikes: usize,
    pub seed: u64,
    /// Worker threads (0 ⇒ all cores).
    pub workers: usize,
    pub watchdog_factor: f64,
    /// Windows for the record bookkeeping.
    pub n_windows: usize,
    /// Device model.
    pub engine: StrikeEngine,
    /// Environment the FIT is scaled to.
    pub environment: FluxEnvironment,
    /// Raw device cross-section, cm².
    pub sigma_raw: f64,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            strikes: 2000,
            seed: 0xBEA3,
            workers: 0,
            watchdog_factor: 4.0,
            n_windows: 4,
            engine: StrikeEngine::knc3120a(),
            environment: FluxEnvironment::sea_level(),
            sigma_raw: SIGMA_RAW_CM2,
        }
    }
}

/// A completed beam campaign.
#[derive(Debug, Clone)]
pub struct BeamCampaign {
    pub benchmark: String,
    /// One record per strike (benign strikes appear as `HardwareMasked`).
    pub records: Vec<TrialRecord>,
    /// Machine-check events (corrected + uncorrectable).
    pub mca: McaLog,
    pub sigma_raw: f64,
    pub environment: FluxEnvironment,
    /// Campaign-level gauges (throughput, utilization, outcome counts).
    /// Rate gauges are zero when the records were loaded rather than run.
    pub report: obs::CampaignReport,
}

/// Static outcome key per strike outcome, shared by the live telemetry
/// counters and the [`obs::CampaignReport`]. Beam strikes have no fault
/// model, so outcomes are keyed under a single `beam/` prefix.
pub fn outcome_key(outcome: &OutcomeRecord) -> &'static str {
    match outcome {
        OutcomeRecord::Masked => "beam/masked",
        OutcomeRecord::HardwareMasked => "beam/hw-masked",
        OutcomeRecord::Sdc(_) => "beam/sdc",
        OutcomeRecord::Due(_) => "beam/due",
    }
}

/// Builds the campaign report from finished strike records (also used by
/// callers reloading cached records, which carry no timing information).
pub fn report_for(benchmark: &str, records: &[TrialRecord], workers: usize, busy_ns: u64, wall_ns: u64) -> obs::CampaignReport {
    let mut builder = obs::ReportBuilder::new(benchmark, workers);
    for r in records {
        let timed_out = matches!(r.outcome, OutcomeRecord::Due(DueKind::Timeout));
        builder.record_outcome(outcome_key(&r.outcome), timed_out);
    }
    builder.add_busy_ns(busy_ns);
    builder.finish(wall_ns)
}

impl BeamCampaign {
    /// Equivalent fluence represented by the simulated strikes, n/cm².
    pub fn fluence(&self) -> f64 {
        self.records.len() as f64 / self.sigma_raw
    }

    fn estimate(&self, events: usize) -> FitEstimate {
        FitEstimate { events, fluence: self.fluence(), flux: self.environment.flux }
    }

    /// SDC FIT estimate.
    pub fn fit_sdc(&self) -> FitEstimate {
        self.estimate(self.records.iter().filter(|r| r.outcome.is_sdc()).count())
    }

    /// DUE FIT estimate.
    pub fn fit_due(&self) -> FitEstimate {
        self.estimate(self.records.iter().filter(|r| r.outcome.is_due()).count())
    }

    /// The SDC summaries (for spatial/tolerance analysis downstream).
    pub fn sdc_summaries(&self) -> Vec<&carolfi::record::DiffSummary> {
        self.records
            .iter()
            .filter_map(|r| match &r.outcome {
                OutcomeRecord::Sdc(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Observed output-error rate per execution (the paper keeps the real
    /// one below 1e-4 by tuning beam intensity; the simulated campaign
    /// reports the conditional rate per *strike*, which bounds it).
    pub fn error_rate_per_strike(&self) -> f64 {
        let errors = self.records.iter().filter(|r| r.outcome.is_sdc() || r.outcome.is_due()).count();
        errors as f64 / self.records.len().max(1) as f64
    }

    /// Natural-environment hours represented by this campaign.
    pub fn natural_hours(&self) -> f64 {
        self.fluence() / self.environment.flux
    }
}

/// Executes one strike of the campaign described by `cfg` and returns its
/// record plus the MCA event (if any), the struck resource's label and
/// whether the bitwise fast-path compare classified it.
///
/// `strike` is the strike's campaign-global index, which fully determines
/// its RNG stream (`carolfi::rng::fork(cfg.seed, strike)`) and therefore the
/// struck resource, architectural effect and injection time — the property
/// the sharded/resumable orchestrator relies on to merge partial runs into
/// an aggregate bit-identical to the single-shot campaign. Benign strikes
/// (dead state, ECC-corrected) never touch the target pool — the program
/// under test is not executed at all.
pub fn execute_strike<T, F>(
    benchmark: &str,
    pool: &TargetPool<T, F>,
    golden: &Output,
    cfg: &BeamConfig,
    total_steps: usize,
    strike: usize,
) -> (TrialRecord, Option<McaSeverity>, &'static str, bool)
where
    T: FaultTarget,
    F: Fn() -> T,
{
    execute_strike_attempt(benchmark, pool, golden, cfg, total_steps, strike, 0, true)
}

/// [`execute_strike`] with explicit retry-attempt telemetry tagging, used by
/// isolated worker processes:
///
/// * `attempt > 0` marks a warden re-run of a strike whose earlier attempt
///   died (kill, hang, torn reply); the record event is emitted as
///   `strike_retry` carrying the attempt index, so log consumers can tell
///   re-executions from first runs.
/// * `count_outcomes: false` skips the outcome-class counter increment; the
///   supervisor counts the winning record exactly once per strike index
///   instead, so retries never double-count. Strike identity and the record
///   are unaffected — the flags only shape telemetry.
#[allow(clippy::too_many_arguments)]
pub fn execute_strike_attempt<T, F>(
    benchmark: &str,
    pool: &TargetPool<T, F>,
    golden: &Output,
    cfg: &BeamConfig,
    total_steps: usize,
    strike: usize,
    attempt: u32,
    count_outcomes: bool,
) -> (TrialRecord, Option<McaSeverity>, &'static str, bool)
where
    T: FaultTarget,
    F: Fn() -> T,
{
    let mut rng = carolfi::rng::fork(cfg.seed, strike as u64);
    let (resource, effect) = cfg.engine.strike(&mut rng);
    let inject_step = rng.gen_range(0..total_steps);
    let mca_event = match effect {
        ArchEffect::Corrected => Some(McaSeverity::Corrected),
        ArchEffect::DetectedUncorrectable => Some(McaSeverity::Uncorrectable),
        _ => None,
    };

    // Benign strikes don't need an execution.
    let (outcome, injection, executed, fast) = if effect.is_benign() {
        (OutcomeRecord::HardwareMasked, None, 0, false)
    } else {
        let mut applicator = BeamApplicator { effect, resource: resource.label() };
        let mut target = pool.acquire();
        let result = run_trial_mut(
            &mut target,
            golden,
            &mut applicator,
            TrialConfig { inject_step, watchdog_factor: cfg.watchdog_factor },
            &mut rng,
        );
        let outcome = match result.outcome {
            TrialOutcome::Masked => OutcomeRecord::Masked,
            TrialOutcome::HardwareMasked => OutcomeRecord::HardwareMasked,
            TrialOutcome::Sdc(s) => OutcomeRecord::Sdc(s),
            TrialOutcome::Due(c) => OutcomeRecord::Due(c.into()),
        };
        pool.release(target, outcome.is_due());
        (outcome, result.injection, result.executed_steps, result.fast_compare)
    };

    let record = TrialRecord {
        trial: strike,
        benchmark: benchmark.to_string(),
        model: None,
        mechanism: format!("beam:{}:{}", resource.label(), effect.label()),
        inject_step,
        total_steps,
        window: carolfi::campaign::window_of(inject_step, total_steps, cfg.n_windows),
        n_windows: cfg.n_windows,
        injection,
        outcome,
        executed_steps: executed,
    };
    if count_outcomes {
        obs::incr(outcome_key(&record.outcome), 1);
    }
    if obs::enabled() {
        if let Ok(json) = serde_json::to_string(&record) {
            if attempt == 0 {
                obs::event("strike", &json);
            } else {
                obs::event("strike_retry", &format!("{{\"attempt\":{attempt},\"record\":{json}}}"));
            }
        }
    }
    (record, mca_event, resource.label(), fast)
}

/// Synthesises the record of a strike whose worker process died (abort,
/// fatal signal, wall-clock kill) and was quarantined by the warden.
///
/// The strike's identity — struck resource, architectural effect, injection
/// time, window — is fully determined by the global index, so everything
/// except the outcome is reproduced exactly as [`execute_strike`] would
/// have; the outcome becomes the DUE classified from the worker's death.
/// The mechanism label keeps its `beam:<resource>:<effect>` form, so MCA
/// reconstruction ([`mca_from_records`]) still sees the strike.
pub fn synth_due_strike(benchmark: &str, cfg: &BeamConfig, total_steps: usize, strike: usize, kind: DueKind) -> TrialRecord {
    let mut rng = carolfi::rng::fork(cfg.seed, strike as u64);
    let (resource, effect) = cfg.engine.strike(&mut rng);
    let inject_step = rng.gen_range(0..total_steps);
    let record = TrialRecord {
        trial: strike,
        benchmark: benchmark.to_string(),
        model: None,
        mechanism: format!("beam:{}:{}", resource.label(), effect.label()),
        inject_step,
        total_steps,
        window: carolfi::campaign::window_of(inject_step, total_steps, cfg.n_windows),
        n_windows: cfg.n_windows,
        injection: None,
        outcome: OutcomeRecord::Due(kind),
        executed_steps: 0,
    };
    obs::incr(outcome_key(&record.outcome), 1);
    record
}

/// Rebuilds the [`McaLog`] from journaled strike records: the mechanism
/// label `beam:<resource>:<effect>` carries exactly what the live campaign
/// logs (corrected events for `ecc-corrected`, uncorrectable for `ecc-due`).
pub fn mca_from_records(engine: &StrikeEngine, records: &[TrialRecord]) -> McaLog {
    let mut mca = McaLog::new();
    for r in records {
        let mut parts = r.mechanism.splitn(3, ':');
        if parts.next() != Some("beam") {
            continue;
        }
        let (Some(resource), Some(effect)) = (parts.next(), parts.next()) else { continue };
        let severity = match effect {
            "ecc-corrected" => McaSeverity::Corrected,
            "ecc-due" => McaSeverity::Uncorrectable,
            _ => continue,
        };
        let kind = engine
            .inventory
            .specs()
            .iter()
            .find(|s| s.kind.label() == resource)
            .map(|s| s.kind)
            .unwrap_or(phidev::resources::ResourceKind::L2Cache);
        mca.record(severity, kind, r.trial as u64);
    }
    mca
}

/// Runs a beam campaign against targets built by `factory`.
pub fn run_beam_campaign<T, F>(benchmark: &str, factory: F, golden: &Output, cfg: &BeamConfig) -> BeamCampaign
where
    T: FaultTarget,
    F: Fn() -> T + Sync,
{
    let _quiet = carolfi::panic_guard::silence_panics();
    let probe = factory();
    let total_steps = probe.total_steps().max(1);
    let pool = TargetPool::new(&factory);
    pool.seed(probe);
    let fast_compares = AtomicU64::new(0);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };
    let workers = workers.min(cfg.strikes.max(1));
    let slots: Vec<parking_lot::Mutex<StrikeSlot>> =
        (0..cfg.strikes).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local_busy = 0u64;
                let mut local_fast = 0u64;
                loop {
                    let strike = next.fetch_add(1, Ordering::Relaxed);
                    if strike >= cfg.strikes {
                        break;
                    }
                    let t0 = std::time::Instant::now();
                    let slot = execute_strike(benchmark, &pool, golden, cfg, total_steps, strike);
                    local_busy += t0.elapsed().as_nanos() as u64;
                    local_fast += slot.3 as u64;
                    *slots[strike].lock() = Some(slot);
                }
                busy_ns.fetch_add(local_busy, Ordering::Relaxed);
                fast_compares.fetch_add(local_fast, Ordering::Relaxed);
            });
        }
    })
    .expect("beam worker panicked outside a trial");

    let mut records = Vec::with_capacity(cfg.strikes);
    let mut mca = McaLog::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let (record, mca_event, resource, _fast) = slot.into_inner().expect("strike record missing");
        if let Some(sev) = mca_event {
            let kind = cfg
                .engine
                .inventory
                .specs()
                .iter()
                .find(|s| s.kind.label() == resource)
                .map(|s| s.kind)
                .unwrap_or(phidev::resources::ResourceKind::L2Cache);
            mca.record(sev, kind, i as u64);
        }
        records.push(record);
    }
    let mut report = report_for(
        benchmark,
        &records,
        workers,
        busy_ns.into_inner(),
        wall.elapsed().as_nanos() as u64,
    );
    report.pool_hits = pool.hits();
    report.pool_rebuilds = pool.rebuilds();
    report.fast_path_compares = fast_compares.into_inner();
    BeamCampaign { benchmark: benchmark.to_string(), records, mca, sigma_raw: cfg.sigma_raw, environment: cfg.environment, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::{build, golden, Benchmark, SizeClass};

    fn mini_campaign(b: Benchmark, strikes: usize) -> BeamCampaign {
        let g = golden(b, SizeClass::Test);
        let cfg = BeamConfig { strikes, seed: 11, n_windows: b.n_windows(), ..Default::default() };
        run_beam_campaign(b.label(), || build(b, SizeClass::Test), &g, &cfg)
    }

    #[test]
    fn campaign_produces_records_for_every_strike() {
        let c = mini_campaign(Benchmark::Dgemm, 300);
        assert_eq!(c.records.len(), 300);
    }

    #[test]
    fn most_strikes_are_benign() {
        // Paper §4.1 tunes the beam so errors stay rare; the device model
        // must mask the overwhelming majority of strikes.
        let c = mini_campaign(Benchmark::Dgemm, 500);
        assert!(c.error_rate_per_strike() < 0.5, "error rate {}", c.error_rate_per_strike());
        let hw_masked = c.records.iter().filter(|r| matches!(r.outcome, OutcomeRecord::HardwareMasked)).count();
        assert!(hw_masked > 100);
    }

    #[test]
    fn sdc_and_due_events_occur() {
        let c = mini_campaign(Benchmark::Lud, 600);
        assert!(c.fit_sdc().events > 0, "no SDC in {} strikes", c.records.len());
        assert!(c.fit_due().events > 0, "no DUE in {} strikes", c.records.len());
    }

    #[test]
    fn ecc_produces_corrected_mca_events() {
        let c = mini_campaign(Benchmark::Hotspot, 500);
        assert!(c.mca.corrected_count() > 0, "SECDED should log corrected events");
        assert!(c.mca.corrected_count() > c.mca.uncorrectable_count());
    }

    #[test]
    fn fit_is_positive_and_finite() {
        let c = mini_campaign(Benchmark::Lud, 600);
        let fit = c.fit_sdc().fit();
        assert!(fit.is_finite() && fit > 0.0);
        // FIT must be in a physically plausible range (paper: tens to ~200).
        assert!(fit < 5000.0, "FIT {fit} absurdly high");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = mini_campaign(Benchmark::Nw, 200);
        let b = mini_campaign(Benchmark::Nw, 200);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.mechanism, rb.mechanism);
            assert_eq!(ra.outcome.label(), rb.outcome.label());
        }
    }

    #[test]
    fn report_covers_every_strike() {
        let c = mini_campaign(Benchmark::Dgemm, 300);
        assert_eq!(c.report.trials, 300);
        assert!(c.report.wall_ns > 0);
        assert_eq!(c.report.outcomes.iter().map(|(_, n)| n).sum::<usize>(), 300);
        assert_eq!(c.report.outcome("beam/sdc"), c.fit_sdc().events);
        assert_eq!(c.report.outcome("beam/due"), c.fit_due().events);
    }

    #[test]
    fn natural_hours_scale_with_strikes() {
        let c = mini_campaign(Benchmark::Dgemm, 200);
        let expected = 200.0 / SIGMA_RAW_CM2 / 13.0;
        assert!((c.natural_hours() - expected).abs() / expected < 1e-9);
    }
}
