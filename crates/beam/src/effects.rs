//! From architectural strike effects to corrupted program state.
//!
//! A [`phidev::strike::ArchEffect`] describes *how far* an unmasked upset
//! smears; this module lands it in the victim's actual variables through the
//! same [`FaultApplicator`] interface CAROL-FI uses. Unlike the source-level
//! injector — which picks variables the way GDB's frame walk does — a
//! particle strike hits physical storage, so data-scope effects select
//! variables **proportionally to their size in bytes**, and control-scope
//! effects land in the per-thread control state the struck core was holding.
//!
//! The scope distinctions are what generate the paper's multi-element
//! spatial patterns (§4.3): a corrupted shared resource (dispatch, ring,
//! vector lane logic) corrupts several values at once, while iterative
//! kernels spread even single-word upsets during the remaining computation.

use carolfi::models::{FaultApplicator, InjectionDetail};
use carolfi::target::{VarClass, Variable};
use phidev::strike::{ArchEffect, CorruptionScope};
use phidev::topology::KNC_HW_THREADS;
use rand::rngs::StdRng;
use rand::Rng;

/// Applies one architectural effect to the paused victim.
#[derive(Debug, Clone)]
pub struct BeamApplicator {
    pub effect: ArchEffect,
    /// Resource the strike hit (for the log).
    pub resource: &'static str,
}

/// Is this variable bulk data a memory/datapath strike can land in?
fn is_data(class: VarClass) -> bool {
    matches!(class, VarClass::Matrix | VarClass::InputArray | VarClass::Buffer | VarClass::SortState | VarClass::TreeState | VarClass::MeshOther)
}

/// Is this per-thread state a core-resident register/latch strike can hit?
fn is_thread_state(v: &Variable<'_>) -> bool {
    v.info.thread.is_some()
}

fn detail(v: &Variable<'_>, elem_index: usize, bits: Vec<u32>, mechanism: String) -> InjectionDetail {
    InjectionDetail {
        var_name: v.info.name.to_string(),
        var_class: v.info.class,
        frame: v.info.frame.label().to_string(),
        thread: v.info.thread,
        decl: format!("{}:{}", v.info.file, v.info.line),
        elem_index,
        bits,
        mechanism,
    }
}

/// Exposure weight of a variable to storage strikes. Read-only inputs live
/// in the shielded DRAM (paper §4.1: "On board DRAM data was not
/// irradiated"); only their transiently cached fraction is exposed.
const INPUT_EXPOSURE: f64 = 0.25;

fn exposure(v: &Variable<'_>) -> f64 {
    let w = v.bytes.len() as f64;
    if v.info.class == VarClass::InputArray {
        w * INPUT_EXPOSURE
    } else {
        w
    }
}

/// Exposure-weighted choice among a pool of variable indices.
fn pick_by_bytes<R: Rng>(vars: &[Variable<'_>], pool: &[usize], rng: &mut R) -> Option<usize> {
    let total: f64 = pool.iter().map(|&i| exposure(&vars[i])).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen_range(0.0..total);
    for &i in pool {
        if x < exposure(&vars[i]) {
            return Some(i);
        }
        x -= exposure(&vars[i]);
    }
    pool.last().copied()
}

fn flip_bits_in_elem<R: Rng>(var: &mut Variable<'_>, elem: usize, nbits: usize, rng: &mut R) -> Vec<u32> {
    let es = var.elem_size;
    let word = &mut var.bytes[elem * es..(elem + 1) * es];
    let total_bits = (es * 8) as u32;
    let mut bits = Vec::with_capacity(nbits);
    for _ in 0..nbits {
        let b = rng.gen_range(0..total_bits);
        word[(b / 8) as usize] ^= 1 << (b % 8);
        bits.push(b);
    }
    bits.sort_unstable();
    bits.dedup();
    bits
}

impl FaultApplicator for BeamApplicator {
    fn apply(&mut self, vars: &mut [Variable<'_>], rng: &mut StdRng) -> Option<InjectionDetail> {
        let mech = |scope: &str| format!("beam:{}:{}", self.resource, scope);
        match self.effect {
            ArchEffect::NoEffect | ArchEffect::Corrected => None,
            ArchEffect::DetectedUncorrectable => {
                panic!("MCERR: uncorrectable ECC error on {}", self.resource)
            }
            ArchEffect::ParityDetected => {
                panic!("parity error detected on {}", self.resource)
            }
            ArchEffect::ControlFlowCrash => {
                panic!("control flow derailed by upset in {}", self.resource)
            }
            ArchEffect::SilentCorruption { scope, multi_bit } => {
                let nbits = if multi_bit { 2 } else { 1 };
                match scope {
                    CorruptionScope::SingleWord => {
                        let pool: Vec<usize> = (0..vars.len()).filter(|&i| is_data(vars[i].info.class) && !vars[i].bytes.is_empty()).collect();
                        let i = pick_by_bytes(vars, &pool, rng)?;
                        let elem = rng.gen_range(0..vars[i].elem_count());
                        let bits = flip_bits_in_elem(&mut vars[i], elem, nbits, rng);
                        Some(detail(&vars[i], elem, bits, mech("word")))
                    }
                    CorruptionScope::VectorLanes { lanes } => {
                        let pool: Vec<usize> = (0..vars.len()).filter(|&i| is_data(vars[i].info.class) && vars[i].elem_count() >= 2).collect();
                        let i = pick_by_bytes(vars, &pool, rng)?;
                        let n = vars[i].elem_count();
                        let lanes = lanes.min(n);
                        let start = rng.gen_range(0..=n - lanes);
                        // A stuck bit column across the register's lanes.
                        let bit = rng.gen_range(0..(vars[i].elem_size * 8) as u32);
                        let es = vars[i].elem_size;
                        for l in 0..lanes {
                            vars[i].bytes[(start + l) * es + (bit / 8) as usize] ^= 1 << (bit % 8);
                        }
                        Some(detail(&vars[i], start, vec![bit], mech("vector")))
                    }
                    CorruptionScope::CacheLine { bytes } => {
                        let pool: Vec<usize> = (0..vars.len()).filter(|&i| is_data(vars[i].info.class) && !vars[i].bytes.is_empty()).collect();
                        let i = pick_by_bytes(vars, &pool, rng)?;
                        let len = vars[i].bytes.len();
                        let span = bytes.min(len);
                        let start = (rng.gen_range(0..len) / span) * span;
                        let end = (start + span).min(len);
                        // The in-flight flit upset flips a couple of bits in
                        // every word of the line (a garbled transfer, not a
                        // wholesale randomisation).
                        let es = vars[i].elem_size;
                        let first_elem = start / es;
                        let last_elem = (end.saturating_sub(1)) / es;
                        for elem in first_elem..=last_elem {
                            flip_bits_in_elem(&mut vars[i], elem, 2, rng);
                        }
                        Some(detail(&vars[i], first_elem, vec![], mech("cache-line")))
                    }
                    CorruptionScope::ThreadControl => {
                        let pool: Vec<usize> = (0..vars.len()).filter(|&i| is_thread_state(&vars[i])).collect();
                        if pool.is_empty() {
                            return None;
                        }
                        let i = pool[rng.gen_range(0..pool.len())];
                        let elem = rng.gen_range(0..vars[i].elem_count());
                        let bits = flip_bits_in_elem(&mut vars[i], elem, nbits, rng);
                        Some(detail(&vars[i], elem, bits, mech("thread-ctrl")))
                    }
                    CorruptionScope::CoreShared => {
                        // One core's worth of hardware threads sees the same
                        // corrupted shared state: flip the same bit of the
                        // same-named variable for every sibling thread.
                        let pool: Vec<usize> = (0..vars.len()).filter(|&i| is_thread_state(&vars[i])).collect();
                        if pool.is_empty() {
                            return None;
                        }
                        let anchor = pool[rng.gen_range(0..pool.len())];
                        let name = vars[anchor].info.name;
                        let core = vars[anchor].info.thread.expect("thread state") / KNC_HW_THREADS as u16;
                        let bit = rng.gen_range(0..(vars[anchor].elem_size * 8) as u32);
                        let mut touched = 0;
                        for i in 0..vars.len() {
                            let info = vars[i].info;
                            if info.name == name
                                && info.thread.map(|t| t / KNC_HW_THREADS as u16) == Some(core)
                                && vars[i].elem_size == vars[anchor].elem_size
                            {
                                vars[i].bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                                touched += 1;
                            }
                        }
                        debug_assert!(touched >= 1);
                        Some(detail(&vars[anchor], 0, vec![bit], mech("core-shared")))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carolfi::rng::fork;
    use carolfi::target::VarInfo;

    type State = (Vec<f64>, Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>);

    fn state() -> State {
        (vec![1.0; 512], vec![7; 1], vec![7; 1], vec![7; 1], vec![7; 1])
    }

    fn vars_of<'a>(
        m: &'a mut [f64],
        t0: &'a mut [u64],
        t1: &'a mut [u64],
        t4: &'a mut [u64],
        k: &'a mut [u64],
    ) -> Vec<Variable<'a>> {
        vec![
            Variable::from_slice(VarInfo::global("matrix", VarClass::Matrix, file!(), 1), m),
            Variable::from_slice(VarInfo::local("ctrl", VarClass::ControlVariable, "f", 0, file!(), 2), t0),
            Variable::from_slice(VarInfo::local("ctrl", VarClass::ControlVariable, "f", 1, file!(), 3), t1),
            Variable::from_slice(VarInfo::local("ctrl", VarClass::ControlVariable, "f", 4, file!(), 4), t4),
            Variable::from_slice(VarInfo::global("konst", VarClass::Constant, file!(), 5), k),
        ]
    }

    #[test]
    fn benign_effects_apply_nothing() {
        for effect in [ArchEffect::NoEffect, ArchEffect::Corrected] {
            let (mut m, mut a, mut b, mut c, mut k) = state();
            let mut vars = vars_of(&mut m, &mut a, &mut b, &mut c, &mut k);
            let mut app = BeamApplicator { effect, resource: "l2-cache" };
            assert!(app.apply(&mut vars, &mut fork(1, 0)).is_none());
            assert!(m.iter().all(|&x| x == 1.0));
        }
    }

    #[test]
    fn machine_checks_panic_as_due() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let (mut m, mut a, mut b, mut c, mut k) = state();
        let mut vars = vars_of(&mut m, &mut a, &mut b, &mut c, &mut k);
        let mut app = BeamApplicator { effect: ArchEffect::DetectedUncorrectable, resource: "l2-cache" };
        let mut rng = fork(2, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| app.apply(&mut vars, &mut rng)));
        assert!(r.is_err());
    }

    #[test]
    fn single_word_corrupts_one_data_element() {
        let (mut m, mut a, mut b, mut c, mut k) = state();
        {
            let mut vars = vars_of(&mut m, &mut a, &mut b, &mut c, &mut k);
            let mut app = BeamApplicator {
                effect: ArchEffect::SilentCorruption { scope: CorruptionScope::SingleWord, multi_bit: false },
                resource: "pipeline-latch",
            };
            let d = app.apply(&mut vars, &mut fork(3, 0)).expect("applied");
            assert_eq!(d.var_name, "matrix");
            assert_eq!(d.bits.len(), 1);
        }
        let changed = m.iter().filter(|&&x| x != 1.0).count();
        assert_eq!(changed, 1);
        assert_eq!(a[0], 7); // control untouched by a datapath strike
    }

    #[test]
    fn vector_lanes_touch_consecutive_elements() {
        let (mut m, mut a, mut b, mut c, mut k) = state();
        {
            let mut vars = vars_of(&mut m, &mut a, &mut b, &mut c, &mut k);
            let mut app = BeamApplicator {
                effect: ArchEffect::SilentCorruption { scope: CorruptionScope::VectorLanes { lanes: 8 }, multi_bit: false },
                resource: "vector-regfile",
            };
            app.apply(&mut vars, &mut fork(4, 0)).expect("applied");
        }
        let changed: Vec<usize> = m.iter().enumerate().filter(|(_, &x)| x != 1.0).map(|(i, _)| i).collect();
        assert_eq!(changed.len(), 8);
        assert_eq!(changed[7] - changed[0], 7, "lanes must be consecutive: {changed:?}");
    }

    #[test]
    fn cache_line_garbles_a_contiguous_span() {
        let (mut m, mut a, mut b, mut c, mut k) = state();
        {
            let mut vars = vars_of(&mut m, &mut a, &mut b, &mut c, &mut k);
            let mut app = BeamApplicator {
                effect: ArchEffect::SilentCorruption { scope: CorruptionScope::CacheLine { bytes: 64 }, multi_bit: true },
                resource: "ring",
            };
            app.apply(&mut vars, &mut fork(5, 0)).expect("applied");
        }
        let changed: Vec<usize> = m.iter().enumerate().filter(|(_, &x)| x != 1.0).map(|(i, _)| i).collect();
        assert!(!changed.is_empty() && changed.len() <= 8);
        assert!(changed.last().unwrap() - changed.first().unwrap() < 8);
    }

    #[test]
    fn core_shared_hits_all_siblings_of_one_core() {
        let (mut m, mut a, mut b, mut c, mut k) = state();
        {
            let mut vars = vars_of(&mut m, &mut a, &mut b, &mut c, &mut k);
            let mut app = BeamApplicator {
                effect: ArchEffect::SilentCorruption { scope: CorruptionScope::CoreShared, multi_bit: true },
                resource: "dispatch",
            };
            app.apply(&mut vars, &mut fork(6, 0)).expect("applied");
        }
        // Threads 0 and 1 share core 0; thread 4 is on core 1.
        let core0_changed = (a[0] != 7) as usize + (b[0] != 7) as usize;
        let core1_changed = (c[0] != 7) as usize;
        assert!(
            (core0_changed == 2 && core1_changed == 0) || (core0_changed == 0 && core1_changed == 1),
            "corruption must cover exactly one core's siblings: a={} b={} c={}",
            a[0],
            b[0],
            c[0]
        );
        assert!(m.iter().all(|&x| x == 1.0));
    }
}
