//! Neutron flux environments (paper §2.1, §4.1; JESD89A).
//!
//! "A flux of about 13 neutrons/((cm²) × h) reaches ground at sea level, and
//! the flux exponentially increases with altitude." The LANSCE beam runs
//! "about between 1 × 10⁵ n/(cm²/s) and 2.5 × 10⁶ n/(cm²/s), about 6 to 8
//! orders of magnitude higher than the atmospheric neutron flux at sea
//! level."

use serde::{Deserialize, Serialize};

/// Sea-level reference flux, n/(cm²·h).
pub const SEA_LEVEL_FLUX: f64 = 13.0;
/// Lower LANSCE beam flux, n/(cm²·s).
pub const LANSCE_FLUX_LOW: f64 = 1.0e5;
/// Upper LANSCE beam flux, n/(cm²·s).
pub const LANSCE_FLUX_HIGH: f64 = 2.5e6;
/// Atmospheric-depth scale for the altitude model, in metres of equivalent
/// exponential lapse — fitted so Leadville, CO (3094 m) sees the ≈13× sea
/// level flux JESD89A reports (flux roughly doubles every ~840 m low down).
const ALTITUDE_SCALE_M: f64 = 1206.0;

/// A neutron environment a device is exposed to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluxEnvironment {
    /// Flux in n/(cm²·h).
    pub flux: f64,
}

impl FluxEnvironment {
    /// New York City sea-level reference.
    pub fn sea_level() -> Self {
        FluxEnvironment { flux: SEA_LEVEL_FLUX }
    }

    /// Terrestrial flux at `altitude_m` metres (JESD89A exponential model,
    /// valid to ~3 km; Leadville-class sites see ≈13× sea level at 3.1 km).
    pub fn at_altitude(altitude_m: f64) -> Self {
        FluxEnvironment { flux: SEA_LEVEL_FLUX * (altitude_m / ALTITUDE_SCALE_M).exp() }
    }

    /// The LANSCE beam at a given flux in n/(cm²·s).
    pub fn lansce(flux_per_second: f64) -> Self {
        FluxEnvironment { flux: flux_per_second * 3600.0 }
    }

    /// Acceleration factor over the sea-level environment.
    pub fn acceleration(&self) -> f64 {
        self.flux / SEA_LEVEL_FLUX
    }

    /// Fluence accumulated over `hours` of exposure, n/cm².
    pub fn fluence(&self, hours: f64) -> f64 {
        self.flux * hours
    }

    /// Natural-environment hours equivalent to `hours` in this environment.
    pub fn natural_equivalent_hours(&self, hours: f64) -> f64 {
        hours * self.acceleration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lansce_acceleration_is_6_to_8_orders_of_magnitude() {
        let lo = FluxEnvironment::lansce(LANSCE_FLUX_LOW).acceleration();
        let hi = FluxEnvironment::lansce(LANSCE_FLUX_HIGH).acceleration();
        assert!((1e6..1e8).contains(&lo), "low acceleration {lo}");
        assert!(hi > 1e8 && hi < 1e9, "high acceleration {hi}");
    }

    #[test]
    fn paper_beam_campaign_covers_57000_years() {
        // ">500 hours of beam time … at least 5×10⁸ hours of normal
        // operations, which are 57,000 years."
        let env = FluxEnvironment::lansce(LANSCE_FLUX_HIGH);
        let natural_hours = env.natural_equivalent_hours(500.0);
        assert!(natural_hours >= 5e8, "got {natural_hours}");
        assert!(natural_hours / (24.0 * 365.0) >= 57_000.0);
    }

    #[test]
    fn altitude_increases_flux_exponentially() {
        let sea = FluxEnvironment::at_altitude(0.0);
        assert!((sea.flux - SEA_LEVEL_FLUX).abs() < 1e-9);
        let denver = FluxEnvironment::at_altitude(1609.0);
        assert!(denver.flux > 3.0 * SEA_LEVEL_FLUX && denver.flux < 5.5 * SEA_LEVEL_FLUX, "Denver {denver:?}");
        let leadville = FluxEnvironment::at_altitude(3094.0);
        assert!(leadville.flux > denver.flux);
        assert!((10.0..20.0).contains(&(leadville.flux / SEA_LEVEL_FLUX)), "Leadville factor {}", leadville.flux / SEA_LEVEL_FLUX);
    }

    #[test]
    fn fluence_accumulates_linearly() {
        let env = FluxEnvironment::sea_level();
        assert!((env.fluence(2.0) - 26.0).abs() < 1e-12);
    }
}
