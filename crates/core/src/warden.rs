//! Process-isolated trial execution: the **warden**.
//!
//! CAROL-FI (paper §5.1) runs every victim as a separate process under GDB
//! and kills it on a wall-clock limit, so a victim that aborts, blows its
//! stack or gets OOM-killed never takes the injector down. The in-process
//! supervisor emulates that with `catch_unwind`, which survives panics but
//! nothing harder. This module restores the real architecture, ZOFI-style:
//!
//! * The campaign binary re-execs **itself** in a worker mode (selected by
//!   the [`SOCKET_ENV`] environment variable, conventionally alongside a
//!   `--warden-worker` argv marker). The worker connects back to the
//!   parent over a Unix socket, receives `Run { trial }` requests, executes
//!   trials with the exact same `execute_trial` code path as the in-process
//!   backend, and streams [`TrialRecord`]s back over a length-prefixed
//!   frame protocol, with a heartbeat thread ticking while a trial runs.
//! * The parent-side [`Warden`] supervises one worker: it spawns it on
//!   demand, imposes a **wall-clock** deadline per trial (complementing the
//!   in-worker step-budget watchdog, which corrupted control flow can
//!   evade), SIGKILLs the worker on expiry, and classifies worker death
//!   from the exit status — death by signal becomes
//!   [`DueKind::Signal`], a warden kill becomes [`DueKind::Killed`].
//! * Failure policy: *victim-death* (signal / non-zero exit / wall-clock
//!   kill) retries the trial in a fresh worker until
//!   [`IsolateConfig::quarantine_after`] consecutive deaths **quarantine**
//!   it — the trial is recorded as a DUE with a diagnostic and the campaign
//!   moves on. *Infra-death* (spawn failure, clean mid-protocol exit,
//!   protocol corruption) retries with capped exponential backoff and
//!   surfaces an error only once [`IsolateConfig::infra_retries`] is
//!   exhausted. Backoff schedules are deterministic (no wall clock, no OS
//!   entropy) so a reproduced failure reproduces its recovery.
//!
//! Telemetry: `warden/spawned`, `warden/killed`, `warden/retries`,
//! `warden/quarantined` counters and a `trial_wall` span per trial.
//!
//! The worker's *own* telemetry is not lost either: workers that have a
//! metrics-keeping recorder installed periodically (and on shutdown) ship a
//! cumulative [`MetricsFrame`] which the parent folds into the process-global
//! [`obs::MetricsHub`], keyed by worker identity — so `--isolate --telemetry`
//! footers and the `--monitor` endpoint see inside the sandbox.

use crate::record::{DueKind, TrialRecord};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::os::unix::process::ExitStatusExt;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable carrying the parent's socket path; its presence is
/// what switches a re-exec'd binary into worker mode.
pub const SOCKET_ENV: &str = "PHI_WARDEN_SOCKET";

/// Environment variable carrying the campaign spec (opaque to this module:
/// the embedding binary encodes whatever it needs to rebuild `run_one`).
pub const SPEC_ENV: &str = "PHI_WARDEN_SPEC";

/// Frames larger than this are protocol corruption, not data. Shared by
/// every warden-framed endpoint (supervision sockets, `--monitor`,
/// `phi-serve`).
pub const MAX_FRAME: usize = 16 << 20;

/// Heartbeat period while a trial is executing.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(25);

/// How long a freshly spawned worker gets to connect back.
const SPAWN_WAIT: Duration = Duration::from_secs(10);

/// How long after a broken pipe we wait for the worker's exit status before
/// declaring it unreapable and killing it.
const REAP_GRACE: Duration = Duration::from_secs(2);

/// Parent → worker protocol frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Execute one trial (campaign-global index) and reply with `Record`.
    /// `attempt` is 0 for the first execution and grows with every warden
    /// retry of the same trial, so workers can tag their telemetry events
    /// and keep outcome counting once-per-trial.
    Run { trial: u64, attempt: u32 },
    /// Drain and exit cleanly.
    Shutdown,
}

/// Worker → parent protocol frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// First frame after connecting.
    Hello { pid: u32 },
    /// Liveness tick while `trial` is executing.
    Heartbeat { trial: u64 },
    /// One finished trial; `payload` is the serialized [`TrialRecord`]
    /// exactly as the worker's `execute_trial` produced it.
    Record { trial: u64, payload: String },
    /// Cumulative snapshot of the worker's recorder. Sent opportunistically
    /// (throttled) and on shutdown; the parent folds the latest one per
    /// worker into the global [`obs::MetricsHub`].
    Metrics { metrics: MetricsFrame },
}

/// One counter on the wire. (Named-field structs throughout: the wire
/// format keeps maps as explicit entry lists so the JSON schema is
/// self-describing.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterFrame {
    pub name: String,
    pub value: u64,
}

/// One non-empty log₂ histogram bucket on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketFrame {
    pub upper_ns: u64,
    pub count: u64,
}

/// One latency histogram on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistFrame {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
    pub buckets: Vec<BucketFrame>,
}

/// Wire form of an [`obs::MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsFrame {
    pub counters: Vec<CounterFrame>,
    pub hists: Vec<HistFrame>,
}

impl MetricsFrame {
    pub fn from_snapshot(snap: &obs::MetricsSnapshot) -> Self {
        MetricsFrame {
            counters: snap
                .counters
                .iter()
                .map(|(name, &value)| CounterFrame { name: name.clone(), value })
                .collect(),
            hists: snap
                .hists
                .iter()
                .map(|(name, h)| HistFrame {
                    name: name.clone(),
                    count: h.count,
                    sum_ns: h.sum_ns,
                    max_ns: h.max_ns,
                    buckets: h.buckets.iter().map(|&(upper_ns, count)| BucketFrame { upper_ns, count }).collect(),
                })
                .collect(),
        }
    }

    pub fn into_snapshot(self) -> obs::MetricsSnapshot {
        let mut snap = obs::MetricsSnapshot::new();
        for c in self.counters {
            snap.counters.insert(c.name, c.value);
        }
        for h in self.hists {
            snap.hists.insert(
                h.name,
                obs::HistData {
                    count: h.count,
                    sum_ns: h.sum_ns,
                    max_ns: h.max_ns,
                    buckets: h.buckets.into_iter().map(|b| (b.upper_ns, b.count)).collect(),
                },
            );
        }
        snap
    }
}

fn other(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::other(msg.into())
}

/// Writes one length-prefixed JSON frame (4-byte LE length, then bytes).
pub fn write_frame<T: Serialize>(w: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(msg).map_err(std::io::Error::other)?;
    if json.len() > MAX_FRAME {
        return Err(other(format!("frame of {} bytes exceeds the {MAX_FRAME}-byte cap", json.len())));
    }
    w.write_all(&(json.len() as u32).to_le_bytes())?;
    w.write_all(json.as_bytes())?;
    w.flush()
}

fn parse_frame<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> std::io::Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| other(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| other(format!("bad frame {text:?}: {e}")))
}

/// Reads exactly `buf.len()` bytes, polling with short read timeouts so the
/// absolute `deadline` is honored even while bytes trickle in. EOF is
/// `UnexpectedEof`; deadline expiry is `TimedOut`.
fn read_exact_deadline(s: &mut UnixStream, buf: &mut [u8], deadline: Instant) -> std::io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(std::io::ErrorKind::TimedOut, "wall-clock deadline expired"));
        }
        s.set_read_timeout(Some((deadline - now).min(Duration::from_millis(50))))?;
        match s.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "worker closed the stream"))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads one frame with an absolute deadline.
pub fn read_frame_deadline<T: for<'de> Deserialize<'de>>(s: &mut UnixStream, deadline: Instant) -> std::io::Result<T> {
    let mut len = [0u8; 4];
    read_exact_deadline(s, &mut len, deadline)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(other(format!("frame length {len} exceeds the {MAX_FRAME}-byte cap")));
    }
    let mut body = vec![0u8; len];
    read_exact_deadline(s, &mut body, deadline)?;
    parse_frame(&body)
}

/// Blocking frame read for the worker side (the parent owns all deadlines).
/// Also the monitor endpoint's framing (`carolfi::monitor`, `phi-top`).
pub fn read_frame_blocking<T: for<'de> Deserialize<'de>>(s: &mut UnixStream) -> std::io::Result<T> {
    s.set_read_timeout(None)?;
    let mut len = [0u8; 4];
    read_exact_blocking(s, &mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(other(format!("frame length {len} exceeds the {MAX_FRAME}-byte cap")));
    }
    let mut body = vec![0u8; len];
    read_exact_blocking(s, &mut body)?;
    parse_frame(&body)
}

/// Blocking frame read over any byte stream — the TCP transport of
/// distributed campaigns uses this with `TcpStream`. Honors whatever read
/// timeout the caller set on the underlying socket (a timeout surfaces as
/// the socket's `WouldBlock`/`TimedOut` error; note a timeout mid-frame
/// leaves the stream misaligned, so callers treat it as fatal to the
/// connection). [`MAX_FRAME`] is enforced before any body allocation.
pub fn read_frame<T: for<'de> Deserialize<'de>>(r: &mut impl Read) -> std::io::Result<T> {
    let mut len = [0u8; 4];
    read_exact_stream(r, &mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(other(format!("frame length {len} exceeds the {MAX_FRAME}-byte cap")));
    }
    let mut body = vec![0u8; len];
    read_exact_stream(r, &mut body)?;
    parse_frame(&body)
}

fn read_exact_stream(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "peer closed the stream")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn read_exact_blocking(s: &mut UnixStream, buf: &mut [u8]) -> std::io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match s.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "parent closed the stream"))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent side.

/// How to spawn and supervise worker processes.
#[derive(Debug, Clone)]
pub struct IsolateConfig {
    /// Worker executable (normally `std::env::current_exe()`).
    pub program: PathBuf,
    /// Arguments for the worker invocation (e.g. `["--warden-worker"]`, or
    /// a libtest filter in self-exec tests). Worker mode itself is selected
    /// by [`SOCKET_ENV`], not by argv.
    pub args: Vec<String>,
    /// Opaque campaign spec handed to the worker via [`SPEC_ENV`].
    pub spec: String,
    /// Wall-clock budget per trial; expiry SIGKILLs the worker and records
    /// the trial as [`DueKind::Killed`] (after retries/quarantine policy).
    pub trial_wall: Duration,
    /// Consecutive worker deaths on one trial before it is quarantined.
    pub quarantine_after: u32,
    /// Infra-level failures (spawn error, protocol breakdown) tolerated per
    /// trial before the error is surfaced and the shard fails.
    pub infra_retries: u32,
    /// Base and cap of the exponential retry backoff.
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
}

impl IsolateConfig {
    /// Config with production defaults for a self-re-exec of `program`.
    pub fn new(program: PathBuf, args: Vec<String>, spec: String) -> Self {
        IsolateConfig {
            program,
            args,
            spec,
            trial_wall: Duration::from_secs(30),
            quarantine_after: 2,
            infra_retries: 4,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
        }
    }

    /// Retry delay for `attempt` (0-based) of `trial`: capped exponential
    /// growth plus deterministic per-(trial, attempt) jitter, so concurrent
    /// shards retrying the same condition de-synchronize without consulting
    /// a clock or entropy source (which would break reproducibility).
    pub fn backoff(&self, trial: usize, attempt: u32) -> Duration {
        let base_ms = self.backoff_base.as_millis().max(1) as u64;
        let cap_ms = self.backoff_cap.as_millis().max(1) as u64;
        let exp_ms = base_ms.saturating_mul(1u64 << attempt.min(16));
        let hash = (trial as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let jitter_ms = hash % base_ms;
        Duration::from_millis(exp_ms.min(cap_ms) + jitter_ms)
    }
}

/// Outcome of one isolated trial, after the retry/quarantine policy ran.
#[derive(Debug)]
pub enum IsolatedTrial {
    /// The worker returned a record (bit-identical to what the in-process
    /// backend would have produced for this trial).
    Completed(Box<TrialRecord>),
    /// The trial killed its worker [`IsolateConfig::quarantine_after`]
    /// times in a row; the caller should journal a synthesized DUE record
    /// carrying `kind` and keep the campaign going.
    Quarantined { kind: DueKind, diagnostic: String },
}

/// How one execution attempt died.
enum Death {
    /// The victim (or something in its process) is at fault: counts toward
    /// quarantine and becomes the trial's DUE kind.
    Victim { kind: DueKind, diag: String },
    /// The harness plumbing is at fault: retried with backoff, then
    /// surfaced as an I/O error (failing the shard, not the campaign).
    Infra(String),
}

struct WorkerConn {
    child: Child,
    stream: UnixStream,
    /// Hub source key: unique per spawned worker (pid alone could recycle),
    /// so a respawn accumulates on top of its predecessors' folded metrics.
    source: String,
}

static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);
static WORKER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Supervises one worker process. One warden per orchestrator thread;
/// workers are reused across trials and respawned on demand after a death.
pub struct Warden {
    cfg: IsolateConfig,
    listener: UnixListener,
    socket_path: PathBuf,
    worker: Option<WorkerConn>,
}

impl Warden {
    /// Binds the rendezvous socket; the first trial spawns the worker.
    pub fn new(cfg: IsolateConfig) -> std::io::Result<Self> {
        let seq = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
        let socket_path = std::env::temp_dir().join(format!("phi-warden-{}-{}.sock", std::process::id(), seq));
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?; // accept() is polled under a deadline
        Ok(Warden { cfg, listener, socket_path, worker: None })
    }

    /// Runs one trial to a final verdict, applying the full watchdog /
    /// retry / quarantine policy. `Err` means infrastructure gave out — the
    /// caller should fail its shard (the journal stays resumable).
    pub fn run_trial(&mut self, trial: usize) -> std::io::Result<IsolatedTrial> {
        let _span = obs::span!("trial_wall");
        let mut deaths: Vec<String> = Vec::new();
        let mut infra = 0u32;
        let mut attempt = 0u32;
        loop {
            match self.attempt_trial(trial, attempt) {
                Ok(record) => return Ok(IsolatedTrial::Completed(Box::new(record))),
                Err(Death::Victim { kind, diag }) => {
                    deaths.push(diag);
                    if deaths.len() as u32 >= self.cfg.quarantine_after {
                        obs::incr("warden/quarantined", 1);
                        let diagnostic = format!(
                            "trial {trial} quarantined after {} consecutive worker deaths: {}",
                            deaths.len(),
                            deaths.join("; ")
                        );
                        if obs::enabled() {
                            obs::event("warden_quarantine", &format!("{{\"trial\":{trial},\"deaths\":{}}}", deaths.len()));
                        }
                        return Ok(IsolatedTrial::Quarantined { kind, diagnostic });
                    }
                }
                Err(Death::Infra(msg)) => {
                    infra += 1;
                    if infra > self.cfg.infra_retries {
                        return Err(other(format!(
                            "trial {trial}: {infra} infrastructure failures, giving up; last: {msg}"
                        )));
                    }
                }
            }
            obs::incr("warden/retries", 1);
            std::thread::sleep(self.cfg.backoff(trial, attempt));
            attempt += 1;
        }
    }

    /// Asks the warden's worker to shut down cleanly (best effort; dropping
    /// the warden kills whatever is left).
    pub fn shutdown(&mut self) {
        if let Some(mut w) = self.worker.take() {
            let _ = write_frame(&mut w.stream, &Request::Shutdown);
            // Drain the worker's parting frames — it ships a final
            // cumulative Metrics before closing its end of the stream.
            let deadline = Instant::now() + Duration::from_millis(500);
            while let Ok(reply) = read_frame_deadline::<Reply>(&mut w.stream, deadline) {
                if let Reply::Metrics { metrics } = reply {
                    self.fold_metrics(&w.source, metrics);
                }
            }
            if wait_with_grace(&mut w.child, Duration::from_millis(500)).is_none() {
                let _ = w.child.kill();
                let _ = w.child.wait();
            }
        }
    }

    /// Folds a worker's cumulative snapshot into the process-global hub.
    fn fold_metrics(&self, source: &str, metrics: MetricsFrame) {
        obs::incr("warden/metric_frames", 1);
        obs::hub().fold(source, metrics.into_snapshot());
    }

    /// One execution attempt: ensure a live worker, send `Run`, pump frames
    /// until a record arrives or the wall clock runs out.
    fn attempt_trial(&mut self, trial: usize, attempt: u32) -> Result<TrialRecord, Death> {
        if self.worker.is_none() {
            self.spawn_worker().map_err(|e| Death::Infra(format!("spawn worker: {e}")))?;
        }
        let deadline = Instant::now() + self.cfg.trial_wall;
        let w = self.worker.as_mut().expect("worker just ensured");
        if let Err(e) = write_frame(&mut w.stream, &Request::Run { trial: trial as u64, attempt }) {
            return Err(self.reap(format!("trial {trial}: sending Run failed: {e}")));
        }
        loop {
            let w = self.worker.as_mut().expect("worker alive while pumping frames");
            match read_frame_deadline::<Reply>(&mut w.stream, deadline) {
                Ok(Reply::Heartbeat { .. }) | Ok(Reply::Hello { .. }) => continue,
                Ok(Reply::Metrics { metrics }) => {
                    let source = w.source.clone();
                    self.fold_metrics(&source, metrics);
                    continue;
                }
                Ok(Reply::Record { trial: got, payload }) => {
                    if got != trial as u64 {
                        return Err(self.reap(format!("trial {trial}: worker answered trial {got}")));
                    }
                    let record: TrialRecord = match serde_json::from_str(&payload) {
                        Ok(r) => r,
                        Err(e) => return Err(self.reap(format!("trial {trial}: unparseable record: {e}"))),
                    };
                    if record.trial != trial {
                        return Err(self.reap(format!(
                            "trial {trial}: record payload carries trial {}",
                            record.trial
                        )));
                    }
                    return Ok(record);
                }
                Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                    // Wall-clock expiry: the complement of the in-worker
                    // step-budget watchdog, for hangs that never step.
                    self.kill_worker();
                    return Err(Death::Victim {
                        kind: DueKind::Killed,
                        diag: format!(
                            "trial {trial}: exceeded the {:?} wall clock; worker killed",
                            self.cfg.trial_wall
                        ),
                    });
                }
                Err(e) => return Err(self.reap(format!("trial {trial}: stream broke: {e}"))),
            }
        }
    }

    /// Spawns a fresh worker and waits for it to connect and say Hello.
    fn spawn_worker(&mut self) -> std::io::Result<()> {
        let mut child = Command::new(&self.cfg.program)
            .args(&self.cfg.args)
            .env(SOCKET_ENV, &self.socket_path)
            .env(SPEC_ENV, &self.cfg.spec)
            .stdin(Stdio::null())
            .stdout(Stdio::null()) // worker stdout must never pollute figure output
            .spawn()?;
        let deadline = Instant::now() + SPAWN_WAIT;
        let mut stream = loop {
            match self.listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Ok(Some(status)) = child.try_wait() {
                        return Err(other(format!("worker died before connecting: {status}")));
                    }
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(other("worker did not connect within the spawn deadline"));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            }
        };
        stream.set_nonblocking(false)?;
        match read_frame_deadline::<Reply>(&mut stream, deadline)? {
            Reply::Hello { .. } => {}
            otherwise => return Err(other(format!("worker's first frame was not Hello: {otherwise:?}"))),
        }
        obs::incr("warden/spawned", 1);
        let source = format!("worker-{}-{}", child.id(), WORKER_SEQ.fetch_add(1, Ordering::Relaxed));
        self.worker = Some(WorkerConn { child, stream, source });
        Ok(())
    }

    /// SIGKILLs the current worker (wall-clock expiry).
    fn kill_worker(&mut self) {
        if let Some(mut w) = self.worker.take() {
            let _ = w.child.kill();
            let _ = w.child.wait();
            obs::incr("warden/killed", 1);
        }
    }

    /// The stream to the worker broke: classify its death from the exit
    /// status. Signals and non-zero exits are the victim's doing (they
    /// count toward quarantine); a clean exit or an unreapable child is an
    /// infrastructure failure.
    fn reap(&mut self, context: String) -> Death {
        let Some(mut w) = self.worker.take() else {
            return Death::Infra(context);
        };
        match wait_with_grace(&mut w.child, REAP_GRACE) {
            Some(status) => classify_exit(status, context),
            None => {
                // Still alive after breaking the protocol: put it down.
                let _ = w.child.kill();
                let _ = w.child.wait();
                obs::incr("warden/killed", 1);
                Death::Infra(format!("{context}; worker killed after protocol breakdown"))
            }
        }
    }
}

impl Drop for Warden {
    fn drop(&mut self) {
        self.shutdown();
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// Maps a dead worker's exit status onto the failure taxonomy.
fn classify_exit(status: ExitStatus, context: String) -> Death {
    if let Some(signo) = status.signal() {
        Death::Victim {
            kind: DueKind::Signal { signo },
            diag: format!("{context}; worker died on signal {signo}"),
        }
    } else if status.code() == Some(0) {
        // A clean exit mid-protocol is a harness bug, not victim behavior.
        Death::Infra(format!("{context}; worker exited cleanly mid-protocol"))
    } else {
        Death::Victim {
            kind: DueKind::Crash { message: format!("worker exited with {status} mid-trial") },
            diag: format!("{context}; worker exited with {status}"),
        }
    }
}

/// Polls `try_wait` until `grace` expires.
fn wait_with_grace(child: &mut Child, grace: Duration) -> Option<ExitStatus> {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(2)),
            _ => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side.

/// True when this process was spawned as a warden worker. Embedding
/// binaries call this first thing in `main` and divert into their worker
/// entry instead of running the figure.
pub fn worker_active() -> bool {
    std::env::var_os(SOCKET_ENV).is_some()
}

/// The opaque campaign spec, when running as a worker.
pub fn worker_spec() -> Option<String> {
    worker_active().then(|| std::env::var(SPEC_ENV).unwrap_or_default())
}

/// How often a worker refreshes its cumulative metrics frame (heartbeat
/// multiples; 8 ticks ≈ 200 ms).
const METRICS_EVERY_TICKS: u32 = 8;

/// Worker main loop: connect back to the parent, answer `Run` requests via
/// `run_one` (the embedder rebuilds the campaign's trial closure from the
/// spec; the second argument is the warden's attempt index for this trial),
/// stream records, heartbeat while executing. Returns when the parent shuts
/// the stream down. Victim panics are silenced exactly as in in-process
/// campaigns; anything harder (abort, runaway loop) takes the worker down,
/// which is the point — the parent classifies the corpse.
///
/// If the worker process has a metrics-keeping recorder installed
/// ([`obs::snapshot`] returns `Some`), its cumulative state is shipped to
/// the parent alongside heartbeats (throttled), after every record, and as
/// a parting frame on shutdown.
pub fn serve(mut run_one: impl FnMut(usize, u32) -> TrialRecord) -> std::io::Result<()> {
    let path = std::env::var(SOCKET_ENV).map_err(|_| other(format!("{SOCKET_ENV} is not set")))?;
    let mut reader = UnixStream::connect(&path)?;
    let writer = Arc::new(parking_lot::Mutex::new(reader.try_clone()?));
    let _quiet = crate::panic_guard::silence_panics();
    write_frame(&mut *writer.lock(), &Reply::Hello { pid: std::process::id() })?;

    let send_metrics = |w: &mut UnixStream| -> std::io::Result<()> {
        match obs::snapshot() {
            Some(snap) => write_frame(w, &Reply::Metrics { metrics: MetricsFrame::from_snapshot(&snap) }),
            None => Ok(()),
        }
    };

    // Heartbeat thread: ticks while a trial is in flight (u64::MAX = idle),
    // refreshing the parent's view of our metrics every few ticks so even a
    // long-running single trial reports live counters.
    let current = Arc::new(AtomicU64::new(u64::MAX));
    let done = Arc::new(AtomicBool::new(false));
    let hb = {
        let writer = writer.clone();
        let current = current.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut ticks = 0u32;
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(HEARTBEAT_EVERY);
                let trial = current.load(Ordering::Relaxed);
                if trial == u64::MAX {
                    continue;
                }
                ticks += 1;
                let mut w = writer.lock();
                if write_frame(&mut *w, &Reply::Heartbeat { trial }).is_err() {
                    break; // parent is gone; the main loop will notice too
                }
                if ticks.is_multiple_of(METRICS_EVERY_TICKS) && send_metrics(&mut w).is_err() {
                    break;
                }
            }
        })
    };

    let mut last_metrics = Instant::now();
    let result = loop {
        let request: Request = match read_frame_blocking(&mut reader) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break Ok(()),
            Err(e) => break Err(e),
        };
        match request {
            Request::Shutdown => break Ok(()),
            Request::Run { trial, attempt } => {
                current.store(trial, Ordering::Relaxed);
                let record = run_one(trial as usize, attempt);
                current.store(u64::MAX, Ordering::Relaxed);
                let payload = match serde_json::to_string(&record) {
                    Ok(p) => p,
                    Err(e) => break Err(other(format!("serialize record for trial {trial}: {e}"))),
                };
                let mut w = writer.lock();
                if let Err(e) = write_frame(&mut *w, &Reply::Record { trial, payload }) {
                    break Err(e);
                }
                // Refresh the parent's metrics view, throttled so fast
                // trials don't pay a snapshot+serialize each (best effort,
                // the Record already landed).
                if last_metrics.elapsed() >= HEARTBEAT_EVERY * METRICS_EVERY_TICKS {
                    last_metrics = Instant::now();
                    let _ = send_metrics(&mut w);
                }
            }
        }
    };
    done.store(true, Ordering::Relaxed);
    // Parting cumulative snapshot: the shutdown drain on the parent side
    // folds it so nothing recorded since the last refresh is lost.
    let _ = send_metrics(&mut writer.lock());
    let _ = hb.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OutcomeRecord;

    /// A synthetic, deterministic record (no real victim needed to exercise
    /// the transport and supervision machinery).
    fn mk_record(trial: usize) -> TrialRecord {
        TrialRecord {
            trial,
            benchmark: "warden-test".into(),
            model: None,
            mechanism: format!("synthetic-{trial}"),
            inject_step: trial % 7,
            total_steps: 7,
            window: 0,
            n_windows: 1,
            injection: None,
            outcome: OutcomeRecord::Masked,
            executed_steps: 7,
        }
    }

    /// Worker entry for the self-exec tests: when spawned by a parent test
    /// (socket env set) it serves trials whose behavior is scripted by the
    /// spec; as an ordinary test run it is a no-op.
    #[test]
    fn warden_worker_entry() {
        let Some(spec) = worker_spec() else { return };
        let result = serve(|trial, _attempt| {
            match (spec.as_str(), trial) {
                ("abort-on-5", 5) => std::process::abort(),
                ("exit-on-4", 4) => std::process::exit(17),
                ("hang-on-3", 3) => loop {
                    std::thread::sleep(Duration::from_millis(20));
                },
                _ => {}
            }
            mk_record(trial)
        });
        std::process::exit(if result.is_ok() { 0 } else { 1 });
    }

    /// IsolateConfig pointing back at this test binary, filtered down to
    /// the worker entry above.
    fn iso(spec: &str) -> IsolateConfig {
        let mut cfg = IsolateConfig::new(
            std::env::current_exe().expect("test binary path"),
            vec![
                "warden::tests::warden_worker_entry".into(),
                "--exact".into(),
                "--test-threads=1".into(),
                "--nocapture".into(),
            ],
            spec.into(),
        );
        cfg.backoff_base = Duration::from_millis(1);
        cfg.backoff_cap = Duration::from_millis(10);
        cfg
    }

    #[test]
    fn frames_roundtrip_over_a_socketpair() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let msg = Reply::Record { trial: 12, payload: "{\"x\":1}".into() };
        write_frame(&mut a, &msg).unwrap();
        let deadline = Instant::now() + Duration::from_secs(1);
        let back: Reply = read_frame_deadline(&mut b, deadline).unwrap();
        assert_eq!(back, msg);
        // Requests too.
        write_frame(&mut b, &Request::Run { trial: 3, attempt: 2 }).unwrap();
        let req: Request = read_frame_blocking(&mut a).unwrap();
        assert_eq!(req, Request::Run { trial: 3, attempt: 2 });
    }

    #[test]
    fn metrics_frames_roundtrip_to_snapshots() {
        let rec = obs::CounterRecorder::new();
        use obs::Recorder as _;
        rec.incr("warden/spawned", 3);
        rec.observe_ns("trial", 1500);
        rec.observe_ns("trial", 0);
        let snap = rec.snapshot();
        let frame = MetricsFrame::from_snapshot(&snap);
        let (mut a, mut b) = UnixStream::pair().unwrap();
        write_frame(&mut a, &Reply::Metrics { metrics: frame }).unwrap();
        let back: Reply = read_frame_blocking(&mut b).unwrap();
        let Reply::Metrics { metrics } = back else { panic!("wrong frame: {back:?}") };
        assert_eq!(metrics.into_snapshot(), snap);
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_not_allocated() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let err = read_frame_deadline::<Reply>(&mut b, Instant::now() + Duration::from_secs(1)).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn frames_roundtrip_over_tcp_and_enforce_the_cap() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            write_frame(&mut s, &Reply::Record { trial: 7, payload: "{\"y\":2}".into() }).unwrap();
            // Then a poisoned length prefix: the reader must refuse it
            // before allocating.
            s.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let back: Reply = read_frame(&mut conn).unwrap();
        assert_eq!(back, Reply::Record { trial: 7, payload: "{\"y\":2}".into() });
        let err = read_frame::<Reply>(&mut conn).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
        sender.join().unwrap();
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let cfg = iso("ok");
        for trial in [0usize, 7, 123] {
            for attempt in 0..40 {
                let a = cfg.backoff(trial, attempt);
                assert_eq!(a, cfg.backoff(trial, attempt), "backoff must be a pure function");
                assert!(
                    a <= cfg.backoff_cap + cfg.backoff_base,
                    "trial {trial} attempt {attempt}: {a:?} above cap+jitter bound"
                );
            }
        }
        assert!(cfg.backoff(0, 0) < cfg.backoff(0, 6), "backoff should grow before the cap");
    }

    #[test]
    fn records_roundtrip_through_a_worker_process() {
        let mut w = Warden::new(iso("ok")).unwrap();
        for trial in [0usize, 1, 9, 40] {
            match w.run_trial(trial).unwrap() {
                IsolatedTrial::Completed(rec) => {
                    assert_eq!(
                        serde_json::to_string(&*rec).unwrap(),
                        serde_json::to_string(&mk_record(trial)).unwrap(),
                        "trial {trial} must come back bit-identical"
                    );
                }
                IsolatedTrial::Quarantined { diagnostic, .. } => {
                    panic!("healthy trial {trial} quarantined: {diagnostic}")
                }
            }
        }
        w.shutdown();
    }

    #[test]
    fn aborting_victim_is_quarantined_as_a_signal_due() {
        let mut w = Warden::new(iso("abort-on-5")).unwrap();
        match w.run_trial(5).unwrap() {
            IsolatedTrial::Quarantined { kind, diagnostic } => {
                assert_eq!(kind, DueKind::Signal { signo: 6 }, "SIGABRT is signal 6");
                assert!(diagnostic.contains("trial 5"), "{diagnostic}");
                assert!(diagnostic.contains("signal 6"), "{diagnostic}");
            }
            IsolatedTrial::Completed(r) => panic!("aborting trial completed: {r:?}"),
        }
        // The campaign goes on: the next trial respawns a worker and runs.
        match w.run_trial(6).unwrap() {
            IsolatedTrial::Completed(rec) => assert_eq!(rec.trial, 6),
            IsolatedTrial::Quarantined { diagnostic, .. } => panic!("trial 6 quarantined: {diagnostic}"),
        }
    }

    #[test]
    fn exiting_victim_is_quarantined_as_a_crash_due() {
        let mut w = Warden::new(iso("exit-on-4")).unwrap();
        match w.run_trial(4).unwrap() {
            IsolatedTrial::Quarantined { kind, .. } => match kind {
                DueKind::Crash { message } => assert!(message.contains("17"), "{message}"),
                other => panic!("expected Crash, got {other:?}"),
            },
            IsolatedTrial::Completed(r) => panic!("exiting trial completed: {r:?}"),
        }
    }

    #[test]
    fn hung_victim_is_wall_clock_killed() {
        let mut cfg = iso("hang-on-3");
        cfg.trial_wall = Duration::from_millis(400);
        let mut w = Warden::new(cfg).unwrap();
        match w.run_trial(3).unwrap() {
            IsolatedTrial::Quarantined { kind, diagnostic } => {
                assert_eq!(kind, DueKind::Killed);
                assert!(diagnostic.contains("wall clock"), "{diagnostic}");
            }
            IsolatedTrial::Completed(r) => panic!("hung trial completed: {r:?}"),
        }
        // Healthy trials still finish comfortably inside the short wall.
        match w.run_trial(0).unwrap() {
            IsolatedTrial::Completed(rec) => assert_eq!(rec.trial, 0),
            IsolatedTrial::Quarantined { diagnostic, .. } => panic!("trial 0 quarantined: {diagnostic}"),
        }
        w.shutdown();
    }
}
