//! Program outputs and bit-exact comparison against golden copies.
//!
//! Beam experiments and the injection campaign both classify a run by
//! comparing its output with a pre-computed, error-free *golden* output
//! (paper §4.1, §6): any bit mismatch is an SDC. The mismatch list keeps the
//! 3-D coordinates of every corrupted element so the spatial-pattern
//! classifier (paper §4.3) and the relative-error tolerance sweep (paper
//! §4.4) can run downstream.

use serde::{Deserialize, Serialize};

/// A program output: a dense grid of up to three dimensions.
///
/// 2-D outputs use `dims = [rows, cols, 1]`; 1-D outputs `[n, 1, 1]`.
/// `LavaMD` is the only paper benchmark with a genuinely 3-D output, which is
/// why it is the only one that can exhibit the *cubic* error pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Output {
    F64Grid { dims: [usize; 3], data: Vec<f64> },
    F32Grid { dims: [usize; 3], data: Vec<f32> },
    I32Grid { dims: [usize; 3], data: Vec<i32> },
}

/// One corrupted output element.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mismatch {
    /// Element coordinates `[i, j, k]` (unused trailing dims are 0).
    pub coord: [usize; 3],
    /// Expected (golden) value, widened to f64.
    #[serde(with = "crate::record::finite_or_tag")]
    pub expected: f64,
    /// Observed value, widened to f64.
    #[serde(with = "crate::record::finite_or_tag")]
    pub got: f64,
    /// Relative error `|got - expected| / max(|expected|, eps)`.
    ///
    /// NaN/Inf observations are assigned `f64::INFINITY` so that no finite
    /// tolerance ever accepts them.
    #[serde(with = "crate::record::finite_or_tag")]
    pub rel_err: f64,
}

/// Bitwise equality: two mismatches are equal when they log identically.
/// NaN observations are common (corrupted floats), and derived `PartialEq`
/// would make such records unequal to themselves.
impl PartialEq for Mismatch {
    fn eq(&self, other: &Self) -> bool {
        self.coord == other.coord
            && self.expected.to_bits() == other.expected.to_bits()
            && self.got.to_bits() == other.got.to_bits()
            && self.rel_err.to_bits() == other.rel_err.to_bits()
    }
}

/// Denominator floor for relative error, so corrupted zeros still register.
const REL_ERR_EPS: f64 = 1e-30;

fn rel_err(expected: f64, got: f64) -> f64 {
    if got.is_nan() || got.is_infinite() {
        return f64::INFINITY;
    }
    if expected.to_bits() == got.to_bits() {
        return 0.0;
    }
    (got - expected).abs() / expected.abs().max(REL_ERR_EPS)
}

fn unflatten(idx: usize, dims: [usize; 3]) -> [usize; 3] {
    // Row-major: idx = (i * dims[1] + j) * dims[2] + k.
    let k = idx % dims[2];
    let j = (idx / dims[2]) % dims[1];
    let i = idx / (dims[1] * dims[2]);
    [i, j, k]
}

impl Output {
    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        match self {
            Output::F64Grid { dims, .. } | Output::F32Grid { dims, .. } | Output::I32Grid { dims, .. } => *dims,
        }
    }

    /// Number of non-degenerate dimensions (extent > 1).
    pub fn rank(&self) -> usize {
        self.dims().iter().filter(|&&d| d > 1).count()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        match self {
            Output::F64Grid { data, .. } => data.len(),
            Output::F32Grid { data, .. } => data.len(),
            Output::I32Grid { data, .. } => data.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at flat index, widened to `f64` (bit-preserving for floats).
    pub fn get_f64(&self, idx: usize) -> f64 {
        match self {
            Output::F64Grid { data, .. } => data[idx],
            Output::F32Grid { data, .. } => data[idx] as f64,
            Output::I32Grid { data, .. } => data[idx] as f64,
        }
    }

    /// Bit-exact mismatch list against a golden output.
    ///
    /// Panics if the two outputs have different shapes or element types —
    /// that would be a harness bug, not a program outcome.
    pub fn mismatches(&self, golden: &Output) -> Vec<Mismatch> {
        assert_eq!(self.dims(), golden.dims(), "output shape changed between runs");
        let dims = self.dims();
        let mut out = Vec::new();
        match (self, golden) {
            (Output::F64Grid { data: a, .. }, Output::F64Grid { data: b, .. }) => {
                assert_eq!(a.len(), b.len());
                for (idx, (&got, &exp)) in a.iter().zip(b).enumerate() {
                    if got.to_bits() != exp.to_bits() {
                        out.push(Mismatch { coord: unflatten(idx, dims), expected: exp, got, rel_err: rel_err(exp, got) });
                    }
                }
            }
            (Output::F32Grid { data: a, .. }, Output::F32Grid { data: b, .. }) => {
                assert_eq!(a.len(), b.len());
                for (idx, (&got, &exp)) in a.iter().zip(b).enumerate() {
                    if got.to_bits() != exp.to_bits() {
                        out.push(Mismatch {
                            coord: unflatten(idx, dims),
                            expected: exp as f64,
                            got: got as f64,
                            rel_err: rel_err(exp as f64, got as f64),
                        });
                    }
                }
            }
            (Output::I32Grid { data: a, .. }, Output::I32Grid { data: b, .. }) => {
                assert_eq!(a.len(), b.len());
                for (idx, (&got, &exp)) in a.iter().zip(b).enumerate() {
                    if got != exp {
                        out.push(Mismatch {
                            coord: unflatten(idx, dims),
                            expected: exp as f64,
                            got: got as f64,
                            rel_err: rel_err(exp as f64, got as f64),
                        });
                    }
                }
            }
            _ => panic!("output element type changed between runs"),
        }
        out
    }

    /// True when the two outputs are bit-identical.
    pub fn matches(&self, golden: &Output) -> bool {
        self.mismatches(golden).is_empty()
    }

    /// Chunked bitwise equality fast path.
    ///
    /// Compares the raw data buffers as `u64` words (plus a byte tail), so
    /// the overwhelmingly common Masked trial never walks elements one by
    /// one. Agrees with [`Output::mismatches`] exactly: floats compare by
    /// bit pattern, so NaN payloads and `-0.0` vs `0.0` are mismatches here
    /// too. Returns `false` (rather than panicking) on shape or element-type
    /// differences — callers fall through to `mismatches`, which reports the
    /// harness bug.
    pub fn bits_equal(&self, golden: &Output) -> bool {
        if self.dims() != golden.dims() {
            return false;
        }
        match (self, golden) {
            (Output::F64Grid { data: a, .. }, Output::F64Grid { data: b, .. }) => {
                bytes_equal_wordwise(crate::bytesview::as_bytes(a), crate::bytesview::as_bytes(b))
            }
            (Output::F32Grid { data: a, .. }, Output::F32Grid { data: b, .. }) => {
                bytes_equal_wordwise(crate::bytesview::as_bytes(a), crate::bytesview::as_bytes(b))
            }
            (Output::I32Grid { data: a, .. }, Output::I32Grid { data: b, .. }) => {
                bytes_equal_wordwise(crate::bytesview::as_bytes(a), crate::bytesview::as_bytes(b))
            }
            _ => false,
        }
    }
}

/// Word-at-a-time byte equality: 8-byte `u64` chunks first, then the tail.
fn bytes_equal_wordwise(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (wa, wb) in ac.by_ref().zip(bc.by_ref()) {
        let wa = u64::from_ne_bytes(wa.try_into().unwrap());
        let wb = u64::from_ne_bytes(wb.try_into().unwrap());
        if wa != wb {
            return false;
        }
    }
    ac.remainder() == bc.remainder()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2(rows: usize, cols: usize, data: Vec<f64>) -> Output {
        Output::F64Grid { dims: [rows, cols, 1], data }
    }

    #[test]
    fn identical_outputs_have_no_mismatches() {
        let a = grid2(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(a.matches(&a.clone()));
    }

    #[test]
    fn single_element_mismatch_reports_coordinates() {
        let golden = grid2(2, 3, vec![1.0; 6]);
        let mut bad = golden.clone();
        if let Output::F64Grid { data, .. } = &mut bad {
            data[4] = 2.0; // row 1, col 1
        }
        let m = bad.mismatches(&golden);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].coord, [1, 1, 0]);
        assert_eq!(m[0].expected, 1.0);
        assert_eq!(m[0].got, 2.0);
        assert!((m[0].rel_err - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_counts_as_infinite_relative_error() {
        let golden = grid2(1, 1, vec![1.0]);
        let bad = grid2(1, 1, vec![f64::NAN]);
        let m = bad.mismatches(&golden);
        assert_eq!(m.len(), 1);
        assert!(m[0].rel_err.is_infinite());
    }

    #[test]
    fn negative_zero_is_a_bit_mismatch() {
        // The paper counts ANY bit mismatch as an SDC; -0.0 vs 0.0 differ in bits.
        let golden = grid2(1, 1, vec![0.0]);
        let bad = grid2(1, 1, vec![-0.0]);
        assert_eq!(bad.mismatches(&golden).len(), 1);
    }

    #[test]
    fn corrupted_zero_has_finite_but_huge_rel_err() {
        let golden = grid2(1, 1, vec![0.0]);
        let bad = grid2(1, 1, vec![1e-3]);
        let m = bad.mismatches(&golden);
        assert!(m[0].rel_err > 1e20);
    }

    #[test]
    fn three_d_coordinates_unflatten_row_major() {
        let dims = [2usize, 3, 4];
        let golden = Output::F32Grid { dims, data: vec![0.0; 24] };
        let mut bad = golden.clone();
        if let Output::F32Grid { data, .. } = &mut bad {
            let (i, j, k) = (1, 2, 3);
            data[(i * 3 + j) * 4 + k] = 1.0;
        }
        let m = bad.mismatches(&golden);
        assert_eq!(m[0].coord, [1, 2, 3]);
    }

    #[test]
    fn i32_grid_mismatch() {
        let golden = Output::I32Grid { dims: [2, 2, 1], data: vec![0, 1, 2, 3] };
        let bad = Output::I32Grid { dims: [2, 2, 1], data: vec![0, 1, 9, 3] };
        let m = bad.mismatches(&golden);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].coord, [1, 0, 0]);
        assert!((m[0].rel_err - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn shape_mismatch_is_a_harness_bug() {
        let a = grid2(1, 2, vec![0.0; 2]);
        let b = grid2(2, 1, vec![0.0; 2]);
        let _ = a.mismatches(&b);
    }

    #[test]
    fn bits_equal_agrees_with_mismatches_on_tricky_bit_patterns() {
        // 17 elements: two u64 words of f32 data plus a 4-byte tail, so both
        // the word loop and the remainder path are exercised.
        let golden = Output::F32Grid { dims: [17, 1, 1], data: (0..17).map(|i| i as f32).collect() };
        assert!(golden.bits_equal(&golden.clone()));
        for idx in [0usize, 7, 16] {
            for bad_val in [f32::NAN, -0.0, f32::from_bits(0x7fc0_dead)] {
                let mut bad = golden.clone();
                if let Output::F32Grid { data, .. } = &mut bad {
                    data[idx] = bad_val;
                }
                let expect_equal = bad.mismatches(&golden).is_empty();
                assert_eq!(bad.bits_equal(&golden), expect_equal, "idx {idx} val {bad_val:?}");
            }
        }
        // Identical NaN payloads on both sides are bit-equal — and
        // mismatches() agrees, because it compares bits, not float ==.
        let nan = Output::F64Grid { dims: [3, 1, 1], data: vec![f64::from_bits(0x7ff8_0000_0000_beef); 3] };
        assert!(nan.bits_equal(&nan.clone()));
        assert!(nan.mismatches(&nan.clone()).is_empty());
    }

    #[test]
    fn bits_equal_is_false_across_shapes_and_types() {
        let a = grid2(1, 2, vec![0.0; 2]);
        let b = grid2(2, 1, vec![0.0; 2]);
        assert!(!a.bits_equal(&b), "reshape is never bit-equal");
        let f32v = Output::F32Grid { dims: [2, 1, 1], data: vec![0.0; 2] };
        let i32v = Output::I32Grid { dims: [2, 1, 1], data: vec![0; 2] };
        assert!(!f32v.bits_equal(&i32v), "type change is never bit-equal");
    }

    #[test]
    fn rank_counts_nontrivial_dims() {
        assert_eq!(grid2(4, 4, vec![0.0; 16]).rank(), 2);
        assert_eq!(grid2(4, 1, vec![0.0; 4]).rank(), 1);
        let cube = Output::F32Grid { dims: [2, 2, 2], data: vec![0.0; 8] };
        assert_eq!(cube.rank(), 3);
    }
}
