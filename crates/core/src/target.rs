//! The program-under-test abstraction.
//!
//! CAROL-FI observes a victim program through GDB: the program runs at full
//! speed, is interrupted at a random wall-clock time, and its live variables
//! (per thread, per stack frame, plus globals) are enumerated from debug
//! information. Here the victim implements [`FaultTarget`] instead: it
//! advances in coarse [`FaultTarget::step`] increments (one stencil
//! iteration, one blocked-factorisation panel, one AMR timestep, …) and
//! enumerates its injectable state through [`FaultTarget::variables`].
//!
//! A *step boundary* plays the role of the asynchronous interrupt; because
//! steps are small relative to the whole run (dozens to hundreds per
//! execution), the injection-time resolution matches the paper's
//! time-window analysis (4–9 windows per benchmark).

use crate::output::Output;

/// Result of advancing the target by one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work remains.
    Continue,
    /// The program finished; `output()` is ready to be compared.
    Done,
}

/// Coarse variable classes used by the paper's per-class vulnerability
/// analysis (§6): e.g. DGEMM's "matrices" vs "control variables", CLAMR's
/// mesh "Sort"/"Tree"/"others", LavaMD's charge/distance input arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub enum VarClass {
    /// Dense input/output matrices (DGEMM, LUD, HotSpot grids, NW score matrix).
    Matrix,
    /// Read-only input arrays (LavaMD charge/distance, NW reference).
    InputArray,
    /// Loop counters, bounds, cursors — one copy per logical thread.
    ControlVariable,
    /// Physical/model constants kept live through the run (HotSpot Rx/Ry/Rz…).
    Constant,
    /// CLAMR mesh: cell-key sorting state.
    SortState,
    /// CLAMR mesh: spatial-tree (k-d tree) state.
    TreeState,
    /// CLAMR mesh: remaining mesh bookkeeping.
    MeshOther,
    /// Scratch/temporary buffers.
    Buffer,
    /// Pointer/base-address variables (CAROL-FI injects into pointers too;
    /// corrupting them is the segfault path).
    Pointer,
}

impl VarClass {
    /// Short label used in logs and printed tables.
    pub fn label(self) -> &'static str {
        match self {
            VarClass::Matrix => "matrix",
            VarClass::InputArray => "input-array",
            VarClass::ControlVariable => "control",
            VarClass::Constant => "constant",
            VarClass::SortState => "sort",
            VarClass::TreeState => "tree",
            VarClass::MeshOther => "mesh-other",
            VarClass::Buffer => "buffer",
            VarClass::Pointer => "pointer",
        }
    }
}

/// Which "stack frame" a variable lives in.
///
/// CAROL-FI walks from the current frame upward to the external frame that
/// holds the globals and picks one frame at random. Our targets expose the
/// same two-level structure: global state and the active subroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameId {
    /// Globals / heap allocations visible to the whole program.
    Global,
    /// A named subroutine frame (e.g. `"lud_perimeter"`, `"kdtree_build"`).
    Sub(&'static str),
}

impl FrameId {
    pub fn label(self) -> &'static str {
        match self {
            FrameId::Global => "<global>",
            FrameId::Sub(name) => name,
        }
    }
}

/// Static description of an injectable variable — the debug-info record.
#[derive(Debug, Clone, Copy)]
pub struct VarInfo {
    /// Source-level variable name (`"matrix_a"`, `"loop_k"`, …).
    pub name: &'static str,
    /// Coarse class for the per-class analysis.
    pub class: VarClass,
    /// Owning frame.
    pub frame: FrameId,
    /// Owning logical thread, if thread-private (`None` for globals).
    pub thread: Option<u16>,
    /// Source file the variable is declared in (mimics DWARF `DW_AT_decl_file`).
    pub file: &'static str,
    /// Source line (mimics DWARF `DW_AT_decl_line`).
    pub line: u32,
}

impl VarInfo {
    /// Convenience constructor for a global variable.
    pub fn global(name: &'static str, class: VarClass, file: &'static str, line: u32) -> Self {
        VarInfo { name, class, frame: FrameId::Global, thread: None, file, line }
    }

    /// Convenience constructor for a thread-private variable in a subroutine
    /// frame.
    pub fn local(
        name: &'static str,
        class: VarClass,
        frame: &'static str,
        thread: u16,
        file: &'static str,
        line: u32,
    ) -> Self {
        VarInfo { name, class, frame: FrameId::Sub(frame), thread: Some(thread), file, line }
    }
}

/// A live, mutable view of one variable's memory.
///
/// `elem_size` is the machine-word granularity the fault models operate on:
/// for an `f64` array it is 8, so a *Random* fault randomises one 8-byte
/// element rather than the whole array — matching how GDB's `set` writes a
/// single object member.
pub struct Variable<'a> {
    pub info: VarInfo,
    pub bytes: &'a mut [u8],
    pub elem_size: usize,
}

impl<'a> Variable<'a> {
    /// Builds a variable view over a slice of plain numeric values.
    pub fn from_slice<T: crate::bytesview::PlainBits>(info: VarInfo, values: &'a mut [T]) -> Self {
        let elem_size = std::mem::size_of::<T>();
        Variable { info, bytes: crate::bytesview::as_bytes_mut(values), elem_size }
    }

    /// Builds a variable view over a single plain numeric value.
    pub fn from_scalar<T: crate::bytesview::PlainBits>(info: VarInfo, value: &'a mut T) -> Self {
        Self::from_slice(info, std::slice::from_mut(value))
    }

    /// Number of `elem_size`-byte elements in the variable.
    pub fn elem_count(&self) -> usize {
        debug_assert!(self.elem_size > 0);
        self.bytes.len() / self.elem_size
    }
}

impl std::fmt::Debug for Variable<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Variable")
            .field("name", &self.info.name)
            .field("class", &self.info.class)
            .field("frame", &self.info.frame)
            .field("thread", &self.info.thread)
            .field("len_bytes", &self.bytes.len())
            .field("elem_size", &self.elem_size)
            .finish()
    }
}

/// A program under test.
///
/// Implementations must be deterministic: constructing two targets with the
/// same parameters and stepping them to completion must produce bit-identical
/// outputs. The supervisor relies on this to classify any mismatch as an SDC.
pub trait FaultTarget: Send {
    /// Benchmark name (`"dgemm"`, `"hotspot"`, …).
    fn name(&self) -> &'static str;

    /// Nominal number of steps a fault-free run takes. Used to sample the
    /// injection time and to bound the watchdog.
    fn total_steps(&self) -> usize;

    /// Number of steps executed so far.
    fn steps_executed(&self) -> usize;

    /// Advances the program by one cooperative step.
    ///
    /// May panic if injected corruption drives it into an invalid state
    /// (out-of-bounds access, fuel exhaustion) — the supervisor converts
    /// panics into DUEs.
    fn step(&mut self) -> StepOutcome;

    /// Runs at full speed until `steps_executed()` reaches `step_bound`,
    /// the program finishes, or `fuel` runs out (a timeout panic the
    /// supervisor classifies as a DUE).
    ///
    /// This is the supervisor's run-ahead primitive (ZOFI's stance: run at
    /// full speed, interrupt at the precomputed firing point): a trial is
    /// two `run_until` phases around a single injection, and the non-firing
    /// path costs one fuel decrement-and-branch per step instead of
    /// per-step supervisor bookkeeping. Through `Box<dyn FaultTarget>` the
    /// whole phase is one virtual call rather than two per step.
    ///
    /// Overriding implementations must stay observably identical to this
    /// default: burn exactly one fuel unit immediately *before* each step
    /// (so a timeout fires with the same executed-step count), preserve
    /// `step()`'s effects bit for bit — including when the target is
    /// already finished — and return `Done` the moment a step reports it.
    fn run_until(&mut self, step_bound: usize, fuel: &mut crate::fuel::Fuel) -> StepOutcome {
        while self.steps_executed() < step_bound {
            fuel.burn(1);
            if let StepOutcome::Done = self.step() {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    /// Enumerates the live injectable variables, CAROL-FI's frame walk.
    fn variables(&mut self) -> Vec<Variable<'_>>;

    /// The program output, valid once `step` returned [`StepOutcome::Done`].
    fn output(&self) -> Output;

    /// Fraction of nominal work completed, in `[0, 1]`; used by the
    /// time-window analysis.
    fn progress(&self) -> f64 {
        let total = self.total_steps().max(1);
        (self.steps_executed() as f64 / total as f64).min(1.0)
    }

    /// Restores the target to its pristine pre-run state in place, returning
    /// `true` on success.
    ///
    /// The contract is strict bit-identity: after `reset()` returns `true`,
    /// stepping the target to completion must produce exactly the output a
    /// freshly constructed target (same parameters) would — including every
    /// injectable byte enumerated by [`FaultTarget::variables`], since a
    /// previous trial may have corrupted any of them. Campaign runners use
    /// this to reuse one target per worker instead of reconstructing (and
    /// reallocating) per trial; they fall back to the factory when `reset`
    /// returns `false`, and always rebuild after a DUE because a panicked
    /// trial may have left the state torn mid-`step`.
    ///
    /// The default returns `false` (no in-place reinitialization available),
    /// so existing targets keep working — they just don't pool.
    fn reset(&mut self) -> bool {
        false
    }
}

/// Boxed targets forward the trait, so registries can hand out
/// `Box<dyn FaultTarget>` and campaigns can run against it directly.
impl FaultTarget for Box<dyn FaultTarget> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn total_steps(&self) -> usize {
        self.as_ref().total_steps()
    }
    fn steps_executed(&self) -> usize {
        self.as_ref().steps_executed()
    }
    fn step(&mut self) -> StepOutcome {
        self.as_mut().step()
    }
    fn run_until(&mut self, step_bound: usize, fuel: &mut crate::fuel::Fuel) -> StepOutcome {
        // Forwarded so a boxed target pays one virtual dispatch per phase,
        // not two per step — and so kernel specializations stay reachable
        // through registries that hand out `Box<dyn FaultTarget>`.
        self.as_mut().run_until(step_bound, fuel)
    }
    fn variables(&mut self) -> Vec<Variable<'_>> {
        self.as_mut().variables()
    }
    fn output(&self) -> Output {
        self.as_ref().output()
    }
    fn progress(&self) -> f64 {
        self.as_ref().progress()
    }
    fn reset(&mut self) -> bool {
        self.as_mut().reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_from_slice_reports_elements() {
        let mut data = vec![0.0f32; 10];
        let info = VarInfo::global("g", VarClass::Matrix, file!(), line!());
        let var = Variable::from_slice(info, &mut data);
        assert_eq!(var.elem_size, 4);
        assert_eq!(var.elem_count(), 10);
        assert_eq!(var.bytes.len(), 40);
    }

    #[test]
    fn variable_from_scalar_is_one_element() {
        let mut x = 7u64;
        let info = VarInfo::local("loop_i", VarClass::ControlVariable, "gemm_kernel", 3, file!(), line!());
        let var = Variable::from_scalar(info, &mut x);
        assert_eq!(var.elem_count(), 1);
        assert_eq!(var.info.thread, Some(3));
        assert_eq!(var.info.frame, FrameId::Sub("gemm_kernel"));
    }

    #[test]
    fn frame_labels() {
        assert_eq!(FrameId::Global.label(), "<global>");
        assert_eq!(FrameId::Sub("f").label(), "f");
    }

    #[test]
    fn class_labels_are_distinct() {
        let all = [
            VarClass::Matrix,
            VarClass::InputArray,
            VarClass::ControlVariable,
            VarClass::Constant,
            VarClass::SortState,
            VarClass::TreeState,
            VarClass::MeshOther,
            VarClass::Buffer,
            VarClass::Pointer,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
