//! Live campaign observability plane (`--monitor`).
//!
//! The paper's campaigns are judged post-hoc from logs; this module is the
//! live view: per-shard progress gauges fed by the orchestrators, a
//! throughput EWMA and ETA, the outcome mix of the *running* campaign
//! (delta against a baseline captured at campaign start, so sequential
//! campaigns in one process don't bleed into each other), and worker/pool
//! health pulled from the merged metrics ([`obs::merged_snapshot`], which
//! includes everything isolated warden workers relayed into the hub).
//!
//! Two read paths, both off the hot path:
//!
//! * [`serve_monitor`] — a background thread serving [`StatusSnapshot`]s
//!   over a Unix socket with the warden's length-prefixed JSON framing;
//!   one-shot (`Snapshot`) and streaming (`Subscribe`) requests. `phi-top`
//!   is the client.
//! * [`start_heartbeat`] — a periodic, atomically-replaced
//!   `heartbeat.json` flight recorder in the store dir, so a SIGKILLed run
//!   leaves its last known state behind.
//!
//! Cost when off: [`tick`] is a single relaxed load — the orchestrators
//! call it unconditionally per trial.

use crate::warden::{read_frame_blocking, write_frame};
use obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// EWMA time constant: an observation a full `TAU` old carries ~37% weight.
const TAU_SECS: f64 = 10.0;

/// Heartbeat file refresh period.
const HEARTBEAT_FILE_EVERY: Duration = Duration::from_millis(500);

/// Per-shard progress gauge.
struct ShardGauge {
    total: u64,
    done: AtomicU64,
    sealed: AtomicBool,
}

/// Throughput EWMA over completed-trial counts, lazily advanced whenever a
/// snapshot is built (no dedicated sampling thread).
struct Ewma {
    at: Instant,
    done: u64,
    rate: f64,
    primed: bool,
}

impl Ewma {
    /// Advances to `(now, done)` and returns the smoothed trials/s.
    fn advance(&mut self, now: Instant, done: u64) -> f64 {
        let dt = now.saturating_duration_since(self.at).as_secs_f64();
        if dt < 0.05 {
            return self.rate; // too soon for a meaningful instantaneous rate
        }
        let inst = done.saturating_sub(self.done) as f64 / dt;
        let alpha = dt / (dt + TAU_SECS);
        self.rate = if self.primed { self.rate + alpha * (inst - self.rate) } else { inst };
        self.primed = true;
        self.at = now;
        self.done = done;
        self.rate
    }
}

/// Live state of one campaign: per-shard gauges plus the metrics baseline
/// its outcome mix is measured against. The orchestrators install one per
/// campaign via [`begin_campaign`]; the instance API exists on its own so
/// embedders (and tests) can track a campaign without the process-global
/// plumbing.
pub struct CampaignProgress {
    label: String,
    kind: String,
    total: u64,
    /// Trials already journaled when this process took over (resume).
    prior: u64,
    started: Instant,
    /// Merged metrics at campaign start; the outcome mix is the delta
    /// against this, so it counts *this* campaign only.
    baseline: MetricsSnapshot,
    shards: Vec<ShardGauge>,
    ewma: Mutex<Ewma>,
    finished: AtomicBool,
    /// Adaptive-planner gauges; `None` for fixed-count campaigns.
    planner: Mutex<Option<PlannerStatus>>,
    /// Distributed-coordinator gauges; `None` for single-host campaigns.
    dist: Mutex<Option<DistStatus>>,
}

impl CampaignProgress {
    /// Gauges for a campaign of `plan.trials` trials whose journal already
    /// holds `progress`.
    pub fn new(label: &str, kind: &str, plan: &store::ShardPlan, progress: &store::ShardProgress) -> Self {
        let shards: Vec<ShardGauge> = (0..plan.shards)
            .map(|s| {
                let st = &progress.shards[s];
                ShardGauge {
                    total: plan.range(s).len() as u64,
                    done: AtomicU64::new(st.completed),
                    sealed: AtomicBool::new(st.done),
                }
            })
            .collect();
        let now = Instant::now();
        let prior = progress.completed();
        CampaignProgress {
            label: label.to_string(),
            kind: kind.to_string(),
            total: plan.trials as u64,
            prior,
            started: now,
            baseline: obs::merged_snapshot(),
            shards,
            ewma: Mutex::new(Ewma { at: now, done: prior, rate: 0.0, primed: false }),
            finished: AtomicBool::new(false),
            planner: Mutex::new(None),
            dist: Mutex::new(None),
        }
    }

    /// Publishes the adaptive planner's gauges (batch cadence, not per
    /// trial).
    pub fn set_planner(&self, status: PlannerStatus) {
        *self.planner.lock().unwrap_or_else(|e| e.into_inner()) = Some(status);
    }

    /// Publishes the distributed coordinator's lease gauges (lease-event
    /// cadence, not per trial).
    pub fn set_dist(&self, status: DistStatus) {
        *self.dist.lock().unwrap_or_else(|e| e.into_inner()) = Some(status);
    }

    /// One more trial journaled on `shard`.
    #[inline]
    pub fn tick(&self, shard: usize) {
        if let Some(gauge) = self.shards.get(shard) {
            gauge.done.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `shard` journaled its `ShardDone`.
    pub fn seal(&self, shard: usize) {
        if let Some(gauge) = self.shards.get(shard) {
            gauge.sealed.store(true, Ordering::Relaxed);
        }
    }

    /// Marks the campaign finished.
    pub fn complete(&self) {
        self.finished.store(true, Ordering::SeqCst);
    }

    /// Builds the live status of this campaign against the current merged
    /// metrics.
    pub fn status(&self) -> StatusSnapshot {
        let merged = obs::merged_snapshot();
        let shards: Vec<ShardStatus> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, g)| ShardStatus {
                shard: i as u64,
                done: g.done.load(Ordering::Relaxed),
                total: g.total,
                sealed: g.sealed.load(Ordering::Relaxed),
            })
            .collect();
        let done: u64 = shards.iter().map(|s| s.done).sum();
        let rate = self.ewma.lock().unwrap_or_else(|e| e.into_inner()).advance(Instant::now(), done);
        let remaining = self.total.saturating_sub(done);
        let eta_secs = (rate > 0.0 && remaining > 0).then(|| remaining as f64 / rate);

        let campaign = MetricsSnapshot::delta(&merged, &self.baseline);
        let mut mix = OutcomeMix::default();
        for (name, &value) in &campaign.counters {
            match name.rsplit('/').next() {
                Some("masked") => mix.masked += value,
                Some("hw-masked") => mix.hw_masked += value,
                Some("sdc") => mix.sdc += value,
                Some("due") => mix.due += value,
                _ => {}
            }
        }

        StatusSnapshot {
            pid: std::process::id(),
            label: self.label.clone(),
            kind: self.kind.clone(),
            elapsed_secs: self.started.elapsed().as_secs_f64(),
            finished: self.finished.load(Ordering::SeqCst),
            done,
            prior: self.prior,
            total: self.total,
            trials_per_sec: rate,
            eta_secs,
            shards,
            mix,
            pool_hits: merged.counter("pool/hits"),
            pool_rebuilds: merged.counter("pool/rebuilds"),
            workers: worker_health(&merged),
            planner: self.planner.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            dist: self.dist.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            counters: counters_of(&merged),
            spans: spans_of(&merged),
        }
    }

    #[cfg(test)]
    fn backdate_ewma(&self, by: Duration) {
        self.ewma.lock().unwrap_or_else(|e| e.into_inner()).at = Instant::now() - by;
    }
}

// ---------------------------------------------------------------------------
// Process-global plumbing (what the orchestrators and `--monitor` use).

/// Fast gate for the per-trial [`tick`]; flipped on by [`enable`]
/// (`--monitor`) and left off otherwise so un-monitored campaigns pay one
/// relaxed load per trial.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static STATE: RwLock<Option<Arc<CampaignProgress>>> = RwLock::new(None);

static HEARTBEAT_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Turns the monitoring plane on (idempotent).
pub fn enable() {
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Whether [`enable`] was called.
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<CampaignProgress>> {
    STATE.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs a fresh [`CampaignProgress`] as the process-global campaign.
/// No-op when inactive.
pub fn begin_campaign(label: &str, kind: &str, plan: &store::ShardPlan, progress: &store::ShardProgress) {
    if !active() {
        return;
    }
    let state = Arc::new(CampaignProgress::new(label, kind, plan, progress));
    *STATE.write().unwrap_or_else(|e| e.into_inner()) = Some(state);
    write_heartbeat();
}

/// Marks the current campaign finished and flushes a final heartbeat.
pub fn complete_campaign() {
    if !active() {
        return;
    }
    if let Some(state) = current() {
        state.complete();
    }
    write_heartbeat();
}

/// One more trial journaled on `shard` of the current campaign. Called from
/// the orchestrator hot path; a single relaxed load when monitoring is off.
#[inline]
pub fn tick(shard: usize) {
    if !active() {
        return;
    }
    if let Some(state) = current() {
        state.tick(shard);
    }
}

/// `shard` of the current campaign journaled its `ShardDone`.
pub fn shard_sealed(shard: usize) {
    if !active() {
        return;
    }
    if let Some(state) = current() {
        state.seal(shard);
    }
}

/// Publishes the adaptive planner's gauges on the current campaign. Called
/// by the adaptive orchestrator once per allocation batch.
pub fn planner_update(status: PlannerStatus) {
    if !active() {
        return;
    }
    if let Some(state) = current() {
        state.set_planner(status);
    }
}

/// Publishes the distributed coordinator's lease gauges on the current
/// campaign. Called by the coordinator on lease events and merge batches.
pub fn dist_update(status: DistStatus) {
    if !active() {
        return;
    }
    if let Some(state) = current() {
        state.set_dist(status);
    }
}

// ---------------------------------------------------------------------------
// Status snapshot (the wire/file schema).

/// Progress of one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStatus {
    pub shard: u64,
    pub done: u64,
    pub total: u64,
    pub sealed: bool,
}

/// Outcome classes of the running campaign (delta since campaign start,
/// summed across fault models — injection `single/sdc` and beam `beam/sdc`
/// alike land in `sdc`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutcomeMix {
    pub masked: u64,
    pub hw_masked: u64,
    pub sdc: u64,
    pub due: u64,
}

/// Warden supervision counters (process lifetime, including relayed worker
/// state).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerHealth {
    pub spawned: u64,
    pub killed: u64,
    pub retries: u64,
    pub quarantined: u64,
    pub metric_frames: u64,
}

/// One counter of the merged snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStatus {
    pub name: String,
    pub value: u64,
}

/// One span histogram of the merged snapshot, reduced to its percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanStatus {
    pub name: String,
    pub count: u64,
    pub mean_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// Adaptive-planner gauges: how much of the stratified horizon is still
/// open and how wide the worst confidence interval is. Published once per
/// allocation batch by the adaptive orchestrator; absent for fixed-count
/// campaigns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerStatus {
    /// Strata the planner tracks (fault models × time windows).
    pub strata_total: u64,
    /// Strata whose widest outcome-class CI still exceeds the target.
    pub strata_open: u64,
    /// Widest outcome-class CI width across all strata.
    pub widest_ci: f64,
    /// Allocation decisions made so far.
    pub batches: u64,
}

/// Distributed-coordinator gauges: executor population and the lease state
/// machine's live counts. Published on lease events by the coordinator;
/// absent for single-host campaigns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DistStatus {
    /// Executors currently connected.
    pub executors: u64,
    /// Leases granted and not yet completed or expired.
    pub leases_active: u64,
    /// Leases granted over the campaign's lifetime (across coordinator
    /// incarnations).
    pub leases_granted: u64,
    /// Leases expired (straggler or death) and re-dispatchable.
    pub leases_expired: u64,
    /// Trials dropped as duplicates by the dedupe-by-index merge.
    pub dup_trials: u64,
    /// Trials accepted into the central journal.
    pub merged_trials: u64,
}

/// Everything the monitoring plane knows, as one JSON-serializable value:
/// the monitor endpoint's reply frame and the `heartbeat.json` schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusSnapshot {
    pub pid: u32,
    /// Campaign label (benchmark name); empty until a campaign begins.
    pub label: String,
    /// "inject" | "beam" | "pending".
    pub kind: String,
    pub elapsed_secs: f64,
    pub finished: bool,
    pub done: u64,
    pub prior: u64,
    pub total: u64,
    pub trials_per_sec: f64,
    /// Smoothed seconds to completion; `None` until the rate is primed.
    pub eta_secs: Option<f64>,
    pub shards: Vec<ShardStatus>,
    pub mix: OutcomeMix,
    pub pool_hits: u64,
    pub pool_rebuilds: u64,
    pub workers: WorkerHealth,
    /// Adaptive-planner gauges; `None` unless the campaign is planner-driven.
    pub planner: Option<PlannerStatus>,
    /// Distributed-coordinator gauges; `None` unless the campaign is
    /// coordinator-driven.
    pub dist: Option<DistStatus>,
    pub counters: Vec<CounterStatus>,
    pub spans: Vec<SpanStatus>,
}

/// Builds the current status. Before [`begin_campaign`] this is a `pending`
/// placeholder (the endpoint must answer from the moment the flag parses,
/// or `phi-top` would race campaign startup).
pub fn status() -> StatusSnapshot {
    match current() {
        Some(state) => state.status(),
        None => {
            let merged = obs::merged_snapshot();
            StatusSnapshot {
                pid: std::process::id(),
                label: String::new(),
                kind: "pending".into(),
                elapsed_secs: 0.0,
                finished: false,
                done: 0,
                prior: 0,
                total: 0,
                trials_per_sec: 0.0,
                eta_secs: None,
                shards: Vec::new(),
                mix: OutcomeMix::default(),
                pool_hits: merged.counter("pool/hits"),
                pool_rebuilds: merged.counter("pool/rebuilds"),
                workers: worker_health(&merged),
                planner: None,
                dist: None,
                counters: counters_of(&merged),
                spans: spans_of(&merged),
            }
        }
    }
}

fn worker_health(merged: &MetricsSnapshot) -> WorkerHealth {
    WorkerHealth {
        spawned: merged.counter("warden/spawned"),
        killed: merged.counter("warden/killed"),
        retries: merged.counter("warden/retries"),
        quarantined: merged.counter("warden/quarantined"),
        metric_frames: merged.counter("warden/metric_frames"),
    }
}

fn counters_of(merged: &MetricsSnapshot) -> Vec<CounterStatus> {
    merged.counters.iter().map(|(name, &value)| CounterStatus { name: name.clone(), value }).collect()
}

fn spans_of(merged: &MetricsSnapshot) -> Vec<SpanStatus> {
    merged
        .hists
        .iter()
        .map(|(name, h)| SpanStatus {
            name: name.clone(),
            count: h.count,
            mean_ns: h.mean_ns(),
            p50_ns: h.percentile(0.50),
            p95_ns: h.percentile(0.95),
            p99_ns: h.percentile(0.99),
            max_ns: h.max_ns,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Status endpoint.

/// Client → monitor requests (one per connection for `Snapshot`; a
/// `Subscribe` connection streams until the client hangs up).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MonitorRequest {
    /// One [`StatusSnapshot`] frame, then the server closes the stream.
    Snapshot,
    /// A snapshot frame every `interval_ms` until the connection drops.
    Subscribe { interval_ms: u64 },
}

/// Claims a Unix-socket path for a new listener without stealing it from a
/// live process: a stale socket file (its owner died without unlinking) is
/// cleaned and re-bound, but a path something still answers on — or any
/// non-socket file — is an `AddrInUse` error naming the conflict. Blindly
/// `remove_file`-then-bind would silently hijack a running campaign's
/// monitor endpoint.
pub fn claim_socket(path: &Path) -> std::io::Result<UnixListener> {
    use std::os::unix::fs::FileTypeExt;
    match std::fs::symlink_metadata(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
        Ok(meta) if !meta.file_type().is_socket() => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("{} exists and is not a socket; refusing to replace it", path.display()),
            ));
        }
        Ok(_) => match UnixStream::connect(path) {
            // Someone answered: the endpoint is alive, do not steal it.
            Ok(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("{} is already served by a live process", path.display()),
                ));
            }
            // Nobody listening behind the file: stale leftover, clean it.
            Err(_) => std::fs::remove_file(path)?,
        },
    }
    UnixListener::bind(path)
}

/// Binds `path` (via [`claim_socket`] — stale socket files are cleaned,
/// live endpoints are an error instead of being silently stolen) and serves
/// [`StatusSnapshot`] frames from a detached background thread (it must
/// never gate campaign shutdown, so it is not joined; the socket file dies
/// with the process's temp hygiene). Implies [`enable`].
pub fn serve_monitor(path: &Path) -> std::io::Result<()> {
    enable();
    let listener = claim_socket(path)?;
    std::thread::Builder::new().name("phi-monitor".into()).spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let _ = std::thread::Builder::new().name("phi-monitor-conn".into()).spawn(move || {
                let _ = serve_connection(stream);
            });
        }
    })?;
    Ok(())
}

fn serve_connection(mut stream: UnixStream) -> std::io::Result<()> {
    let request: MonitorRequest = read_frame_blocking(&mut stream)?;
    match request {
        MonitorRequest::Snapshot => write_frame(&mut stream, &status()),
        MonitorRequest::Subscribe { interval_ms } => {
            let interval = Duration::from_millis(interval_ms.clamp(50, 60_000));
            loop {
                write_frame(&mut stream, &status())?;
                std::thread::sleep(interval);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Heartbeat flight recorder.

/// Starts the periodic `heartbeat.json` writer (atomic tmp+rename). The
/// first write happens synchronously so even campaigns shorter than the
/// refresh period leave a file. Implies [`enable`].
pub fn start_heartbeat(path: PathBuf) {
    enable();
    {
        let mut slot = HEARTBEAT_PATH.lock().unwrap_or_else(|e| e.into_inner());
        let already_running = slot.is_some();
        *slot = Some(path);
        if already_running {
            return; // the existing writer thread picks up the new path
        }
    }
    write_heartbeat();
    let _ = std::thread::Builder::new().name("phi-heartbeat".into()).spawn(|| loop {
        std::thread::sleep(HEARTBEAT_FILE_EVERY);
        write_heartbeat();
    });
}

/// Serializes the current status to the heartbeat path, if one is set.
/// Atomic replace: readers never see a torn file.
pub fn write_heartbeat() {
    let path = HEARTBEAT_PATH.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let Some(path) = path else { return };
    let Ok(json) = serde_json::to_string(&status()) else { return };
    let tmp = path.with_extension("json.tmp");
    if std::fs::write(&tmp, json.as_bytes()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

#[cfg(test)]
mod tests {
    // Instance-level tests only: the process-global plumbing (enable /
    // begin_campaign / serve_monitor / heartbeat) is exercised in
    // `tests/isolation_telemetry.rs`, a separate process, because flipping
    // the global ACTIVE gate here would race the orchestrator tests that
    // share this test binary.
    use super::*;
    use store::{ShardPlan, ShardProgress};

    fn fresh(trials: usize, shards: usize) -> CampaignProgress {
        let plan = ShardPlan::new(trials, shards);
        let progress = ShardProgress::replay(shards, &[]).unwrap();
        CampaignProgress::new("hotspot", "inject", &plan, &progress)
    }

    #[test]
    fn ticks_roll_up_into_status_and_eta_appears_once_primed() {
        let p = fresh(100, 4);
        for _ in 0..10 {
            p.tick(0);
        }
        p.tick(3);
        p.seal(3);
        p.backdate_ewma(Duration::from_secs(2));
        let s = p.status();
        assert_eq!(s.label, "hotspot");
        assert_eq!(s.kind, "inject");
        assert_eq!(s.total, 100);
        assert_eq!(s.done, 11);
        assert_eq!(s.shards.len(), 4);
        assert_eq!(s.shards[0].done, 10);
        assert_eq!(s.shards[0].total, 25);
        assert!(s.shards[3].sealed);
        assert!(!s.shards[0].sealed);
        assert!(s.trials_per_sec > 0.0, "rate: {}", s.trials_per_sec);
        let eta = s.eta_secs.expect("rate primed, remaining > 0");
        assert!(eta > 0.0);
        assert!(!s.finished);
        p.complete();
        assert!(p.status().finished);
    }

    #[test]
    fn resumed_campaigns_report_prior_trials_but_rate_ignores_them() {
        let plan = ShardPlan::new(40, 2);
        let entries: Vec<store::JournalEntry> = (0..15)
            .map(|seq| store::JournalEntry::Trial { shard: 0, seq, payload: "{}".into() })
            .collect();
        let progress = ShardProgress::replay(2, &entries).unwrap();
        let p = CampaignProgress::new("lud", "inject", &plan, &progress);
        p.backdate_ewma(Duration::from_secs(2));
        let s = p.status();
        assert_eq!(s.prior, 15);
        assert_eq!(s.done, 15);
        assert_eq!(s.shards[0].done, 15);
        // No new completions since resume: rate 0, no ETA.
        assert_eq!(s.trials_per_sec, 0.0);
        assert!(s.eta_secs.is_none());
    }

    #[test]
    fn ewma_smooths_toward_the_instantaneous_rate() {
        let mut e = Ewma { at: Instant::now() - Duration::from_secs(2), done: 0, rate: 0.0, primed: false };
        let now = Instant::now();
        // First observation primes directly: ~100 trials in ~2s → ~50/s.
        let r1 = e.advance(now, 100);
        assert!((40.0..60.0).contains(&r1), "{r1}");
        // A much slower second interval pulls the rate down, but not all
        // the way (TAU keeps history).
        e.at = now - Duration::from_secs(2);
        e.done = 100;
        let r2 = e.advance(now, 102);
        assert!(r2 < r1, "{r2} !< {r1}");
        assert!(r2 > 1.0, "smoothing must retain history, got {r2}");
    }

    #[test]
    fn out_of_range_shard_indices_are_ignored() {
        let p = fresh(10, 2);
        p.tick(99);
        p.seal(99);
        assert_eq!(p.status().done, 0);
    }

    #[test]
    fn status_snapshot_roundtrips_through_json() {
        let p = fresh(10, 2);
        p.tick(1);
        let s = p.status();
        let json = serde_json::to_string(&s).unwrap();
        let back: StatusSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn monitor_requests_roundtrip_through_json() {
        for req in [MonitorRequest::Snapshot, MonitorRequest::Subscribe { interval_ms: 250 }] {
            let json = serde_json::to_string(&req).unwrap();
            let back: MonitorRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req);
        }
    }
}
