//! Durable, sharded, resumable injection campaigns.
//!
//! [`run_campaign_stored`] is the journal-backed counterpart of
//! [`crate::run_campaign`]: the campaign's trial range splits into
//! contiguous shards (`store::ShardPlan`), a work-queue scheduler fans the
//! shards out to worker threads, and every completed trial is appended to a
//! checksummed journal (`store::JournalWriter`) before the next one starts.
//! A crash, OOM or kill loses at most the in-flight record; re-running with
//! `resume = true` scans the journal, skips completed shards, continues
//! partial shards from their cursors, and — because a trial's global index
//! fully determines its RNG stream, fault model and injection time — the
//! merged aggregate is bit-identical to an uninterrupted single-shot run,
//! with no trial re-executed or double-counted (the journal's per-shard
//! sequence numbers are validated gapless on every open).

use crate::campaign::{execute_trial, report_for, Campaign, CampaignConfig};
use crate::output::Output;
use crate::record::TrialRecord;
use crate::target::FaultTarget;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use store::{CampaignMeta, Journal, JournalEntry, JournalWriter, ShardCursor, ShardPlan, ShardProgress, StopFlag};

/// Durability/orchestration knobs, shared by the injection and beam stored
/// campaign runners.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Journal directory for this campaign.
    pub dir: PathBuf,
    /// Shard count recorded in the journal; a resumed run must use the same
    /// value (checked against the journal meta).
    pub shards: usize,
    /// Continue an existing journal instead of demanding a fresh directory.
    pub resume: bool,
    /// Trials between durable checkpoints (cursor entry + fsync) per shard.
    pub checkpoint_every: u64,
    /// Maximum trials to execute in this invocation; when the budget runs
    /// out the campaign checkpoints and returns [`StoredRun::Paused`].
    /// `None` = run to completion.
    pub budget: Option<usize>,
}

impl StoreConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig { dir: dir.into(), shards: 8, resume: false, checkpoint_every: 64, budget: None }
    }
}

/// Outcome of a stored campaign invocation.
#[derive(Debug)]
pub enum StoredRun<C> {
    /// Every shard finished; the aggregate is bit-identical to the
    /// single-shot run with the same seed.
    Complete(C),
    /// The trial budget ran out (or a stop was requested) mid-campaign; the
    /// journal holds `completed` of `total` trials and a later `resume`
    /// invocation will continue from the shard cursors.
    Paused { completed: u64, total: usize },
}

impl<C> StoredRun<C> {
    /// Unwraps `Complete`, panicking on `Paused` (test helper).
    pub fn expect_complete(self) -> C {
        match self {
            StoredRun::Complete(c) => c,
            StoredRun::Paused { completed, total } => {
                panic!("campaign paused at {completed}/{total} trials; expected completion")
            }
        }
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Opens (or creates) the journal for `meta`, replays shard progress and
/// parses the surviving trial payloads. Orchestration plumbing shared with
/// `beamsim`'s stored campaign runner.
pub fn open_journal(
    store_cfg: &StoreConfig,
    meta: CampaignMeta,
) -> std::io::Result<(JournalWriter, ShardProgress, Vec<Vec<TrialRecord>>)> {
    let dir = &store_cfg.dir;
    let (writer, entries) = if Journal::exists(dir) {
        if !store_cfg.resume {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("journal already exists at {} (pass --resume to continue it)", dir.display()),
            ));
        }
        let (writer, scan) = JournalWriter::resume(dir)?;
        match &scan.meta {
            Some(m) if *m == meta => {}
            Some(m) => {
                return Err(invalid(format!(
                    "journal at {} belongs to a different campaign (journal: {m:?}, requested: {meta:?})",
                    dir.display()
                )))
            }
            None => return Err(invalid(format!("journal at {} has no meta entry", dir.display()))),
        }
        (writer, scan.entries)
    } else {
        (JournalWriter::create(dir, meta.clone())?, Vec::new())
    };
    let progress = ShardProgress::replay(meta.shards, &entries)?;
    let plan = ShardPlan::new(meta.trials, meta.shards);
    let mut prior: Vec<Vec<TrialRecord>> = Vec::with_capacity(meta.shards);
    for (shard, state) in progress.shards.iter().enumerate() {
        let range = plan.range(shard);
        if state.completed as usize > range.len() {
            return Err(invalid(format!("shard {shard}: journal has {} trials, plan allows {}", state.completed, range.len())));
        }
        let mut records = Vec::with_capacity(state.payloads.len());
        for (seq, payload) in state.payloads.iter().enumerate() {
            let record: TrialRecord = serde_json::from_str(payload)
                .map_err(|e| invalid(format!("shard {shard} seq {seq}: bad trial payload: {e}")))?;
            if record.trial != range.start + seq {
                return Err(invalid(format!(
                    "shard {shard} seq {seq}: payload carries trial {}, expected {}",
                    record.trial,
                    range.start + seq
                )));
            }
            records.push(record);
        }
        prior.push(records);
    }
    Ok((writer, progress, prior))
}

/// Drives the shard queue for a stored campaign: pulls shard tasks, executes
/// trials via `run_one`, journals each record, checkpoints periodically and
/// on stop. Returns the per-shard record vectors (prior + new) or the first
/// I/O error any worker hit.
///
/// `run_one(global_trial_index) -> TrialRecord` must be pure in the trial
/// index (this is what the determinism invariant rests on). Orchestration
/// plumbing shared with `beamsim`'s stored campaign runner.
#[allow(clippy::too_many_arguments)]
pub fn drive_shards(
    plan: ShardPlan,
    progress: &ShardProgress,
    mut prior: Vec<Vec<TrialRecord>>,
    writer: JournalWriter,
    store_cfg: &StoreConfig,
    workers: usize,
    busy_ns: &AtomicU64,
    run_one: impl Fn(usize) -> TrialRecord + Sync,
) -> std::io::Result<StoredRun<Vec<TrialRecord>>> {
    let stop = StopFlag::new();
    let spent = AtomicUsize::new(0);
    let journal = parking_lot::Mutex::new(writer);
    let io_error: parking_lot::Mutex<Option<std::io::Error>> = parking_lot::Mutex::new(None);
    let new_records: Vec<parking_lot::Mutex<Vec<TrialRecord>>> = (0..plan.shards).map(|_| parking_lot::Mutex::new(Vec::new())).collect();

    let tasks: Vec<usize> = (0..plan.shards)
        .filter(|&s| !progress.shards[s].done && (progress.shards[s].completed as usize) < plan.range(s).len())
        .collect();

    let fail = |e: std::io::Error| {
        let mut slot = io_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        stop.request_stop();
    };

    store::run_tasks(tasks, workers, &stop, |shard, stop| {
        let range = plan.range(shard);
        let start = progress.shards[shard].completed as usize;
        obs::incr(if start == 0 { "shard/started" } else { "shard/resumed" }, 1);
        let checkpoint = |completed: usize, sync: bool| -> std::io::Result<()> {
            let cursor = ShardCursor {
                shard,
                completed: completed as u64,
                next_stream: (range.start + completed) as u64,
            };
            let mut j = journal.lock();
            j.append(&JournalEntry::Checkpoint(cursor))?;
            if sync {
                j.sync()?;
            }
            Ok(())
        };
        let mut completed = start;
        for (seq, trial) in range.clone().enumerate().skip(start) {
            let out_of_budget = store_cfg.budget.is_some_and(|b| spent.fetch_add(1, Ordering::SeqCst) >= b);
            if stop.should_stop() || out_of_budget {
                stop.request_stop();
                if completed > start {
                    if let Err(e) = checkpoint(completed, true) {
                        fail(e);
                    }
                }
                return;
            }
            let t0 = std::time::Instant::now();
            let record = run_one(trial);
            busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let payload = match serde_json::to_string(&record) {
                Ok(p) => p,
                Err(e) => {
                    fail(std::io::Error::other(format!("trial {trial}: serialize failed: {e}")));
                    return;
                }
            };
            obs::incr("store/trials", 1);
            if let Err(e) = journal.lock().append(&JournalEntry::Trial { shard, seq: seq as u64, payload }) {
                fail(e);
                return;
            }
            new_records[shard].lock().push(record);
            completed += 1;
            if ((completed - start) as u64).is_multiple_of(store_cfg.checkpoint_every) {
                if let Err(e) = checkpoint(completed, true) {
                    fail(e);
                    return;
                }
            }
        }
        // Shard range exhausted: seal it.
        let seal = (|| -> std::io::Result<()> {
            checkpoint(completed, false)?;
            let mut j = journal.lock();
            j.append(&JournalEntry::ShardDone { shard })?;
            j.sync()
        })();
        match seal {
            Ok(()) => obs::incr("shard/completed", 1),
            Err(e) => fail(e),
        }
    });

    if let Some(e) = io_error.lock().take() {
        return Err(e);
    }

    // Merge prior + new per shard; any shard short of its range means the
    // run was paused (budget/stop) rather than finished.
    let mut total_completed = 0u64;
    let mut complete = true;
    for (shard, fresh) in new_records.into_iter().enumerate() {
        let fresh = fresh.into_inner();
        prior[shard].extend(fresh);
        total_completed += prior[shard].len() as u64;
        if prior[shard].len() < plan.range(shard).len() {
            complete = false;
        }
    }
    if !complete {
        return Ok(StoredRun::Paused { completed: total_completed, total: plan.trials });
    }
    let mut records: Vec<TrialRecord> = prior.into_iter().flatten().collect();
    records.sort_by_key(|r| r.trial);
    for (i, r) in records.iter().enumerate() {
        if r.trial != i {
            return Err(invalid(format!("aggregate is not gapless: position {i} holds trial {}", r.trial)));
        }
    }
    Ok(StoredRun::Complete(records))
}

/// Journal-backed, sharded, resumable version of [`crate::run_campaign`].
///
/// For a fixed `cfg.seed`, the completed aggregate is bit-identical to
/// `run_campaign` with the same config, for any shard count, worker count,
/// interruption pattern or number of resume invocations. Targets are pooled
/// across trials (reset-in-place, factory rebuild after a DUE) exactly like
/// the in-memory runner.
pub fn run_campaign_stored<T, F>(
    benchmark: &str,
    factory: F,
    golden: &Output,
    cfg: &CampaignConfig,
    store_cfg: &StoreConfig,
) -> std::io::Result<StoredRun<Campaign>>
where
    T: FaultTarget,
    F: Fn() -> T + Sync,
{
    assert!(!cfg.models.is_empty(), "campaign needs at least one fault model");
    let _quiet = crate::panic_guard::silence_panics();
    let probe = factory();
    let total_steps = probe.total_steps().max(1);
    let pool = crate::pool::TargetPool::new(&factory);
    pool.seed(probe);
    let fast_compares = AtomicU64::new(0);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);

    let meta = CampaignMeta {
        kind: "inject".into(),
        benchmark: benchmark.into(),
        seed: cfg.seed,
        trials: cfg.trials,
        shards: store_cfg.shards,
        n_windows: cfg.n_windows,
        version: store::journal::FORMAT_VERSION,
    };
    let (writer, progress, prior) = open_journal(store_cfg, meta)?;
    let plan = ShardPlan::new(cfg.trials, store_cfg.shards);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };

    let run = drive_shards(plan, &progress, prior, writer, store_cfg, workers, &busy_ns, |trial| {
        let mut target = pool.acquire();
        let (record, fast) = execute_trial(benchmark, &mut target, golden, cfg, total_steps, trial);
        pool.release(target, record.outcome.is_due());
        if fast {
            fast_compares.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        record
    })?;
    Ok(match run {
        StoredRun::Paused { completed, total } => StoredRun::Paused { completed, total },
        StoredRun::Complete(records) => {
            let mut report = report_for(benchmark, &records, workers, busy_ns.into_inner(), wall.elapsed().as_nanos() as u64);
            report.pool_hits = pool.hits();
            report.pool_rebuilds = pool.rebuilds();
            report.fast_path_compares = fast_compares.into_inner();
            StoredRun::Complete(Campaign { benchmark: benchmark.to_string(), records, report })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::target::{StepOutcome, VarClass, VarInfo, Variable};

    /// Tiny deterministic victim (mirror of the campaign-test victim).
    struct Victim {
        data: Vec<u32>,
        ctrl: u64,
        done: usize,
    }
    impl Victim {
        fn new() -> Self {
            Victim { data: (0..64u32).collect(), ctrl: 0, done: 0 }
        }
    }
    impl FaultTarget for Victim {
        fn name(&self) -> &'static str {
            "victim"
        }
        fn total_steps(&self) -> usize {
            8
        }
        fn steps_executed(&self) -> usize {
            self.done
        }
        fn step(&mut self) -> StepOutcome {
            let base = (self.ctrl as usize) * 8;
            for i in 0..8 {
                self.data[base + i] = self.data[base + i].wrapping_mul(3).wrapping_add(1);
            }
            self.ctrl += 1;
            self.done += 1;
            if self.done >= 8 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }
        fn variables(&mut self) -> Vec<Variable<'_>> {
            vec![
                Variable::from_slice(VarInfo::global("data", VarClass::Matrix, file!(), line!()), &mut self.data),
                Variable::from_scalar(VarInfo::local("ctrl", VarClass::ControlVariable, "loop", 0, file!(), line!()), &mut self.ctrl),
            ]
        }
        fn output(&self) -> Output {
            Output::I32Grid { dims: [8, 8, 1], data: self.data.iter().map(|&x| x as i32).collect() }
        }
        fn reset(&mut self) -> bool {
            for (i, v) in self.data.iter_mut().enumerate() {
                *v = i as u32;
            }
            self.ctrl = 0;
            self.done = 0;
            true
        }
    }

    fn golden() -> Output {
        let mut v = Victim::new();
        while v.step() == StepOutcome::Continue {}
        v.output()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-orchestrator").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_records(a: &[TrialRecord], b: &[TrialRecord]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.model, y.model);
            assert_eq!(x.inject_step, y.inject_step);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.executed_steps, y.executed_steps);
        }
    }

    #[test]
    fn any_shard_count_matches_the_single_shot_run() {
        let g = golden();
        let cfg = CampaignConfig { trials: 96, seed: 41, ..Default::default() };
        let single = run_campaign("victim", Victim::new, &g, &cfg);
        for shards in [1usize, 3, 7] {
            let mut sc = StoreConfig::new(tmp(&format!("shards-{shards}")));
            sc.shards = shards;
            let stored = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
            assert_same_records(&single.records, &stored.records);
            assert_eq!(single.report.outcomes, stored.report.outcomes);
        }
    }

    #[test]
    fn interrupted_resume_matches_uninterrupted_run() {
        let g = golden();
        let cfg = CampaignConfig { trials: 80, seed: 5, ..Default::default() };
        let uninterrupted = run_campaign("victim", Victim::new, &g, &cfg);

        let mut sc = StoreConfig::new(tmp("interrupt"));
        sc.shards = 4;
        sc.checkpoint_every = 7;
        sc.budget = Some(13); // exhaust the budget repeatedly
        let mut rounds = 0;
        let stored = loop {
            rounds += 1;
            assert!(rounds < 50, "campaign never completed");
            match run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap() {
                StoredRun::Complete(c) => break c,
                StoredRun::Paused { completed, total } => {
                    assert!(completed < total as u64);
                    sc.resume = true;
                }
            }
        };
        assert!(rounds > 2, "budget of 13/80 should take several rounds, took {rounds}");
        assert_same_records(&uninterrupted.records, &stored.records);
    }

    #[test]
    fn fresh_run_refuses_existing_journal() {
        let g = golden();
        let cfg = CampaignConfig { trials: 8, seed: 1, ..Default::default() };
        let sc = StoreConfig::new(tmp("refuse"));
        run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        let err = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    #[test]
    fn resume_refuses_a_different_campaign() {
        let g = golden();
        let cfg = CampaignConfig { trials: 8, seed: 1, ..Default::default() };
        let mut sc = StoreConfig::new(tmp("meta-mismatch"));
        run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        sc.resume = true;
        let other = CampaignConfig { trials: 8, seed: 2, ..Default::default() };
        let err = run_campaign_stored("victim", Victim::new, &g, &other, &sc).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
    }

    #[test]
    fn resume_of_a_complete_journal_is_a_cheap_no_op() {
        let g = golden();
        let cfg = CampaignConfig { trials: 24, seed: 9, ..Default::default() };
        let mut sc = StoreConfig::new(tmp("noop-resume"));
        sc.shards = 3;
        let first = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        sc.resume = true;
        sc.budget = Some(0); // no execution allowed: everything must come from the journal
        let second = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        assert_same_records(&first.records, &second.records);
    }
}
