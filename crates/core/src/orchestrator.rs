//! Durable, sharded, resumable injection campaigns.
//!
//! [`run_campaign_stored`] is the journal-backed counterpart of
//! [`crate::run_campaign`]: the campaign's trial range splits into
//! contiguous shards (`store::ShardPlan`), a work-queue scheduler fans the
//! shards out to worker threads, and every completed trial is appended to a
//! checksummed journal (`store::JournalWriter`) before the next one starts.
//! A crash, OOM or kill loses at most the in-flight record; re-running with
//! `resume = true` scans the journal, skips completed shards, continues
//! partial shards from their cursors, and — because a trial's global index
//! fully determines its RNG stream, fault model and injection time — the
//! merged aggregate is bit-identical to an uninterrupted single-shot run,
//! with no trial re-executed or double-counted (the journal's per-shard
//! sequence numbers are validated gapless on every open).

use crate::campaign::{execute_trial, outcome_key, report_for, Campaign, CampaignConfig};
use crate::output::Output;
use crate::record::{DueKind, TrialRecord};
use crate::target::FaultTarget;
use crate::warden::{IsolateConfig, IsolatedTrial, Warden};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use store::{CampaignMeta, Journal, JournalEntry, JournalWriter, ShardCursor, ShardPlan, ShardProgress, StopFlag};

/// Durability/orchestration knobs, shared by the injection and beam stored
/// campaign runners.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Journal directory for this campaign.
    pub dir: PathBuf,
    /// Shard count recorded in the journal; a resumed run must use the same
    /// value (checked against the journal meta).
    pub shards: usize,
    /// Continue an existing journal instead of demanding a fresh directory.
    pub resume: bool,
    /// Trials between durable checkpoints (cursor entry + fsync) per shard.
    pub checkpoint_every: u64,
    /// Maximum trials to execute in this invocation; when the budget runs
    /// out the campaign checkpoints and returns [`StoredRun::Paused`].
    /// `None` = run to completion.
    pub budget: Option<usize>,
    /// Journal group-commit policy. Defaults from the environment
    /// (`PHI_BATCH_BYTES` / `PHI_BATCH_DELAY_MS`); segment bytes are
    /// identical under every policy, only write boundaries change.
    pub batch: store::BatchPolicy,
}

impl StoreConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            shards: 8,
            resume: false,
            checkpoint_every: 64,
            budget: None,
            batch: store::BatchPolicy::from_env(),
        }
    }
}

/// Outcome of a stored campaign invocation.
#[derive(Debug)]
pub enum StoredRun<C> {
    /// Every shard finished; the aggregate is bit-identical to the
    /// single-shot run with the same seed.
    Complete(C),
    /// The trial budget ran out (or a stop was requested) mid-campaign; the
    /// journal holds `completed` of `total` trials and a later `resume`
    /// invocation will continue from the shard cursors.
    Paused { completed: u64, total: usize },
}

impl<C> StoredRun<C> {
    /// Unwraps `Complete`, panicking on `Paused` (test helper).
    pub fn expect_complete(self) -> C {
        match self {
            StoredRun::Complete(c) => c,
            StoredRun::Paused { completed, total } => {
                panic!("campaign paused at {completed}/{total} trials; expected completion")
            }
        }
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Opens (or creates) the journal for `meta`, replays shard progress and
/// parses the surviving trial payloads. Orchestration plumbing shared with
/// `beamsim`'s stored campaign runner.
pub fn open_journal(
    store_cfg: &StoreConfig,
    meta: CampaignMeta,
) -> std::io::Result<(JournalWriter, ShardProgress, Vec<Vec<TrialRecord>>)> {
    let dir = &store_cfg.dir;
    let (mut writer, entries) = if Journal::exists(dir) {
        if !store_cfg.resume {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("journal already exists at {} (pass --resume to continue it)", dir.display()),
            ));
        }
        let (writer, scan) = JournalWriter::resume(dir)?;
        match &scan.meta {
            Some(m) if *m == meta => {}
            Some(m) => {
                return Err(invalid(format!(
                    "journal at {} belongs to a different campaign (journal: {m:?}, requested: {meta:?})",
                    dir.display()
                )))
            }
            None => return Err(invalid(format!("journal at {} has no meta entry", dir.display()))),
        }
        (writer, scan.entries)
    } else {
        (JournalWriter::create(dir, meta.clone())?, Vec::new())
    };
    writer.batch = store_cfg.batch;
    let progress = ShardProgress::replay(meta.shards, &entries)?;
    let plan = ShardPlan::new(meta.trials, meta.shards);
    let mut prior: Vec<Vec<TrialRecord>> = Vec::with_capacity(meta.shards);
    for (shard, state) in progress.shards.iter().enumerate() {
        let range = plan.range(shard);
        if state.completed as usize > range.len() {
            return Err(invalid(format!("shard {shard}: journal has {} trials, plan allows {}", state.completed, range.len())));
        }
        let mut records = Vec::with_capacity(state.payloads.len());
        for (seq, payload) in state.payloads.iter().enumerate() {
            let record: TrialRecord = serde_json::from_str(payload)
                .map_err(|e| invalid(format!("shard {shard} seq {seq}: bad trial payload: {e}")))?;
            if record.trial != range.start + seq {
                return Err(invalid(format!(
                    "shard {shard} seq {seq}: payload carries trial {}, expected {}",
                    record.trial,
                    range.start + seq
                )));
            }
            records.push(record);
        }
        prior.push(records);
    }
    Ok((writer, progress, prior))
}

/// Extracts a displayable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drives the shard queue for a stored campaign: pulls shard tasks, executes
/// trials via `run_one`, journals each record, checkpoints periodically and
/// on stop. Returns the per-shard record vectors (prior + new) or the first
/// I/O error any worker hit.
///
/// `run_one(global_trial_index) -> TrialRecord` must be pure in the trial
/// index (this is what the determinism invariant rests on). Orchestration
/// plumbing shared with `beamsim`'s stored campaign runner.
///
/// Failure containment: a **panic** out of `run_one` (harness bug, warden
/// infrastructure giving out) fails only its own shard — the shard
/// checkpoints what it has, records a diagnostic and stops pulling trials,
/// while sibling shards run to completion and seal. The run then returns an
/// error naming the failed shards, and a later `resume` continues exactly
/// from their cursors. **I/O errors** still stop every shard: they signal a
/// problem with the journal itself, which all shards share.
#[allow(clippy::too_many_arguments)]
pub fn drive_shards(
    plan: ShardPlan,
    progress: &ShardProgress,
    mut prior: Vec<Vec<TrialRecord>>,
    writer: JournalWriter,
    store_cfg: &StoreConfig,
    workers: usize,
    busy_ns: &AtomicU64,
    run_one: impl Fn(usize) -> TrialRecord + Sync,
) -> std::io::Result<StoredRun<Vec<TrialRecord>>> {
    let stop = StopFlag::new();
    let spent = AtomicUsize::new(0);
    let journal = parking_lot::Mutex::new(writer);
    let io_error: parking_lot::Mutex<Option<std::io::Error>> = parking_lot::Mutex::new(None);
    let shard_panics: parking_lot::Mutex<Vec<String>> = parking_lot::Mutex::new(Vec::new());
    let new_records: Vec<parking_lot::Mutex<Vec<TrialRecord>>> = (0..plan.shards).map(|_| parking_lot::Mutex::new(Vec::new())).collect();

    let tasks: Vec<usize> = (0..plan.shards)
        .filter(|&s| !progress.shards[s].done && (progress.shards[s].completed as usize) < plan.range(s).len())
        .collect();

    let fail = |e: std::io::Error| {
        let mut slot = io_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        stop.request_stop();
    };

    store::run_tasks(tasks, workers, &stop, |shard, stop| {
        let range = plan.range(shard);
        let start = progress.shards[shard].completed as usize;
        obs::incr(if start == 0 { "shard/started" } else { "shard/resumed" }, 1);
        let checkpoint = |completed: usize, sync: bool| -> std::io::Result<()> {
            let cursor = ShardCursor {
                shard,
                completed: completed as u64,
                next_stream: (range.start + completed) as u64,
            };
            store::retry_transient(|| {
                let mut j = journal.lock();
                j.append(&JournalEntry::Checkpoint(cursor))?;
                if sync {
                    j.sync()?;
                }
                Ok(())
            })
        };
        let mut completed = start;
        for (seq, trial) in range.clone().enumerate().skip(start) {
            let out_of_budget = store_cfg.budget.is_some_and(|b| spent.fetch_add(1, Ordering::SeqCst) >= b);
            if stop.should_stop() || out_of_budget {
                stop.request_stop();
                if completed > start {
                    if let Err(e) = checkpoint(completed, true) {
                        fail(e);
                    }
                }
                return;
            }
            let t0 = std::time::Instant::now();
            // A harness panic (as opposed to a victim panic, which the
            // supervisor converts into a crash DUE long before here) must
            // not unwind across the scheduler and take sibling shards down:
            // checkpoint this shard's progress, record the diagnostic, and
            // let the others seal. The run stays resumable.
            let record = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(trial))) {
                Ok(record) => record,
                Err(payload) => {
                    obs::incr("shard/panicked", 1);
                    if completed > start {
                        if let Err(e) = checkpoint(completed, true) {
                            fail(e);
                        }
                    }
                    shard_panics
                        .lock()
                        .push(format!("shard {shard}: trial {trial}: {}", panic_message(payload.as_ref())));
                    return;
                }
            };
            busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let payload = match serde_json::to_string(&record) {
                Ok(p) => p,
                Err(e) => {
                    fail(std::io::Error::other(format!("trial {trial}: serialize failed: {e}")));
                    return;
                }
            };
            obs::incr("store/trials", 1);
            if let Err(e) = store::retry_transient(|| {
                journal.lock().append(&JournalEntry::Trial { shard, seq: seq as u64, payload: payload.clone() })
            }) {
                fail(e);
                return;
            }
            new_records[shard].lock().push(record);
            completed += 1;
            crate::monitor::tick(shard);
            if ((completed - start) as u64).is_multiple_of(store_cfg.checkpoint_every) {
                if let Err(e) = checkpoint(completed, true) {
                    fail(e);
                    return;
                }
            }
        }
        // Shard range exhausted: seal it.
        let seal = (|| -> std::io::Result<()> {
            checkpoint(completed, false)?;
            store::retry_transient(|| {
                let mut j = journal.lock();
                j.append(&JournalEntry::ShardDone { shard })?;
                j.sync()
            })
        })();
        match seal {
            Ok(()) => {
                obs::incr("shard/completed", 1);
                crate::monitor::shard_sealed(shard);
            }
            Err(e) => fail(e),
        }
    });

    // Retire the writer explicitly so a failed final flush surfaces as an
    // error here instead of being swallowed by `Drop`. Worker-observed
    // errors still take precedence — they name the root cause.
    let closed = journal.into_inner().close();
    if let Some(e) = io_error.lock().take() {
        return Err(e);
    }
    let panics = std::mem::take(&mut *shard_panics.lock());
    if !panics.is_empty() {
        return Err(std::io::Error::other(format!(
            "{} shard(s) failed on harness panics (journal is resumable): {}",
            panics.len(),
            panics.join("; ")
        )));
    }
    closed?;

    // Merge prior + new per shard; any shard short of its range means the
    // run was paused (budget/stop) rather than finished.
    let mut total_completed = 0u64;
    let mut complete = true;
    for (shard, fresh) in new_records.into_iter().enumerate() {
        let fresh = fresh.into_inner();
        prior[shard].extend(fresh);
        total_completed += prior[shard].len() as u64;
        if prior[shard].len() < plan.range(shard).len() {
            complete = false;
        }
    }
    if !complete {
        return Ok(StoredRun::Paused { completed: total_completed, total: plan.trials });
    }
    let mut records: Vec<TrialRecord> = prior.into_iter().flatten().collect();
    records.sort_by_key(|r| r.trial);
    for (i, r) in records.iter().enumerate() {
        if r.trial != i {
            return Err(invalid(format!("aggregate is not gapless: position {i} holds trial {}", r.trial)));
        }
    }
    Ok(StoredRun::Complete(records))
}

/// Journal-backed, sharded, resumable version of [`crate::run_campaign`].
///
/// For a fixed `cfg.seed`, the completed aggregate is bit-identical to
/// `run_campaign` with the same config, for any shard count, worker count,
/// interruption pattern or number of resume invocations. Targets are pooled
/// across trials (reset-in-place, factory rebuild after a DUE) exactly like
/// the in-memory runner.
pub fn run_campaign_stored<T, F>(
    benchmark: &str,
    factory: F,
    golden: &Output,
    cfg: &CampaignConfig,
    store_cfg: &StoreConfig,
) -> std::io::Result<StoredRun<Campaign>>
where
    T: FaultTarget,
    F: Fn() -> T + Sync,
{
    assert!(!cfg.models.is_empty(), "campaign needs at least one fault model");
    let _quiet = crate::panic_guard::silence_panics();
    let probe = factory();
    let total_steps = probe.total_steps().max(1);
    let pool = crate::pool::TargetPool::new(&factory);
    pool.seed(probe);
    let fast_compares = AtomicU64::new(0);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);

    let meta = CampaignMeta {
        kind: "inject".into(),
        benchmark: benchmark.into(),
        seed: cfg.seed,
        trials: cfg.trials,
        shards: store_cfg.shards,
        n_windows: cfg.n_windows,
        version: store::journal::FORMAT_VERSION,
    };
    let (writer, progress, prior) = open_journal(store_cfg, meta)?;
    let plan = ShardPlan::new(cfg.trials, store_cfg.shards);
    crate::monitor::begin_campaign(benchmark, "inject", &plan, &progress);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };

    let run = drive_shards(plan, &progress, prior, writer, store_cfg, workers, &busy_ns, |trial| {
        let mut target = pool.acquire();
        let (record, fast) = execute_trial(benchmark, &mut target, golden, cfg, total_steps, trial);
        pool.release(target, record.outcome.is_due());
        if fast {
            fast_compares.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        record
    })?;
    Ok(match run {
        StoredRun::Paused { completed, total } => StoredRun::Paused { completed, total },
        StoredRun::Complete(records) => {
            crate::monitor::complete_campaign();
            let mut report = report_for(benchmark, &records, workers, busy_ns.into_inner(), wall.elapsed().as_nanos() as u64);
            report.pool_hits = pool.hits();
            report.pool_rebuilds = pool.rebuilds();
            report.fast_path_compares = fast_compares.into_inner();
            StoredRun::Complete(Campaign { benchmark: benchmark.to_string(), records, report })
        }
    })
}

/// [`drive_shards`] with process isolation: every trial executes in a child
/// worker process supervised by a [`Warden`]. Victim deaths (abort, fatal
/// signal, wall-clock hang) are classified and — after the warden's
/// crash-loop quarantine threshold — recorded as synthetic DUE records via
/// `synth(trial, kind)`, so a pathological trial costs bounded wall clock
/// and the campaign still completes. Warden infrastructure failures
/// (exhausted spawn retries, socket breakage) panic out of the trial closure
/// and are contained by [`drive_shards`]' per-shard panic isolation: only
/// that shard fails, and the run stays resumable.
///
/// Wardens are pooled per orchestrator call: a worker process is reused
/// across trials (and across shards) until it dies.
///
/// `key` maps a completed record to its outcome-class counter, which the
/// *supervisor* increments exactly once per trial index. Workers execute
/// with outcome counting disabled (`execute_trial_attempt(..,
/// count_outcomes: false)`), so a trial retried after a kill or torn reply
/// never double-counts, and a worker that died mid-trial never leaks a
/// half-counted attempt — the count happens only where the winning record
/// is journaled. Return `None` to skip counting (record types without a
/// static class).
#[allow(clippy::too_many_arguments)]
pub fn drive_isolated(
    plan: ShardPlan,
    progress: &ShardProgress,
    prior: Vec<Vec<TrialRecord>>,
    writer: JournalWriter,
    store_cfg: &StoreConfig,
    workers: usize,
    busy_ns: &AtomicU64,
    iso: &IsolateConfig,
    synth: impl Fn(usize, DueKind) -> TrialRecord + Sync,
    key: impl Fn(&TrialRecord) -> Option<&'static str> + Sync,
) -> std::io::Result<StoredRun<Vec<TrialRecord>>> {
    let wardens: parking_lot::Mutex<Vec<Warden>> = parking_lot::Mutex::new(Vec::new());
    drive_shards(plan, progress, prior, writer, store_cfg, workers, busy_ns, |trial| {
        let mut warden = match wardens.lock().pop().map(Ok).unwrap_or_else(|| Warden::new(iso.clone())) {
            Ok(w) => w,
            Err(e) => panic!("trial {trial}: warden setup failed: {e}"),
        };
        match warden.run_trial(trial) {
            Ok(IsolatedTrial::Completed(record)) => {
                wardens.lock().push(warden);
                if let Some(k) = key(&record) {
                    obs::incr(k, 1);
                }
                *record
            }
            Ok(IsolatedTrial::Quarantined { kind, .. }) => {
                // The warden already emitted the diagnostic through telemetry
                // (`warden/quarantined`, `warden_quarantine` event); here the
                // death folds into the campaign as a deterministic DUE record.
                wardens.lock().push(warden);
                synth(trial, kind)
            }
            Err(e) => panic!("trial {trial}: warden infrastructure failed: {e}"),
        }
    })
}

/// Process-isolated version of [`run_campaign_stored`]: the opt-in
/// `--isolate` backend. The calling binary must re-exec itself in worker
/// mode (see [`crate::warden::worker_active`] / [`crate::warden::serve`])
/// and execute trials by global index; this function supervises those
/// workers and journals the results.
///
/// The journal metadata is identical to [`run_campaign_stored`]'s, so a
/// campaign can be started in-process and resumed isolated (or vice versa),
/// and for a fixed seed the non-DUE aggregate is bit-identical to the
/// in-process run. `total_steps` is the victim's step count (the parent
/// never builds a target, so it cannot probe it).
pub fn run_campaign_isolated(
    benchmark: &str,
    total_steps: usize,
    cfg: &CampaignConfig,
    store_cfg: &StoreConfig,
    iso: &IsolateConfig,
) -> std::io::Result<StoredRun<Campaign>> {
    assert!(!cfg.models.is_empty(), "campaign needs at least one fault model");
    let total_steps = total_steps.max(1);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);

    let meta = CampaignMeta {
        kind: "inject".into(),
        benchmark: benchmark.into(),
        seed: cfg.seed,
        trials: cfg.trials,
        shards: store_cfg.shards,
        n_windows: cfg.n_windows,
        version: store::journal::FORMAT_VERSION,
    };
    let (writer, progress, prior) = open_journal(store_cfg, meta)?;
    let plan = ShardPlan::new(cfg.trials, store_cfg.shards);
    crate::monitor::begin_campaign(benchmark, "inject", &plan, &progress);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };

    let run = drive_isolated(
        plan,
        &progress,
        prior,
        writer,
        store_cfg,
        workers,
        &busy_ns,
        iso,
        |trial, kind| crate::campaign::synth_due_record(benchmark, cfg, total_steps, trial, kind),
        |record| record.model.map(|m| outcome_key(m, &record.outcome)),
    )?;
    Ok(match run {
        StoredRun::Paused { completed, total } => StoredRun::Paused { completed, total },
        StoredRun::Complete(records) => {
            crate::monitor::complete_campaign();
            let report = report_for(benchmark, &records, workers, busy_ns.into_inner(), wall.elapsed().as_nanos() as u64);
            StoredRun::Complete(Campaign { benchmark: benchmark.to_string(), records, report })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::target::{StepOutcome, VarClass, VarInfo, Variable};

    /// Tiny deterministic victim (mirror of the campaign-test victim).
    struct Victim {
        data: Vec<u32>,
        ctrl: u64,
        done: usize,
    }
    impl Victim {
        fn new() -> Self {
            Victim { data: (0..64u32).collect(), ctrl: 0, done: 0 }
        }
    }
    impl FaultTarget for Victim {
        fn name(&self) -> &'static str {
            "victim"
        }
        fn total_steps(&self) -> usize {
            8
        }
        fn steps_executed(&self) -> usize {
            self.done
        }
        fn step(&mut self) -> StepOutcome {
            let base = (self.ctrl as usize) * 8;
            for i in 0..8 {
                self.data[base + i] = self.data[base + i].wrapping_mul(3).wrapping_add(1);
            }
            self.ctrl += 1;
            self.done += 1;
            if self.done >= 8 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }
        fn variables(&mut self) -> Vec<Variable<'_>> {
            vec![
                Variable::from_slice(VarInfo::global("data", VarClass::Matrix, file!(), line!()), &mut self.data),
                Variable::from_scalar(VarInfo::local("ctrl", VarClass::ControlVariable, "loop", 0, file!(), line!()), &mut self.ctrl),
            ]
        }
        fn output(&self) -> Output {
            Output::I32Grid { dims: [8, 8, 1], data: self.data.iter().map(|&x| x as i32).collect() }
        }
        fn reset(&mut self) -> bool {
            for (i, v) in self.data.iter_mut().enumerate() {
                *v = i as u32;
            }
            self.ctrl = 0;
            self.done = 0;
            true
        }
    }

    fn golden() -> Output {
        let mut v = Victim::new();
        while v.step() == StepOutcome::Continue {}
        v.output()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-orchestrator").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_records(a: &[TrialRecord], b: &[TrialRecord]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.trial, y.trial);
            assert_eq!(x.model, y.model);
            assert_eq!(x.inject_step, y.inject_step);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.executed_steps, y.executed_steps);
        }
    }

    #[test]
    fn any_shard_count_matches_the_single_shot_run() {
        let g = golden();
        let cfg = CampaignConfig { trials: 96, seed: 41, ..Default::default() };
        let single = run_campaign("victim", Victim::new, &g, &cfg);
        for shards in [1usize, 3, 7] {
            let mut sc = StoreConfig::new(tmp(&format!("shards-{shards}")));
            sc.shards = shards;
            let stored = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
            assert_same_records(&single.records, &stored.records);
            assert_eq!(single.report.outcomes, stored.report.outcomes);
        }
    }

    #[test]
    fn interrupted_resume_matches_uninterrupted_run() {
        let g = golden();
        let cfg = CampaignConfig { trials: 80, seed: 5, ..Default::default() };
        let uninterrupted = run_campaign("victim", Victim::new, &g, &cfg);

        let mut sc = StoreConfig::new(tmp("interrupt"));
        sc.shards = 4;
        sc.checkpoint_every = 7;
        sc.budget = Some(13); // exhaust the budget repeatedly
        let mut rounds = 0;
        let stored = loop {
            rounds += 1;
            assert!(rounds < 50, "campaign never completed");
            match run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap() {
                StoredRun::Complete(c) => break c,
                StoredRun::Paused { completed, total } => {
                    assert!(completed < total as u64);
                    sc.resume = true;
                }
            }
        };
        assert!(rounds > 2, "budget of 13/80 should take several rounds, took {rounds}");
        assert_same_records(&uninterrupted.records, &stored.records);
    }

    #[test]
    fn fresh_run_refuses_existing_journal() {
        let g = golden();
        let cfg = CampaignConfig { trials: 8, seed: 1, ..Default::default() };
        let sc = StoreConfig::new(tmp("refuse"));
        run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        let err = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("--resume"), "{err}");
    }

    #[test]
    fn resume_refuses_a_different_campaign() {
        let g = golden();
        let cfg = CampaignConfig { trials: 8, seed: 1, ..Default::default() };
        let mut sc = StoreConfig::new(tmp("meta-mismatch"));
        run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        sc.resume = true;
        let other = CampaignConfig { trials: 8, seed: 2, ..Default::default() };
        let err = run_campaign_stored("victim", Victim::new, &g, &other, &sc).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
    }

    #[test]
    fn resume_of_a_complete_journal_is_a_cheap_no_op() {
        let g = golden();
        let cfg = CampaignConfig { trials: 24, seed: 9, ..Default::default() };
        let mut sc = StoreConfig::new(tmp("noop-resume"));
        sc.shards = 3;
        let first = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        sc.resume = true;
        sc.budget = Some(0); // no execution allowed: everything must come from the journal
        let second = run_campaign_stored("victim", Victim::new, &g, &cfg, &sc).unwrap().expect_complete();
        assert_same_records(&first.records, &second.records);
    }

    #[test]
    fn harness_panic_fails_only_its_shard_and_the_run_stays_resumable() {
        let _quiet = crate::panic_guard::silence_panics();
        let g = golden();
        let cfg = CampaignConfig { trials: 24, seed: 7, ..Default::default() };
        let reference = run_campaign("victim", Victim::new, &g, &cfg);

        let mut sc = StoreConfig::new(tmp("panic-shard"));
        sc.shards = 3;
        sc.checkpoint_every = 2;
        let meta = CampaignMeta {
            kind: "inject".into(),
            benchmark: "victim".into(),
            seed: cfg.seed,
            trials: cfg.trials,
            shards: sc.shards,
            n_windows: cfg.n_windows,
            version: store::journal::FORMAT_VERSION,
        };
        let busy = AtomicU64::new(0);
        let run_real = |trial: usize| {
            let mut t = Victim::new();
            execute_trial("victim", &mut t, &g, &cfg, 8, trial).0
        };

        // First pass: trial 12 (shard 1) hits a harness bug.
        let (writer, progress, prior) = open_journal(&sc, meta.clone()).unwrap();
        let err = drive_shards(ShardPlan::new(cfg.trials, sc.shards), &progress, prior, writer, &sc, 3, &busy, |trial| {
            if trial == 12 {
                panic!("injected harness bug at trial {trial}");
            }
            run_real(trial)
        })
        .unwrap_err();
        assert!(err.to_string().contains("shard 1"), "{err}");
        assert!(err.to_string().contains("injected harness bug"), "{err}");

        // Sibling shards sealed despite the panic; the panicking shard kept
        // its checkpointed progress and nothing else.
        sc.resume = true;
        let (writer, progress, prior) = open_journal(&sc, meta).unwrap();
        assert!(progress.shards[0].done, "shard 0 must seal despite shard 1's panic");
        assert!(progress.shards[2].done, "shard 2 must seal despite shard 1's panic");
        assert!(!progress.shards[1].done);
        assert_eq!(progress.shards[1].completed, 4, "shard 1 completed trials 8..12 before the panic");

        // Resume finishes the failed shard and the aggregate matches the
        // uninterrupted in-process run.
        let records = drive_shards(ShardPlan::new(cfg.trials, sc.shards), &progress, prior, writer, &sc, 3, &busy, run_real)
            .unwrap()
            .expect_complete();
        assert_same_records(&reference.records, &records);
    }

    /// Worker entry for the isolated-campaign self-exec tests below: when
    /// spawned by a warden (socket env set) it serves real `Victim` trials
    /// by global index, with misbehavior scripted by the spec; as an
    /// ordinary test run it is a no-op.
    ///
    /// Spec format: `<mode>,<seed>,<trials>` where `mode` is `plain` or
    /// `+`-joined directives like `abort-5+hang-9`.
    #[test]
    fn isolated_worker_entry() {
        let Some(spec) = crate::warden::worker_spec() else { return };
        let mut parts = spec.split(',');
        let mode = parts.next().unwrap().to_string();
        let seed: u64 = parts.next().unwrap().parse().unwrap();
        let trials: usize = parts.next().unwrap().parse().unwrap();
        let cfg = CampaignConfig { trials, seed, ..Default::default() };
        let g = golden();
        let mut abort_on = None;
        let mut hang_on = None;
        for directive in mode.split('+') {
            match directive.split_once('-') {
                Some(("abort", n)) => abort_on = Some(n.parse::<usize>().unwrap()),
                Some(("hang", n)) => hang_on = Some(n.parse::<usize>().unwrap()),
                _ => {}
            }
        }
        let result = crate::warden::serve(|trial, attempt| {
            if abort_on == Some(trial) {
                std::process::abort();
            }
            if hang_on == Some(trial) {
                loop {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            }
            let mut target = Victim::new();
            crate::campaign::execute_trial_attempt("victim", &mut target, &g, &cfg, 8, trial, attempt, false).0
        });
        std::process::exit(if result.is_ok() { 0 } else { 1 });
    }

    /// IsolateConfig pointing back at this test binary, filtered down to
    /// the worker entry above.
    fn iso_cfg(mode: &str, cfg: &CampaignConfig) -> IsolateConfig {
        let mut iso = IsolateConfig::new(
            std::env::current_exe().expect("test binary path"),
            vec![
                "orchestrator::tests::isolated_worker_entry".into(),
                "--exact".into(),
                "--test-threads=1".into(),
                "--nocapture".into(),
            ],
            format!("{mode},{},{}", cfg.seed, cfg.trials),
        );
        iso.backoff_base = std::time::Duration::from_millis(1);
        iso.backoff_cap = std::time::Duration::from_millis(10);
        iso
    }

    #[test]
    fn isolated_campaign_matches_the_in_process_run() {
        let g = golden();
        let cfg = CampaignConfig { trials: 24, seed: 11, workers: 2, ..Default::default() };
        let reference = run_campaign("victim", Victim::new, &g, &cfg);
        let mut sc = StoreConfig::new(tmp("isolated-match"));
        sc.shards = 3;
        let stored = run_campaign_isolated("victim", 8, &cfg, &sc, &iso_cfg("plain", &cfg)).unwrap().expect_complete();
        assert_eq!(reference.records.len(), stored.records.len());
        for (a, b) in reference.records.iter().zip(&stored.records) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "trial {} must be bit-identical across execution backends",
                a.trial
            );
        }
        assert_eq!(reference.report.outcomes, stored.report.outcomes);
    }

    #[test]
    fn crashing_and_hanging_victims_become_dues_and_the_campaign_completes() {
        use crate::record::OutcomeRecord;
        let g = golden();
        let cfg = CampaignConfig { trials: 12, seed: 23, workers: 2, ..Default::default() };
        let reference = run_campaign("victim", Victim::new, &g, &cfg);
        let mut sc = StoreConfig::new(tmp("isolated-dues"));
        sc.shards = 2;
        let mut iso = iso_cfg("abort-5+hang-9", &cfg);
        iso.trial_wall = std::time::Duration::from_millis(400);
        let stored = run_campaign_isolated("victim", 8, &cfg, &sc, &iso).unwrap().expect_complete();
        assert_eq!(stored.records.len(), 12);
        assert_eq!(stored.records[5].outcome, OutcomeRecord::Due(DueKind::Signal { signo: 6 }), "SIGABRT victim");
        assert_eq!(stored.records[9].outcome, OutcomeRecord::Due(DueKind::Killed), "wall-clock-killed victim");
        for (a, b) in reference.records.iter().zip(&stored.records) {
            if a.trial == 5 || a.trial == 9 {
                // Quarantined trials keep their deterministic identity even
                // though the victim never reported back.
                assert_eq!(a.model, b.model);
                assert_eq!(a.inject_step, b.inject_step);
                assert_eq!(a.window, b.window);
                continue;
            }
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "well-behaved trial {} must be bit-identical",
                a.trial
            );
        }
    }
}
