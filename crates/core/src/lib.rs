//! # carolfi — a CAROL-FI-style high-level fault injector
//!
//! Rust reproduction of the fault-injection half of *Experimental and
//! Analytical Study of Xeon Phi Reliability* (Oliveira et al., SC'17).
//!
//! The original CAROL-FI drives GDB: it interrupts a running OpenMP binary at
//! a random time, picks a random thread/frame/variable from the debug
//! information, flips bits in that variable's memory according to one of four
//! fault models (*Single*, *Double*, *Random*, *Zero*), resumes the program,
//! and classifies the outcome against a golden output as **Masked**, **SDC**
//! (silent data corruption) or **DUE** (detected unrecoverable error — crash
//! or watchdog timeout).
//!
//! This crate keeps the same observable contract without a debugger:
//!
//! * Programs under test implement [`FaultTarget`]: they run cooperatively in
//!   `step()` increments (full speed between steps) and expose their live
//!   variables — including per-logical-thread control variables and global
//!   arrays — through [`Variable`] views, the moral equivalent of DWARF debug
//!   info.
//! * The [`supervisor`] pauses at a randomly sampled step, selects a
//!   thread/frame/variable exactly like CAROL-FI's Flip-script, applies a
//!   [`FaultModel`], resumes, and classifies the outcome. A watchdog converts
//!   runaway executions into timeout DUEs; panics (out-of-bounds indexing
//!   from corrupted control variables, etc.) become crash DUEs.
//! * The [`campaign`] module runs thousands of independent trials in
//!   parallel, deterministically per seed, and produces serialisable
//!   [`record::TrialRecord`] logs comparable to the paper's public log
//!   repository.
//! * The [`orchestrator`] module is the durable form of the same campaign:
//!   trials shard deterministically over a `phi-store` journal so campaigns
//!   survive crashes and resume across invocations bit-identically.
//!
//! The injector is deliberately generic over the fault *applicator*
//! ([`FaultApplicator`]), so the beam-experiment simulator (`beamsim` crate)
//! can reuse the same supervisor machinery with device-level architectural
//! effects instead of source-level fault models.

pub mod adaptive;
pub mod bytesview;
pub mod campaign;
pub mod dist;
pub mod fuel;
pub mod models;
pub mod monitor;
pub mod orchestrator;
pub mod output;
pub mod panic_guard;
pub mod pool;
pub mod record;
pub mod rng;
pub mod select;
pub mod supervisor;
pub mod target;
pub mod warden;

pub use adaptive::{run_campaign_adaptive, AllocationPlanner, PlanDecision};
pub use campaign::{run_campaign, Campaign, CampaignConfig};
pub use dist::{run_coordinator, run_executor, ConnectTarget, CoordConfig, CoordSummary, ExecutorConfig, ExecutorSummary};
pub use orchestrator::{run_campaign_isolated, run_campaign_stored, StoreConfig, StoredRun};
pub use warden::{IsolateConfig, IsolatedTrial, Warden};
pub use fuel::Fuel;
pub use models::{FaultApplicator, FaultModel, InjectionDetail};
pub use output::{Mismatch, Output};
pub use pool::TargetPool;
pub use record::{OutcomeRecord, TrialRecord, VarDesc};
pub use select::VariableSelector;
pub use supervisor::{run_trial, run_trial_mut, DueCause, TrialConfig, TrialOutcome};
pub use target::{FaultTarget, FrameId, StepOutcome, VarClass, VarInfo, Variable};
