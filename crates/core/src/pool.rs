//! Per-worker target pools: reuse one victim instance across trials.
//!
//! Building a kernel target from scratch allocates and re-derives every
//! input array; at campaign scale (the paper's ≥10,000 injections per
//! benchmark, §6) that construction cost dominates wall-clock, because the
//! overwhelmingly common trial outcome is Masked and the faulted execution
//! itself is cheap. A [`TargetPool`] keeps finished targets and hands them
//! back after an in-place [`FaultTarget::reset`], falling back to the
//! factory only when it must:
//!
//! * cold start — no idle target is available yet;
//! * the target does not support `reset` (the trait default returns
//!   `false`);
//! * the previous trial ended in a DUE — a panic may have unwound out of
//!   mid-`step` kernel code, leaving cursors and scratch state torn, so the
//!   caller drops the instance instead of releasing it.
//!
//! Pooling is invisible in the records: `reset` restores every injectable
//! byte to the pristine pre-run state, so a pooled campaign is bit-identical
//! to one that constructs a fresh target per trial (asserted by the
//! determinism guard in `tests/determinism_guard.rs`).

use crate::target::FaultTarget;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared pool of reusable [`FaultTarget`] instances.
///
/// Thread-safe: campaign workers `acquire` and `release` concurrently; each
/// worker holds at most one target at a time, so the idle list never exceeds
/// the worker count. Hit/rebuild counts feed both the live telemetry
/// counters (`pool/hits`, `pool/rebuilds`) and the final
/// [`obs::CampaignReport`].
pub struct TargetPool<T, F>
where
    F: Fn() -> T,
{
    factory: F,
    idle: parking_lot::Mutex<Vec<T>>,
    hits: AtomicU64,
    rebuilds: AtomicU64,
}

impl<T, F> TargetPool<T, F>
where
    T: FaultTarget,
    F: Fn() -> T,
{
    pub fn new(factory: F) -> Self {
        TargetPool { factory, idle: parking_lot::Mutex::new(Vec::new()), hits: AtomicU64::new(0), rebuilds: AtomicU64::new(0) }
    }

    /// Seeds the idle list with an already-constructed pristine target (e.g.
    /// the instance built to read `total_steps`), so it is not wasted.
    pub fn seed(&self, target: T) {
        self.idle.lock().push(target);
    }

    /// Returns a pristine target: a pooled instance when one is idle and its
    /// `reset()` succeeds, a fresh factory build otherwise.
    pub fn acquire(&self) -> T {
        // Pop outside the `if let` so the lock is not held across `reset()`.
        let popped = self.idle.lock().pop();
        if let Some(mut t) = popped {
            if t.reset() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::incr("pool/hits", 1);
                return t;
            }
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        obs::incr("pool/rebuilds", 1);
        (self.factory)()
    }

    /// Returns a target after a trial. `torn` must be true when the trial
    /// ended in a DUE: the panic may have unwound out of mid-`step` code, so
    /// the instance is dropped rather than pooled.
    pub fn release(&self, target: T, torn: bool) {
        if !torn {
            self.idle.lock().push(target);
        }
    }

    /// Trials served by an in-place reset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Trials that built a fresh target (cold start, unsupported reset, or
    /// post-DUE rebuild).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::Output;
    use crate::target::{StepOutcome, Variable};

    /// Counts constructions; resettable on demand.
    struct Probe {
        resettable: bool,
        stepped: usize,
    }

    impl FaultTarget for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn total_steps(&self) -> usize {
            1
        }
        fn steps_executed(&self) -> usize {
            self.stepped
        }
        fn step(&mut self) -> StepOutcome {
            self.stepped += 1;
            StepOutcome::Done
        }
        fn variables(&mut self) -> Vec<Variable<'_>> {
            Vec::new()
        }
        fn output(&self) -> Output {
            Output::I32Grid { dims: [1, 1, 1], data: vec![0] }
        }
        fn reset(&mut self) -> bool {
            if self.resettable {
                self.stepped = 0;
            }
            self.resettable
        }
    }

    #[test]
    fn cold_start_rebuilds_then_hits() {
        let pool = TargetPool::new(|| Probe { resettable: true, stepped: 0 });
        let t = pool.acquire();
        assert_eq!((pool.hits(), pool.rebuilds()), (0, 1));
        pool.release(t, false);
        let t = pool.acquire();
        assert_eq!((pool.hits(), pool.rebuilds()), (1, 1));
        assert_eq!(t.stepped, 0, "reset restored the pristine state");
    }

    #[test]
    fn torn_targets_are_dropped_not_pooled() {
        let pool = TargetPool::new(|| Probe { resettable: true, stepped: 0 });
        let t = pool.acquire();
        pool.release(t, true); // DUE: drop
        pool.acquire();
        assert_eq!((pool.hits(), pool.rebuilds()), (0, 2));
    }

    #[test]
    fn unresettable_targets_always_rebuild() {
        let pool = TargetPool::new(|| Probe { resettable: false, stepped: 0 });
        let t = pool.acquire();
        pool.release(t, false);
        pool.acquire();
        assert_eq!((pool.hits(), pool.rebuilds()), (0, 2));
    }

    #[test]
    fn seeded_target_is_served_first() {
        let pool = TargetPool::new(|| Probe { resettable: true, stepped: 0 });
        pool.seed(Probe { resettable: true, stepped: 1 });
        let t = pool.acquire();
        assert_eq!((pool.hits(), pool.rebuilds()), (1, 0));
        assert_eq!(t.stepped, 0);
    }
}
