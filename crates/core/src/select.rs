//! Variable selection: the Flip-script's thread → frame → variable walk.
//!
//! Paper §5.1: "Flip-script first selects one of the available threads and
//! frames […] Flip-script looks up the current frame upward the external one
//! containing the global variables. Then, one of the variables of the
//! selected frame will have its bits flipped."
//!
//! The walk therefore has three levels:
//!
//! 1. **Thread** — uniform over the threads present (228 on the Phi). Each
//!    logical thread contributes its private kernel frame, and *every*
//!    thread's walk also reaches the external frame holding the globals.
//! 2. **Frame** — one of the selected thread's frames. With the two-level
//!    stacks of these kernels that is a coin flip between the thread's
//!    subroutine frame and the global frame.
//! 3. **Variable** — within the frame, proportional to the variable's memory
//!    size. This is the weighting the paper's analysis itself relies on:
//!    LavaMD's charge/distance arrays attract faults because they are "up to
//!    five orders of magnitude larger than the other data structures", and
//!    DGEMM's 228 × 9 thread-private integers matter because they
//!    "increase the memory portion used to store them" (§6).
//!
//! The element within the chosen variable is uniform. The alternative
//! policies (uniform-over-variables, flat) are kept for ablations.

use crate::target::{FrameId, Variable};
use rand::Rng;

/// Result of a selection: which variable, and which element within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    pub var_index: usize,
    pub elem_index: usize,
}

/// How the variable within the selected frame is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WithinFrame {
    /// ∝ variable size in bytes (default; see module docs).
    ByteWeighted,
    /// Uniform over the frame's variables (ablation).
    UniformVariable,
}

/// Configurable selection policy.
#[derive(Debug, Clone)]
pub struct VariableSelector {
    /// When true (default), run the CAROL-FI thread → frame walk; when
    /// false, ignore frames entirely (flat ablation).
    pub frame_first: bool,
    /// Probability that the frame walk stops at the external (global) frame
    /// rather than one of the thread's own frames. The interrupted stack of
    /// an OpenMP worker passes the kernel body, the outlined parallel
    /// region, runtime frames and `main` before reaching the external frame,
    /// so the global frame is one stop among several (~0.3).
    pub global_frame_prob: f64,
    /// Within-frame variable weighting.
    pub within_frame: WithinFrame,
}

impl Default for VariableSelector {
    fn default() -> Self {
        VariableSelector { frame_first: true, global_frame_prob: 0.3, within_frame: WithinFrame::UniformVariable }
    }
}

impl VariableSelector {
    /// Uniform-over-variables ablation policy (no frame structure at all).
    pub fn flat() -> Self {
        VariableSelector { frame_first: false, global_frame_prob: 0.5, within_frame: WithinFrame::UniformVariable }
    }

    /// CAROL-FI walk but byte-weighted within the frame (ablation).
    pub fn byte_weighted() -> Self {
        VariableSelector { within_frame: WithinFrame::ByteWeighted, ..Default::default() }
    }

    fn pick_within<R: Rng>(&self, vars: &[Variable<'_>], pool: &[usize], rng: &mut R) -> usize {
        match self.within_frame {
            WithinFrame::UniformVariable => pool[rng.gen_range(0..pool.len())],
            WithinFrame::ByteWeighted => {
                let total: usize = pool.iter().map(|&i| vars[i].bytes.len()).sum();
                let mut x = rng.gen_range(0..total.max(1));
                for &i in pool {
                    if x < vars[i].bytes.len() {
                        return i;
                    }
                    x -= vars[i].bytes.len();
                }
                *pool.last().expect("pool is non-empty")
            }
        }
    }

    /// Picks a variable and an element within it. Returns `None` when the
    /// target exposes no state (cannot happen for the bundled kernels, but
    /// the injector must not crash on an empty frame walk).
    pub fn select<R: Rng>(&self, vars: &[Variable<'_>], rng: &mut R) -> Option<Selection> {
        let candidates: Vec<usize> = (0..vars.len()).filter(|&i| !vars[i].bytes.is_empty()).collect();
        if candidates.is_empty() {
            return None;
        }
        let var_index = if self.frame_first {
            let globals: Vec<usize> = candidates.iter().copied().filter(|&i| vars[i].info.frame == FrameId::Global).collect();
            let mut threads: Vec<u16> = candidates.iter().filter_map(|&i| vars[i].info.thread).collect();
            threads.sort_unstable();
            threads.dedup();

            // Thread level: pick one of the live threads (if any).
            let thread_frame: Option<Vec<usize>> = if threads.is_empty() {
                None
            } else {
                let t = threads[rng.gen_range(0..threads.len())];
                Some(candidates.iter().copied().filter(|&i| vars[i].info.thread == Some(t)).collect())
            };

            // Frame level: the walk ends at the thread's own frame or at the
            // external frame with the globals.
            let pool: Vec<usize> = match thread_frame {
                Some(tf) if !globals.is_empty() => {
                    if rng.gen_bool(self.global_frame_prob) {
                        globals
                    } else {
                        tf
                    }
                }
                Some(tf) => tf,
                None => globals,
            };
            if pool.is_empty() {
                return None;
            }
            self.pick_within(vars, &pool, rng)
        } else {
            candidates[rng.gen_range(0..candidates.len())]
        };
        let elem_count = vars[var_index].elem_count().max(1);
        let elem_index = rng.gen_range(0..elem_count);
        Some(Selection { var_index, elem_index })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;
    use crate::target::{VarClass, VarInfo, Variable};

    fn make_state() -> (Vec<f64>, Vec<f64>, Vec<u64>, Vec<u64>) {
        // Globals: a big matrix and a tiny constant; two thread frames.
        (vec![0.0; 4096], vec![0.0; 1], vec![0; 4], vec![0; 4])
    }

    fn vars_of<'a>(matrix: &'a mut [f64], konst: &'a mut [f64], t0: &'a mut [u64], t1: &'a mut [u64]) -> Vec<Variable<'a>> {
        vec![
            Variable::from_slice(VarInfo::global("matrix", VarClass::Matrix, file!(), line!()), matrix),
            Variable::from_slice(VarInfo::global("konst", VarClass::Constant, file!(), line!()), konst),
            Variable::from_slice(VarInfo::local("ctrl", VarClass::ControlVariable, "kernel", 0, file!(), line!()), t0),
            Variable::from_slice(VarInfo::local("ctrl", VarClass::ControlVariable, "kernel", 1, file!(), line!()), t1),
        ]
    }

    #[test]
    fn empty_target_yields_none() {
        let sel = VariableSelector::default();
        let mut rng = fork(0, 0);
        assert!(sel.select(&[], &mut rng).is_none());
    }

    #[test]
    fn global_frame_gets_its_configured_share() {
        let sel = VariableSelector { global_frame_prob: 0.5, ..Default::default() };
        let mut rng = fork(7, 0);
        let mut global_hits = 0usize;
        let n = 4000;
        for _ in 0..n {
            let (mut m, mut k, mut t0, mut t1) = make_state();
            let vars = vars_of(&mut m, &mut k, &mut t0, &mut t1);
            let pick = sel.select(&vars, &mut rng).unwrap();
            if pick.var_index <= 1 {
                global_hits += 1;
            }
        }
        let frac = global_hits as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.04, "global-frame fraction {frac}");
    }

    #[test]
    fn byte_weighting_favours_the_matrix_within_the_global_frame() {
        let sel = VariableSelector::byte_weighted();
        let mut rng = fork(8, 0);
        let (mut matrix_hits, mut konst_hits) = (0usize, 0usize);
        for _ in 0..4000 {
            let (mut m, mut k, mut t0, mut t1) = make_state();
            let vars = vars_of(&mut m, &mut k, &mut t0, &mut t1);
            match sel.select(&vars, &mut rng).unwrap().var_index {
                0 => matrix_hits += 1,
                1 => konst_hits += 1,
                _ => {}
            }
        }
        // 4096 vs 1 element: the constant should be hit ~0.01% of global walks
        // (global walks are ~30% of selections).
        assert!(matrix_hits > 800);
        assert!(konst_hits < matrix_hits / 100, "matrix {matrix_hits} vs konst {konst_hits}");
    }

    #[test]
    fn uniform_within_frame_default_balances_variables() {
        let sel = VariableSelector::default();
        let mut rng = fork(9, 0);
        let (mut matrix_hits, mut konst_hits) = (0usize, 0usize);
        for _ in 0..4000 {
            let (mut m, mut k, mut t0, mut t1) = make_state();
            let vars = vars_of(&mut m, &mut k, &mut t0, &mut t1);
            match sel.select(&vars, &mut rng).unwrap().var_index {
                0 => matrix_hits += 1,
                1 => konst_hits += 1,
                _ => {}
            }
        }
        let ratio = matrix_hits as f64 / konst_hits.max(1) as f64;
        assert!((0.6..1.6).contains(&ratio), "uniform ratio {ratio}");
    }

    #[test]
    fn threads_are_picked_uniformly() {
        let sel = VariableSelector { global_frame_prob: 0.0, ..Default::default() };
        let mut rng = fork(10, 0);
        let (mut t0_hits, mut t1_hits) = (0usize, 0usize);
        for _ in 0..4000 {
            let (mut m, mut k, mut t0, mut t1) = make_state();
            let vars = vars_of(&mut m, &mut k, &mut t0, &mut t1);
            match sel.select(&vars, &mut rng).unwrap().var_index {
                2 => t0_hits += 1,
                3 => t1_hits += 1,
                other => panic!("global pick {other} with global_frame_prob = 0"),
            }
        }
        let frac = t0_hits as f64 / (t0_hits + t1_hits) as f64;
        assert!((frac - 0.5).abs() < 0.04);
    }

    #[test]
    fn globals_only_target_still_selects() {
        let sel = VariableSelector::default();
        let mut rng = fork(11, 0);
        let mut only = vec![1u64; 8];
        let vars = vec![Variable::from_slice(VarInfo::global("g", VarClass::Matrix, file!(), line!()), &mut only)];
        let pick = sel.select(&vars, &mut rng).unwrap();
        assert_eq!(pick.var_index, 0);
        assert!(pick.elem_index < 8);
    }

    #[test]
    fn flat_policy_is_uniform_over_variables() {
        let sel = VariableSelector::flat();
        let mut rng = fork(12, 0);
        let mut hits = [0usize; 4];
        let n = 4000;
        for _ in 0..n {
            let (mut m, mut k, mut t0, mut t1) = make_state();
            let vars = vars_of(&mut m, &mut k, &mut t0, &mut t1);
            hits[sel.select(&vars, &mut rng).unwrap().var_index] += 1;
        }
        for h in hits {
            let frac = h as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.04, "variable fraction {frac}");
        }
    }

    #[test]
    fn element_index_is_in_range() {
        let sel = VariableSelector::default();
        let mut rng = fork(13, 0);
        for _ in 0..500 {
            let (mut m, mut k, mut t0, mut t1) = make_state();
            let vars = vars_of(&mut m, &mut k, &mut t0, &mut t1);
            let pick = sel.select(&vars, &mut rng).unwrap();
            assert!(pick.elem_index < vars[pick.var_index].elem_count());
        }
    }

    #[test]
    fn zero_length_variables_are_skipped() {
        let sel = VariableSelector::default();
        let mut rng = fork(14, 0);
        let mut empty: Vec<f64> = vec![];
        let mut scalar = [1u64];
        let vars = vec![
            Variable::from_slice(VarInfo::global("empty", VarClass::Buffer, file!(), line!()), &mut empty),
            Variable::from_slice(VarInfo::global("x", VarClass::Constant, file!(), line!()), &mut scalar),
        ];
        for _ in 0..50 {
            let pick = sel.select(&vars, &mut rng).unwrap();
            assert_eq!(pick.var_index, 1);
        }
    }
}
