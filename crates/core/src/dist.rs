//! Distributed campaigns: a TCP coordinator leasing shard ranges to
//! executors, with straggler re-dispatch and crash recovery on both sides.
//!
//! The paper's campaigns (90 000+ injections) want more than one host, but a
//! distributed run is only publishable if it is *the same experiment*: the
//! aggregate must be bit-identical to the single-host run with the same
//! seed. That falls out of the repo's standing invariant — a trial's global
//! index is its RNG stream id, its fault-model selector and its position in
//! the aggregate — so distribution reduces to *placement*, and placement
//! can be sloppy as long as merging is strict:
//!
//! * The **coordinator** owns the campaign journal. It leases whole
//!   contiguous shard ranges ([`store::ShardPlan::range`]) to executors and
//!   merges their trial streams through [`store::Importer`], which dedupes
//!   by global trial index. Every copy of a trial is byte-identical, so
//!   re-dispatch and replay can only waste work, never corrupt it.
//! * **Executors** hold no campaign state the coordinator depends on. Each
//!   keeps a private local journal per shard so a killed-and-restarted
//!   executor resumes its own computation instead of redoing it, and a
//!   re-leased range is served from disk instead of recomputed.
//! * Failure handling is lease-based. A lease with no traffic for
//!   `lease_timeout` is expired and its shard re-dispatched to the next
//!   executor that asks (straggler re-dispatch); a stale executor's frames
//!   are answered with [`CoordMsg::Expired`] and can never write into the
//!   journal. Lease decisions are write-ahead logged to a checksummed
//!   [`store::LedgerWriter`] *before* the lease frame is sent, so a
//!   SIGKILLed coordinator reopens the journal + ledger and resumes
//!   mid-campaign with every granted-but-unfinished shard immediately
//!   re-dispatchable.
//!
//! Transport is the warden's length-prefixed JSON framing ([`write_frame`]
//! / [`read_frame`]) over `TcpStream`, with the same `MAX_FRAME` cap
//! enforced on network reads. The protocol is strict request/response:
//! every [`ExecutorMsg`] gets exactly one [`CoordMsg`] reply, which keeps
//! both ends trivially restartable — any torn exchange is just a dropped
//! connection, and reconnecting re-establishes all state from `Hello`.

use crate::monitor::{self, DistStatus};
use crate::warden::{read_frame, write_frame};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use store::{
    CampaignMeta, Importer, Journal, JournalEntry, JournalWriter, LeaseState, LedgerEntry, LedgerWriter, Offer, ShardCursor,
    ShardPlan, ShardProgress,
};

/// Executor → coordinator messages. One reply each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExecutorMsg {
    /// First frame on every connection. `name` identifies the executor
    /// across reconnects: a `Hello` expires any lease still held under the
    /// same name, because the process that held it is gone.
    Hello { name: String, pid: u32 },
    /// Ask for work. Answered with `Lease`, `Wait` or `Done`.
    LeaseRequest,
    /// One trial result. `seq` is shard-local; `payload` is the
    /// pre-serialized trial record, opaque to the coordinator.
    Trial { lease: u64, shard: usize, seq: u64, payload: String },
    /// Liveness for a lease whose next trial is still computing.
    Heartbeat { lease: u64 },
    /// The executor streamed its whole range.
    RangeDone { lease: u64 },
}

/// Coordinator → executor replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordMsg {
    /// Reply to `Hello`: campaign identity plus an opaque spec string the
    /// executor uses to build its trial runner (the bench layer puts a
    /// serialized `CampaignSpec` here; the core does not interpret it).
    Welcome { meta: CampaignMeta, spec: String },
    /// A granted lease over shard `shard` = global trials `start..end`.
    /// The executor streams shard-local sequences `skip..(end-start)`; the
    /// merge already holds everything before `skip`.
    Lease { lease: u64, shard: usize, start: u64, end: u64, skip: u64, timeout_ms: u64 },
    /// No shard is currently available; ask again after `backoff_ms`.
    Wait { backoff_ms: u64 },
    /// Frame accepted.
    Ack,
    /// The named lease is no longer valid — abandon the range and request
    /// a new lease. Sent to stragglers whose lease timed out.
    Expired,
    /// Every shard is sealed; the campaign is complete.
    Done,
}

fn protocol(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn lock_state(state: &Mutex<CoordState>) -> MutexGuard<'_, CoordState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Campaign journal directory (journal segments + `ledger.jsonl`).
    pub dir: PathBuf,
    /// Campaign identity, checked against the journal on resume.
    pub meta: CampaignMeta,
    /// Opaque spec handed to executors in `Welcome`.
    pub spec: String,
    /// Continue an existing journal instead of demanding a fresh directory.
    pub resume: bool,
    /// A lease with no traffic for this long is expired and its shard
    /// re-dispatched.
    pub lease_timeout: Duration,
    /// Backoff told to executors when every unsealed shard is leased.
    pub wait_ms: u64,
    /// Test hook: abandon the coordinator (no seal, no close, writers
    /// leaked exactly as a SIGKILL would leave them) once this many trials
    /// merged. `None` in production.
    pub stop_after_merged: Option<u64>,
    /// After the last shard seals, keep answering so executors parked in a
    /// `Wait` backoff hear [`CoordMsg::Done`] instead of a connection
    /// reset. [`run_coordinator`] returns as soon as every connected
    /// executor has disconnected, or after this bound — whichever is first.
    pub linger: Duration,
}

impl CoordConfig {
    pub fn new(dir: impl Into<PathBuf>, meta: CampaignMeta, spec: impl Into<String>) -> Self {
        CoordConfig {
            dir: dir.into(),
            meta,
            spec: spec.into(),
            resume: false,
            lease_timeout: Duration::from_millis(2000),
            wait_ms: 50,
            stop_after_merged: None,
            linger: Duration::from_secs(10),
        }
    }
}

/// What a finished (or deliberately abandoned) coordinator did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordSummary {
    /// Fresh trials merged into the journal this incarnation.
    pub merged: u64,
    /// Duplicate trials dropped by the dedupe-by-index merge.
    pub duplicates: u64,
    pub leases_granted: u64,
    pub leases_expired: u64,
    /// Shards granted more than once (straggler re-dispatch).
    pub redispatched: u64,
    /// True only for the `stop_after_merged` crash-simulation hook.
    pub abandoned: bool,
}

#[derive(Debug)]
struct LeaseInfo {
    shard: usize,
    executor: String,
    last_seen: Instant,
}

struct CoordState {
    meta: CampaignMeta,
    spec: String,
    plan: ShardPlan,
    importer: Importer,
    writer: Option<JournalWriter>,
    ledger: Option<LedgerWriter>,
    leases: HashMap<u64, LeaseInfo>,
    next_lease: u64,
    sealed: Vec<bool>,
    ever_leased: Vec<bool>,
    lease_timeout: Duration,
    wait_ms: u64,
    stop_after_merged: Option<u64>,
    executors: u64,
    granted: u64,
    expired: u64,
    redispatched: u64,
    done: bool,
    abandoned: bool,
}

impl CoordState {
    fn dist_status(&self) -> DistStatus {
        DistStatus {
            executors: self.executors,
            leases_active: self.leases.len() as u64,
            leases_granted: self.granted,
            leases_expired: self.expired,
            dup_trials: self.importer.duplicates,
            merged_trials: self.importer.accepted,
        }
    }

    fn publish(&self) {
        monitor::dist_update(self.dist_status());
    }

    fn ledger_mut(&mut self) -> std::io::Result<&mut LedgerWriter> {
        self.ledger.as_mut().ok_or_else(|| protocol("coordinator ledger already retired"))
    }

    /// Expires one lease: removes it and write-ahead logs the decision.
    fn expire(&mut self, lease: u64) -> std::io::Result<()> {
        if self.leases.remove(&lease).is_none() {
            return Ok(());
        }
        self.ledger_mut()?.append(&LedgerEntry::Expired { lease })?;
        self.expired += 1;
        obs::incr("dist/leases_expired", 1);
        Ok(())
    }

    /// Expires every lease with no traffic inside the timeout window.
    /// Evaluated lazily at grant time — no background timer thread.
    fn expire_stale(&mut self) -> std::io::Result<()> {
        let timeout = self.lease_timeout;
        let mut stale: Vec<u64> =
            self.leases.iter().filter(|(_, info)| info.last_seen.elapsed() > timeout).map(|(&id, _)| id).collect();
        stale.sort_unstable();
        for id in stale {
            self.expire(id)?;
        }
        Ok(())
    }

    /// A reconnecting executor's previous leases belong to a dead process.
    fn expire_leases_of(&mut self, name: &str) -> std::io::Result<()> {
        let mut held: Vec<u64> = self.leases.iter().filter(|(_, info)| info.executor == name).map(|(&id, _)| id).collect();
        held.sort_unstable();
        for id in held {
            self.expire(id)?;
        }
        Ok(())
    }

    /// Seals `shard` in the central journal: checkpoint + `ShardDone` +
    /// fsync. Always precedes the ledger's `Completed`, so a
    /// ledger-completed shard is guaranteed journal-sealed.
    fn seal_shard(&mut self, shard: usize) -> std::io::Result<()> {
        let range = self.plan.range(shard);
        let writer = self.writer.as_mut().ok_or_else(|| protocol("journal writer already retired"))?;
        writer.append(&JournalEntry::Checkpoint(ShardCursor {
            shard,
            completed: range.len() as u64,
            next_stream: range.end as u64,
        }))?;
        writer.append(&JournalEntry::ShardDone { shard })?;
        writer.sync()?;
        self.sealed[shard] = true;
        obs::incr("shard/completed", 1);
        monitor::shard_sealed(shard);
        Ok(())
    }

    /// All shards sealed: retire the journal and declare the campaign done.
    fn finish(&mut self) -> std::io::Result<()> {
        if let Some(writer) = self.writer.take() {
            writer.close()?;
        }
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.sync()?;
        }
        self.done = true;
        monitor::complete_campaign();
        Ok(())
    }

    /// The SIGKILL simulation: stop serving and leak the writers so no
    /// destructor flushes or seals anything a real kill would have lost.
    fn abandon(&mut self) {
        self.abandoned = true;
        if let Some(writer) = self.writer.take() {
            std::mem::forget(writer);
        }
        if let Some(ledger) = self.ledger.take() {
            std::mem::forget(ledger);
        }
    }

    fn grant(&mut self, name: &str) -> std::io::Result<CoordMsg> {
        self.expire_stale()?;
        if self.sealed.iter().all(|&s| s) {
            return Ok(CoordMsg::Done);
        }
        let leased: Vec<usize> = self.leases.values().map(|info| info.shard).collect();
        let Some(shard) = (0..self.plan.shards).find(|s| !self.sealed[*s] && !leased.contains(s)) else {
            return Ok(CoordMsg::Wait { backoff_ms: self.wait_ms });
        };
        let lease = self.next_lease;
        self.next_lease += 1;
        if self.ever_leased[shard] {
            self.redispatched += 1;
            obs::incr("dist/redispatched", 1);
        }
        self.ever_leased[shard] = true;
        // Write-ahead: the grant is durable before the lease frame exists.
        self.ledger_mut()?.append(&LedgerEntry::Granted { lease, shard, executor: name.to_string() })?;
        self.ledger_mut()?.sync()?;
        self.leases.insert(lease, LeaseInfo { shard, executor: name.to_string(), last_seen: Instant::now() });
        self.granted += 1;
        obs::incr("dist/leases_granted", 1);
        let range = self.plan.range(shard);
        Ok(CoordMsg::Lease {
            lease,
            shard,
            start: range.start as u64,
            end: range.end as u64,
            skip: self.importer.next_seq(shard),
            timeout_ms: self.lease_timeout.as_millis() as u64,
        })
    }

    fn handle(&mut self, name: &str, msg: ExecutorMsg) -> std::io::Result<CoordMsg> {
        match msg {
            ExecutorMsg::Hello { .. } => Err(protocol("unexpected second Hello on an established connection")),
            ExecutorMsg::LeaseRequest => self.grant(name),
            ExecutorMsg::Heartbeat { lease } => match self.leases.get_mut(&lease) {
                Some(info) if info.executor == name => {
                    info.last_seen = Instant::now();
                    Ok(CoordMsg::Ack)
                }
                Some(info) => Err(protocol(format!("lease {lease} belongs to {}, not {name}", info.executor))),
                None => Ok(CoordMsg::Expired),
            },
            ExecutorMsg::Trial { lease, shard, seq, payload } => {
                // Lease validation precedes the merge: a stale executor can
                // never advance a cursor, so it can never create a gap.
                let Some(info) = self.leases.get_mut(&lease) else { return Ok(CoordMsg::Expired) };
                if info.executor != name || info.shard != shard {
                    return Err(protocol(format!("trial for shard {shard} on foreign lease {lease}")));
                }
                info.last_seen = Instant::now();
                let writer = self.writer.as_mut().ok_or_else(|| protocol("journal writer already retired"))?;
                if self.importer.offer(writer, shard, seq, &payload)? == Offer::Accepted {
                    monitor::tick(shard);
                }
                if let Some(cap) = self.stop_after_merged {
                    if self.importer.accepted >= cap {
                        self.abandon();
                    }
                }
                Ok(CoordMsg::Ack)
            }
            ExecutorMsg::RangeDone { lease } => {
                let Some(info) = self.leases.get(&lease) else { return Ok(CoordMsg::Expired) };
                if info.executor != name {
                    return Err(protocol(format!("RangeDone on foreign lease {lease}")));
                }
                let shard = info.shard;
                if !self.importer.range_complete(shard) {
                    return Err(protocol(format!(
                        "RangeDone for shard {shard} with only {} of {} trials merged",
                        self.importer.next_seq(shard),
                        self.plan.range(shard).len()
                    )));
                }
                if !self.sealed[shard] {
                    self.seal_shard(shard)?;
                }
                self.ledger_mut()?.append(&LedgerEntry::Completed { lease, shard })?;
                self.ledger_mut()?.sync()?;
                self.leases.remove(&lease);
                if self.sealed.iter().all(|&s| s) {
                    self.finish()?;
                }
                Ok(CoordMsg::Ack)
            }
        }
    }
}

/// Opens (create or resume) the coordinator's campaign journal, checking
/// campaign identity. Unlike `orchestrator::open_journal` this does not
/// parse trial payloads — the coordinator treats them as opaque bytes.
fn open_coord_journal(dir: &Path, meta: &CampaignMeta, resume: bool) -> std::io::Result<(JournalWriter, ShardProgress)> {
    if Journal::exists(dir) {
        if !resume {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("journal already exists at {} (pass resume to continue it)", dir.display()),
            ));
        }
        let (writer, scan) = JournalWriter::resume(dir)?;
        match &scan.meta {
            Some(m) if m == meta => {}
            Some(m) => {
                return Err(protocol(format!(
                    "journal at {} holds a different campaign ({}/{} seed {}), refusing to merge into it",
                    dir.display(),
                    m.kind,
                    m.benchmark,
                    m.seed
                )))
            }
            None => return Err(protocol(format!("journal at {} has no campaign meta", dir.display()))),
        }
        let progress = ShardProgress::replay(meta.shards, &scan.entries)?;
        Ok((writer, progress))
    } else {
        let writer = JournalWriter::create(dir, meta.clone())?;
        Ok((writer, ShardProgress::replay(meta.shards, &[])?))
    }
}

/// Runs the coordinator until every shard is sealed (or the
/// `stop_after_merged` crash hook fires). Takes a bound listener so callers
/// control address selection — the `phi-coord` binary binds `--listen` and
/// writes the resolved address to `--addr-file` before calling this.
pub fn run_coordinator(listener: TcpListener, cfg: &CoordConfig) -> std::io::Result<CoordSummary> {
    let (writer, progress) = open_coord_journal(&cfg.dir, &cfg.meta, cfg.resume)?;
    let (mut ledger, scan) = LedgerWriter::open(&cfg.dir)?;

    // Reconcile both crash windows. (1) Every Active lease in the ledger
    // belonged to a connection of a dead coordinator: expire it so the
    // shard is immediately re-dispatchable. (2) A ledger-Completed shard
    // must be journal-sealed (the seal is written first); the converse —
    // sealed but never ledgered — needs no repair, the journal is
    // authoritative for completion.
    let mut carried: Vec<(u64, usize, LeaseState)> = scan.leases.iter().map(|(&id, &(shard, state))| (id, shard, state)).collect();
    carried.sort_unstable_by_key(|&(id, _, _)| id);
    let mut crash_expired = 0u64;
    for (id, shard, state) in carried {
        match state {
            LeaseState::Active => {
                ledger.append(&LedgerEntry::Expired { lease: id })?;
                crash_expired += 1;
                obs::incr("dist/leases_expired", 1);
            }
            LeaseState::Completed if !progress.shards[shard].done => {
                return Err(protocol(format!(
                    "ledger says lease {id} completed shard {shard} but the journal never sealed it"
                )));
            }
            LeaseState::Completed | LeaseState::Expired => {}
        }
    }
    ledger.sync()?;

    let plan = ShardPlan::new(cfg.meta.trials, cfg.meta.shards);
    let importer = Importer::new(&plan, &progress);
    let sealed: Vec<bool> = progress.shards.iter().map(|s| s.done).collect();
    let mut ever_leased: Vec<bool> = progress.shards.iter().map(|s| s.completed > 0 || s.done).collect();
    for &(shard, _) in scan.leases.values() {
        ever_leased[shard] = true;
    }
    monitor::begin_campaign(&cfg.meta.benchmark, "dist", &plan, &progress);

    let mut state = CoordState {
        meta: cfg.meta.clone(),
        spec: cfg.spec.clone(),
        plan,
        importer,
        writer: Some(writer),
        ledger: Some(ledger),
        leases: HashMap::new(),
        next_lease: scan.next_lease,
        sealed,
        ever_leased,
        lease_timeout: cfg.lease_timeout,
        wait_ms: cfg.wait_ms,
        stop_after_merged: cfg.stop_after_merged,
        executors: 0,
        granted: 0,
        expired: crash_expired,
        redispatched: 0,
        done: false,
        abandoned: false,
    };

    // Close the seal crash-window: a shard whose whole range is merged but
    // whose seal never hit the journal (killed between merge and seal).
    for shard in 0..state.plan.shards {
        if !state.sealed[shard] && state.importer.range_complete(shard) {
            state.seal_shard(shard)?;
        }
    }
    if state.sealed.iter().all(|&s| s) {
        state.finish()?;
        state.publish();
        return Ok(summary_of(&state));
    }
    state.publish();

    let shared = Arc::new(Mutex::new(state));
    listener.set_nonblocking(true)?;
    let mut done_since: Option<Instant> = None;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_connection(&shared, stream);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock || store::is_transient(&e) => {}
            Err(e) => return Err(e),
        }
        {
            let st = lock_state(&shared);
            if st.abandoned {
                break;
            }
            if st.done {
                // Linger until every connected executor has heard `Done`
                // and hung up (they exit on it), bounded so one wedged
                // connection can't pin a finished coordinator forever.
                let since = *done_since.get_or_insert_with(Instant::now);
                if st.executors == 0 || since.elapsed() >= cfg.linger {
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let state = lock_state(&shared);
    Ok(summary_of(&state))
}

fn summary_of(state: &CoordState) -> CoordSummary {
    CoordSummary {
        merged: state.importer.accepted,
        duplicates: state.importer.duplicates,
        leases_granted: state.granted,
        leases_expired: state.expired,
        redispatched: state.redispatched,
        abandoned: state.abandoned,
    }
}

/// Decrements the connected-executor gauge however the connection ends.
struct ConnGuard<'a>(&'a Mutex<CoordState>);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        st.executors = st.executors.saturating_sub(1);
        st.publish();
    }
}

fn serve_connection(shared: &Mutex<CoordState>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let hello: ExecutorMsg = read_frame(&mut stream)?;
    let ExecutorMsg::Hello { name, .. } = hello else {
        return Err(protocol("first frame must be Hello"));
    };
    {
        let mut st = lock_state(shared);
        // An abandoned coordinator is "dead" — drop the connection cold,
        // like the SIGKILL it simulates. A merely *done* coordinator keeps
        // answering so late joiners hear `Done` instead of a reset.
        if st.abandoned {
            return Ok(());
        }
        st.executors += 1;
        obs::incr("dist/executors_connected", 1);
    }
    let _guard = ConnGuard(shared);
    {
        let mut st = lock_state(shared);
        st.expire_leases_of(&name)?;
        let welcome = CoordMsg::Welcome { meta: st.meta.clone(), spec: st.spec.clone() };
        write_frame(&mut stream, &welcome)?;
        st.publish();
    }
    loop {
        // Blocking read with no lock held: a slow executor stalls only its
        // own connection thread.
        let msg: ExecutorMsg = match read_frame(&mut stream) {
            Ok(msg) => msg,
            Err(_) => return Ok(()), // disconnect; its leases expire on their own
        };
        let mut st = lock_state(shared);
        if st.abandoned {
            return Ok(());
        }
        let reply = st.handle(&name, msg)?;
        write_frame(&mut stream, &reply)?;
        st.publish();
    }
}

/// How the executor finds the coordinator. `File` is re-read on every
/// connect attempt, so a coordinator restarted on a fresh port (SIGKILL
/// leaves the old one in TIME_WAIT) is found as soon as it rewrites the
/// address file.
#[derive(Debug, Clone)]
pub enum ConnectTarget {
    Addr(String),
    File(PathBuf),
}

impl ConnectTarget {
    fn resolve(&self) -> std::io::Result<String> {
        match self {
            ConnectTarget::Addr(addr) => Ok(addr.clone()),
            ConnectTarget::File(path) => {
                let text = std::fs::read_to_string(path)?;
                let addr = text.trim();
                if addr.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("address file {} is empty", path.display()),
                    ));
                }
                Ok(addr.to_string())
            }
        }
    }
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Stable identity across restarts of this executor.
    pub name: String,
    /// Root of this executor's local journals (one subdirectory per shard).
    pub dir: PathBuf,
    pub target: ConnectTarget,
    /// Artificial pacing per computed trial (CI uses this to open kill
    /// windows); zero in production.
    pub throttle: Duration,
    /// Consecutive connect/roundtrip failures tolerated before giving up.
    /// Sized to ride out a coordinator restart window.
    pub max_failures: u32,
    /// Cap on the deterministic exponential reconnect backoff.
    pub backoff_cap: Duration,
}

impl ExecutorConfig {
    pub fn new(name: impl Into<String>, dir: impl Into<PathBuf>, target: ConnectTarget) -> Self {
        ExecutorConfig {
            name: name.into(),
            dir: dir.into(),
            target,
            throttle: Duration::ZERO,
            max_failures: 200,
            backoff_cap: Duration::from_millis(200),
        }
    }
}

/// What one executor run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutorSummary {
    /// Trials computed fresh (and journaled locally).
    pub computed: u64,
    /// Trials served from the local journal instead of recomputed.
    pub served_local: u64,
    /// Trial frames the coordinator accepted.
    pub streamed: u64,
    pub leases: u64,
}

/// Deterministic capped exponential backoff for reconnect attempts. No
/// jitter: executors are few and the coordinator accept loop is cheap.
fn connect_backoff(failures: u32, cap: Duration) -> Duration {
    let ms = 10u64.saturating_mul(1u64 << failures.min(5));
    Duration::from_millis(ms).min(cap)
}

/// Opens (create or resume) this executor's local journal for one shard.
/// Returns the writer, the shard's already-computed payloads, and whether
/// the shard was locally sealed.
fn open_local_journal(dir: &Path, meta: &CampaignMeta, shard: usize) -> std::io::Result<(JournalWriter, Vec<String>, bool)> {
    if Journal::exists(dir) {
        let (writer, scan) = JournalWriter::resume(dir)?;
        match &scan.meta {
            Some(m) if m == meta => {}
            _ => {
                return Err(protocol(format!(
                    "local journal at {} belongs to a different campaign",
                    dir.display()
                )))
            }
        }
        let progress = ShardProgress::replay(meta.shards, &scan.entries)?;
        let st = &progress.shards[shard];
        Ok((writer, st.payloads.clone(), st.done))
    } else {
        let writer = JournalWriter::create(dir, meta.clone())?;
        Ok((writer, Vec::new(), false))
    }
}

enum LeaseEnd {
    /// Range streamed and acknowledged (or the coordinator told us the
    /// lease expired — either way, request a new lease on this connection).
    Continue,
    /// Socket died; reconnect.
    Disconnected,
}

fn roundtrip(stream: &mut TcpStream, msg: &ExecutorMsg) -> std::io::Result<CoordMsg> {
    write_frame(stream, msg)?;
    read_frame(stream)
}

/// Runs one executor until the coordinator reports the campaign done.
///
/// `make_runner` is called once, on the first `Welcome`, with the campaign
/// meta and the coordinator's opaque spec string; it returns the per-trial
/// runner `global_index -> payload`. Determinism contract: the payload for
/// a given global index must not depend on which executor computes it.
pub fn run_executor<F, R>(cfg: &ExecutorConfig, make_runner: F) -> std::io::Result<ExecutorSummary>
where
    F: FnOnce(&CampaignMeta, &str) -> R,
    R: FnMut(u64) -> String,
{
    // Victim panics inside the runner are supervised DUEs, same as the
    // single-host stored campaign — keep their backtraces off stderr.
    let _quiet = crate::panic_guard::silence_panics();
    let mut make_runner = Some(make_runner);
    let mut runner: Option<R> = None;
    let mut meta: Option<CampaignMeta> = None;
    let mut summary = ExecutorSummary::default();
    let mut failures = 0u32;
    let pid = std::process::id();

    let fail = |failures: &mut u32, what: &str, e: std::io::Error| -> std::io::Result<()> {
        *failures += 1;
        obs::incr("dist/net_retries", 1);
        if *failures > cfg.max_failures {
            return Err(std::io::Error::new(
                e.kind(),
                format!("executor {}: giving up after {} failures ({what}: {e})", cfg.name, *failures),
            ));
        }
        std::thread::sleep(connect_backoff(*failures, cfg.backoff_cap));
        Ok(())
    };

    'reconnect: loop {
        let mut stream = match cfg.target.resolve().and_then(|addr| TcpStream::connect(&addr)) {
            Ok(s) => s,
            Err(e) => {
                fail(&mut failures, "connect", e)?;
                continue 'reconnect;
            }
        };
        stream.set_nodelay(true).ok();
        let welcome = match roundtrip(&mut stream, &ExecutorMsg::Hello { name: cfg.name.clone(), pid }) {
            Ok(reply) => reply,
            Err(e) => {
                fail(&mut failures, "hello", e)?;
                continue 'reconnect;
            }
        };
        let CoordMsg::Welcome { meta: m, spec } = welcome else {
            return Err(protocol("expected Welcome in reply to Hello"));
        };
        match &meta {
            None => {
                let builder = make_runner.take().expect("make_runner consumed exactly once");
                runner = Some(builder(&m, &spec));
                meta = Some(m);
            }
            Some(prev) if *prev == m => {}
            Some(_) => return Err(protocol("coordinator switched campaigns between connections")),
        }
        failures = 0;
        let meta_ref = meta.as_ref().expect("meta set on first Welcome");
        let runner_ref = runner.as_mut().expect("runner built on first Welcome");

        loop {
            let reply = match roundtrip(&mut stream, &ExecutorMsg::LeaseRequest) {
                Ok(reply) => reply,
                Err(e) => {
                    fail(&mut failures, "lease request", e)?;
                    continue 'reconnect;
                }
            };
            match reply {
                CoordMsg::Done => return Ok(summary),
                CoordMsg::Wait { backoff_ms } => {
                    std::thread::sleep(Duration::from_millis(backoff_ms.clamp(1, 1000)));
                }
                CoordMsg::Lease { lease, shard, start, end, skip, .. } => {
                    summary.leases += 1;
                    match run_lease(cfg, meta_ref, runner_ref, &mut stream, lease, shard, start, end, skip, &mut summary)? {
                        LeaseEnd::Continue => {}
                        LeaseEnd::Disconnected => {
                            fail(&mut failures, "lease stream", std::io::Error::other("connection lost mid-lease"))?;
                            continue 'reconnect;
                        }
                    }
                }
                other => return Err(protocol(format!("unexpected reply to LeaseRequest: {other:?}"))),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_lease<R: FnMut(u64) -> String>(
    cfg: &ExecutorConfig,
    meta: &CampaignMeta,
    runner: &mut R,
    stream: &mut TcpStream,
    lease: u64,
    shard: usize,
    start: u64,
    end: u64,
    skip: u64,
    summary: &mut ExecutorSummary,
) -> std::io::Result<LeaseEnd> {
    let sdir = cfg.dir.join(format!("shard-{shard:02}"));
    let (mut writer, local, locally_done) = open_local_journal(&sdir, meta, shard)?;
    let len = end - start;

    // Refresh the lease after the grant round-trip and any local replay.
    match roundtrip(stream, &ExecutorMsg::Heartbeat { lease }) {
        Ok(CoordMsg::Ack) => {}
        Ok(CoordMsg::Expired) => {
            writer.close()?;
            return Ok(LeaseEnd::Continue);
        }
        Ok(other) => return Err(protocol(format!("unexpected reply to Heartbeat: {other:?}"))),
        Err(_) => {
            writer.close()?;
            return Ok(LeaseEnd::Disconnected);
        }
    }

    for seq in 0..len {
        let payload = if (seq as usize) < local.len() {
            summary.served_local += 1;
            obs::incr("dist/local_served", 1);
            local[seq as usize].clone()
        } else {
            // Compute-then-journal: the local journal is this executor's
            // crash-resume state, independent of the coordinator's.
            let payload = runner(start + seq);
            writer.append(&JournalEntry::Trial { shard, seq, payload: payload.clone() })?;
            writer.sync()?;
            summary.computed += 1;
            if !cfg.throttle.is_zero() {
                std::thread::sleep(cfg.throttle);
            }
            payload
        };
        if seq < skip {
            continue; // the merge already holds it
        }
        match roundtrip(stream, &ExecutorMsg::Trial { lease, shard, seq, payload }) {
            Ok(CoordMsg::Ack) => summary.streamed += 1,
            Ok(CoordMsg::Expired) => {
                // Straggler told to stand down: keep the local journal (a
                // later lease serves from it) and ask for fresh work.
                writer.close()?;
                return Ok(LeaseEnd::Continue);
            }
            Ok(other) => return Err(protocol(format!("unexpected reply to Trial: {other:?}"))),
            Err(_) => {
                writer.close()?;
                return Ok(LeaseEnd::Disconnected);
            }
        }
    }

    if !locally_done {
        // Seal the local shard journal so the next resume replays payloads
        // instead of recomputing them.
        writer.append(&JournalEntry::Checkpoint(ShardCursor { shard, completed: len, next_stream: end }))?;
        writer.append(&JournalEntry::ShardDone { shard })?;
    }
    writer.close()?;

    match roundtrip(stream, &ExecutorMsg::RangeDone { lease }) {
        Ok(CoordMsg::Ack) | Ok(CoordMsg::Expired) => Ok(LeaseEnd::Continue),
        Ok(other) => Err(protocol(format!("unexpected reply to RangeDone: {other:?}"))),
        Err(_) => Ok(LeaseEnd::Disconnected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-dist").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(trials: usize, shards: usize) -> CampaignMeta {
        CampaignMeta {
            kind: "inject".into(),
            benchmark: "victim".into(),
            seed: 42,
            trials,
            shards,
            n_windows: 4,
            version: store::journal::FORMAT_VERSION,
        }
    }

    fn payload_for(global: u64) -> String {
        format!("{{\"trial\":{global},\"fingerprint\":{}}}", global.wrapping_mul(0x9e37_79b9))
    }

    fn scan_payloads(dir: &Path, shards: usize) -> Vec<String> {
        let scan = Journal::scan(dir).unwrap();
        let progress = ShardProgress::replay(shards, &scan.entries).unwrap();
        assert!(progress.all_done(), "journal not fully sealed");
        progress.shards.iter().flat_map(|s| s.payloads.clone()).collect()
    }

    #[test]
    fn single_executor_drains_the_campaign() {
        let root = tmp("single");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let cfg = CoordConfig::new(root.join("coord"), meta(10, 3), "spec-blob");
        let coord = std::thread::spawn(move || run_coordinator(listener, &cfg).unwrap());

        let ecfg = ExecutorConfig::new("ex-a", root.join("ex-a"), ConnectTarget::Addr(addr));
        let seen_spec = std::sync::Arc::new(Mutex::new(String::new()));
        let spec_probe = seen_spec.clone();
        let summary = run_executor(&ecfg, move |m, spec| {
            assert_eq!(m.trials, 10);
            *spec_probe.lock().unwrap() = spec.to_string();
            payload_for
        })
        .unwrap();
        let coord = coord.join().unwrap();

        assert_eq!(summary.computed, 10);
        assert_eq!(summary.streamed, 10);
        assert_eq!(coord.merged, 10);
        assert_eq!(coord.duplicates, 0);
        assert!(!coord.abandoned);
        assert_eq!(*seen_spec.lock().unwrap(), "spec-blob");
        let expected: Vec<String> = (0..10).map(payload_for).collect();
        assert_eq!(scan_payloads(&root.join("coord"), 3), expected);
    }

    #[test]
    fn straggler_lease_expires_and_its_shard_is_redispatched() {
        let root = tmp("straggler");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let mut cfg = CoordConfig::new(root.join("coord"), meta(6, 2), "");
        cfg.lease_timeout = Duration::from_millis(100);
        let coord = std::thread::spawn(move || run_coordinator(listener, &cfg).unwrap());

        // A straggler takes shard 0, streams one trial, then goes silent.
        let mut slow = TcpStream::connect(&addr).unwrap();
        let CoordMsg::Welcome { .. } = roundtrip_raw(&mut slow, &ExecutorMsg::Hello { name: "slow".into(), pid: 1 }) else {
            panic!("expected Welcome")
        };
        let CoordMsg::Lease { lease: slow_lease, shard: 0, .. } = roundtrip_raw(&mut slow, &ExecutorMsg::LeaseRequest) else {
            panic!("expected a lease on shard 0")
        };
        let reply = roundtrip_raw(
            &mut slow,
            &ExecutorMsg::Trial { lease: slow_lease, shard: 0, seq: 0, payload: payload_for(0) },
        );
        assert_eq!(reply, CoordMsg::Ack);
        std::thread::sleep(Duration::from_millis(250)); // let the lease rot

        // A healthy executor now drains everything, including shard 0.
        let ecfg = ExecutorConfig::new("fast", root.join("fast"), ConnectTarget::Addr(addr));
        let summary = run_executor(&ecfg, |_, _| payload_for).unwrap();
        // The straggler's lease is gone; its late frame bounces.
        let reply = roundtrip_raw(
            &mut slow,
            &ExecutorMsg::Trial { lease: slow_lease, shard: 0, seq: 1, payload: payload_for(1) },
        );
        assert_eq!(reply, CoordMsg::Expired);
        drop(slow);

        let coord = coord.join().unwrap();
        assert_eq!(coord.merged, 6);
        // The re-leased shard 0 came with skip=1, so the healthy executor
        // recomputed the straggler's trial but never re-streamed it.
        assert_eq!(coord.duplicates, 0);
        assert_eq!(summary.computed, 6);
        assert_eq!(summary.streamed, 5);
        assert!(coord.leases_expired >= 1);
        assert!(coord.redispatched >= 1);
        let expected: Vec<String> = (0..6).map(payload_for).collect();
        assert_eq!(scan_payloads(&root.join("coord"), 2), expected);
    }

    fn roundtrip_raw(stream: &mut TcpStream, msg: &ExecutorMsg) -> CoordMsg {
        write_frame(stream, msg).unwrap();
        read_frame(stream).unwrap()
    }
}
