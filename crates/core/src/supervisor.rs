//! The Supervisor: runs one victim execution with one fault, classifies the
//! outcome.
//!
//! Mirrors CAROL-FI's workflow (paper §5.1):
//!
//! 1. launch the program (construct the [`FaultTarget`]);
//! 2. let it run at full speed until a pre-sampled interrupt time
//!    (`inject_step`);
//! 3. run the Flip-script (the [`FaultApplicator`]) against the enumerated
//!    thread/frame/variable state;
//! 4. resume at full speed, under a watchdog;
//! 5. on completion compare the output with the golden copy and log
//!    Masked / SDC / DUE.
//!
//! Crashes (panics) and watchdog expiries become DUEs; any output bit
//! mismatch becomes an SDC with a [`DiffSummary`].

use crate::fuel::{is_timeout, watchdog_budget, Fuel};
use crate::models::{FaultApplicator, InjectionDetail};
use crate::output::Output;
use crate::record::{DiffSummary, DueKind};
use crate::target::FaultTarget;
use rand::rngs::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Classified result of a single supervised run.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOutcome {
    /// Output bit-identical to golden.
    Masked,
    /// The applicator reported the fault never reached architectural state.
    HardwareMasked,
    /// Output mismatch.
    Sdc(DiffSummary),
    /// Crash or watchdog expiry.
    Due(DueCause),
}

/// Cause of a DUE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DueCause {
    Panic(String),
    Timeout,
}

impl From<DueCause> for DueKind {
    fn from(c: DueCause) -> DueKind {
        match c {
            DueCause::Panic(message) => DueKind::Crash { message },
            DueCause::Timeout => DueKind::Timeout,
        }
    }
}

/// Supervisor knobs.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Step boundary at which the interrupt fires.
    pub inject_step: usize,
    /// Watchdog limit as a multiple of the nominal step count (CAROL-FI's
    /// user-defined time limit). 4× mirrors the paper's mean overhead
    /// headroom.
    ///
    /// The budget covers the *whole* run: pre-injection steps count against
    /// `max_steps = ceil(total × factor)` just like post-injection ones.
    /// This is deliberate, and pinned by a test
    /// (`late_injection_watchdog_budget_covers_the_whole_run`): CAROL-FI's
    /// real watchdog is a wall-clock limit on the entire victim execution,
    /// so a fault injected at step 0.9·N has ≈(factor − 0.9)·N steps of
    /// headroom, not factor·N — and the fault-free prefix can consume at
    /// most `total` of the budget, leaving at least (factor − 1)·N after any
    /// injection point. Charging the factor against post-injection steps
    /// only would also reclassify some late-window timeout DUEs and break
    /// bit-identity with every journaled campaign.
    pub watchdog_factor: f64,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig { inject_step: 0, watchdog_factor: 4.0 }
    }
}

/// Everything `run_trial` learned about one execution.
#[derive(Debug, Clone)]
pub struct TrialResult {
    pub outcome: TrialOutcome,
    /// What the applicator corrupted, if it reached architectural state.
    pub injection: Option<InjectionDetail>,
    /// Step boundary the fault was applied at.
    pub inject_step: usize,
    /// Steps the run executed before finishing or dying.
    pub executed_steps: usize,
    /// True when the bitwise fast-path compare alone classified the trial
    /// (output proven bit-identical without an elementwise scan). Telemetry
    /// only — never serialized into a [`crate::record::TrialRecord`].
    pub fast_compare: bool,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> DueCause {
    if is_timeout(payload.as_ref()) {
        return DueCause::Timeout;
    }
    let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    DueCause::Panic(msg)
}

/// Runs one faulted execution of `target` and classifies it against `golden`.
///
/// The target is constructed by the caller (so beam trials can pre-configure
/// device state); `run_trial` consumes it. Pooled campaign runners use
/// [`run_trial_mut`] instead, which borrows the target so it can be
/// `reset()` and reused.
pub fn run_trial<T: FaultTarget>(
    mut target: T,
    golden: &Output,
    applicator: &mut dyn FaultApplicator,
    cfg: TrialConfig,
    rng: &mut StdRng,
) -> TrialResult {
    run_trial_mut(&mut target, golden, applicator, cfg, rng)
}

/// [`run_trial`] over a borrowed target.
///
/// The caller keeps ownership, so a pooled target can be `reset()` and
/// reused for the next trial — unless the outcome was a DUE, after which the
/// state may be torn mid-`step` and the pool must rebuild via its factory.
pub fn run_trial_mut<T: FaultTarget>(
    target: &mut T,
    golden: &Output,
    applicator: &mut dyn FaultApplicator,
    cfg: TrialConfig,
    rng: &mut StdRng,
) -> TrialResult {
    let _trial_span = obs::span!("trial");
    let total = target.total_steps().max(1);
    // Whole-run watchdog budget, precomputed as an integer step count
    // (saturating u128 math — see `fuel::watchdog_budget`; the old f64
    // formula lost precision past 2^53 steps).
    let max_steps = watchdog_budget(total, cfg.watchdog_factor);
    let inject_step = cfg.inject_step.min(total.saturating_sub(1));

    let mut injection: Option<InjectionDetail> = None;
    // Both phases' fuel lives outside the unwind boundary so
    // `executed_steps` can be reconstructed after a crash or timeout. The
    // pre-injection phase is fault-free and was never subject to a timeout
    // check, so its fuel is effectively unbounded; its spend is charged
    // against the whole-run budget when the watchdog arms below.
    let mut pre_fuel = Fuel::new(u64::MAX);
    let mut post_budget = 0u64;
    let mut post_fuel = Fuel::new(0);

    let run = catch_unwind(AssertUnwindSafe(|| {
        // Phase 1: full speed until the interrupt — one fuel
        // decrement-and-branch per step, no supervisor bookkeeping. If the
        // program finishes before the interrupt fires, CAROL-FI logs these
        // as faults injected at the very end; we apply the fault to the
        // final state so the output comparison still sees it (matches
        // injecting into a result buffer).
        target.run_until(inject_step, &mut pre_fuel);

        // Phase 2: the Flip-script.
        let mut vars = target.variables();
        {
            let _span = obs::span!("fault_apply");
            injection = applicator.apply(&mut vars, rng);
        }
        drop(vars);
        injection.as_ref()?; // masked in hardware — no need to resume

        // Phase 3: resume at full speed under the watchdog. The remaining
        // budget is the whole-run budget minus the fault-free prefix
        // (`Fuel::burn` zeroes itself before raising the timeout, so a DUE
        // reports exactly `max_steps` executed — identical to the old
        // check-then-step loop).
        if target.steps_executed() >= inject_step {
            let spent_pre = u64::MAX - pre_fuel.remaining();
            post_budget = max_steps.saturating_sub(spent_pre);
            post_fuel = Fuel::new(post_budget);
            target.run_until(usize::MAX, &mut post_fuel);
        }
        Some(target.output())
    }));
    let executed = ((u64::MAX - pre_fuel.remaining()) + (post_budget - post_fuel.remaining())) as usize;

    let mut fast_compare = false;
    let outcome = match run {
        Err(payload) => {
            let cause = panic_message(payload);
            if cause == DueCause::Timeout {
                obs::incr("watchdog.fired", 1);
            }
            TrialOutcome::Due(cause)
        }
        Ok(None) => TrialOutcome::HardwareMasked,
        Ok(Some(output)) => {
            let _span = obs::span!("compare");
            // Fast path: prove bit-identity word-at-a-time before paying for
            // an elementwise scan. `bits_equal` agrees with `mismatches` on
            // equality exactly (both compare bit patterns), so the recorded
            // outcome is unchanged — only the cost of reaching it.
            if output.bits_equal(golden) {
                fast_compare = true;
                obs::incr("compare/fast_path", 1);
                TrialOutcome::Masked
            } else {
                let mismatches = output.mismatches(golden);
                if mismatches.is_empty() {
                    TrialOutcome::Masked
                } else {
                    TrialOutcome::Sdc(DiffSummary::from_mismatches(&mismatches, output.dims()))
                }
            }
        }
    };

    TrialResult { outcome, injection, inject_step, executed_steps: executed, fast_compare }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CarolFiApplicator, FaultModel};
    use crate::rng::fork;
    use crate::target::{StepOutcome, VarClass, VarInfo, Variable};

    /// A toy victim: sums a vector in `n` steps, output is the running sums.
    struct Summer {
        data: Vec<f64>,
        acc: Vec<f64>,
        cursor: u64,
        done: usize,
        crash_on_negative: bool,
    }

    impl Summer {
        fn new(n: usize) -> Self {
            Summer { data: (0..n).map(|i| i as f64).collect(), acc: vec![0.0; n], cursor: 0, done: 0, crash_on_negative: false }
        }
    }

    impl FaultTarget for Summer {
        fn name(&self) -> &'static str {
            "summer"
        }
        fn total_steps(&self) -> usize {
            self.data.len()
        }
        fn steps_executed(&self) -> usize {
            self.done
        }
        fn step(&mut self) -> StepOutcome {
            let i = self.cursor as usize; // corrupted cursor => OOB panic (DUE)
            let prev = if i == 0 { 0.0 } else { self.acc[i - 1] };
            let v = self.data[i];
            if self.crash_on_negative && v < 0.0 {
                panic!("negative input");
            }
            self.acc[i] = prev + v;
            self.cursor += 1;
            self.done += 1;
            if self.done >= self.data.len() {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }
        fn variables(&mut self) -> Vec<Variable<'_>> {
            vec![
                Variable::from_slice(VarInfo::global("data", VarClass::Matrix, file!(), line!()), &mut self.data),
                Variable::from_scalar(
                    VarInfo::local("cursor", VarClass::ControlVariable, "sum_loop", 0, file!(), line!()),
                    &mut self.cursor,
                ),
            ]
        }
        fn output(&self) -> Output {
            Output::F64Grid { dims: [self.acc.len(), 1, 1], data: self.acc.clone() }
        }
    }

    fn golden(n: usize) -> Output {
        let mut s = Summer::new(n);
        while s.step() == StepOutcome::Continue {}
        s.output()
    }

    struct NopApplicator;
    impl FaultApplicator for NopApplicator {
        fn apply(&mut self, _: &mut [Variable<'_>], _: &mut StdRng) -> Option<InjectionDetail> {
            None
        }
    }

    #[test]
    fn hardware_masked_when_applicator_declines() {
        let g = golden(16);
        let mut rng = fork(0, 0);
        let res = run_trial(Summer::new(16), &g, &mut NopApplicator, TrialConfig { inject_step: 4, ..Default::default() }, &mut rng);
        assert_eq!(res.outcome, TrialOutcome::HardwareMasked);
    }

    #[test]
    fn corrupting_unconsumed_data_yields_sdc() {
        let g = golden(16);
        let _quiet = crate::panic_guard::silence_panics();
        // Run many seeds; data corruption after step 2 must yield SDCs (any
        // later element change propagates to all following prefix sums) and
        // cursor corruption may yield DUEs. No trial may corrupt the harness.
        let mut sdc = 0;
        let mut due = 0;
        let mut masked = 0;
        for seed in 0..200 {
            let mut rng = fork(seed, 1);
            let mut app = CarolFiApplicator::new(FaultModel::Random);
            let res = run_trial(Summer::new(16), &g, &mut app, TrialConfig { inject_step: 2, ..Default::default() }, &mut rng);
            match res.outcome {
                TrialOutcome::Sdc(_) => sdc += 1,
                TrialOutcome::Due(_) => due += 1,
                TrialOutcome::Masked => masked += 1,
                TrialOutcome::HardwareMasked => unreachable!(),
            }
        }
        assert!(sdc > 0, "expected some SDCs, got sdc={sdc} due={due} masked={masked}");
        assert!(due > 0, "expected some DUEs from cursor corruption");
    }

    #[test]
    fn masked_when_fault_hits_already_consumed_data() {
        // Inject a Zero fault into data[0] after it was consumed: prefix sums
        // no longer read it, so the output is untouched => Masked.
        struct PinpointZero;
        impl FaultApplicator for PinpointZero {
            fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut StdRng) -> Option<InjectionDetail> {
                let v = &mut vars[0]; // "data"
                for b in &mut v.bytes[0..8] {
                    *b = 0;
                }
                Some(InjectionDetail {
                    var_name: v.info.name.into(),
                    var_class: v.info.class,
                    frame: v.info.frame.label().into(),
                    thread: None,
                    decl: String::new(),
                    elem_index: 0,
                    bits: vec![],
                    mechanism: "zero".into(),
                })
            }
        }
        let g = golden(16);
        let mut rng = fork(3, 0);
        let res = run_trial(Summer::new(16), &g, &mut PinpointZero, TrialConfig { inject_step: 8, ..Default::default() }, &mut rng);
        // data[0] = 0.0 already, so zeroing it is bit-identical => Masked,
        // and the bitwise fast path alone proves it.
        assert_eq!(res.outcome, TrialOutcome::Masked);
        assert!(res.fast_compare, "masked trials classify via the fast path");
    }

    #[test]
    fn oob_cursor_becomes_crash_due() {
        struct HugeCursor;
        impl FaultApplicator for HugeCursor {
            fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut StdRng) -> Option<InjectionDetail> {
                let v = &mut vars[1]; // "cursor"
                v.bytes.copy_from_slice(&u64::MAX.to_le_bytes());
                Some(InjectionDetail {
                    var_name: v.info.name.into(),
                    var_class: v.info.class,
                    frame: v.info.frame.label().into(),
                    thread: v.info.thread,
                    decl: String::new(),
                    elem_index: 0,
                    bits: vec![],
                    mechanism: "random".into(),
                })
            }
        }
        let _quiet = crate::panic_guard::silence_panics();
        let g = golden(16);
        let mut rng = fork(4, 0);
        let res = run_trial(Summer::new(16), &g, &mut HugeCursor, TrialConfig { inject_step: 4, ..Default::default() }, &mut rng);
        match res.outcome {
            TrialOutcome::Due(DueCause::Panic(msg)) => assert!(msg.contains("index out of bounds"), "{msg}"),
            other => panic!("expected crash DUE, got {other:?}"),
        }
    }

    #[test]
    fn stuck_cursor_becomes_timeout_due() {
        // A cursor pointing back to 0 re-executes forever (done stops
        // matching data.len() only via cursor; here `done` still advances —
        // so emulate a stuck step by resetting cursor below inject point and
        // relying on the watchdog max_steps).
        struct StuckCursor;
        impl FaultApplicator for StuckCursor {
            fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut StdRng) -> Option<InjectionDetail> {
                let v = &mut vars[1];
                v.bytes.copy_from_slice(&0u64.to_le_bytes());
                Some(InjectionDetail {
                    var_name: v.info.name.into(),
                    var_class: v.info.class,
                    frame: v.info.frame.label().into(),
                    thread: v.info.thread,
                    decl: String::new(),
                    elem_index: 0,
                    bits: vec![],
                    mechanism: "zero".into(),
                })
            }
        }
        // Summer with `done` tied to cursor so resetting it loops forever.
        struct LoopySummer(Summer);
        impl FaultTarget for LoopySummer {
            fn name(&self) -> &'static str {
                "loopy"
            }
            fn total_steps(&self) -> usize {
                self.0.total_steps()
            }
            fn steps_executed(&self) -> usize {
                self.0.done
            }
            fn step(&mut self) -> StepOutcome {
                let i = self.0.cursor as usize;
                let prev = if i == 0 { 0.0 } else { self.0.acc[i - 1] };
                self.0.acc[i] = prev + self.0.data[i];
                self.0.cursor += 1;
                self.0.done += 1;
                if self.0.cursor as usize >= self.0.data.len() {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            fn variables(&mut self) -> Vec<Variable<'_>> {
                self.0.variables()
            }
            fn output(&self) -> Output {
                self.0.output()
            }
        }
        let _quiet = crate::panic_guard::silence_panics();
        let g = golden(16);
        let mut rng = fork(5, 0);
        let res = run_trial(
            LoopySummer(Summer::new(16)),
            &g,
            &mut StuckCursor,
            TrialConfig { inject_step: 8, watchdog_factor: 4.0 },
            &mut rng,
        );
        // Resetting cursor to 0 just recomputes the prefix (eventually Done)
        // — executed steps grow but finish under 4x. Output is recomputed
        // identically => Masked is acceptable; what we assert is that the
        // watchdog bound was respected and no hang occurred.
        assert!(res.executed_steps <= 4 * 16 + 1);
    }

    #[test]
    fn late_injection_watchdog_budget_covers_the_whole_run() {
        // Pins the watchdog accounting documented on
        // `TrialConfig::watchdog_factor`: pre-injection steps are charged
        // against `max_steps`, mirroring CAROL-FI's whole-run wall-clock
        // limit. Changing this would reclassify late-window timeout DUEs and
        // break bit-identity with journaled campaigns.
        struct Endless {
            limit: u64,
            done: usize,
        }
        impl FaultTarget for Endless {
            fn name(&self) -> &'static str {
                "endless"
            }
            fn total_steps(&self) -> usize {
                16
            }
            fn steps_executed(&self) -> usize {
                self.done
            }
            fn step(&mut self) -> StepOutcome {
                self.done += 1;
                if (self.done as u64) >= self.limit {
                    StepOutcome::Done
                } else {
                    StepOutcome::Continue
                }
            }
            fn variables(&mut self) -> Vec<Variable<'_>> {
                vec![Variable::from_scalar(
                    VarInfo::local("limit", VarClass::ControlVariable, "loop", 0, file!(), line!()),
                    &mut self.limit,
                )]
            }
            fn output(&self) -> Output {
                Output::F64Grid { dims: [1, 1, 1], data: vec![0.0] }
            }
        }
        struct MaxLimit;
        impl FaultApplicator for MaxLimit {
            fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut StdRng) -> Option<InjectionDetail> {
                let v = &mut vars[0];
                v.bytes.copy_from_slice(&u64::MAX.to_le_bytes());
                Some(InjectionDetail {
                    var_name: v.info.name.into(),
                    var_class: v.info.class,
                    frame: v.info.frame.label().into(),
                    thread: v.info.thread,
                    decl: String::new(),
                    elem_index: 0,
                    bits: vec![],
                    mechanism: "test".into(),
                })
            }
        }
        let _quiet = crate::panic_guard::silence_panics();
        let g = Output::F64Grid { dims: [1, 1, 1], data: vec![0.0] };
        let mut rng = fork(9, 0);
        let res = run_trial(
            Endless { limit: 16, done: 0 },
            &g,
            &mut MaxLimit,
            TrialConfig { inject_step: 14, watchdog_factor: 4.0 },
            &mut rng,
        );
        assert_eq!(res.outcome, TrialOutcome::Due(DueCause::Timeout));
        // Budget is ceil(16 × 4.0) = 64 steps for the whole run: the 14
        // fault-free steps before the interrupt leave 50 of headroom after
        // it, not another full 64.
        assert_eq!(res.executed_steps, 64);
    }

    #[test]
    fn internal_crash_flag_becomes_due() {
        let _quiet = crate::panic_guard::silence_panics();
        let g = golden(16);
        struct MakeNegative;
        impl FaultApplicator for MakeNegative {
            fn apply(&mut self, vars: &mut [Variable<'_>], _: &mut StdRng) -> Option<InjectionDetail> {
                // Set data[15] = -1.0.
                let v = &mut vars[0];
                v.bytes[15 * 8..16 * 8].copy_from_slice(&(-1.0f64).to_le_bytes());
                Some(InjectionDetail {
                    var_name: v.info.name.into(),
                    var_class: v.info.class,
                    frame: v.info.frame.label().into(),
                    thread: None,
                    decl: String::new(),
                    elem_index: 15,
                    bits: vec![],
                    mechanism: "test".into(),
                })
            }
        }
        let mut s = Summer::new(16);
        s.crash_on_negative = true;
        let mut rng = fork(6, 0);
        let res = run_trial(s, &g, &mut MakeNegative, TrialConfig { inject_step: 4, ..Default::default() }, &mut rng);
        assert!(matches!(res.outcome, TrialOutcome::Due(DueCause::Panic(_))));
    }
}
