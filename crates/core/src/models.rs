//! The four CAROL-FI fault models and the generic fault-applicator interface.
//!
//! Paper §5.2: injections at source level must account for all the ways a
//! transistor-level transient propagates up to a memory location, so besides
//! the classic *Single* bitflip the paper uses *Double* (two bits within the
//! same byte — SECDED-undetectable multi-bit upsets cluster physically),
//! *Random* (every bit replaced by a random bit) and *Zero* (all bits
//! cleared). Models operate on one machine word (one array element or one
//! scalar), matching GDB writing a single object member.

use crate::select::VariableSelector;
use crate::target::Variable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The fault model applied to the selected word (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultModel {
    /// Flip a single random bit.
    Single,
    /// Flip two distinct random bits within the same byte.
    Double,
    /// Overwrite every bit with a random bit.
    Random,
    /// Set every bit to zero.
    Zero,
}

impl FaultModel {
    /// All four models, in the paper's presentation order.
    pub const ALL: [FaultModel; 4] = [FaultModel::Single, FaultModel::Double, FaultModel::Random, FaultModel::Zero];

    pub fn label(self) -> &'static str {
        match self {
            FaultModel::Single => "single",
            FaultModel::Double => "double",
            FaultModel::Random => "random",
            FaultModel::Zero => "zero",
        }
    }

    /// Applies the model to one word, returning the flipped bit offsets
    /// (bit `i` = bit `i % 8` of byte `i / 8`, little-endian within the word).
    ///
    /// *Random* and *Zero* report every bit that actually changed. The word
    /// is guaranteed to differ from its original value afterwards except for
    /// *Zero* on an already-zero word and *Random* drawing the identical
    /// pattern — faithful to the originals, which also allow "unlucky"
    /// injections that change nothing.
    pub fn apply<R: Rng>(self, word: &mut [u8], rng: &mut R) -> Vec<u32> {
        assert!(!word.is_empty(), "fault model applied to empty word");
        let nbits = (word.len() * 8) as u32;
        match self {
            FaultModel::Single => {
                let bit = rng.gen_range(0..nbits);
                word[(bit / 8) as usize] ^= 1 << (bit % 8);
                vec![bit]
            }
            FaultModel::Double => {
                // Two distinct bits inside one randomly chosen byte: the
                // paper restricts the distance between the flipped bits to
                // model physically clustered multi-cell upsets.
                let byte = rng.gen_range(0..word.len()) as u32;
                let b1 = rng.gen_range(0..8u32);
                let mut b2 = rng.gen_range(0..7u32);
                if b2 >= b1 {
                    b2 += 1;
                }
                word[byte as usize] ^= (1 << b1) | (1 << b2);
                let mut bits = vec![byte * 8 + b1, byte * 8 + b2];
                bits.sort_unstable();
                bits
            }
            FaultModel::Random => {
                let mut flipped = Vec::new();
                for (i, b) in word.iter_mut().enumerate() {
                    let new: u8 = rng.gen();
                    let diff = *b ^ new;
                    *b = new;
                    for bit in 0..8 {
                        if diff & (1 << bit) != 0 {
                            flipped.push((i * 8 + bit) as u32);
                        }
                    }
                }
                flipped
            }
            FaultModel::Zero => {
                let mut flipped = Vec::new();
                for (i, b) in word.iter_mut().enumerate() {
                    let diff = *b;
                    *b = 0;
                    for bit in 0..8 {
                        if diff & (1 << bit) != 0 {
                            flipped.push((i * 8 + bit) as u32);
                        }
                    }
                }
                flipped
            }
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What an applicator did, for the trial log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectionDetail {
    /// Selected variable name.
    pub var_name: String,
    /// Selected variable class label.
    pub var_class: crate::target::VarClass,
    /// Frame label.
    pub frame: String,
    /// Owning logical thread, if any.
    pub thread: Option<u16>,
    /// Declaration site, `file:line`.
    pub decl: String,
    /// Element index within the variable the fault landed on.
    pub elem_index: usize,
    /// Flipped bit offsets within the element.
    pub bits: Vec<u32>,
    /// Human-readable description of the fault mechanism
    /// (fault-model label, or the beam simulator's architectural effect).
    pub mechanism: String,
}

/// Anything that can corrupt a paused target's state.
///
/// `carolfi` provides [`CarolFiApplicator`] (source-level fault models); the
/// beam simulator provides applicators that model device-level strike
/// propagation. Returning `None` means the fault vanished before reaching
/// architectural state (e.g. an ECC-corrected strike) — the supervisor then
/// records a masked-at-hardware outcome.
pub trait FaultApplicator {
    fn apply(&mut self, vars: &mut [Variable<'_>], rng: &mut rand::rngs::StdRng) -> Option<InjectionDetail>;
}

/// The CAROL-FI Flip-script: select thread → frame → variable → element, then
/// apply the configured fault model.
#[derive(Debug, Clone)]
pub struct CarolFiApplicator {
    pub model: FaultModel,
    pub selector: VariableSelector,
}

impl CarolFiApplicator {
    pub fn new(model: FaultModel) -> Self {
        CarolFiApplicator { model, selector: VariableSelector::default() }
    }
}

impl FaultApplicator for CarolFiApplicator {
    fn apply(&mut self, vars: &mut [Variable<'_>], rng: &mut rand::rngs::StdRng) -> Option<InjectionDetail> {
        let pick = self.selector.select(vars, rng)?;
        let var = &mut vars[pick.var_index];
        let info = var.info;
        let elem_size = var.elem_size;
        let start = pick.elem_index * elem_size;
        let word = &mut var.bytes[start..start + elem_size];
        let bits = self.model.apply(word, rng);
        Some(InjectionDetail {
            var_name: info.name.to_string(),
            var_class: info.class,
            frame: info.frame.label().to_string(),
            thread: info.thread,
            decl: format!("{}:{}", info.file, info.line),
            elem_index: pick.elem_index,
            bits,
            mechanism: self.model.label().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::fork;

    #[test]
    fn single_flips_exactly_one_bit() {
        let mut rng = fork(1, 0);
        for _ in 0..200 {
            let mut word = [0xa5u8; 8];
            let bits = FaultModel::Single.apply(&mut word, &mut rng);
            assert_eq!(bits.len(), 1);
            let diff: u32 = word.iter().zip([0xa5u8; 8]).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(diff, 1);
        }
    }

    #[test]
    fn double_flips_two_bits_in_same_byte() {
        let mut rng = fork(2, 0);
        for _ in 0..200 {
            let orig = [0x3cu8; 8];
            let mut word = orig;
            let bits = FaultModel::Double.apply(&mut word, &mut rng);
            assert_eq!(bits.len(), 2);
            assert_ne!(bits[0], bits[1]);
            assert_eq!(bits[0] / 8, bits[1] / 8, "double model must stay within one byte");
            let changed: Vec<usize> = word.iter().zip(orig).enumerate().filter(|(_, (a, b))| **a != *b).map(|(i, _)| i).collect();
            assert_eq!(changed.len(), 1);
        }
    }

    #[test]
    fn zero_clears_the_word() {
        let mut rng = fork(3, 0);
        let mut word = [0xffu8; 4];
        let bits = FaultModel::Zero.apply(&mut word, &mut rng);
        assert_eq!(word, [0u8; 4]);
        assert_eq!(bits.len(), 32);
    }

    #[test]
    fn zero_on_zero_word_changes_nothing() {
        let mut rng = fork(4, 0);
        let mut word = [0u8; 4];
        let bits = FaultModel::Zero.apply(&mut word, &mut rng);
        assert!(bits.is_empty());
        assert_eq!(word, [0u8; 4]);
    }

    #[test]
    fn random_reports_exactly_the_changed_bits() {
        let mut rng = fork(5, 0);
        let orig = [0x12u8, 0x34, 0x56, 0x78];
        let mut word = orig;
        let bits = FaultModel::Random.apply(&mut word, &mut rng);
        let expected: u32 = word.iter().zip(orig).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(bits.len() as u32, expected);
    }

    #[test]
    fn display_labels() {
        assert_eq!(FaultModel::Single.to_string(), "single");
        assert_eq!(FaultModel::ALL.len(), 4);
    }
}
