//! Panic-output suppression for fault-injection campaigns.
//!
//! A campaign deliberately provokes tens of thousands of panics (every crash
//! DUE is one); letting each print a backtrace would swamp stderr and
//! serialise on the lock around it. [`silence_panics`] installs a no-op hook
//! for the duration of a campaign, reference-counted so nested campaigns and
//! parallel tests compose.

use parking_lot::Mutex;

static DEPTH: Mutex<u32> = Mutex::new(0);

/// RAII guard that keeps the process-wide panic hook silenced while alive.
pub struct PanicSilencer {
    _priv: (),
}

/// Silences panic messages until the returned guard is dropped.
///
/// Re-entrant: the hook is restored to the default only when the last guard
/// drops. (The previous hook is not preserved because `take_hook` from
/// multiple threads would race; campaigns run under the default hook.)
pub fn silence_panics() -> PanicSilencer {
    let mut depth = DEPTH.lock();
    if *depth == 0 {
        std::panic::set_hook(Box::new(|_| {}));
    }
    *depth += 1;
    PanicSilencer { _priv: () }
}

impl Drop for PanicSilencer {
    fn drop(&mut self) {
        let mut depth = DEPTH.lock();
        *depth -= 1;
        if *depth == 0 {
            // `take_hook` itself panics when called from a panicking thread
            // (turning a plain test failure into a process abort), so when
            // the guard is dropped during unwinding we leave the silent hook
            // installed; the next `silence_panics` call owns it again.
            if !std::thread::panicking() {
                let _ = std::panic::take_hook();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    #[test]
    fn panics_are_still_catchable_while_silenced() {
        let _guard = silence_panics();
        let res = catch_unwind(|| panic!("boom"));
        assert!(res.is_err());
    }

    #[test]
    fn nesting_is_reference_counted() {
        let a = silence_panics();
        {
            let _b = silence_panics();
            assert_eq!(*DEPTH.lock(), 2);
        }
        assert_eq!(*DEPTH.lock(), 1);
        drop(a);
        assert_eq!(*DEPTH.lock(), 0);
    }
}
