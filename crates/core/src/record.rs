//! Serialisable trial records — the equivalent of the paper's public log
//! repository (`UFRGS-CAROL/sc17-log-data`).
//!
//! Each injection (or simulated beam strike) produces one [`TrialRecord`]
//! carrying what CAROL-FI logs: the source position of the corrupted
//! variable, its frame and thread, the fault type, the time window, and the
//! classified outcome. SDC outcomes carry a [`DiffSummary`] — compact
//! statistics of the corrupted-output geometry plus a bounded sample of the
//! corrupted elements — from which the spatial-pattern classifier and the
//! tolerance sweep run without retaining whole corrupted outputs in memory.

use crate::models::{FaultModel, InjectionDetail};
use crate::output::Mismatch;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// Serde codec for f64 fields that may be non-finite: JSON has no
/// Infinity/NaN, so they are encoded as the strings "inf"/"-inf"/"nan".
pub mod finite_or_tag {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_f64(*v)
        } else if v.is_nan() {
            s.serialize_str("nan")
        } else if *v > 0.0 {
            s.serialize_str("inf")
        } else {
            s.serialize_str("-inf")
        }
    }

    #[derive(Deserialize)]
    #[serde(untagged)]
    enum Raw {
        Num(f64),
        Tag(String),
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        match Raw::deserialize(d)? {
            Raw::Num(v) => Ok(v),
            Raw::Tag(t) => match t.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                other => Err(serde::de::Error::custom(format!("bad float tag {other:?}"))),
            },
        }
    }
}

/// Maximum corrupted elements retained verbatim per record.
pub const MISMATCH_SAMPLE_CAP: usize = 64;

/// Compact geometry/severity statistics of a corrupted output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffSummary {
    /// Output grid dimensions.
    pub dims: [usize; 3],
    /// Total number of corrupted elements.
    pub wrong: usize,
    /// Number of distinct coordinates touched along each dimension.
    pub distinct: [usize; 3],
    /// Bounding box (inclusive) of the corrupted elements.
    pub bbox_min: [usize; 3],
    pub bbox_max: [usize; 3],
    /// Largest per-element relative error (∞ for NaN/Inf corruption).
    #[serde(with = "finite_or_tag")]
    pub max_rel_err: f64,
    /// Mean of the finite per-element relative errors.
    #[serde(with = "finite_or_tag")]
    pub mean_rel_err: f64,
    /// Number of corrupted elements with non-finite values.
    pub nonfinite: usize,
    /// Up to [`MISMATCH_SAMPLE_CAP`] example mismatches.
    pub sample: Vec<Mismatch>,
}

impl DiffSummary {
    /// Summarises a (non-empty) mismatch list.
    pub fn from_mismatches(mismatches: &[Mismatch], dims: [usize; 3]) -> Self {
        assert!(!mismatches.is_empty(), "DiffSummary requires at least one mismatch");
        let mut bbox_min = [usize::MAX; 3];
        let mut bbox_max = [0usize; 3];
        let mut seen: [std::collections::HashSet<usize>; 3] = Default::default();
        let mut max_rel_err = 0.0f64;
        let mut finite_sum = 0.0f64;
        let mut finite_n = 0usize;
        let mut nonfinite = 0usize;
        for m in mismatches {
            for d in 0..3 {
                bbox_min[d] = bbox_min[d].min(m.coord[d]);
                bbox_max[d] = bbox_max[d].max(m.coord[d]);
                seen[d].insert(m.coord[d]);
            }
            max_rel_err = max_rel_err.max(m.rel_err);
            if m.rel_err.is_finite() {
                finite_sum += m.rel_err;
                finite_n += 1;
            } else {
                nonfinite += 1;
            }
        }
        DiffSummary {
            dims,
            wrong: mismatches.len(),
            distinct: [seen[0].len(), seen[1].len(), seen[2].len()],
            bbox_min,
            bbox_max,
            max_rel_err,
            mean_rel_err: if finite_n > 0 { finite_sum / finite_n as f64 } else { f64::INFINITY },
            nonfinite,
            sample: mismatches.iter().take(MISMATCH_SAMPLE_CAP).copied().collect(),
        }
    }

    /// Bounding-box volume restricted to dimensions the corruption spans.
    pub fn bbox_volume(&self) -> usize {
        (0..3).map(|d| self.bbox_max[d] - self.bbox_min[d] + 1).product()
    }

    /// Fraction of the bounding box actually corrupted (cluster density).
    pub fn density(&self) -> f64 {
        self.wrong as f64 / self.bbox_volume() as f64
    }
}

/// Why a DUE was declared.
///
/// Serde is written by hand (matching the derive's externally tagged shape)
/// so journals can skew across harness versions in both directions:
///
/// * **backward**: pre-PR-5 journals carry only `Crash`/`Timeout`, which
///   this reader still parses bit-identically;
/// * **forward**: a tag this build does not know (journal written by a
///   newer harness) decodes as [`DueKind::Unknown`] instead of aborting the
///   whole parse — the trial stays a DUE, only its sub-classification is
///   degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DueKind {
    /// The program crashed (panic: out-of-bounds index, arithmetic guard…).
    Crash { message: String },
    /// The watchdog killed a runaway execution.
    Timeout,
    /// The isolated worker process died on a signal mid-trial (abort,
    /// segfault, OOM kill) — only produced by the `--isolate` warden.
    Signal { signo: i32 },
    /// The warden's wall-clock watchdog SIGKILLed a hung worker.
    Killed,
    /// A DUE kind journaled by a newer harness than this reader; `raw`
    /// preserves the tag so re-serialization stays stable.
    Unknown { raw: String },
}

impl Serialize for DueKind {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use serde::__private::Content;
        let content = match self {
            DueKind::Crash { message } => Content::Map(vec![(
                "Crash".to_string(),
                Content::Map(vec![("message".to_string(), Content::Str(message.clone()))]),
            )]),
            DueKind::Timeout => Content::Str("Timeout".to_string()),
            DueKind::Signal { signo } => Content::Map(vec![(
                "Signal".to_string(),
                Content::Map(vec![("signo".to_string(), Content::I64(*signo as i64))]),
            )]),
            DueKind::Killed => Content::Str("Killed".to_string()),
            // Degraded round-trip: an Unknown keeps its original tag (any
            // payload it once carried is already lost at parse time).
            DueKind::Unknown { raw } => Content::Str(raw.clone()),
        };
        s.serialize_content(content)
    }
}

impl serde::__private::FromContent for DueKind {
    fn from_content(c: &serde::__private::Content) -> Result<Self, serde::__private::ContentError> {
        use serde::__private::{as_map, enum_parts, field, variant_inner};
        let (tag, inner) = enum_parts(c)?;
        match tag {
            "Crash" => {
                let m = as_map(variant_inner(inner, "Crash")?)?;
                Ok(DueKind::Crash { message: field(m, "message")? })
            }
            "Timeout" => Ok(DueKind::Timeout),
            "Signal" => {
                let m = as_map(variant_inner(inner, "Signal")?)?;
                Ok(DueKind::Signal { signo: field(m, "signo")? })
            }
            "Killed" => Ok(DueKind::Killed),
            other => Ok(DueKind::Unknown { raw: other.to_string() }),
        }
    }
}

impl<'de> Deserialize<'de> for DueKind {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let c = d.content()?;
        <DueKind as serde::__private::FromContent>::from_content(&c).map_err(<D::Error as serde::de::Error>::custom)
    }
}

/// Classified outcome of one trial (paper §2.1 taxonomy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OutcomeRecord {
    /// Output bit-identical to the golden copy.
    Masked,
    /// The fault never reached architectural state (beam simulator only:
    /// e.g. ECC-corrected strike, strike on idle resource).
    HardwareMasked,
    /// Silent data corruption.
    Sdc(DiffSummary),
    /// Detected unrecoverable error.
    Due(DueKind),
}

impl OutcomeRecord {
    pub fn is_sdc(&self) -> bool {
        matches!(self, OutcomeRecord::Sdc(_))
    }
    pub fn is_due(&self) -> bool {
        matches!(self, OutcomeRecord::Due(_))
    }
    pub fn is_masked(&self) -> bool {
        matches!(self, OutcomeRecord::Masked | OutcomeRecord::HardwareMasked)
    }

    pub fn label(&self) -> &'static str {
        match self {
            OutcomeRecord::Masked => "masked",
            OutcomeRecord::HardwareMasked => "hw-masked",
            OutcomeRecord::Sdc(_) => "sdc",
            OutcomeRecord::Due(_) => "due",
        }
    }
}

/// Variable identity, owned (record form of [`crate::target::VarInfo`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDesc {
    pub name: String,
    pub class: crate::target::VarClass,
    pub frame: String,
    pub thread: Option<u16>,
    pub decl: String,
}

/// One fault-injection (or beam-strike) trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Trial index within its campaign (also the RNG stream id).
    pub trial: usize,
    /// Benchmark name.
    pub benchmark: String,
    /// Source-level fault model, when the trial used one (injection
    /// campaigns); `None` for beam-strike trials.
    pub model: Option<FaultModel>,
    /// Free-form mechanism label (fault-model name or architectural effect).
    pub mechanism: String,
    /// Step at which the fault was applied.
    pub inject_step: usize,
    /// Nominal steps of a fault-free run.
    pub total_steps: usize,
    /// Time window index in `0..n_windows` (paper Fig. 6).
    pub window: usize,
    /// Number of windows the benchmark's timeline is divided into.
    pub n_windows: usize,
    /// What was corrupted (absent when the fault was masked in hardware).
    pub injection: Option<InjectionDetail>,
    /// Classified outcome.
    pub outcome: OutcomeRecord,
    /// Steps the (possibly crashed) run actually executed.
    pub executed_steps: usize,
}

impl TrialRecord {
    /// The injected variable as an owned descriptor, if any.
    pub fn var_desc(&self) -> Option<VarDesc> {
        self.injection.as_ref().map(|d| VarDesc {
            name: d.var_name.clone(),
            class: d.var_class,
            frame: d.frame.clone(),
            thread: d.thread,
            decl: d.decl.clone(),
        })
    }
}

/// Writes records as JSON lines (the public-repository log format).
pub fn write_log<W: Write>(mut w: W, records: &[TrialRecord]) -> std::io::Result<()> {
    for r in records {
        let line = serde_json::to_string(r).map_err(std::io::Error::other)?;
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads a JSON-lines log back.
pub fn read_log<R: BufRead>(r: R) -> std::io::Result<Vec<TrialRecord>> {
    let mut out = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(std::io::Error::other)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm(coord: [usize; 3], rel: f64) -> Mismatch {
        Mismatch { coord, expected: 1.0, got: 1.0 + rel, rel_err: rel }
    }

    #[test]
    fn summary_of_single_mismatch() {
        let s = DiffSummary::from_mismatches(&[mm([3, 4, 0], 0.5)], [8, 8, 1]);
        assert_eq!(s.wrong, 1);
        assert_eq!(s.distinct, [1, 1, 1]);
        assert_eq!(s.bbox_min, [3, 4, 0]);
        assert_eq!(s.bbox_max, [3, 4, 0]);
        assert_eq!(s.bbox_volume(), 1);
        assert_eq!(s.density(), 1.0);
        assert_eq!(s.max_rel_err, 0.5);
    }

    #[test]
    fn summary_tracks_spans_and_density() {
        // A full 2x3 block.
        let ms: Vec<Mismatch> = (0..2).flat_map(|i| (0..3).map(move |j| mm([i, j, 0], 0.1))).collect();
        let s = DiffSummary::from_mismatches(&ms, [8, 8, 1]);
        assert_eq!(s.wrong, 6);
        assert_eq!(s.distinct, [2, 3, 1]);
        assert_eq!(s.bbox_volume(), 6);
        assert!((s.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonfinite_mismatches_are_counted() {
        let ms = [mm([0, 0, 0], f64::INFINITY), mm([0, 1, 0], 0.2)];
        let s = DiffSummary::from_mismatches(&ms, [4, 4, 1]);
        assert_eq!(s.nonfinite, 1);
        assert!(s.max_rel_err.is_infinite());
        assert!((s.mean_rel_err - 0.2).abs() < 1e-12);
    }

    #[test]
    fn sample_is_capped() {
        let ms: Vec<Mismatch> = (0..1000).map(|i| mm([i, 0, 0], 0.1)).collect();
        let s = DiffSummary::from_mismatches(&ms, [1000, 1, 1]);
        assert_eq!(s.sample.len(), MISMATCH_SAMPLE_CAP);
        assert_eq!(s.wrong, 1000);
    }

    #[test]
    fn log_roundtrip() {
        let rec = TrialRecord {
            trial: 3,
            benchmark: "dgemm".into(),
            model: Some(FaultModel::Double),
            mechanism: "double".into(),
            inject_step: 10,
            total_steps: 40,
            window: 1,
            n_windows: 4,
            injection: Some(InjectionDetail {
                var_name: "matrix_a".into(),
                var_class: crate::target::VarClass::Matrix,
                frame: "<global>".into(),
                thread: None,
                decl: "dgemm.rs:42".into(),
                elem_index: 17,
                bits: vec![3, 5],
                mechanism: "double".into(),
            }),
            outcome: OutcomeRecord::Due(DueKind::Timeout),
            executed_steps: 160,
        };
        let mut buf = Vec::new();
        write_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let back = read_log(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].trial, 3);
        assert_eq!(back[0].outcome, OutcomeRecord::Due(DueKind::Timeout));
        assert_eq!(back[0].var_desc().unwrap().name, "matrix_a");
    }

    #[test]
    fn outcome_predicates() {
        assert!(OutcomeRecord::Masked.is_masked());
        assert!(OutcomeRecord::HardwareMasked.is_masked());
        assert!(OutcomeRecord::Due(DueKind::Timeout).is_due());
        let s = DiffSummary::from_mismatches(&[mm([0, 0, 0], 1.0)], [1, 1, 1]);
        assert!(OutcomeRecord::Sdc(s).is_sdc());
    }

    /// Wrapper exercising `finite_or_tag` in isolation.
    #[derive(Debug, Serialize, Deserialize)]
    struct Tagged {
        #[serde(with = "finite_or_tag")]
        v: f64,
    }

    #[test]
    fn finite_or_tag_roundtrips_nonfinite_values() {
        for (v, tag) in [(f64::INFINITY, "inf"), (f64::NEG_INFINITY, "-inf"), (f64::NAN, "nan")] {
            let json = serde_json::to_string(&Tagged { v }).unwrap();
            assert!(json.contains(&format!("\"{tag}\"")), "{v} should serialize as the tag {tag:?}, got {json}");
            let back: Tagged = serde_json::from_str(&json).unwrap();
            assert_eq!(back.v.to_bits(), v.to_bits(), "round-trip of {tag} must be bit-exact");
        }
    }

    #[test]
    fn finite_or_tag_roundtrips_finite_values() {
        for v in [0.0, -0.0, 1.5, -273.15, f64::MIN_POSITIVE, f64::MAX] {
            let json = serde_json::to_string(&Tagged { v }).unwrap();
            let back: Tagged = serde_json::from_str(&json).unwrap();
            assert_eq!(back.v.to_bits(), v.to_bits(), "round-trip of {v} must be bit-exact");
        }
    }

    #[test]
    fn finite_or_tag_rejects_unknown_tag_strings() {
        let err = serde_json::from_str::<Tagged>("{\"v\":\"not-a-float\"}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad float tag"), "error should name the problem, got {msg:?}");
        assert!(msg.contains("not-a-float"), "error should echo the bad tag, got {msg:?}");
    }

    // -- DueKind version-skew suite -------------------------------------
    //
    // Journals outlive binaries in both directions: a harness from before
    // the warden must read post-warden journals (degrading unknown DUE
    // kinds) and the current harness must read pre-warden journals
    // bit-identically.

    #[test]
    fn due_kind_all_variants_roundtrip() {
        for kind in [
            DueKind::Crash { message: "index out of bounds".into() },
            DueKind::Timeout,
            DueKind::Signal { signo: 6 },
            DueKind::Signal { signo: 11 },
            DueKind::Killed,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            let back: DueKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind, "round-trip through {json}");
        }
    }

    #[test]
    fn due_kind_parses_pre_warden_journal_forms() {
        // Byte-for-byte the shapes PR-2 journals contain.
        let crash: DueKind = serde_json::from_str("{\"Crash\":{\"message\":\"boom\"}}").unwrap();
        assert_eq!(crash, DueKind::Crash { message: "boom".into() });
        let timeout: DueKind = serde_json::from_str("\"Timeout\"").unwrap();
        assert_eq!(timeout, DueKind::Timeout);
    }

    #[test]
    fn due_kind_serialized_forms_are_stable() {
        // Old readers key on these exact shapes; pin them.
        assert_eq!(serde_json::to_string(&DueKind::Timeout).unwrap(), "\"Timeout\"");
        assert_eq!(serde_json::to_string(&DueKind::Killed).unwrap(), "\"Killed\"");
        assert_eq!(
            serde_json::to_string(&DueKind::Signal { signo: 9 }).unwrap(),
            "{\"Signal\":{\"signo\":9}}"
        );
        assert_eq!(
            serde_json::to_string(&DueKind::Crash { message: "m".into() }).unwrap(),
            "{\"Crash\":{\"message\":\"m\"}}"
        );
    }

    #[test]
    fn due_kind_unknown_tag_degrades_instead_of_aborting() {
        // A unit-shaped tag from a future harness version.
        let unit: DueKind = serde_json::from_str("\"Evaporated\"").unwrap();
        assert_eq!(unit, DueKind::Unknown { raw: "Evaporated".into() });
        // A payload-carrying tag: the payload is dropped, the tag kept.
        let payload: DueKind = serde_json::from_str("{\"Hyperspace\":{\"depth\":3}}").unwrap();
        assert_eq!(payload, DueKind::Unknown { raw: "Hyperspace".into() });
        // Degraded values re-serialize to their tag and re-parse stably, so
        // a rewrite of an old journal does not oscillate.
        let json = serde_json::to_string(&payload).unwrap();
        assert_eq!(json, "\"Hyperspace\"");
        let again: DueKind = serde_json::from_str(&json).unwrap();
        assert_eq!(again, payload);
    }

    #[test]
    fn record_with_future_due_kind_still_parses_as_a_due() {
        // An entire TrialRecord written by a newer harness: the outcome
        // stays a DUE (counts, fractions and figure aggregation all keep
        // working), only the kind is degraded.
        let json = "{\"trial\":0,\"benchmark\":\"nw\",\"model\":null,\"mechanism\":\"single\",\
                    \"inject_step\":1,\"total_steps\":4,\"window\":0,\"n_windows\":4,\
                    \"injection\":null,\"outcome\":{\"Due\":\"Vaporized\"},\"executed_steps\":0}";
        let rec: TrialRecord = serde_json::from_str(json).unwrap();
        assert!(rec.outcome.is_due());
        assert_eq!(rec.outcome, OutcomeRecord::Due(DueKind::Unknown { raw: "Vaporized".into() }));
    }

    #[test]
    fn record_with_signal_due_roundtrips_through_the_log_format() {
        let rec = TrialRecord {
            trial: 7,
            benchmark: "lud".into(),
            model: Some(FaultModel::Random),
            mechanism: "random".into(),
            inject_step: 3,
            total_steps: 9,
            window: 1,
            n_windows: 4,
            injection: None,
            outcome: OutcomeRecord::Due(DueKind::Signal { signo: 6 }),
            executed_steps: 0,
        };
        let mut buf = Vec::new();
        write_log(&mut buf, std::slice::from_ref(&rec)).unwrap();
        let back = read_log(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back[0].outcome, OutcomeRecord::Due(DueKind::Signal { signo: 6 }));
    }
}
