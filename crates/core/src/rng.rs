//! Deterministic, forkable random number generation.
//!
//! Every trial in a campaign gets an independent RNG derived from the master
//! seed and the trial index, so campaigns are reproducible bit-for-bit
//! regardless of worker-thread scheduling — the property that lets the
//! figure-regeneration binaries print stable numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — a strong 64-bit mixer used to derive independent
/// stream seeds from `(master, stream)` pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG for stream `stream` of master seed `seed`.
pub fn fork(seed: u64, stream: u64) -> StdRng {
    let mut key = [0u8; 32];
    let mut z = splitmix64(seed ^ splitmix64(stream));
    for chunk in key.chunks_exact_mut(8) {
        z = splitmix64(z);
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    StdRng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = fork(42, 7);
        let mut b = fork(42, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = fork(42, 7);
        let mut b = fork(42, 8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = fork(1, 0);
        let mut b = fork(2, 0);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn splitmix_is_not_identity_on_zero() {
        assert_ne!(splitmix64(0), 0);
    }
}
