//! Adaptive (planner-driven) stored campaigns.
//!
//! [`run_campaign_adaptive`] is the confidence-interval-driven counterpart
//! of [`crate::run_campaign_stored`]: instead of executing a fixed trial
//! range, an [`AllocationPlanner`] picks which trials to run next — one
//! *batch* at a time, each batch drawn from the stratum whose outcome
//! estimate is least converged — and stops once every stratum's interval is
//! inside the target width. The fixed trial count becomes a *horizon*: the
//! planner may only allocate indices below `cfg.trials`, and every trial it
//! does allocate keeps the exact RNG stream / fault model / injection time
//! the fixed-count campaign would have given that index.
//!
//! Determinism: the planner is required to be a pure function of its
//! construction parameters and the sequence of observed records, and batch
//! records are journaled in the decision's trial order regardless of worker
//! scheduling. A version-2 journal is therefore a pure function of
//! `(spec, seed)` — interrupting and resuming an adaptive campaign (any
//! number of times, any worker count) reproduces the *byte-identical*
//! journal and result, because resume re-derives every decision from the
//! replayed planner and cross-checks it against the journaled
//! [`JournalEntry::Plan`] records before continuing.

use crate::campaign::{execute_trial, report_for, Campaign, CampaignConfig};
use crate::monitor::PlannerStatus;
use crate::orchestrator::{panic_message, StoreConfig, StoredRun};
use crate::output::Output;
use crate::record::TrialRecord;
use crate::target::FaultTarget;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use store::{CampaignMeta, Journal, JournalEntry, JournalWriter, ShardCursor, ShardPlan, ShardProgress, ShardState};

/// One allocation decision: the batch of trial indices the planner wants
/// executed next, plus the gauges that justified the pick (journaled for
/// replay cross-checking and surfaced as a `plan` obs event).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// Decision ordinal, gapless from 0.
    pub batch: u64,
    /// Label of the stratum this batch samples.
    pub stratum: String,
    /// The stratum's widest outcome-class CI width at decision time (the
    /// quantity the planner is minimizing).
    pub widest_ci: f64,
    /// Open strata (width above target) at decision time.
    pub strata_open: u64,
    /// Campaign-global trial indices to execute, in execution order.
    pub trials: Vec<usize>,
}

/// Strategy interface of the adaptive orchestrator. Implementations live
/// above this crate (the Wilson-interval planner is in `sdc-analysis`);
/// the orchestrator only requires the *purity contract*: after any sequence
/// of `next_batch`/`observe` calls, the next decision must be a pure
/// function of the construction parameters and the records observed so far.
/// That contract is what makes a version-2 journal replayable.
pub trait AllocationPlanner {
    /// Feeds one completed trial back into planner state. Called in journal
    /// (execution) order, both live and during resume replay.
    fn observe(&mut self, record: &TrialRecord);
    /// The next batch to execute, or `None` when every stratum is converged
    /// (or exhausted its share of the horizon).
    fn next_batch(&mut self) -> Option<PlanDecision>;
    /// Live gauges for `CampaignReport` / `phi-top` / the serve event bus.
    fn gauges(&self) -> PlannerStatus;
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// An allocation decision as replayed from the journal.
struct JournaledPlan {
    batch: u64,
    stratum: String,
    widest_ci: f64,
    trials: Vec<usize>,
}

/// Opens (or creates) the version-2 journal for `meta`, replays it, and
/// parses the surviving entries. Returns the writer, the journaled
/// allocation decisions in order, the trial records in execution order and
/// whether the campaign was already sealed.
fn open_adaptive_journal(
    store_cfg: &StoreConfig,
    meta: CampaignMeta,
) -> std::io::Result<(JournalWriter, Vec<JournaledPlan>, Vec<TrialRecord>, bool)> {
    let dir = &store_cfg.dir;
    let (mut writer, entries) = if Journal::exists(dir) {
        if !store_cfg.resume {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("journal already exists at {} (pass --resume to continue it)", dir.display()),
            ));
        }
        let (writer, scan) = JournalWriter::resume(dir)?;
        match &scan.meta {
            Some(m) if *m == meta => {}
            Some(m) => {
                return Err(invalid(format!(
                    "journal at {} belongs to a different campaign (journal: {m:?}, requested: {meta:?})",
                    dir.display()
                )))
            }
            None => return Err(invalid(format!("journal at {} has no meta entry", dir.display()))),
        }
        (writer, scan.entries)
    } else {
        (JournalWriter::create(dir, meta.clone())?, Vec::new())
    };
    writer.batch = store_cfg.batch;
    // The shard machinery validates the gapless execution sequence and
    // checkpoint consistency; adaptive campaigns are always single-shard.
    let progress = ShardProgress::replay(1, &entries)?;
    let sealed = progress.all_done();
    let mut plans = Vec::new();
    for entry in &entries {
        if let JournalEntry::Plan { batch, stratum, widest_ci, trials } = entry {
            plans.push(JournaledPlan {
                batch: *batch,
                stratum: stratum.clone(),
                widest_ci: *widest_ci,
                trials: trials.clone(),
            });
        }
    }
    let mut records = Vec::with_capacity(progress.shards[0].payloads.len());
    for (seq, payload) in progress.shards[0].payloads.iter().enumerate() {
        let record: TrialRecord =
            serde_json::from_str(payload).map_err(|e| invalid(format!("seq {seq}: bad trial payload: {e}")))?;
        records.push(record);
    }
    // Unlike the fixed-count journal, `seq` is execution order, not the
    // trial index: the k-th record must instead carry the k-th index the
    // journaled decisions allocated.
    let mut flat = plans.iter().flat_map(|p| p.trials.iter().copied());
    for (seq, record) in records.iter().enumerate() {
        match flat.next() {
            Some(expected) if record.trial == expected => {}
            Some(expected) => {
                return Err(invalid(format!(
                    "seq {seq}: payload carries trial {}, journaled decisions allocated {expected}",
                    record.trial
                )))
            }
            None => return Err(invalid(format!("seq {seq}: trial record with no covering allocation decision"))),
        }
    }
    Ok((writer, plans, records, sealed))
}

/// Replays the journaled decisions through `planner`, cross-checking each
/// one, and feeds it the journaled records in execution order. Returns the
/// in-flight decision and how many of its trials are already journaled, if
/// the journal stops mid-batch.
fn replay_decisions(
    planner: &mut dyn AllocationPlanner,
    plans: &[JournaledPlan],
    records: &[TrialRecord],
) -> std::io::Result<Option<(PlanDecision, usize)>> {
    let mut pending = None;
    let mut cursor = 0usize;
    for (i, journaled) in plans.iter().enumerate() {
        let decision = planner.next_batch().ok_or_else(|| {
            invalid(format!("journal holds decision #{} but the planner is already converged", journaled.batch))
        })?;
        // Bitwise CI comparison: the planner contract is exact replay, and
        // JSON round-trips f64 losslessly (shortest round-trip formatting).
        if decision.batch != journaled.batch
            || decision.stratum != journaled.stratum
            || decision.widest_ci.to_bits() != journaled.widest_ci.to_bits()
            || decision.trials != journaled.trials
        {
            return Err(invalid(format!(
                "journaled decision #{} (stratum {}, {} trials) does not match the replayed planner \
                 (stratum {}, {} trials) — journal was produced by a different planner or spec",
                journaled.batch,
                journaled.stratum,
                journaled.trials.len(),
                decision.stratum,
                decision.trials.len()
            )));
        }
        let have = (records.len() - cursor).min(decision.trials.len());
        for record in &records[cursor..cursor + have] {
            planner.observe(record);
        }
        cursor += have;
        if have < decision.trials.len() {
            if i + 1 != plans.len() {
                return Err(invalid(format!("decision #{} is incomplete but later decisions follow it", journaled.batch)));
            }
            pending = Some((decision, have));
        }
    }
    Ok(pending)
}

/// Planner-driven version of [`crate::run_campaign_stored`].
///
/// Each loop turn asks `planner` for a batch, journals the decision as a
/// [`JournalEntry::Plan`], executes the batch on the worker pool, journals
/// the records *in decision order* (worker scheduling never leaks into the
/// journal), feeds them back through [`AllocationPlanner::observe`], and
/// checkpoints. The campaign completes when the planner returns `None` —
/// usually well short of the `cfg.trials` horizon.
///
/// `store_cfg.budget` pauses at batch granularity: a batch that starts
/// before the budget runs out finishes (bounded overshoot of one batch), so
/// pauses always land on a checkpointed batch boundary. A resumed run
/// replays the planner against the journal — validating every journaled
/// decision — and then continues as if never interrupted: the completed
/// journal and the result are byte-identical for any interruption pattern.
pub fn run_campaign_adaptive<T, F>(
    benchmark: &str,
    factory: F,
    golden: &Output,
    cfg: &CampaignConfig,
    store_cfg: &StoreConfig,
    planner: &mut dyn AllocationPlanner,
) -> std::io::Result<StoredRun<Campaign>>
where
    T: FaultTarget,
    F: Fn() -> T + Sync,
{
    assert!(!cfg.models.is_empty(), "campaign needs at least one fault model");
    let _quiet = crate::panic_guard::silence_panics();
    let probe = factory();
    let total_steps = probe.total_steps().max(1);
    let pool = crate::pool::TargetPool::new(&factory);
    pool.seed(probe);
    let fast_compares = AtomicU64::new(0);
    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);

    let meta = CampaignMeta {
        kind: "inject".into(),
        benchmark: benchmark.into(),
        seed: cfg.seed,
        trials: cfg.trials,
        shards: 1,
        n_windows: cfg.n_windows,
        version: store::journal::ADAPTIVE_FORMAT_VERSION,
    };
    let (mut writer, plans, mut records, sealed) = open_adaptive_journal(store_cfg, meta)?;
    let progress = ShardProgress {
        shards: vec![ShardState { completed: records.len() as u64, done: sealed, payloads: Vec::new() }],
    };
    crate::monitor::begin_campaign(benchmark, "inject", &ShardPlan::new(cfg.trials, 1), &progress);
    let mut pending = replay_decisions(planner, &plans, &records)?;
    crate::monitor::planner_update(planner.gauges());

    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };

    let complete = if sealed {
        if pending.is_some() {
            return Err(invalid("sealed adaptive journal ends mid-batch".into()));
        }
        true
    } else {
        let mut executed = records.len();
        let mut spent = 0usize;
        loop {
            let (decision, done_in_batch) = match pending.take() {
                // An in-flight journaled batch is finished unconditionally
                // (its Plan entry is already durable).
                Some(p) => p,
                None => {
                    if store_cfg.budget.is_some_and(|b| spent >= b) {
                        break false;
                    }
                    match planner.next_batch() {
                        None => break true,
                        Some(decision) => {
                            let entry = JournalEntry::Plan {
                                batch: decision.batch,
                                stratum: decision.stratum.clone(),
                                widest_ci: decision.widest_ci,
                                trials: decision.trials.clone(),
                            };
                            store::retry_transient(|| writer.append(&entry))?;
                            obs::incr("planner/batches", 1);
                            if obs::enabled() {
                                obs::event(
                                    "plan",
                                    &format!(
                                        "{{\"batch\":{},\"stratum\":{:?},\"widest_ci\":{},\"strata_open\":{},\"trials\":{}}}",
                                        decision.batch,
                                        decision.stratum,
                                        decision.widest_ci,
                                        decision.strata_open,
                                        decision.trials.len()
                                    ),
                                );
                            }
                            (decision, 0)
                        }
                    }
                }
            };

            // Execute the batch's remaining trials in parallel. Results land
            // in per-trial slots so the journal below sees decision order,
            // whatever the worker interleaving was.
            let todo = &decision.trials[done_in_batch..];
            let slots: Vec<parking_lot::Mutex<Option<Result<TrialRecord, String>>>> =
                todo.iter().map(|_| parking_lot::Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let batch_workers = workers.min(todo.len().max(1));
            crossbeam::thread::scope(|scope| {
                for _ in 0..batch_workers {
                    scope.spawn(|_| {
                        let mut local_busy = 0u64;
                        let mut local_fast = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= todo.len() {
                                break;
                            }
                            let trial = todo[i];
                            let t0 = std::time::Instant::now();
                            // Same harness-panic containment as the sharded
                            // driver: a poisoned trial must not take down the
                            // batch before its predecessors are journaled.
                            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let mut target = pool.acquire();
                                let (record, fast) =
                                    execute_trial(benchmark, &mut target, golden, cfg, total_steps, trial);
                                pool.release(target, record.outcome.is_due());
                                (record, fast)
                            }));
                            local_busy += t0.elapsed().as_nanos() as u64;
                            match out {
                                Ok((record, fast)) => {
                                    local_fast += fast as u64;
                                    *slots[i].lock() = Some(Ok(record));
                                }
                                Err(payload) => {
                                    obs::incr("shard/panicked", 1);
                                    *slots[i].lock() = Some(Err(panic_message(payload.as_ref())));
                                }
                            }
                        }
                        busy_ns.fetch_add(local_busy, Ordering::Relaxed);
                        fast_compares.fetch_add(local_fast, Ordering::Relaxed);
                    });
                }
            })
            .expect("adaptive batch worker panicked outside a trial");

            // Journal in decision order, stopping at the first panicked
            // trial: the durable prefix stays a valid campaign prefix and a
            // resume re-runs the batch tail.
            let mut failure: Option<String> = None;
            for (k, slot) in slots.into_iter().enumerate() {
                match slot.into_inner().expect("batch slot missing") {
                    Ok(record) => {
                        let payload = serde_json::to_string(&record)
                            .map_err(|e| std::io::Error::other(format!("trial {}: serialize failed: {e}", record.trial)))?;
                        obs::incr("store/trials", 1);
                        store::retry_transient(|| {
                            writer.append(&JournalEntry::Trial { shard: 0, seq: executed as u64, payload: payload.clone() })
                        })?;
                        crate::monitor::tick(0);
                        planner.observe(&record);
                        records.push(record);
                        executed += 1;
                        spent += 1;
                    }
                    Err(msg) => {
                        failure = Some(format!("trial {}: {msg}", todo[k]));
                        break;
                    }
                }
            }
            if let Some(msg) = failure {
                store::retry_transient(|| writer.sync())?;
                return Err(std::io::Error::other(format!("harness panic: {msg} (journal is resumable)")));
            }

            let cursor = ShardCursor { shard: 0, completed: executed as u64, next_stream: executed as u64 };
            store::retry_transient(|| {
                writer.append(&JournalEntry::Checkpoint(cursor))?;
                writer.sync()
            })?;
            crate::monitor::planner_update(planner.gauges());
        }
    };

    if !complete {
        writer.close()?;
        return Ok(StoredRun::Paused { completed: records.len() as u64, total: cfg.trials });
    }
    if !sealed {
        store::retry_transient(|| {
            writer.append(&JournalEntry::ShardDone { shard: 0 })?;
            writer.sync()
        })?;
        obs::incr("shard/completed", 1);
        crate::monitor::shard_sealed(0);
    }
    writer.close()?;
    crate::monitor::complete_campaign();
    let gauges = planner.gauges();
    let mut report = report_for(benchmark, &records, workers, busy_ns.into_inner(), wall.elapsed().as_nanos() as u64);
    report.pool_hits = pool.hits();
    report.pool_rebuilds = pool.rebuilds();
    report.fast_path_compares = fast_compares.into_inner();
    report.strata_total = gauges.strata_total as usize;
    report.strata_open = gauges.strata_open as usize;
    report.widest_ci = gauges.widest_ci;
    Ok(StoredRun::Complete(Campaign { benchmark: benchmark.to_string(), records, report }))
}
