//! Raw-byte views over numeric slices.
//!
//! CAROL-FI corrupts *memory*, not typed values: GDB resolves a variable to
//! an address range and flips bits in it. To reproduce that, injectable state
//! must be visible as `&mut [u8]`. These helpers reinterpret slices of plain
//! numeric types as byte slices.
//!
//! Safety argument: the conversions below are sound because
//!
//! * `u8` has alignment 1 and no validity invariants, so *reading* any
//!   initialized memory as bytes is fine;
//! * the source element types (`f32`, `f64`, `i32`, `i64`, `u32`, `u64`)
//!   accept **every** bit pattern as a valid value, so *writing* arbitrary
//!   bytes through the view cannot produce an invalid value — at worst a NaN
//!   or a huge integer, which is exactly the behaviour a particle strike
//!   produces on real hardware;
//! * the returned slice borrows the source mutably, so no aliasing is
//!   possible while the view is alive.
//!
//! Do **not** add implementations for types with validity invariants
//! (`bool`, `char`, enums, references).

/// Marker trait for element types whose every bit pattern is a valid value.
///
/// # Safety
///
/// Implementors must guarantee that any byte sequence of `size_of::<Self>()`
/// bytes is a valid instance of `Self`.
pub unsafe trait PlainBits: Copy + Send + Sync + 'static {}

unsafe impl PlainBits for u8 {}
unsafe impl PlainBits for u16 {}
unsafe impl PlainBits for u32 {}
unsafe impl PlainBits for u64 {}
unsafe impl PlainBits for usize {}
unsafe impl PlainBits for i8 {}
unsafe impl PlainBits for i16 {}
unsafe impl PlainBits for i32 {}
unsafe impl PlainBits for i64 {}
unsafe impl PlainBits for f32 {}
unsafe impl PlainBits for f64 {}

/// Reinterprets a mutable slice of plain numeric values as bytes.
pub fn as_bytes_mut<T: PlainBits>(values: &mut [T]) -> &mut [u8] {
    let len = std::mem::size_of_val(values);
    // SAFETY: see module docs — u8 is alignment-1 and valid for all bit
    // patterns, T: PlainBits accepts all bit patterns, and the borrow of
    // `values` is held for the lifetime of the returned slice.
    unsafe { std::slice::from_raw_parts_mut(values.as_mut_ptr().cast::<u8>(), len) }
}

/// Reinterprets an immutable slice of plain numeric values as bytes.
pub fn as_bytes<T: PlainBits>(values: &[T]) -> &[u8] {
    let len = std::mem::size_of_val(values);
    // SAFETY: see module docs.
    unsafe { std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), len) }
}

/// Byte view over a single plain numeric value.
pub fn scalar_bytes_mut<T: PlainBits>(value: &mut T) -> &mut [u8] {
    as_bytes_mut(std::slice::from_mut(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_through_bytes() {
        let mut v = [1.0f64, -2.5, 0.0];
        let bytes = as_bytes_mut(&mut v);
        assert_eq!(bytes.len(), 24);
        // Flip the sign bit of the first element (little-endian: MSB of byte 7).
        bytes[7] ^= 0x80;
        assert_eq!(v[0], -1.0);
        assert_eq!(v[1], -2.5);
    }

    #[test]
    fn i32_view_length_and_content() {
        let mut v = [0x0102_0304i32, -1];
        let bytes = as_bytes(&v);
        assert_eq!(bytes.len(), 8);
        // Little-endian layout on all supported targets.
        assert_eq!(&bytes[..4], &[0x04, 0x03, 0x02, 0x01]);
        let bytes = as_bytes_mut(&mut v);
        bytes[4..8].copy_from_slice(&[0, 0, 0, 0]);
        assert_eq!(v[1], 0);
    }

    #[test]
    fn scalar_view_mutates_in_place() {
        let mut x = 0u32;
        scalar_bytes_mut(&mut x)[1] = 0xff;
        assert_eq!(x, 0xff00);
    }

    #[test]
    fn empty_slice_gives_empty_bytes() {
        let mut v: [f32; 0] = [];
        assert!(as_bytes_mut(&mut v).is_empty());
    }

    #[test]
    fn any_bit_pattern_is_tolerated_by_f32() {
        let mut v = [0.0f32];
        let bytes = as_bytes_mut(&mut v);
        bytes.copy_from_slice(&[0xff, 0xff, 0xff, 0x7f]); // a NaN pattern
        assert!(v[0].is_nan());
    }
}
