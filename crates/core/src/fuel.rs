//! Bounded-work accounting: turns injected infinite loops into timeout DUEs.
//!
//! CAROL-FI's Supervisor "works as a watchdog to kill the program if a
//! user-defined time limit is surpassed" (paper §5.1). A corrupted loop bound
//! (e.g. a `usize` counter hit by a *Random* fault) would make a kernel step
//! spin for 2⁶⁰ iterations; rather than wall-clock killing an OS process, the
//! kernels thread a [`Fuel`] budget through their inner loops. Exhausting the
//! budget raises a typed panic that the supervisor classifies as
//! `DUE { cause: Timeout }` — exactly the outcome the paper's watchdog
//! records.

/// Panic payload signalling watchdog expiry; recognised by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutSignal;

/// A work budget measured in abstract "work units" (loop iterations).
///
/// Fault-free runs are required to stay well under the budget; kernels size
/// it as a multiple (the watchdog factor) of their nominal work.
#[derive(Debug, Clone)]
pub struct Fuel {
    remaining: u64,
}

impl Fuel {
    /// Creates a budget of `units` work units.
    pub fn new(units: u64) -> Self {
        Fuel { remaining: units }
    }

    /// Creates a budget of `factor`× the nominal work estimate.
    pub fn with_factor(nominal_units: u64, factor: f64) -> Self {
        let units = (nominal_units as f64 * factor).min(u64::MAX as f64) as u64;
        Fuel::new(units.max(1))
    }

    /// Consumes `units`; panics with [`TimeoutSignal`] when the budget is
    /// exhausted (the watchdog killing the run).
    #[inline]
    pub fn burn(&mut self, units: u64) {
        match self.remaining.checked_sub(units) {
            Some(rest) => self.remaining = rest,
            None => {
                self.remaining = 0;
                std::panic::panic_any(TimeoutSignal);
            }
        }
    }

    /// Remaining budget.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Clamps a loop bound so a corrupted bound cannot consume more than the
    /// remaining budget in a single loop header; the loop body's `burn` calls
    /// still do the fine-grained accounting.
    #[inline]
    pub fn clamp_bound(&self, bound: usize) -> usize {
        bound.min(self.remaining.min(usize::MAX as u64) as usize)
    }
}

/// True if a caught panic payload is the watchdog signal.
pub fn is_timeout(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<TimeoutSignal>()
}

/// Largest allocation (in elements) a kernel may request from an
/// injectable size. Corrupted sizes beyond this panic (a catchable crash
/// DUE) instead of reaching the allocator — a real `malloc` of terabytes
/// would fail with an *uncatchable* Rust alloc abort, losing the trial.
pub const ALLOC_GUARD_ELEMS: usize = 1 << 26;

/// Guards an allocation size derived from injectable state.
#[inline]
pub fn guard_alloc(elems: usize) {
    if elems > ALLOC_GUARD_ELEMS {
        panic!("allocation of {elems} elements exceeds the guard (corrupted size)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn burning_under_budget_is_fine() {
        let mut fuel = Fuel::new(100);
        for _ in 0..10 {
            fuel.burn(10);
        }
        assert_eq!(fuel.remaining(), 0);
    }

    #[test]
    fn exhaustion_raises_timeout_signal() {
        let mut fuel = Fuel::new(5);
        let res = catch_unwind(AssertUnwindSafe(|| fuel.burn(6)));
        let payload = res.unwrap_err();
        assert!(is_timeout(payload.as_ref()));
    }

    #[test]
    fn ordinary_panics_are_not_timeouts() {
        let res = catch_unwind(|| panic!("index out of bounds"));
        let payload = res.unwrap_err();
        assert!(!is_timeout(payload.as_ref()));
    }

    #[test]
    fn with_factor_scales_nominal_work() {
        let fuel = Fuel::with_factor(1000, 4.0);
        assert_eq!(fuel.remaining(), 4000);
    }

    #[test]
    fn clamp_bound_limits_runaway_loops() {
        let fuel = Fuel::new(50);
        assert_eq!(fuel.clamp_bound(usize::MAX), 50);
        assert_eq!(fuel.clamp_bound(7), 7);
    }

    #[test]
    fn zero_factor_still_gives_minimum_budget() {
        let fuel = Fuel::with_factor(0, 4.0);
        assert!(fuel.remaining() >= 1);
    }
}
