//! Bounded-work accounting: turns injected infinite loops into timeout DUEs.
//!
//! CAROL-FI's Supervisor "works as a watchdog to kill the program if a
//! user-defined time limit is surpassed" (paper §5.1). A corrupted loop bound
//! (e.g. a `usize` counter hit by a *Random* fault) would make a kernel step
//! spin for 2⁶⁰ iterations; rather than wall-clock killing an OS process, the
//! kernels thread a [`Fuel`] budget through their inner loops. Exhausting the
//! budget raises a typed panic that the supervisor classifies as
//! `DUE { cause: Timeout }` — exactly the outcome the paper's watchdog
//! records.

/// Panic payload signalling watchdog expiry; recognised by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutSignal;

/// A work budget measured in abstract "work units" (loop iterations).
///
/// Fault-free runs are required to stay well under the budget; kernels size
/// it as a multiple (the watchdog factor) of their nominal work.
#[derive(Debug, Clone)]
pub struct Fuel {
    remaining: u64,
}

/// Scales `n` by `factor` exactly: the factor is decomposed into its
/// IEEE-754 mantissa and binary exponent and the product is computed in
/// u128, so no precision is lost past 2⁵³ the way `n as f64 * factor`
/// loses it. `round_up` selects ceiling (watchdog budgets) vs truncation
/// (kernel fuel, matching the old `as u64` cast). Saturates at
/// `u128::MAX`; panics on a non-finite or negative factor — a corrupted
/// factor must never silently become an infinite budget.
fn scale_exact(n: u64, factor: f64, round_up: bool) -> u128 {
    assert!(
        factor.is_finite() && factor >= 0.0,
        "work-budget factor must be finite and non-negative, got {factor}"
    );
    if n == 0 || factor == 0.0 {
        return 0;
    }
    // factor = m × 2^e with m < 2^54, exactly.
    let bits = factor.to_bits();
    let exp_raw = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & ((1u64 << 52) - 1);
    let (m, e) = if exp_raw == 0 { (frac, -1074i64) } else { (frac | (1 << 52), exp_raw - 1075) };
    let prod = (n as u128) * (m as u128); // < 2^64 × 2^54 = 2^118, exact in u128
    if e >= 0 {
        if (e as u32) >= prod.leading_zeros() {
            return u128::MAX;
        }
        prod << e
    } else {
        let s = (-e) as u32;
        if s >= 128 {
            return if round_up { 1 } else { 0 };
        }
        let q = prod >> s;
        if round_up && prod & ((1u128 << s) - 1) != 0 {
            q + 1
        } else {
            q
        }
    }
}

/// Whole-run watchdog budget in steps: `ceil(total_steps × factor)`,
/// computed with saturating integer math (see [`scale_exact`]) so totals
/// past 2⁵³ don't round through f64. Identical to the old
/// `((total as f64) * factor).ceil()` everywhere that formula was exact.
pub fn watchdog_budget(total_steps: usize, factor: f64) -> u64 {
    scale_exact(total_steps as u64, factor, true).min(u64::MAX as u128) as u64
}

impl Fuel {
    /// Creates a budget of `units` work units.
    pub fn new(units: u64) -> Self {
        Fuel { remaining: units }
    }

    /// Creates a budget of `factor`× the nominal work estimate. The factor
    /// must be finite and non-negative: a NaN or ∞ (e.g. from corrupted
    /// arithmetic upstream) used to saturate into an effectively infinite
    /// budget — defeating the watchdog — and is now rejected loudly.
    pub fn with_factor(nominal_units: u64, factor: f64) -> Self {
        let units = scale_exact(nominal_units, factor, false).min(u64::MAX as u128) as u64;
        Fuel::new(units.max(1))
    }

    /// Consumes `units`; panics with [`TimeoutSignal`] when the budget is
    /// exhausted (the watchdog killing the run).
    #[inline]
    pub fn burn(&mut self, units: u64) {
        match self.remaining.checked_sub(units) {
            Some(rest) => self.remaining = rest,
            None => {
                self.remaining = 0;
                std::panic::panic_any(TimeoutSignal);
            }
        }
    }

    /// Remaining budget.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Clamps a loop bound so a corrupted bound cannot consume more than the
    /// remaining budget in a single loop header; the loop body's `burn` calls
    /// still do the fine-grained accounting.
    #[inline]
    pub fn clamp_bound(&self, bound: usize) -> usize {
        bound.min(self.remaining.min(usize::MAX as u64) as usize)
    }
}

/// True if a caught panic payload is the watchdog signal.
pub fn is_timeout(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<TimeoutSignal>()
}

/// Largest allocation (in elements) a kernel may request from an
/// injectable size. Corrupted sizes beyond this panic (a catchable crash
/// DUE) instead of reaching the allocator — a real `malloc` of terabytes
/// would fail with an *uncatchable* Rust alloc abort, losing the trial.
pub const ALLOC_GUARD_ELEMS: usize = 1 << 26;

/// Guards an allocation size derived from injectable state.
#[inline]
pub fn guard_alloc(elems: usize) {
    if elems > ALLOC_GUARD_ELEMS {
        panic!("allocation of {elems} elements exceeds the guard (corrupted size)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn burning_under_budget_is_fine() {
        let mut fuel = Fuel::new(100);
        for _ in 0..10 {
            fuel.burn(10);
        }
        assert_eq!(fuel.remaining(), 0);
    }

    #[test]
    fn exhaustion_raises_timeout_signal() {
        let mut fuel = Fuel::new(5);
        let res = catch_unwind(AssertUnwindSafe(|| fuel.burn(6)));
        let payload = res.unwrap_err();
        assert!(is_timeout(payload.as_ref()));
    }

    #[test]
    fn ordinary_panics_are_not_timeouts() {
        let res = catch_unwind(|| panic!("index out of bounds"));
        let payload = res.unwrap_err();
        assert!(!is_timeout(payload.as_ref()));
    }

    #[test]
    fn with_factor_scales_nominal_work() {
        let fuel = Fuel::with_factor(1000, 4.0);
        assert_eq!(fuel.remaining(), 4000);
    }

    #[test]
    fn clamp_bound_limits_runaway_loops() {
        let fuel = Fuel::new(50);
        assert_eq!(fuel.clamp_bound(usize::MAX), 50);
        assert_eq!(fuel.clamp_bound(7), 7);
    }

    #[test]
    fn zero_factor_still_gives_minimum_budget() {
        let fuel = Fuel::with_factor(0, 4.0);
        assert!(fuel.remaining() >= 1);
    }

    #[test]
    fn with_factor_rejects_non_finite_factors() {
        // A NaN factor used to pass through `f64::min` (which returns the
        // non-NaN operand) and saturate into a u64::MAX budget — an
        // effectively disabled watchdog. Non-finite factors are now a loud
        // construction-time panic, never a silent infinite budget.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let r = catch_unwind(|| Fuel::with_factor(1000, bad));
            assert!(r.is_err(), "factor {bad} must be rejected");
        }
    }

    #[test]
    fn watchdog_budget_is_byte_identical_to_the_f64_formula_where_exact() {
        // Satellite pin: the integer budget must reproduce the old
        // `((total as f64) * factor).ceil()` bit for bit across
        // representative campaign shapes — changing any of these would
        // reclassify timeout DUEs and break journaled byte-identity.
        for &(total, factor) in &[
            (1usize, 4.0),
            (6, 4.0),     // dgemm test size
            (16, 4.0),    // supervisor unit-test victims
            (29, 1.5),
            (64, 4.0),
            (100, 2.5),
            (1000, 4.0),
            (12_345, 3.25),
            (1 << 20, 4.0),
            (7, 0.0),
            (3, 0.125),
        ] {
            let old = ((total as f64) * factor).ceil() as u64;
            assert_eq!(watchdog_budget(total, factor), old, "total={total} factor={factor}");
        }
    }

    #[test]
    fn watchdog_budget_is_exact_past_2_53_steps() {
        // The f64 formula loses integer resolution above 2^53: (2^53 + 1)
        // as f64 rounds down to 2^53. The u128 path keeps every bit and
        // saturates instead of wrapping.
        let total = (1usize << 53) + 1;
        assert_eq!(watchdog_budget(total, 1.0), total as u64);
        assert_eq!(watchdog_budget(total, 4.0), 4 * total as u64);
        assert_eq!(watchdog_budget(usize::MAX, 4.0), u64::MAX, "oversized budgets saturate");
        assert_eq!(watchdog_budget(usize::MAX, 1.0), u64::MAX);
    }
}
