//! Campaign orchestration: thousands of supervised trials, in parallel,
//! deterministically.
//!
//! The paper injects "at least 10,000 faults into each of the selected
//! benchmarks" (§6) so the worst-case 95 % statistical error stays below
//! 1.96 %. A [`run_campaign`] call reproduces one benchmark's campaign:
//! trials are distributed round-robin over the four fault models, injection
//! times are sampled uniformly over the benchmark's step timeline, and every
//! trial runs under its own RNG stream so results do not depend on worker
//! scheduling.

use crate::models::{CarolFiApplicator, FaultModel};
use crate::output::Output;
use crate::pool::TargetPool;
use crate::record::{DueKind, OutcomeRecord, TrialRecord};
use crate::select::VariableSelector;
use crate::supervisor::{run_trial_mut, TrialConfig, TrialOutcome};
use crate::target::FaultTarget;
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of injections.
    pub trials: usize,
    /// Fault models to cycle through (defaults to all four).
    pub models: Vec<FaultModel>,
    /// Master seed; campaigns with equal seeds are bit-identical.
    pub seed: u64,
    /// Worker threads (0 ⇒ all available cores).
    pub workers: usize,
    /// Watchdog limit as a multiple of nominal steps.
    pub watchdog_factor: f64,
    /// Number of execution-time windows for the Fig. 6 analysis.
    pub n_windows: usize,
    /// Variable-selection policy.
    pub selector: VariableSelector,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            trials: 1000,
            models: FaultModel::ALL.to_vec(),
            seed: 0x00CA_01F1,
            workers: 0,
            watchdog_factor: 4.0,
            n_windows: 4,
            selector: VariableSelector::default(),
        }
    }
}

/// A completed campaign: per-trial records plus aggregate counters.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub benchmark: String,
    pub records: Vec<TrialRecord>,
    /// Campaign-level gauges (throughput, utilization, outcome counts).
    /// Rate gauges are zero when the records were loaded rather than run.
    pub report: obs::CampaignReport,
}

/// Static outcome key per (fault model × outcome), shared by the live
/// telemetry counters and the [`obs::CampaignReport`] so the `--telemetry`
/// footer and the report agree by construction.
pub fn outcome_key(model: FaultModel, outcome: &OutcomeRecord) -> &'static str {
    use FaultModel::*;
    use OutcomeRecord::*;
    match (model, outcome) {
        (Single, Masked) => "single/masked",
        (Single, HardwareMasked) => "single/hw-masked",
        (Single, Sdc(_)) => "single/sdc",
        (Single, Due(_)) => "single/due",
        (Double, Masked) => "double/masked",
        (Double, HardwareMasked) => "double/hw-masked",
        (Double, Sdc(_)) => "double/sdc",
        (Double, Due(_)) => "double/due",
        (Random, Masked) => "random/masked",
        (Random, HardwareMasked) => "random/hw-masked",
        (Random, Sdc(_)) => "random/sdc",
        (Random, Due(_)) => "random/due",
        (Zero, Masked) => "zero/masked",
        (Zero, HardwareMasked) => "zero/hw-masked",
        (Zero, Sdc(_)) => "zero/sdc",
        (Zero, Due(_)) => "zero/due",
    }
}

/// Builds the campaign report from finished records (used both by
/// [`run_campaign`] and by callers reloading cached records, which have no
/// timing information).
pub fn report_for(benchmark: &str, records: &[TrialRecord], workers: usize, busy_ns: u64, wall_ns: u64) -> obs::CampaignReport {
    let mut builder = obs::ReportBuilder::new(benchmark, workers);
    for r in records {
        let timed_out = matches!(r.outcome, OutcomeRecord::Due(DueKind::Timeout));
        match r.model {
            Some(model) => builder.record_outcome(outcome_key(model, &r.outcome), timed_out),
            // Model-less records (beam-shaped logs or hand-edited journals
            // fed back through `parse_logs`) get a stable "unknown/" key
            // instead of panicking the report over foreign data.
            None => builder.record_outcome(format!("unknown/{}", r.outcome.label()), timed_out),
        }
    }
    builder.add_busy_ns(busy_ns);
    builder.finish(wall_ns)
}

impl Campaign {
    /// (masked, sdc, due) counts — the Fig. 4 aggregates.
    pub fn outcome_counts(&self) -> (usize, usize, usize) {
        let mut masked = 0;
        let mut sdc = 0;
        let mut due = 0;
        for r in &self.records {
            match &r.outcome {
                OutcomeRecord::Masked | OutcomeRecord::HardwareMasked => masked += 1,
                OutcomeRecord::Sdc(_) => sdc += 1,
                OutcomeRecord::Due(_) => due += 1,
            }
        }
        (masked, sdc, due)
    }

    /// Fraction of trials with the given predicate outcome.
    pub fn fraction(&self, pred: impl Fn(&OutcomeRecord) -> bool) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| pred(&r.outcome)).count() as f64 / self.records.len() as f64
    }

    /// SDC fraction (the SDC PVF over the whole campaign).
    pub fn sdc_fraction(&self) -> f64 {
        self.fraction(OutcomeRecord::is_sdc)
    }

    /// DUE fraction.
    pub fn due_fraction(&self) -> f64 {
        self.fraction(OutcomeRecord::is_due)
    }

    /// Masked fraction.
    pub fn masked_fraction(&self) -> f64 {
        self.fraction(OutcomeRecord::is_masked)
    }
}

/// Assigns a step to one of `n_windows` equal-length time windows.
pub fn window_of(step: usize, total_steps: usize, n_windows: usize) -> usize {
    if total_steps == 0 || n_windows == 0 {
        return 0;
    }
    ((step * n_windows) / total_steps).min(n_windows - 1)
}

/// The (fault-model index, time-window) stratum of a trial, derived from
/// its campaign-global index *without executing it*: the same
/// `rng::fork(cfg.seed, trial)` fork, `trial % models.len()` model pick and
/// first `gen_range(0..total_steps)` draw that [`execute_trial`] performs.
/// This is what lets the adaptive planner stratify the whole trial horizon
/// up front while staying bit-compatible with the fixed-count campaign: a
/// trial keeps exactly the model and window it would have had anyway.
pub fn trial_stratum(cfg: &CampaignConfig, total_steps: usize, trial: usize) -> (usize, usize) {
    let mut rng = crate::rng::fork(cfg.seed, trial as u64);
    let model_idx = trial % cfg.models.len();
    let inject_step = rng.gen_range(0..total_steps);
    (model_idx, window_of(inject_step, total_steps, cfg.n_windows))
}

/// Executes one trial of the campaign described by `cfg` and returns its
/// record, plus whether the bitwise fast-path compare alone classified it
/// (telemetry for the campaign report; never part of the record).
///
/// `trial` is the trial's campaign-global index, which fully determines its
/// RNG stream (`rng::fork(cfg.seed, trial)`), its fault model
/// (`trial % models.len()`) and its injection time — the property the
/// sharded/resumable orchestrator relies on to merge partial runs into an
/// aggregate bit-identical to the single-shot campaign. The target is
/// borrowed (not consumed) so pooled runners can `reset()` and reuse it; a
/// fresh `factory()` instance per call produces the same record bits.
pub fn execute_trial<T: FaultTarget>(
    benchmark: &str,
    target: &mut T,
    golden: &Output,
    cfg: &CampaignConfig,
    total_steps: usize,
    trial: usize,
) -> (TrialRecord, bool) {
    execute_trial_attempt(benchmark, target, golden, cfg, total_steps, trial, 0, true)
}

/// [`execute_trial`] with explicit telemetry policy, for warden workers
/// whose trials may run more than once:
///
/// * `attempt` tags the emitted event — attempt 0 keeps the stable `trial`
///   kind (and payload schema), retries become `trial_retry` events wrapping
///   the record with the attempt index, so log consumers never see the same
///   trial index twice under `trial`.
/// * `count_outcomes: false` skips the outcome-class counter increments;
///   isolated workers pass `false` because the *supervisor* counts outcomes
///   exactly once per trial index when it journals the winning record (a
///   worker can die after reporting, forcing a re-run of an already-counted
///   trial).
///
/// The returned record is bit-identical regardless of `attempt` /
/// `count_outcomes` — they only shape telemetry.
#[allow(clippy::too_many_arguments)]
pub fn execute_trial_attempt<T: FaultTarget>(
    benchmark: &str,
    target: &mut T,
    golden: &Output,
    cfg: &CampaignConfig,
    total_steps: usize,
    trial: usize,
    attempt: u32,
    count_outcomes: bool,
) -> (TrialRecord, bool) {
    let mut rng = crate::rng::fork(cfg.seed, trial as u64);
    let model = cfg.models[trial % cfg.models.len()];
    let inject_step = rng.gen_range(0..total_steps);
    let mut applicator = CarolFiApplicator { model, selector: cfg.selector.clone() };
    let result = run_trial_mut(
        target,
        golden,
        &mut applicator,
        TrialConfig { inject_step, watchdog_factor: cfg.watchdog_factor },
        &mut rng,
    );
    let outcome = match result.outcome {
        TrialOutcome::Masked => OutcomeRecord::Masked,
        TrialOutcome::HardwareMasked => OutcomeRecord::HardwareMasked,
        TrialOutcome::Sdc(s) => OutcomeRecord::Sdc(s),
        TrialOutcome::Due(c) => OutcomeRecord::Due(c.into()),
    };
    let record = TrialRecord {
        trial,
        benchmark: benchmark.to_string(),
        model: Some(model),
        mechanism: model.label().to_string(),
        inject_step,
        total_steps,
        window: window_of(inject_step, total_steps, cfg.n_windows),
        n_windows: cfg.n_windows,
        injection: result.injection,
        outcome,
        executed_steps: result.executed_steps,
    };
    if count_outcomes {
        obs::incr(outcome_key(model, &record.outcome), 1);
    }
    // Serializing the record is only worth it when someone is listening;
    // `enabled()` guards the allocation.
    if obs::enabled() {
        if let Ok(json) = serde_json::to_string(&record) {
            if attempt == 0 {
                obs::event("trial", &json);
            } else {
                obs::event("trial_retry", &format!("{{\"attempt\":{attempt},\"record\":{json}}}"));
            }
        }
    }
    (record, result.fast_compare)
}

/// Builds the DUE record for a trial whose worker process died
/// (quarantined by the warden): the trial's identity fields — fault model,
/// injection step, time window — replay the exact derivation
/// [`execute_trial`] performs from the campaign-global index, so the record
/// slots into the journal indistinguishably from an in-process DUE; only
/// `injection` (the victim never reported what was corrupted) and
/// `executed_steps` are unknowable and left empty.
pub fn synth_due_record(
    benchmark: &str,
    cfg: &CampaignConfig,
    total_steps: usize,
    trial: usize,
    kind: DueKind,
) -> TrialRecord {
    let mut rng = crate::rng::fork(cfg.seed, trial as u64);
    let model = cfg.models[trial % cfg.models.len()];
    let inject_step = rng.gen_range(0..total_steps);
    let record = TrialRecord {
        trial,
        benchmark: benchmark.to_string(),
        model: Some(model),
        mechanism: model.label().to_string(),
        inject_step,
        total_steps,
        window: window_of(inject_step, total_steps, cfg.n_windows),
        n_windows: cfg.n_windows,
        injection: None,
        outcome: OutcomeRecord::Due(kind),
        executed_steps: 0,
    };
    obs::incr(outcome_key(model, &record.outcome), 1);
    record
}

/// Runs an injection campaign against targets built by `factory`.
///
/// `golden` must be the output of a fault-free run of `factory()`.
/// Deterministic for a given `(factory, cfg.seed)` pair regardless of
/// `cfg.workers`. Targets are pooled: each worker reuses an instance via
/// [`FaultTarget::reset`] instead of calling `factory()` per trial, with a
/// factory rebuild after every DUE — the records stay bit-identical to the
/// factory-per-trial path either way.
pub fn run_campaign<T, F>(benchmark: &str, factory: F, golden: &Output, cfg: &CampaignConfig) -> Campaign
where
    T: FaultTarget,
    F: Fn() -> T + Sync,
{
    assert!(!cfg.models.is_empty(), "campaign needs at least one fault model");
    let _quiet = crate::panic_guard::silence_panics();
    let probe = factory();
    let total_steps = probe.total_steps().max(1);
    let pool = TargetPool::new(&factory);
    pool.seed(probe);
    let fast_compares = AtomicU64::new(0);

    let wall = std::time::Instant::now();
    let busy_ns = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.workers
    };
    let workers = workers.min(cfg.trials.max(1));

    let records: Vec<parking_lot::Mutex<Option<TrialRecord>>> = (0..cfg.trials).map(|_| parking_lot::Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local_busy = 0u64;
                let mut local_fast = 0u64;
                loop {
                    let trial = next.fetch_add(1, Ordering::Relaxed);
                    if trial >= cfg.trials {
                        break;
                    }
                    let t0 = std::time::Instant::now();
                    let mut target = pool.acquire();
                    let (record, fast) = execute_trial(benchmark, &mut target, golden, cfg, total_steps, trial);
                    pool.release(target, record.outcome.is_due());
                    local_busy += t0.elapsed().as_nanos() as u64;
                    local_fast += fast as u64;
                    *records[trial].lock() = Some(record);
                }
                busy_ns.fetch_add(local_busy, Ordering::Relaxed);
                fast_compares.fetch_add(local_fast, Ordering::Relaxed);
            });
        }
    })
    .expect("campaign worker panicked outside a trial");

    let records: Vec<TrialRecord> = records
        .into_iter()
        .map(|slot| slot.into_inner().expect("trial record missing"))
        .collect();
    let mut report = report_for(
        benchmark,
        &records,
        workers,
        busy_ns.into_inner(),
        wall.elapsed().as_nanos() as u64,
    );
    report.pool_hits = pool.hits();
    report.pool_rebuilds = pool.rebuilds();
    report.fast_path_compares = fast_compares.into_inner();
    Campaign { benchmark: benchmark.to_string(), records, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{StepOutcome, VarClass, VarInfo, Variable};

    /// Tiny deterministic victim for campaign-level tests.
    struct Victim {
        data: Vec<u32>,
        ctrl: u64,
        done: usize,
    }
    impl Victim {
        fn new() -> Self {
            Victim { data: (0..64u32).collect(), ctrl: 0, done: 0 }
        }
    }
    impl FaultTarget for Victim {
        fn name(&self) -> &'static str {
            "victim"
        }
        fn total_steps(&self) -> usize {
            8
        }
        fn steps_executed(&self) -> usize {
            self.done
        }
        fn step(&mut self) -> StepOutcome {
            let base = (self.ctrl as usize) * 8; // corrupted ctrl => OOB
            for i in 0..8 {
                self.data[base + i] = self.data[base + i].wrapping_mul(3).wrapping_add(1);
            }
            self.ctrl += 1;
            self.done += 1;
            if self.done >= 8 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }
        fn variables(&mut self) -> Vec<Variable<'_>> {
            vec![
                Variable::from_slice(VarInfo::global("data", VarClass::Matrix, file!(), line!()), &mut self.data),
                Variable::from_scalar(VarInfo::local("ctrl", VarClass::ControlVariable, "loop", 0, file!(), line!()), &mut self.ctrl),
            ]
        }
        fn output(&self) -> Output {
            Output::I32Grid { dims: [8, 8, 1], data: self.data.iter().map(|&x| x as i32).collect() }
        }
        fn reset(&mut self) -> bool {
            for (i, x) in self.data.iter_mut().enumerate() {
                *x = i as u32;
            }
            self.ctrl = 0;
            self.done = 0;
            true
        }
    }

    fn golden() -> Output {
        let mut v = Victim::new();
        while v.step() == StepOutcome::Continue {}
        v.output()
    }

    #[test]
    fn campaign_is_deterministic_across_worker_counts() {
        let g = golden();
        let mut cfg = CampaignConfig { trials: 64, seed: 99, ..Default::default() };
        cfg.workers = 1;
        let a = run_campaign("victim", Victim::new, &g, &cfg);
        cfg.workers = 4;
        let b = run_campaign("victim", Victim::new, &g, &cfg);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.trial, rb.trial);
            assert_eq!(ra.model, rb.model);
            assert_eq!(ra.inject_step, rb.inject_step);
            assert_eq!(ra.outcome.label(), rb.outcome.label());
        }
    }

    #[test]
    fn campaign_produces_all_outcome_kinds() {
        let g = golden();
        let cfg = CampaignConfig { trials: 400, seed: 7, ..Default::default() };
        let c = run_campaign("victim", Victim::new, &g, &cfg);
        let (masked, sdc, due) = c.outcome_counts();
        assert_eq!(masked + sdc + due, 400);
        assert!(sdc > 0, "sdc={sdc}");
        assert!(due > 0, "due={due} (ctrl corruption should OOB)");
        assert!((c.sdc_fraction() + c.due_fraction() + c.masked_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn models_are_distributed_round_robin() {
        let g = golden();
        let cfg = CampaignConfig { trials: 40, seed: 1, ..Default::default() };
        let c = run_campaign("victim", Victim::new, &g, &cfg);
        for m in FaultModel::ALL {
            let n = c.records.iter().filter(|r| r.model == Some(m)).count();
            assert_eq!(n, 10);
        }
    }

    #[test]
    fn campaign_report_matches_records() {
        let g = golden();
        let cfg = CampaignConfig { trials: 100, seed: 7, workers: 4, ..Default::default() };
        let c = run_campaign("victim", Victim::new, &g, &cfg);
        assert_eq!(c.report.trials, 100);
        assert_eq!(c.report.label, "victim");
        assert!(c.report.wall_ns > 0);
        assert!(c.report.trials_per_sec() > 0.0);
        assert!(c.report.utilization() > 0.0);
        // Outcome keys aggregate to the same totals as the records.
        let (masked, sdc, due) = c.outcome_counts();
        let by_key = |suffix: &str| -> usize {
            c.report.outcomes.iter().filter(|(k, _)| k.ends_with(suffix)).map(|(_, n)| n).sum()
        };
        assert_eq!(by_key("/sdc"), sdc);
        assert_eq!(by_key("/due"), due);
        assert_eq!(by_key("/masked") + by_key("/hw-masked"), masked);
        let timeouts = c.records.iter().filter(|r| matches!(r.outcome, OutcomeRecord::Due(DueKind::Timeout))).count();
        assert_eq!(c.report.watchdog_fires, timeouts);
    }

    #[test]
    fn report_degrades_model_less_records_to_unknown_keys() {
        // Regression: `report_for` used to panic on records with
        // `model: None` (beam-shaped or hand-edited journals fed back
        // through parse_logs).
        let g = golden();
        let cfg = CampaignConfig { trials: 6, seed: 3, ..Default::default() };
        let mut records = run_campaign("victim", Victim::new, &g, &cfg).records;
        for r in &mut records {
            r.model = None;
        }
        let report = report_for("victim", &records, 1, 0, 0);
        assert_eq!(report.trials, 6);
        let unknown: usize = report.outcomes.iter().filter(|(k, _)| k.starts_with("unknown/")).map(|(_, n)| n).sum();
        assert_eq!(unknown, 6, "every model-less record lands under unknown/<outcome>: {:?}", report.outcomes);
    }

    #[test]
    fn pool_and_fastpath_gauges_account_for_every_trial() {
        let g = golden();
        let cfg = CampaignConfig { trials: 120, seed: 7, workers: 4, ..Default::default() };
        let c = run_campaign("victim", Victim::new, &g, &cfg);
        // Every trial acquires exactly one target.
        assert_eq!(c.report.pool_hits + c.report.pool_rebuilds, 120);
        assert!(c.report.pool_hits > 0, "resettable targets must be reused");
        // Every DUE drops its (possibly torn) instance, so the pool must
        // have rebuilt at least once per DUE, up to the instances still idle
        // at the end (bounded by the worker count plus the seeded probe).
        let dues = c.records.iter().filter(|r| r.outcome.is_due()).count() as u64;
        assert!(c.report.pool_rebuilds + 1 + 4 >= dues, "rebuilds {} vs dues {dues}", c.report.pool_rebuilds);
        // Every Masked outcome is proven by the bitwise fast path alone
        // (HardwareMasked skips the compare entirely).
        let masked = c.records.iter().filter(|r| matches!(r.outcome, OutcomeRecord::Masked)).count() as u64;
        assert_eq!(c.report.fast_path_compares, masked);
        let shown = c.report.to_string();
        assert!(shown.contains("pool reuse"), "report display surfaces the pool gauges:\n{shown}");
    }

    #[test]
    fn jsonl_recorder_sees_every_trial_with_gapless_seq() {
        let g = golden();
        let buf = obs::SharedBuf::new();
        obs::install(std::sync::Arc::new(obs::JsonlRecorder::new(buf.clone())));
        let cfg = CampaignConfig { trials: 64, seed: 11, workers: 4, ..Default::default() };
        let c = run_campaign("victim-telemetry", Victim::new, &g, &cfg);
        if let Some(rec) = obs::uninstall() {
            drop(rec); // drop flushes
        }
        assert_eq!(c.records.len(), 64);

        #[derive(serde::Deserialize)]
        struct Line {
            seq: u64,
            kind: String,
            data: TrialRecord,
        }
        let text = String::from_utf8(buf.contents()).unwrap();
        let mut seqs = Vec::new();
        let mut mine = 0usize;
        for line in text.lines() {
            // Every line parses standalone; concurrent tests may interleave
            // their own trial events, so filter by benchmark for the count.
            let parsed: Line = serde_json::from_str(line).expect("torn JSONL line");
            assert_eq!(parsed.kind, "trial");
            seqs.push(parsed.seq);
            if parsed.data.benchmark == "victim-telemetry" {
                mine += 1;
            }
        }
        assert_eq!(mine, 64, "one event per trial");
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..seqs.len() as u64).collect::<Vec<_>>(), "seq numbers are gapless");
    }

    #[test]
    fn windows_partition_the_timeline() {
        assert_eq!(window_of(0, 8, 4), 0);
        assert_eq!(window_of(7, 8, 4), 3);
        assert_eq!(window_of(4, 8, 4), 2);
        assert_eq!(window_of(100, 8, 4), 3); // clamped
        for r in run_campaign("victim", Victim::new, &golden(), &CampaignConfig { trials: 32, ..Default::default() }).records {
            assert!(r.window < r.n_windows);
        }
    }
}
