//! Property tests for the campaign journal (DESIGN.md §3, phi-store):
//! whatever entry sequence a campaign appends — including payloads with
//! quotes, newlines and non-ASCII — a scan returns it verbatim; and however
//! a crash truncates the final record, recovery keeps exactly the complete
//! prefix and `resume` leaves a journal that appends cleanly.

use proptest::prelude::*;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use store::{BatchPolicy, CampaignMeta, Journal, JournalEntry, JournalWriter, ShardCursor};

/// Sorted `(file name, bytes)` for every segment in a journal directory.
fn segment_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut segs: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .map(|p| (p.file_name().unwrap().to_string_lossy().into_owned(), std::fs::read(&p).unwrap()))
        .collect();
    segs.sort();
    segs
}

fn meta() -> CampaignMeta {
    CampaignMeta {
        kind: "inject".into(),
        benchmark: "prop".into(),
        seed: 42,
        trials: 1 << 20,
        shards: 4,
        n_windows: 5,
        version: store::journal::FORMAT_VERSION,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-journal-props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Decodes a `(selector, a, b)` triple into a journal entry, exercising all
/// variants and awkward payload characters.
fn entry(sel: u64, a: u64, b: u64) -> JournalEntry {
    match sel % 4 {
        0 => JournalEntry::Trial {
            shard: (a % 4) as usize,
            seq: b % 1000,
            payload: format!("{{\"trial\":{a},\"note\":\"q\\\"uote\\nnewline-µ\"}}"),
        },
        1 => JournalEntry::Trial { shard: (b % 4) as usize, seq: a % 1000, payload: format!("{{\"v\":{b}}}") },
        2 => JournalEntry::Checkpoint(ShardCursor { shard: (a % 4) as usize, completed: b % 500, next_stream: b % 500 + a % 7 }),
        _ => JournalEntry::ShardDone { shard: (a % 4) as usize },
    }
}

fn write_entries(dir: &std::path::Path, entries: &[JournalEntry]) -> JournalWriter {
    let mut w = JournalWriter::create(dir, meta()).unwrap();
    for e in entries {
        w.append(e).unwrap();
    }
    w
}

proptest! {
    #[test]
    fn scan_returns_appended_entries_verbatim(
        triples in prop::collection::vec((0u64..4, any::<u64>(), any::<u64>()), 0..60),
        rotate in prop::sample::select(vec![256u64, 1024, 1 << 20]),
    ) {
        let dir = tmp("roundtrip");
        let entries: Vec<JournalEntry> = triples.iter().map(|&(s, a, b)| entry(s, a, b)).collect();
        let mut w = JournalWriter::create(&dir, meta()).unwrap();
        w.rotate_at = rotate;
        for e in &entries {
            w.append(e).unwrap();
        }
        drop(w);
        let scan = Journal::scan(&dir).unwrap();
        prop_assert_eq!(scan.torn_bytes, 0);
        prop_assert_eq!(scan.meta, Some(meta()));
        prop_assert_eq!(scan.entries.len(), entries.len() + 1);
        for (got, want) in scan.entries[1..].iter().zip(&entries) {
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn truncated_final_record_recovers_the_complete_prefix(
        triples in prop::collection::vec((0u64..4, any::<u64>(), any::<u64>()), 1..30),
        cut in 1u64..200,
    ) {
        let dir = tmp("truncate");
        let entries: Vec<JournalEntry> = triples.iter().map(|&(s, a, b)| entry(s, a, b)).collect();
        drop(write_entries(&dir, &entries));

        // Chop `cut` bytes off the tail — anywhere from "clipped newline"
        // to "several records gone". The scan must keep exactly the
        // longest prefix of complete lines. The meta line is kept out of
        // reach: `create` flushes it before any append can happen, so a
        // crash can only tear the appended suffix.
        let seg = dir.join("seg-00000.jsonl");
        let mut bytes = Vec::new();
        std::fs::File::open(&seg).unwrap().read_to_end(&mut bytes).unwrap();
        let len = bytes.len() as u64;
        let meta_line = bytes.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        let cut = cut.min(len - meta_line).max(1);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - cut).unwrap();
        drop(f);

        let mut bytes = Vec::new();
        std::fs::File::open(&seg).unwrap().read_to_end(&mut bytes).unwrap();
        let complete_lines = bytes.iter().filter(|&&b| b == b'\n').count();

        let scan = Journal::scan(&dir).unwrap();
        prop_assert!(scan.entries.len() <= complete_lines, "only whole lines survive");
        prop_assert!(!scan.entries.is_empty(), "the meta line is never lost by a tail cut");
        for (got, want) in scan.entries[1..].iter().zip(&entries) {
            prop_assert_eq!(got, want);
        }

        // Resume truncates the torn tail physically and appends cleanly.
        let survivors = scan.entries.len();
        let (mut w, _) = JournalWriter::resume(&dir).unwrap();
        w.append(&JournalEntry::ShardDone { shard: 3 }).unwrap();
        drop(w);
        let rescan = Journal::scan(&dir).unwrap();
        prop_assert_eq!(rescan.torn_bytes, 0);
        prop_assert_eq!(rescan.entries.len(), survivors + 1);
        prop_assert_eq!(rescan.entries.last().unwrap(), &JournalEntry::ShardDone { shard: 3 });
    }

    #[test]
    fn any_batch_schedule_is_byte_identical_to_write_through(
        triples in prop::collection::vec((0u64..4, any::<u64>(), any::<u64>()), 0..80),
        max_bytes in prop::sample::select(vec![0usize, 1, 64, 700, 64 << 10]),
        delay_ms in prop::sample::select(vec![0u64, 1_000_000]),
        rotate in prop::sample::select(vec![256u64, 2048, 1 << 20]),
    ) {
        // Group commit coalesces write syscalls; it must never move, drop
        // or reorder a byte. Whatever batch-size/flush-timing schedule a
        // policy produces — flush-every-line, flush-on-rotation-only,
        // hold-everything-until-close — the segment files are bit-identical
        // to the write-through journal of the same entries.
        let entries: Vec<JournalEntry> = triples.iter().map(|&(s, a, b)| entry(s, a, b)).collect();

        let ref_dir = tmp("batch-ref");
        let mut w = JournalWriter::create(&ref_dir, meta()).unwrap();
        w.rotate_at = rotate;
        w.batch = BatchPolicy::unbatched();
        for e in &entries {
            w.append(e).unwrap();
        }
        w.close().unwrap();

        let alt_dir = tmp("batch-alt");
        let mut w = JournalWriter::create(&alt_dir, meta()).unwrap();
        w.rotate_at = rotate;
        w.batch = BatchPolicy { max_bytes, max_delay: std::time::Duration::from_millis(delay_ms) };
        for e in &entries {
            w.append(e).unwrap();
        }
        w.close().unwrap();

        prop_assert_eq!(segment_bytes(&ref_dir), segment_bytes(&alt_dir));
    }

    #[test]
    fn truncation_mid_batch_recovers_the_complete_prefix(
        triples in prop::collection::vec((0u64..4, any::<u64>(), any::<u64>()), 2..40),
        cut in 1u64..400,
    ) {
        // Hold every line in one giant batch, commit it as a single
        // write(), then tear an arbitrary suffix off — modelling a crash
        // that lands mid-batch. Because the buffer is FIFO, what survives
        // is a prefix of whole lines plus at most one torn line, and the
        // existing torn-tail scan recovers exactly the complete prefix.
        let dir = tmp("truncate-batch");
        let entries: Vec<JournalEntry> = triples.iter().map(|&(s, a, b)| entry(s, a, b)).collect();
        let mut w = JournalWriter::create(&dir, meta()).unwrap();
        w.batch = BatchPolicy { max_bytes: usize::MAX, max_delay: std::time::Duration::from_secs(1 << 20) };
        for e in &entries {
            w.append(e).unwrap();
        }
        w.close().unwrap();

        let seg = dir.join("seg-00000.jsonl");
        let mut bytes = Vec::new();
        std::fs::File::open(&seg).unwrap().read_to_end(&mut bytes).unwrap();
        let len = bytes.len() as u64;
        let meta_line = bytes.iter().position(|&b| b == b'\n').unwrap() as u64 + 1;
        let cut = cut.min(len - meta_line).max(1);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - cut).unwrap();
        drop(f);

        let mut bytes = Vec::new();
        std::fs::File::open(&seg).unwrap().read_to_end(&mut bytes).unwrap();
        let complete_lines = bytes.iter().filter(|&&b| b == b'\n').count();

        let scan = Journal::scan(&dir).unwrap();
        prop_assert!(scan.entries.len() <= complete_lines, "only whole lines survive");
        prop_assert!(!scan.entries.is_empty(), "the meta line is never lost by a tail cut");
        for (got, want) in scan.entries[1..].iter().zip(&entries) {
            prop_assert_eq!(got, want);
        }

        // Resume truncates the torn tail physically and appends cleanly.
        let survivors = scan.entries.len();
        let (mut w, _) = JournalWriter::resume(&dir).unwrap();
        w.append(&JournalEntry::ShardDone { shard: 3 }).unwrap();
        w.close().unwrap();
        let rescan = Journal::scan(&dir).unwrap();
        prop_assert_eq!(rescan.torn_bytes, 0);
        prop_assert_eq!(rescan.entries.len(), survivors + 1);
        prop_assert_eq!(rescan.entries.last().unwrap(), &JournalEntry::ShardDone { shard: 3 });
    }

    #[test]
    fn corrupting_one_byte_never_yields_a_phantom_record(
        triples in prop::collection::vec((0u64..4, any::<u64>(), any::<u64>()), 2..20),
        victim: u64,
        flip in 1u64..256,
    ) {
        let dir = tmp("bitflip");
        let entries: Vec<JournalEntry> = triples.iter().map(|&(s, a, b)| entry(s, a, b)).collect();
        drop(write_entries(&dir, &entries));

        let seg = dir.join("seg-00000.jsonl");
        let mut bytes = Vec::new();
        std::fs::File::open(&seg).unwrap().read_to_end(&mut bytes).unwrap();
        let pos = victim % bytes.len() as u64;
        let corrupted = bytes[pos as usize] ^ flip as u8;
        let mut f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.seek(SeekFrom::Start(pos)).unwrap();
        f.write_all(&[corrupted]).unwrap();
        drop(f);

        // The newest segment may lose a suffix (torn-tail rule) but every
        // surviving entry must be one that was actually appended — the CRC
        // makes a decoded-but-wrong record (checksummed) impossible, and a
        // flipped newline can only split/join lines, which breaks the CRC.
        let all: Vec<JournalEntry> =
            std::iter::once(JournalEntry::Meta(meta())).chain(entries.iter().cloned()).collect();
        let scan = Journal::scan(&dir).unwrap();
        for (i, got) in scan.entries.iter().enumerate() {
            prop_assert_eq!(got, &all[i]);
        }
        prop_assert!(scan.entries.len() <= all.len());
    }
}
