//! Property tests for the first-writer-wins distributed merge.
//!
//! The distributed contract (DESIGN.md §14): however executor streams
//! interleave, duplicate, or get re-dispatched, the coordinator's journal
//! must replay to exactly the aggregate a single-host run produces, and
//! re-importing an already-merged stream must change nothing. These
//! properties drive `store::Importer` with arbitrary schedules and pin
//! both invariants.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use store::journal::{CampaignMeta, Journal, JournalWriter, FORMAT_VERSION};
use store::merge::{Importer, Offer};
use store::shard::{ShardPlan, ShardProgress};

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-merge-props").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn meta(trials: usize, shards: usize) -> CampaignMeta {
    CampaignMeta {
        kind: "inject".into(),
        benchmark: "victim".into(),
        seed: 7,
        trials,
        shards,
        n_windows: 4,
        version: FORMAT_VERSION,
    }
}

/// The canonical payload of a global trial index — what a deterministic
/// executor would compute for it no matter which lease delivered it.
fn payload(global: usize) -> String {
    format!("{{\"trial\":{global}}}")
}

/// Concatenated bytes of every journal segment in `dir`, in segment order.
fn segment_bytes(dir: &Path) -> Vec<u8> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("seg-"))
        .collect();
    names.sort();
    let mut bytes = Vec::new();
    for n in names {
        bytes.extend(std::fs::read(dir.join(n)).unwrap());
    }
    bytes
}

/// Replays `dir` and asserts its per-shard payloads are exactly the
/// canonical aggregate of `plan` — the byte-identity half of the contract.
fn assert_canonical(dir: &Path, plan: &ShardPlan) -> Result<(), TestCaseError> {
    let scan = Journal::scan(dir).unwrap();
    let progress = ShardProgress::replay(plan.shards, &scan.entries).unwrap();
    for shard in 0..plan.shards {
        let want: Vec<String> = plan.range(shard).map(payload).collect();
        prop_assert_eq!(&progress.shards[shard].payloads, &want);
    }
    Ok(())
}

proptest! {
    /// Any interleaving of in-order executor streams — including arbitrary
    /// re-offers of already-merged trials, as produced by straggler
    /// re-dispatch and reconnect replays — merges to the canonical
    /// aggregate, with every duplicate counted and none journaled.
    #[test]
    fn interleaved_duplicated_streams_merge_to_the_canonical_aggregate(
        trials in 1usize..48,
        shards in 1usize..5,
        schedule in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u64>()), 0..160),
    ) {
        let dir = tmp(&format!("interleave-{trials}-{shards}-{}", schedule.len()));
        let plan = ShardPlan::new(trials, shards);
        let progress = ShardProgress::replay(shards, &[]).unwrap();
        let mut w = JournalWriter::create(&dir, meta(trials, shards)).unwrap();
        let mut imp = Importer::new(&plan, &progress);

        let mut expected_dups = 0u64;
        for (sel, dup, pick) in schedule {
            let shard = (sel % shards as u64) as usize;
            let next = imp.next_seq(shard);
            if dup && next > 0 {
                // Re-offer something the merge already holds (a straggler
                // replaying its range from the start, say).
                let seq = pick % next;
                prop_assert_eq!(imp.offer(&mut w, shard, seq, &payload(plan.range(shard).start + seq as usize)).unwrap(), Offer::Duplicate);
                expected_dups += 1;
            } else if !imp.range_complete(shard) {
                prop_assert_eq!(imp.offer(&mut w, shard, next, &payload(plan.range(shard).start + next as usize)).unwrap(), Offer::Accepted);
            }
        }
        // Whatever the schedule left unfinished, a final drain (the
        // coordinator re-dispatching every open range) completes it.
        for shard in 0..shards {
            while !imp.range_complete(shard) {
                let next = imp.next_seq(shard);
                imp.offer(&mut w, shard, next, &payload(plan.range(shard).start + next as usize)).unwrap();
            }
        }
        prop_assert_eq!(imp.accepted, trials as u64);
        prop_assert_eq!(imp.duplicates, expected_dups);
        w.close().unwrap();

        assert_canonical(&dir, &plan)?;
    }

    /// Re-importing the complete stream into a resumed journal is a no-op:
    /// every offer is a duplicate, no bytes are appended. This is the
    /// coordinator-restart path — segments uploaded twice cost nothing.
    #[test]
    fn re_import_after_resume_is_idempotent(
        trials in 1usize..40,
        shards in 1usize..5,
    ) {
        let dir = tmp(&format!("idempotent-{trials}-{shards}"));
        let plan = ShardPlan::new(trials, shards);
        let progress = ShardProgress::replay(shards, &[]).unwrap();
        let mut w = JournalWriter::create(&dir, meta(trials, shards)).unwrap();
        let mut imp = Importer::new(&plan, &progress);
        for shard in 0..shards {
            for (seq, global) in plan.range(shard).enumerate() {
                imp.offer(&mut w, shard, seq as u64, &payload(global)).unwrap();
            }
        }
        w.close().unwrap();
        let before = segment_bytes(&dir);

        let (mut w, scan) = JournalWriter::resume(&dir).unwrap();
        let progress = ShardProgress::replay(shards, &scan.entries).unwrap();
        let mut imp = Importer::new(&plan, &progress);
        for shard in 0..shards {
            prop_assert!(imp.range_complete(shard));
            for (seq, global) in plan.range(shard).enumerate() {
                prop_assert_eq!(imp.offer(&mut w, shard, seq as u64, &payload(global)).unwrap(), Offer::Duplicate);
            }
        }
        prop_assert_eq!(imp.accepted, 0);
        prop_assert_eq!(imp.duplicates, trials as u64);
        drop(w);

        prop_assert_eq!(segment_bytes(&dir), before);
        assert_canonical(&dir, &plan)?;
    }

    /// A gapped offer (an executor skipping ahead of the lease cursor) is a
    /// protocol violation: rejected without journaling, cursor unmoved —
    /// and the merge still completes canonically afterwards.
    #[test]
    fn gapped_offers_are_rejected_without_corrupting_the_merge(
        trials in 2usize..40,
        gap in 1u64..8,
    ) {
        let dir = tmp(&format!("gap-{trials}-{gap}"));
        let plan = ShardPlan::new(trials, 1);
        let progress = ShardProgress::replay(1, &[]).unwrap();
        let mut w = JournalWriter::create(&dir, meta(trials, 1)).unwrap();
        let mut imp = Importer::new(&plan, &progress);

        let ahead = imp.next_seq(0) + gap;
        if ahead < trials as u64 {
            let err = imp.offer(&mut w, 0, ahead, &payload(ahead as usize)).unwrap_err();
            prop_assert!(err.to_string().contains("gapless"), "{}", err);
        } else {
            let err = imp.offer(&mut w, 0, ahead, &payload(ahead as usize)).unwrap_err();
            prop_assert!(err.to_string().contains("past its range"), "{}", err);
        }
        prop_assert_eq!(imp.next_seq(0), 0);
        prop_assert_eq!(imp.accepted, 0);

        for (seq, global) in plan.range(0).enumerate() {
            imp.offer(&mut w, 0, seq as u64, &payload(global)).unwrap();
        }
        w.close().unwrap();
        assert_canonical(&dir, &plan)?;
    }
}
