//! Durable campaign store (`phi-store`, imported as `store`).
//!
//! The paper's evidence rests on long campaigns — 90 000+ CAROL-FI
//! injections, beam runs accumulating ≥100 SDC+DUE events per benchmark —
//! and a monolithic in-process loop loses everything on a crash, OOM or
//! ctrl-c. This crate provides the three primitives that turn a one-shot
//! batch loop into a resumable, shardable pipeline:
//!
//! * [`journal`] — an append-only, crash-safe campaign journal: checksummed
//!   JSONL segment files holding per-trial records plus periodic shard-cursor
//!   checkpoints. Opening scans the segments, keeps every complete record and
//!   drops the torn tail (Memento-style detectable recoverability: the
//!   journal's durable prefix is always a valid campaign prefix).
//! * [`shard`] — deterministic campaign sharding: a campaign's trial range
//!   splits into per-shard sub-ranges such that N shards executed in any
//!   order, interleaving or process lifetime merge into an aggregate
//!   bit-identical to the single-shot run (trials keep their global index,
//!   which is also their RNG stream id).
//! * [`queue`] — a work-queue scheduler (crossbeam channel over scoped worker
//!   threads) with cooperative stop, used by the `carolfi`/`beamsim`
//!   orchestrators to drain shard tasks.
//!
//! Layering: `phi-store` sits below the campaign crates. Trial payloads are
//! opaque pre-serialized JSON strings — nothing in here knows what a trial
//! is, which is also what lets `parse_logs` treat injection and beam
//! journals uniformly.

pub mod journal;
pub mod ledger;
pub mod merge;
pub mod queue;
pub mod shard;

pub use journal::{
    decode_record, encode_record, is_transient, retry_transient, transient_backoff, BatchPolicy, CampaignMeta, Journal,
    JournalEntry, JournalScan, JournalWriter, ShardCursor, ADAPTIVE_FORMAT_VERSION, MAX_TRANSIENT_RETRIES,
};
pub use ledger::{LeaseState, LedgerEntry, LedgerScan, LedgerWriter, LEDGER_FILE};
pub use merge::{Importer, Offer};
pub use queue::{run_tasks, StopFlag};
pub use shard::{ShardPlan, ShardProgress, ShardState};

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the per-line checksum of
/// the journal format. Table-driven; the table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let base = b"journal line payload".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), reference, "flip at bit {i} undetected");
        }
    }
}
