//! Deterministic campaign sharding.
//!
//! A campaign of `trials` trials splits into `shards` contiguous sub-ranges.
//! The invariant that makes sharding free of determinism hazards: a trial
//! keeps its *global* index no matter which shard runs it, and the global
//! index is also its RNG stream id (`carolfi::rng::fork(seed, index)`), its
//! fault-model selector (`index % models.len()`) and its position in the
//! aggregate record vector. N shards executed in any order, interleaving or
//! process lifetime therefore merge into an aggregate bit-identical to the
//! single-shot run.
//!
//! [`ShardProgress`] rebuilds per-shard cursors from a journal scan and
//! enforces the gapless-sequence invariant: shard-local sequence numbers
//! must run 0, 1, 2, … with no gap or duplicate, so no trial is ever lost
//! or double-counted across interruptions.

use crate::journal::{JournalEntry, ShardCursor};

/// Splits `0..trials` into `shards` contiguous ranges whose lengths differ
/// by at most one (the first `trials % shards` ranges get the extra trial).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    pub trials: usize,
    pub shards: usize,
}

impl ShardPlan {
    pub fn new(trials: usize, shards: usize) -> Self {
        assert!(shards > 0, "a campaign needs at least one shard");
        ShardPlan { trials, shards }
    }

    /// Global trial range of `shard`.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        let base = self.trials / self.shards;
        let extra = self.trials % self.shards;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..start + len
    }

    /// Per-shard seed material derived from the campaign seed (SplitMix64).
    /// Trial RNGs are keyed by global index, not by this — it exists for
    /// shard-local decisions (e.g. jittering checkpoint cadence) and as a
    /// compact shard identity in diagnostics.
    pub fn shard_seed(&self, master: u64, shard: usize) -> u64 {
        let mut z = master ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Recovered state of one shard.
#[derive(Debug, Clone, Default)]
pub struct ShardState {
    /// Completed (journaled) trials, shard-local.
    pub completed: u64,
    /// A `ShardDone` entry was journaled.
    pub done: bool,
    /// Opaque trial payloads in shard-local sequence order.
    pub payloads: Vec<String>,
}

/// Per-shard progress rebuilt from journal entries.
#[derive(Debug, Clone)]
pub struct ShardProgress {
    pub shards: Vec<ShardState>,
}

impl ShardProgress {
    /// Replays journal entries into per-shard cursors, validating the
    /// gapless-sequence invariant and checkpoint consistency.
    pub fn replay(shards: usize, entries: &[JournalEntry]) -> std::io::Result<Self> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut state: Vec<ShardState> = (0..shards).map(|_| ShardState::default()).collect();
        for entry in entries {
            match entry {
                JournalEntry::Meta(_) => {}
                JournalEntry::Trial { shard, seq, payload } => {
                    let s = state.get_mut(*shard).ok_or_else(|| invalid(format!("trial for shard {shard}, journal has {shards} shards")))?;
                    if *seq != s.completed {
                        return Err(invalid(format!(
                            "shard {shard}: trial sequence not gapless (expected seq {}, found {seq})",
                            s.completed
                        )));
                    }
                    s.completed += 1;
                    s.payloads.push(payload.clone());
                }
                JournalEntry::Checkpoint(ShardCursor { shard, completed, .. }) => {
                    let s = state.get(*shard).ok_or_else(|| invalid(format!("checkpoint for shard {shard}, journal has {shards} shards")))?;
                    if *completed != s.completed {
                        return Err(invalid(format!(
                            "shard {shard}: checkpoint claims {completed} completed trials, journal replays {}",
                            s.completed
                        )));
                    }
                }
                JournalEntry::ShardDone { shard } => {
                    let s = state.get_mut(*shard).ok_or_else(|| invalid(format!("shard-done for shard {shard}, journal has {shards} shards")))?;
                    s.done = true;
                }
                // Allocation decisions carry planner state, not shard
                // progress; the adaptive orchestrator validates them
                // separately against a replayed planner.
                JournalEntry::Plan { .. } => {}
            }
        }
        Ok(ShardProgress { shards: state })
    }

    /// Total completed trials across shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// True when every shard journaled its `ShardDone`.
    pub fn all_done(&self) -> bool {
        self.shards.iter().all(|s| s.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_trial_space_for_any_shard_count() {
        for trials in [0usize, 1, 7, 100, 101, 4096] {
            for shards in [1usize, 2, 3, 7, 16, 97] {
                let plan = ShardPlan::new(trials, shards);
                let mut covered = Vec::new();
                let mut prev_end = 0;
                for s in 0..shards {
                    let r = plan.range(s);
                    assert_eq!(r.start, prev_end, "trials={trials} shards={shards} shard={s}");
                    prev_end = r.end;
                    covered.extend(r);
                }
                assert_eq!(covered, (0..trials).collect::<Vec<_>>(), "trials={trials} shards={shards}");
                // Balanced to within one trial.
                let lens: Vec<usize> = (0..shards).map(|s| plan.range(s).len()).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1);
            }
        }
    }

    #[test]
    fn shard_seeds_differ_between_shards() {
        let plan = ShardPlan::new(100, 8);
        let seeds: std::collections::HashSet<u64> = (0..8).map(|s| plan.shard_seed(2017, s)).collect();
        assert_eq!(seeds.len(), 8);
    }

    fn trial(shard: usize, seq: u64) -> JournalEntry {
        JournalEntry::Trial { shard, seq, payload: format!("p{shard}/{seq}") }
    }

    #[test]
    fn replay_rebuilds_cursors_and_payload_order() {
        // Shards interleaved in arbitrary order, as concurrent workers write.
        let entries = vec![
            trial(1, 0),
            trial(0, 0),
            trial(1, 1),
            JournalEntry::Checkpoint(ShardCursor { shard: 1, completed: 2, next_stream: 99 }),
            trial(0, 1),
            trial(1, 2),
            JournalEntry::ShardDone { shard: 1 },
        ];
        let p = ShardProgress::replay(2, &entries).unwrap();
        assert_eq!(p.shards[0].completed, 2);
        assert_eq!(p.shards[1].completed, 3);
        assert!(p.shards[1].done && !p.shards[0].done);
        assert!(!p.all_done());
        assert_eq!(p.completed(), 5);
        assert_eq!(p.shards[1].payloads, vec!["p1/0", "p1/1", "p1/2"]);
    }

    #[test]
    fn replay_rejects_gaps_and_duplicates() {
        let gap = vec![trial(0, 0), trial(0, 2)];
        let err = ShardProgress::replay(1, &gap).unwrap_err();
        assert!(err.to_string().contains("gapless"), "{err}");

        let dup = vec![trial(0, 0), trial(0, 0)];
        assert!(ShardProgress::replay(1, &dup).is_err());
    }

    #[test]
    fn replay_rejects_inconsistent_checkpoints_and_foreign_shards() {
        let bad_ckpt = vec![trial(0, 0), JournalEntry::Checkpoint(ShardCursor { shard: 0, completed: 5, next_stream: 5 })];
        assert!(ShardProgress::replay(1, &bad_ckpt).is_err());
        assert!(ShardProgress::replay(1, &[trial(3, 0)]).is_err());
    }
}
