//! Work-queue scheduling for shard tasks.
//!
//! A crossbeam channel fans shard tasks out to scoped worker threads.
//! Workers pull until the queue drains or a [`StopFlag`] trips; the flag is
//! also handed to the task body so long-running shards can stop between
//! trials (budget exhaustion, embedder-requested shutdown). Because the
//! campaign journal flushes every append, a cooperative stop — or even a
//! hard kill — never loses more than the single in-flight record.

use crossbeam::channel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative shutdown signal shared by the scheduler, its workers and the
/// embedding binary.
#[derive(Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful stop: workers finish their current trial, journal
    /// a checkpoint and exit.
    pub fn request_stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn should_stop(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Runs `tasks` on `workers` threads pulling from a shared queue. Returns
/// when the queue drains or every worker observed `stop`. Worker panics
/// propagate to the caller after the remaining workers finish.
pub fn run_tasks<T, F>(tasks: Vec<T>, workers: usize, stop: &StopFlag, worker: F)
where
    T: Send,
    F: Fn(T, &StopFlag) + Sync,
{
    if tasks.is_empty() {
        return;
    }
    let workers = workers.max(1).min(tasks.len());
    let (tx, rx) = channel::unbounded();
    for task in tasks {
        if tx.send(task).is_err() {
            unreachable!("queue receiver alive until scope ends");
        }
    }
    drop(tx); // queue drains to disconnection
    let worker = &worker;
    let result = crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            scope.spawn(move |_| {
                obs::incr("queue/workers", 1);
                while !stop.should_stop() {
                    match rx.try_recv() {
                        Ok(task) => worker(task, stop),
                        Err(_) => break,
                    }
                }
            });
        }
    });
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_tasks_run_exactly_once() {
        let hits = vec![0u8; 64].into_iter().map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        run_tasks((0..64).collect(), 8, &StopFlag::new(), |i: usize, _| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn stop_flag_leaves_remaining_tasks_unexecuted() {
        let stop = StopFlag::new();
        let ran = AtomicUsize::new(0);
        run_tasks((0..1000).collect(), 1, &stop, |_: usize, stop| {
            if ran.fetch_add(1, Ordering::SeqCst) + 1 >= 10 {
                stop.request_stop();
            }
        });
        let n = ran.load(Ordering::SeqCst);
        assert!((10..1000).contains(&n), "stopped after {n} tasks");
        assert!(stop.should_stop());
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_tasks(vec![1, 2, 3], 2, &StopFlag::new(), |i: i32, _| {
                if i == 2 {
                    panic!("task exploded");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        run_tasks(Vec::<()>::new(), 4, &StopFlag::new(), |_, _| unreachable!());
    }
}
