//! Write-ahead coordinator ledger for distributed campaigns.
//!
//! The distributed coordinator records every lease decision in a single
//! append-only `ledger.jsonl` file next to the campaign journal, using the
//! journal's checksummed line codec (`<crc32-hex8> <json>\n`). The write
//! order is what makes a SIGKILLed coordinator resumable without re-running
//! completed ranges:
//!
//! * [`LedgerEntry::Granted`] is appended and synced **before** the lease
//!   frame leaves the coordinator — a lease the network ever saw is always
//!   on disk.
//! * [`LedgerEntry::Completed`] is appended **after** the central journal
//!   sealed the shard (checkpoint + `ShardDone` + fsync) — so a
//!   ledger-completed shard is always journal-sealed. The converse crash
//!   window (sealed but not ledgered) is reconciled on open by replaying
//!   the journal's own shard progress.
//!
//! Recovery follows the journal's torn-tail rule: opening keeps the longest
//! prefix of complete checksummed lines and physically truncates the rest.
//! Every grant without a matching `Completed` belongs to a connection of
//! the dead coordinator process and is treated as expired — its shard is
//! immediately re-dispatchable, and the dedupe-by-index merge makes any
//! duplicated trials from a still-running executor harmless.

use crate::journal::{decode_record, encode_record, retry_transient};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Ledger file name inside a campaign journal directory. Deliberately not
/// `seg-*.jsonl`, so journal segment scans never pick it up.
pub const LEDGER_FILE: &str = "ledger.jsonl";

/// One durable coordinator decision.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LedgerEntry {
    /// Lease `lease` over `shard` granted to `executor` (write-ahead of the
    /// lease frame).
    Granted { lease: u64, shard: usize, executor: String },
    /// The lease showed no liveness within the timeout; its shard became
    /// re-dispatchable.
    Expired { lease: u64 },
    /// The shard's full range is merged and sealed in the central journal.
    Completed { lease: u64, shard: usize },
}

impl LedgerEntry {
    fn lease(&self) -> u64 {
        match self {
            LedgerEntry::Granted { lease, .. } | LedgerEntry::Expired { lease } | LedgerEntry::Completed { lease, .. } => *lease,
        }
    }
}

/// Replayed state of one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Granted, neither expired nor completed. After a coordinator crash
    /// every active lease belongs to a dead connection and must be treated
    /// as expired.
    Active,
    Expired,
    Completed,
}

/// Per-lease shard and replayed state.
pub type LeaseMap = HashMap<u64, (usize, LeaseState)>;

/// Result of opening (and replaying) a ledger.
#[derive(Debug)]
pub struct LedgerScan {
    pub entries: Vec<LedgerEntry>,
    /// Bytes of torn tail truncated from the file (0 = clean).
    pub torn_bytes: u64,
    /// First unused lease id (max granted + 1).
    pub next_lease: u64,
    /// Per-lease shard and state after replay.
    pub leases: LeaseMap,
}

fn corrupt(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Replays ledger entries into per-lease state. Grants must be unique and
/// `Expired`/`Completed` must name a granted lease — anything else means
/// the file was edited out from under us.
fn replay(entries: &[LedgerEntry]) -> std::io::Result<(u64, LeaseMap)> {
    let mut leases = LeaseMap::new();
    let mut next_lease = 0u64;
    for e in entries {
        let id = e.lease();
        match e {
            LedgerEntry::Granted { lease, shard, .. } => {
                if leases.insert(*lease, (*shard, LeaseState::Active)).is_some() {
                    return Err(corrupt(format!("ledger grants lease {lease} twice")));
                }
                next_lease = next_lease.max(lease + 1);
            }
            LedgerEntry::Expired { .. } => match leases.get_mut(&id) {
                Some((_, state @ LeaseState::Active)) => *state = LeaseState::Expired,
                Some((_, state)) => return Err(corrupt(format!("ledger expires lease {id} in state {state:?}"))),
                None => return Err(corrupt(format!("ledger expires unknown lease {id}"))),
            },
            LedgerEntry::Completed { shard, .. } => match leases.get_mut(&id) {
                Some((s, state @ LeaseState::Active)) if *s == *shard => *state = LeaseState::Completed,
                Some(_) => return Err(corrupt(format!("ledger completes lease {id} inconsistently"))),
                None => return Err(corrupt(format!("ledger completes unknown lease {id}"))),
            },
        }
    }
    Ok((next_lease, leases))
}

/// Appending side of the ledger. Entries are rare (a handful per shard), so
/// every append writes through and the sync points are explicit.
#[derive(Debug)]
pub struct LedgerWriter {
    path: PathBuf,
    file: std::fs::File,
}

impl LedgerWriter {
    /// Opens (creating if missing) the ledger in `dir`, validates its
    /// checksummed prefix, truncates any torn tail and replays the
    /// surviving entries.
    pub fn open(dir: &Path) -> std::io::Result<(Self, LedgerScan)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LEDGER_FILE);
        // Never truncate: an existing ledger is replayed, then appended to.
        let mut file = OpenOptions::new().create(true).truncate(false).read(true).write(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut entries = Vec::new();
        let mut valid_end = 0usize;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else { break };
            match decode_record::<LedgerEntry>(&bytes[pos..pos + nl]) {
                Some(entry) => {
                    entries.push(entry);
                    pos += nl + 1;
                    valid_end = pos;
                }
                None => break,
            }
        }
        let torn_bytes = (bytes.len() - valid_end) as u64;
        if torn_bytes > 0 {
            file.set_len(valid_end as u64)?;
            obs::incr("store/torn-bytes", torn_bytes);
        }
        file.seek(std::io::SeekFrom::End(0))?;
        let (next_lease, leases) = replay(&entries)?;
        Ok((LedgerWriter { path, file }, LedgerScan { entries, torn_bytes, next_lease, leases }))
    }

    /// Appends one entry (write-through). The caller decides when to
    /// [`LedgerWriter::sync`]; grants sync before their lease frame is sent.
    pub fn append(&mut self, entry: &LedgerEntry) -> std::io::Result<()> {
        let line = encode_record(entry)?;
        retry_transient(|| self.file.write_all(&line))?;
        retry_transient(|| self.file.flush())?;
        obs::incr("store/appends", 1);
        Ok(())
    }

    /// Forces ledger bytes to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        retry_transient(|| self.file.sync_data())
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-ledger").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrips_and_replays_lease_states() {
        let dir = tmp("roundtrip");
        let (mut w, scan) = LedgerWriter::open(&dir).unwrap();
        assert_eq!(scan.next_lease, 0);
        assert!(scan.entries.is_empty());
        w.append(&LedgerEntry::Granted { lease: 0, shard: 2, executor: "ex-a".into() }).unwrap();
        w.append(&LedgerEntry::Granted { lease: 1, shard: 0, executor: "ex-b".into() }).unwrap();
        w.append(&LedgerEntry::Expired { lease: 0 }).unwrap();
        w.append(&LedgerEntry::Granted { lease: 2, shard: 2, executor: "ex-b".into() }).unwrap();
        w.append(&LedgerEntry::Completed { lease: 2, shard: 2 }).unwrap();
        w.sync().unwrap();
        drop(w);

        let (_, scan) = LedgerWriter::open(&dir).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.entries.len(), 5);
        assert_eq!(scan.next_lease, 3);
        assert_eq!(scan.leases[&0], (2, LeaseState::Expired));
        assert_eq!(scan.leases[&1], (0, LeaseState::Active));
        assert_eq!(scan.leases[&2], (2, LeaseState::Completed));
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = tmp("torn");
        let (mut w, _) = LedgerWriter::open(&dir).unwrap();
        w.append(&LedgerEntry::Granted { lease: 0, shard: 0, executor: "ex".into() }).unwrap();
        w.append(&LedgerEntry::Completed { lease: 0, shard: 0 }).unwrap();
        drop(w);
        let path = dir.join(LEDGER_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap(); // tear the Completed line
        drop(f);

        let (mut w, scan) = LedgerWriter::open(&dir).unwrap();
        assert!(scan.torn_bytes > 0);
        assert_eq!(scan.entries.len(), 1);
        assert_eq!(scan.leases[&0], (0, LeaseState::Active));
        w.append(&LedgerEntry::Expired { lease: 0 }).unwrap();
        drop(w);
        let (_, scan) = LedgerWriter::open(&dir).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.leases[&0], (0, LeaseState::Expired));
    }

    #[test]
    fn inconsistent_histories_are_corruption_not_silence() {
        let dir = tmp("inconsistent");
        let (mut w, _) = LedgerWriter::open(&dir).unwrap();
        w.append(&LedgerEntry::Expired { lease: 7 }).unwrap();
        drop(w);
        let err = LedgerWriter::open(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown lease 7"), "{err}");
    }
}
