//! Append-only, crash-safe campaign journal.
//!
//! A journal is a directory of segment files (`seg-00000.jsonl`, …). Each
//! line is one [`JournalEntry`] encoded as
//!
//! ```text
//! <crc32-hex8> <entry-json>\n
//! ```
//!
//! where the checksum covers the JSON bytes. Appends go to the newest
//! segment only. Under the default group-commit policy ([`BatchPolicy`])
//! encoded lines accumulate in a writer-side buffer and reach the OS as one
//! `write()` when the batch fills, ages out, or a checkpoint/sync forces it
//! down; with batching disabled every line is written through individually.
//! Either way the *byte stream* is identical — batching changes only the
//! write boundaries — and loss on a crash is a strict suffix of whole
//! records plus at most one torn line. [`Journal::scan`] validates every
//! line; the recovery rule is *keep every complete record, drop the torn
//! tail*: scanning stops at the first invalid line of the newest segment,
//! and [`JournalWriter::resume`] physically truncates the file back to the
//! end of its valid prefix before appending. An invalid line in any older
//! segment is not a torn tail — writers never touch closed segments — so it
//! is reported as corruption instead of being silently dropped.
//!
//! Because the buffer is FIFO and checkpoints force it down before fsync, a
//! surviving `Checkpoint` entry still implies every `Trial` it covers
//! survived — the invariant resume relies on. Writers should be retired
//! through [`JournalWriter::close`]; dropping one still flushes, but an
//! error there can only be reported loudly (stderr +
//! `store/drop_flush_errors`), not returned.
//!
//! Durability telemetry flows through `phi-obs`: `store.append`/`store.scan`
//! spans, `store/appends`, `store/batch_flushes`, `store/checkpoints`,
//! `store/segments`, `store/torn-bytes` and `store/drop_flush_errors`
//! counters.

use crate::crc32;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Journal format version, embedded in [`CampaignMeta`].
pub const FORMAT_VERSION: u32 = 1;

/// Journal format version of adaptive (planner-driven) campaigns. Version-2
/// journals interleave [`JournalEntry::Plan`] allocation decisions with the
/// trial stream, run as a single shard, and order trial entries by
/// *execution* sequence — the payload's own trial index, not `seq`, names
/// the RNG stream. Version-1 readers reject them via the meta check.
pub const ADAPTIVE_FORMAT_VERSION: u32 = 2;

/// Transient-I/O retry budget: how many times one journal operation is
/// re-attempted before its error is surfaced to the orchestrator (which
/// then fails the shard).
pub const MAX_TRANSIENT_RETRIES: u32 = 5;

/// True for I/O errors worth retrying in place: the kernel asked us to try
/// again, nothing is known to be wrong with the journal itself. Network
/// timeouts and peer resets/aborts count too — distributed campaigns route
/// frame I/O through the same [`retry_transient`] budget, and a dropped TCP
/// connection is exactly as recoverable as an `EINTR` on a local append.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// Capped exponential backoff with deterministic jitter for transient
/// journal errors. No wall clock and no OS entropy go into the schedule —
/// a campaign's retry timing is a pure function of the attempt number, so
/// reproducing a failure reproduces its recovery too. The jitter term
/// de-synchronizes shards that trip over the same transient condition.
pub fn transient_backoff(attempt: u32) -> std::time::Duration {
    let base_ms = 1u64 << attempt.min(5); // 1,2,4,8,16,32 ms — capped
    let jitter_ms = (attempt as u64).wrapping_mul(0x9E37_79B9) >> 29; // 0..8 ms, deterministic
    std::time::Duration::from_millis((base_ms + jitter_ms).min(50))
}

/// Runs `op`, retrying transient failures ([`is_transient`]) up to
/// [`MAX_TRANSIENT_RETRIES`] times with [`transient_backoff`] sleeps in
/// between. Every retry increments the `store/retries` counter. The first
/// non-transient error — or a transient one that outlives the budget — is
/// returned as-is.
pub fn retry_transient<T>(mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(e) if is_transient(&e) && attempt < MAX_TRANSIENT_RETRIES => {
                obs::incr("store/retries", 1);
                std::thread::sleep(transient_backoff(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Rotation threshold: appends that push a segment past this many bytes
/// close it and open the next one.
pub const SEGMENT_BYTES: u64 = 8 << 20;

/// Identity of the campaign a journal belongs to. Written once as the first
/// entry; `resume` refuses to continue a journal whose meta does not match
/// the requested campaign (different seed, trial budget or shard count would
/// silently break determinism).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignMeta {
    /// Campaign family: `"inject"` or `"beam"`.
    pub kind: String,
    pub benchmark: String,
    pub seed: u64,
    /// Total trials (or strikes) of the whole campaign.
    pub trials: usize,
    pub shards: usize,
    pub n_windows: usize,
    pub version: u32,
}

/// Durable cursor of one shard: how far its gapless trial sequence has
/// progressed and which RNG stream the next trial draws from. Written
/// periodically so `resume` can size remaining work without replaying every
/// trial entry, and validated against the replayed trial count on open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCursor {
    pub shard: usize,
    /// Trials of this shard completed and journaled.
    pub completed: u64,
    /// RNG stream id (= global trial index) the next trial will fork.
    pub next_stream: u64,
}

/// One durable journal record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// Campaign identity; always the first entry.
    Meta(CampaignMeta),
    /// One completed trial. `seq` is the shard-local sequence number
    /// (gapless from 0); `payload` is the pre-serialized trial record,
    /// opaque to the store.
    Trial { shard: usize, seq: u64, payload: String },
    /// Periodic per-shard progress checkpoint.
    Checkpoint(ShardCursor),
    /// The shard finished its whole range.
    ShardDone { shard: usize },
    /// One adaptive-planner allocation decision (version-2 journals only).
    /// Written *before* the batch it describes, so replay can re-derive the
    /// decision from planner state and cross-check it. `trials` are the
    /// global trial indices of the batch, in execution order.
    Plan { batch: u64, stratum: String, widest_ci: f64, trials: Vec<usize> },
}

/// Result of scanning a journal directory.
#[derive(Debug)]
pub struct JournalScan {
    pub meta: Option<CampaignMeta>,
    pub entries: Vec<JournalEntry>,
    /// Segment files seen, in order.
    pub segments: Vec<PathBuf>,
    /// Bytes of torn tail dropped from the newest segment (0 = clean).
    pub torn_bytes: u64,
}

/// Read access to a journal directory.
pub struct Journal;

fn segment_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("seg-{index:05}.jsonl"))
}

/// Lists `seg-*.jsonl` files in `dir`, ordered by index. Indices must be
/// contiguous from 0 (a gap means a segment was deleted out from under us).
fn list_segments(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(idx) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".jsonl")) {
            if let Ok(i) = idx.parse::<usize>() {
                indices.push(i);
            }
        }
    }
    indices.sort_unstable();
    for (expect, &got) in indices.iter().enumerate() {
        if expect != got {
            return Err(corrupt(format!("missing journal segment seg-{expect:05}.jsonl in {}", dir.display())));
        }
    }
    Ok(indices.into_iter().map(|i| segment_path(dir, i)).collect())
}

fn corrupt(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Encodes one serializable record as a checksummed journal-style line
/// (`<crc32-hex8> <json>\n`). The codec shared by the campaign journal and
/// the distributed coordinator's write-ahead ledger.
pub fn encode_record<T: Serialize>(record: &T) -> std::io::Result<Vec<u8>> {
    let json = serde_json::to_string(record).map_err(std::io::Error::other)?;
    let mut line = Vec::with_capacity(json.len() + 10);
    line.extend_from_slice(format!("{:08x} ", crc32(json.as_bytes())).as_bytes());
    line.extend_from_slice(json.as_bytes());
    line.push(b'\n');
    Ok(line)
}

/// Decodes one checksummed line (without its trailing `\n`). `None` =
/// torn/invalid — the caller treats it as the start of a torn tail.
pub fn decode_record<T: for<'de> Deserialize<'de>>(line: &[u8]) -> Option<T> {
    if line.len() < 10 || line[8] != b' ' {
        return None;
    }
    let crc = u32::from_str_radix(std::str::from_utf8(&line[..8]).ok()?, 16).ok()?;
    let json = &line[9..];
    if crc32(json) != crc {
        return None;
    }
    serde_json::from_str(std::str::from_utf8(json).ok()?).ok()
}

/// Encodes one entry as a checksummed line.
fn encode_line(entry: &JournalEntry) -> std::io::Result<Vec<u8>> {
    encode_record(entry)
}

/// Decodes one line (without its trailing `\n`). `None` = torn/invalid.
fn decode_line(line: &[u8]) -> Option<JournalEntry> {
    decode_record(line)
}

/// Validated prefix of one segment's bytes: entries plus the byte offset the
/// valid prefix ends at.
fn scan_segment(bytes: &[u8]) -> (Vec<JournalEntry>, usize) {
    let mut entries = Vec::new();
    let mut valid_end = 0usize;
    let mut pos = 0usize;
    while pos < bytes.len() {
        // A complete line includes its newline; a trailing fragment without
        // one is torn by definition (appends are whole-line flushes).
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else { break };
        match decode_line(&bytes[pos..pos + nl]) {
            Some(entry) => {
                entries.push(entry);
                pos += nl + 1;
                valid_end = pos;
            }
            None => break,
        }
    }
    (entries, valid_end)
}

impl Journal {
    /// True when `dir` already holds a journal (has a first segment).
    pub fn exists(dir: &Path) -> bool {
        segment_path(dir, 0).exists()
    }

    /// Scans every segment, validating checksums. Keeps all complete
    /// records; drops the torn tail of the newest segment; reports
    /// corruption anywhere else as an error naming the offending segment.
    pub fn scan(dir: &Path) -> std::io::Result<JournalScan> {
        let _span = obs::span!("store.scan");
        let segments = list_segments(dir)?;
        let mut entries = Vec::new();
        let mut torn_bytes = 0u64;
        let last = segments.len().saturating_sub(1);
        for (i, seg) in segments.iter().enumerate() {
            let mut bytes = Vec::new();
            File::open(seg)?.read_to_end(&mut bytes)?;
            let (seg_entries, valid_end) = scan_segment(&bytes);
            if valid_end < bytes.len() {
                if i != last {
                    return Err(corrupt(format!(
                        "corrupt record at byte {valid_end} of closed segment {} (only the newest segment may have a torn tail)",
                        seg.display()
                    )));
                }
                torn_bytes = (bytes.len() - valid_end) as u64;
                obs::incr("store/torn-bytes", torn_bytes);
            }
            entries.extend(seg_entries);
        }
        let meta = match entries.first() {
            Some(JournalEntry::Meta(m)) => Some(m.clone()),
            Some(_) => return Err(corrupt(format!("journal {} does not start with a Meta entry", dir.display()))),
            None => None,
        };
        Ok(JournalScan { meta, entries, segments, torn_bytes })
    }
}

/// Group-commit policy: how long appended lines may sit in the writer's
/// buffer before they are pushed to the OS as one `write()`.
///
/// Batching never reorders or rewrites bytes — the segment files are
/// byte-identical under every policy — it only coalesces write syscalls.
/// Crash loss grows from "the in-flight line" to "the buffered suffix",
/// which recovery already tolerates: the journal's gapless-sequence replay
/// treats any lost suffix exactly like trials that never ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush when the buffer reaches this many bytes. `0` disables
    /// batching entirely (every append writes through, the historical
    /// behaviour).
    pub max_bytes: usize,
    /// Flush on append when the oldest buffered line is older than this.
    pub max_delay: std::time::Duration,
}

impl BatchPolicy {
    /// Default batch size: a few dozen trial records per syscall without
    /// letting a stalled campaign hold back more than ~64 KiB.
    pub const DEFAULT_BYTES: usize = 64 << 10;
    /// Default age bound on buffered records.
    pub const DEFAULT_DELAY_MS: u64 = 25;

    /// Write-through policy: every append is its own `write()` + flush.
    pub fn unbatched() -> Self {
        BatchPolicy { max_bytes: 0, max_delay: std::time::Duration::ZERO }
    }

    /// True when this policy writes every line through individually.
    pub fn is_unbatched(&self) -> bool {
        self.max_bytes == 0
    }

    /// Policy from the environment: `PHI_BATCH_BYTES` (0 = unbatched) and
    /// `PHI_BATCH_DELAY_MS` override the defaults. Unparseable values fall
    /// back to the defaults rather than failing campaign startup.
    pub fn from_env() -> Self {
        let bytes = std::env::var("PHI_BATCH_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(Self::DEFAULT_BYTES);
        let delay_ms = std::env::var("PHI_BATCH_DELAY_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(Self::DEFAULT_DELAY_MS);
        BatchPolicy { max_bytes: bytes, max_delay: std::time::Duration::from_millis(delay_ms) }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_bytes: Self::DEFAULT_BYTES,
            max_delay: std::time::Duration::from_millis(Self::DEFAULT_DELAY_MS),
        }
    }
}

/// Appending side of a journal. One writer per journal directory; campaign
/// workers share it behind a mutex. Appended lines group-commit per the
/// writer's [`BatchPolicy`]; `sync`/`close` (and segment rotation) force the
/// buffer down, which is what bounds crash loss to a suffix of records
/// after the last checkpoint.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    file: File,
    segment_index: usize,
    segment_bytes: u64,
    /// Rotation threshold (tests shrink it to force multi-segment journals).
    pub rotate_at: u64,
    /// Group-commit policy for this writer.
    pub batch: BatchPolicy,
    /// Encoded lines awaiting their batch write, strictly FIFO.
    buf: Vec<u8>,
    /// When the oldest line still in `buf` was appended.
    buf_oldest: Option<std::time::Instant>,
    /// Set by [`JournalWriter::close`] so `Drop` doesn't double-flush.
    closed: bool,
}

impl JournalWriter {
    /// Creates a fresh journal in `dir` (created if missing) and writes the
    /// `Meta` entry. Fails if a journal already exists there.
    pub fn create(dir: &Path, meta: CampaignMeta) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        if Journal::exists(dir) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("journal already exists at {}", dir.display()),
            ));
        }
        let path = segment_path(dir, 0);
        let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
        obs::incr("store/segments", 1);
        let mut w = JournalWriter {
            dir: dir.to_path_buf(),
            file,
            segment_index: 0,
            segment_bytes: 0,
            rotate_at: SEGMENT_BYTES,
            batch: BatchPolicy::default(),
            buf: Vec::new(),
            buf_oldest: None,
            closed: false,
        };
        w.append(&JournalEntry::Meta(meta))?;
        // The Meta line is committed eagerly regardless of batch policy: a
        // journal directory must never exist with an empty first segment,
        // or a crash between create and first flush would leave a journal
        // that resume rejects (no meta) instead of one it can continue.
        w.flush_batch()?;
        Ok(w)
    }

    /// Re-opens an existing journal for appending: scans it, truncates the
    /// newest segment back to its valid prefix (dropping the torn tail) and
    /// positions the writer after the last complete record. Returns the scan
    /// so the caller can rebuild shard progress from the surviving entries.
    pub fn resume(dir: &Path) -> std::io::Result<(Self, JournalScan)> {
        let scan = Journal::scan(dir)?;
        let last = scan
            .segments
            .last()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, format!("no journal at {}", dir.display())))?;
        let mut file = OpenOptions::new().read(true).write(true).open(last)?;
        let len = file.metadata()?.len();
        if scan.torn_bytes > 0 {
            file.set_len(len - scan.torn_bytes)?;
        }
        file.seek(std::io::SeekFrom::End(0))?;
        let segment_bytes = len - scan.torn_bytes;
        Ok((
            JournalWriter {
                dir: dir.to_path_buf(),
                file,
                segment_index: scan.segments.len() - 1,
                segment_bytes,
                rotate_at: SEGMENT_BYTES,
                batch: BatchPolicy::default(),
                buf: Vec::new(),
                buf_oldest: None,
                closed: false,
            },
            scan,
        ))
    }

    /// Appends one entry. Under a batching policy the encoded line joins
    /// the write buffer and is committed when the batch fills or ages out;
    /// unbatched, it is written through immediately. Rotates to a new
    /// segment first when the current one is past the threshold
    /// (`segment_bytes` counts buffered lines too, so rotation points are
    /// independent of the batch policy).
    pub fn append(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let _span = obs::span!("store.append");
        if self.segment_bytes >= self.rotate_at {
            // A segment's lines must land in that segment: commit the
            // buffered tail before switching files.
            self.flush_batch()?;
            self.segment_index += 1;
            let path = segment_path(&self.dir, self.segment_index);
            self.file = OpenOptions::new().create_new(true).append(true).open(&path)?;
            self.segment_bytes = 0;
            obs::incr("store/segments", 1);
        }
        let line = encode_line(entry)?;
        self.segment_bytes += line.len() as u64;
        obs::incr("store/appends", 1);
        if matches!(entry, JournalEntry::Checkpoint(_)) {
            obs::incr("store/checkpoints", 1);
        }
        if self.batch.is_unbatched() {
            // Lines buffered under an earlier policy (e.g. the Meta entry
            // `create` writes before the caller overrides `batch`) must
            // land first — append order is the byte order.
            self.flush_batch()?;
            // Transient kernel refusals retry in place instead of failing
            // the shard. `write_all` resumes partial EINTR writes
            // internally, and the regular files journals live on refuse
            // whole writes (not line prefixes) on EAGAIN, so a retried
            // line never duplicates bytes.
            retry_transient(|| self.file.write_all(&line))?;
            retry_transient(|| self.file.flush())?;
            return Ok(());
        }
        self.buf.extend_from_slice(&line);
        let oldest = *self.buf_oldest.get_or_insert_with(std::time::Instant::now);
        if self.buf.len() >= self.batch.max_bytes || oldest.elapsed() >= self.batch.max_delay {
            self.flush_batch()?;
        }
        Ok(())
    }

    /// Commits the buffered lines as one `write()`. The buffer is FIFO, so
    /// whatever a crash loses is a strict suffix of the append order —
    /// never a gap.
    fn flush_batch(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        retry_transient(|| self.file.write_all(&self.buf))?;
        retry_transient(|| self.file.flush())?;
        self.buf.clear();
        self.buf_oldest = None;
        obs::incr("store/batch_flushes", 1);
        Ok(())
    }

    /// Forces journal bytes to stable storage: commits the buffered batch,
    /// then fsyncs. Called at shard checkpoints, so a surviving
    /// `Checkpoint` entry proves every record before it is durable.
    pub fn sync(&mut self) -> std::io::Result<()> {
        let _span = obs::span!("store.sync");
        self.flush_batch()?;
        retry_transient(|| self.file.sync_data())
    }

    /// Retires the writer: commits the buffered batch, fsyncs, and
    /// disarms the `Drop` flush. Orchestrators route shutdown through this
    /// so a failed final flush is an orchestrator error, not a silently
    /// swallowed `Drop` — the bug this replaces.
    pub fn close(mut self) -> std::io::Result<()> {
        let res = self.sync();
        self.closed = true;
        res
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        // Last-ditch commit for writers dropped during unwinding (e.g. a
        // panicking campaign worker) that never reached `close()`. Drop
        // cannot return an error, so a failure here is made loud instead
        // of silently discarded: counted and printed, never swallowed.
        if self.closed {
            return;
        }
        if let Err(e) = self.flush_batch() {
            obs::incr("store/drop_flush_errors", 1);
            eprintln!("journal {}: flush on drop failed: {e}", self.dir.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-journal").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta() -> CampaignMeta {
        CampaignMeta { kind: "inject".into(), benchmark: "victim".into(), seed: 7, trials: 100, shards: 4, n_windows: 4, version: FORMAT_VERSION }
    }

    fn trial(shard: usize, seq: u64) -> JournalEntry {
        JournalEntry::Trial { shard, seq, payload: format!("{{\"t\":{seq}}}") }
    }

    #[test]
    fn roundtrips_entries_through_segments() {
        let dir = tmp("roundtrip");
        let mut w = JournalWriter::create(&dir, meta()).unwrap();
        w.rotate_at = 200; // force several segments
        for seq in 0..50 {
            w.append(&trial(seq as usize % 4, seq)).unwrap();
        }
        w.append(&JournalEntry::Checkpoint(ShardCursor { shard: 0, completed: 13, next_stream: 13 })).unwrap();
        w.sync().unwrap();
        drop(w);

        let scan = Journal::scan(&dir).unwrap();
        assert_eq!(scan.meta, Some(meta()));
        assert_eq!(scan.entries.len(), 52);
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.segments.len() > 1, "rotation should have produced several segments");
        assert_eq!(scan.entries[1], trial(0, 0));
        assert_eq!(*scan.entries.last().unwrap(), JournalEntry::Checkpoint(ShardCursor { shard: 0, completed: 13, next_stream: 13 }));
    }

    #[test]
    fn create_refuses_existing_journal() {
        let dir = tmp("create-twice");
        let w = JournalWriter::create(&dir, meta()).unwrap();
        drop(w);
        let err = JournalWriter::create(&dir, meta()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        assert!(err.to_string().contains("create-twice"), "error should name the path: {err}");
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_resume() {
        let dir = tmp("torn-tail");
        let mut w = JournalWriter::create(&dir, meta()).unwrap();
        for seq in 0..10 {
            w.append(&trial(0, seq)).unwrap();
        }
        drop(w);
        // Tear the last record: chop half the final line off.
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let scan = Journal::scan(&dir).unwrap();
        assert_eq!(scan.entries.len(), 10, "meta + 9 complete trials survive");
        assert!(scan.torn_bytes > 0);

        let (mut w, scan) = JournalWriter::resume(&dir).unwrap();
        assert_eq!(scan.entries.len(), 10);
        w.append(&trial(0, 9)).unwrap();
        drop(w);
        let scan = Journal::scan(&dir).unwrap();
        assert_eq!(scan.torn_bytes, 0, "resume truncated the torn tail");
        assert_eq!(scan.entries.len(), 11);
        assert_eq!(*scan.entries.last().unwrap(), trial(0, 9));
    }

    #[test]
    fn corrupt_closed_segment_is_an_error_not_a_silent_drop() {
        let dir = tmp("corrupt-closed");
        let mut w = JournalWriter::create(&dir, meta()).unwrap();
        w.rotate_at = 100;
        for seq in 0..30 {
            w.append(&trial(0, seq)).unwrap();
        }
        drop(w);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 2);
        // Flip a byte in the middle of the first (closed) segment.
        let mut bytes = std::fs::read(&segs[0]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&segs[0], &bytes).unwrap();
        let err = Journal::scan(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("seg-00000"), "{err}");
    }

    #[test]
    fn garbage_line_in_newest_segment_is_a_torn_tail() {
        let dir = tmp("garbage-tail");
        let mut w = JournalWriter::create(&dir, meta()).unwrap();
        w.append(&trial(0, 0)).unwrap();
        drop(w);
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"deadbeef {\"not\":\"checksummed\"}\n").unwrap();
        drop(f);
        let scan = Journal::scan(&dir).unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn scan_of_missing_directory_fails() {
        let dir = tmp("never-created");
        assert!(Journal::scan(&dir).is_err());
        assert!(!Journal::exists(&dir));
    }

    #[test]
    fn retry_transient_recovers_from_bounded_interruptions() {
        let mut failures = 3;
        let out = retry_transient(|| {
            if failures > 0 {
                failures -= 1;
                Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(failures, 0);
    }

    #[test]
    fn retry_transient_gives_up_after_the_budget() {
        let mut attempts = 0u32;
        let err = retry_transient(|| -> std::io::Result<()> {
            attempts += 1;
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "EAGAIN"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(attempts, MAX_TRANSIENT_RETRIES + 1, "initial try plus the retry budget");
    }

    #[test]
    fn retry_transient_covers_network_transient_kinds() {
        use std::io::ErrorKind;
        for kind in [ErrorKind::TimedOut, ErrorKind::ConnectionReset, ErrorKind::ConnectionAborted] {
            let mut failures = 2;
            let out = retry_transient(|| {
                if failures > 0 {
                    failures -= 1;
                    Err(std::io::Error::new(kind, "network hiccup"))
                } else {
                    Ok(kind)
                }
            })
            .unwrap();
            assert_eq!(out, kind);
            assert_eq!(failures, 0, "{kind:?} must be retried like a local transient");
        }
    }

    #[test]
    fn retry_transient_passes_real_errors_through_immediately() {
        let mut attempts = 0u32;
        let err = retry_transient(|| -> std::io::Result<()> {
            attempts += 1;
            Err(std::io::Error::new(std::io::ErrorKind::PermissionDenied, "EACCES"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
        assert_eq!(attempts, 1, "non-transient errors must not burn retries");
    }

    #[test]
    fn transient_backoff_is_deterministic_and_capped() {
        for attempt in 0..64 {
            let a = transient_backoff(attempt);
            let b = transient_backoff(attempt);
            assert_eq!(a, b, "attempt {attempt}: backoff must be a pure function");
            assert!(a <= std::time::Duration::from_millis(50), "attempt {attempt}: {a:?} exceeds the cap");
        }
        assert!(transient_backoff(0) < transient_backoff(4), "backoff should grow before the cap");
    }
}
