//! Dedupe-by-global-trial-index merge of executor trial streams.
//!
//! Distributed campaigns re-dispatch slow or dead executors' ranges, so the
//! same `(shard, seq)` trial can arrive more than once — from a straggler
//! that woke back up, from a re-leased executor replaying its local journal,
//! or from a re-imported segment after a coordinator restart. Because a
//! trial's global index fully determines its RNG stream, fault model and
//! injection time, every copy is byte-identical, and merging reduces to a
//! first-writer-wins rule per shard-local sequence number:
//!
//! * `seq == next` — fresh: journaled, the cursor advances
//!   (`dist/merged_trials`);
//! * `seq < next`  — duplicate: dropped (`dist/dup_trials`);
//! * `seq > next`  — a gap: a protocol violation (executors stream their
//!   range in order from the cursor the coordinator handed them), reported
//!   as an error so the offending connection dies instead of corrupting the
//!   gapless journal.
//!
//! The result is that the central journal stays a perfectly ordinary
//! gapless v1 campaign journal: the existing replay, render and determinism
//! guard paths apply unchanged, which is what pins a distributed aggregate
//! byte-identical to the single-host run.

use crate::journal::{JournalEntry, JournalWriter};
use crate::shard::{ShardPlan, ShardProgress};

/// Verdict of offering one trial to the merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// First arrival: appended to the journal, cursor advanced.
    Accepted,
    /// Already merged: dropped.
    Duplicate,
}

/// First-writer-wins import cursor over a campaign journal. One per
/// coordinator; rebuilt from [`ShardProgress`] on resume.
#[derive(Debug)]
pub struct Importer {
    /// Next expected shard-local sequence number, per shard.
    next: Vec<u64>,
    /// Shard range lengths (an offered `seq` past its range is corruption).
    caps: Vec<u64>,
    pub accepted: u64,
    pub duplicates: u64,
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Importer {
    /// Cursor positioned after everything the journal already holds.
    pub fn new(plan: &ShardPlan, progress: &ShardProgress) -> Self {
        let next: Vec<u64> = progress.shards.iter().map(|s| s.completed).collect();
        let caps: Vec<u64> = (0..plan.shards).map(|s| plan.range(s).len() as u64).collect();
        Importer { next, caps, accepted: 0, duplicates: 0 }
    }

    /// Next sequence number the merge will accept for `shard` — the resume
    /// cursor handed to a (re-)leased executor so it can skip re-streaming
    /// what the coordinator already has.
    pub fn next_seq(&self, shard: usize) -> u64 {
        self.next[shard]
    }

    /// True once `shard`'s whole range is merged.
    pub fn range_complete(&self, shard: usize) -> bool {
        self.next[shard] >= self.caps[shard]
    }

    /// Offers one trial; fresh trials are appended to `writer`.
    pub fn offer(&mut self, writer: &mut JournalWriter, shard: usize, seq: u64, payload: &str) -> std::io::Result<Offer> {
        if shard >= self.next.len() {
            return Err(invalid(format!("merge: shard {shard} out of range (campaign has {})", self.next.len())));
        }
        if seq >= self.caps[shard] {
            return Err(invalid(format!("merge: shard {shard} seq {seq} past its range of {}", self.caps[shard])));
        }
        if seq < self.next[shard] {
            self.duplicates += 1;
            obs::incr("dist/dup_trials", 1);
            return Ok(Offer::Duplicate);
        }
        if seq > self.next[shard] {
            return Err(invalid(format!(
                "merge: shard {shard} seq {seq} arrived before seq {} (executor streams must be gapless)",
                self.next[shard]
            )));
        }
        writer.append(&JournalEntry::Trial { shard, seq, payload: payload.to_string() })?;
        self.next[shard] += 1;
        self.accepted += 1;
        obs::incr("dist/merged_trials", 1);
        Ok(Offer::Accepted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{CampaignMeta, Journal, FORMAT_VERSION};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-merge").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta(trials: usize, shards: usize) -> CampaignMeta {
        CampaignMeta {
            kind: "inject".into(),
            benchmark: "victim".into(),
            seed: 7,
            trials,
            shards,
            n_windows: 4,
            version: FORMAT_VERSION,
        }
    }

    #[test]
    fn accepts_in_order_drops_duplicates_rejects_gaps() {
        let dir = tmp("verdicts");
        let plan = ShardPlan::new(10, 2);
        let progress = ShardProgress::replay(2, &[]).unwrap();
        let mut w = JournalWriter::create(&dir, meta(10, 2)).unwrap();
        let mut imp = Importer::new(&plan, &progress);

        assert_eq!(imp.offer(&mut w, 0, 0, "{\"t\":0}").unwrap(), Offer::Accepted);
        assert_eq!(imp.offer(&mut w, 0, 1, "{\"t\":1}").unwrap(), Offer::Accepted);
        assert_eq!(imp.offer(&mut w, 0, 0, "{\"t\":0}").unwrap(), Offer::Duplicate);
        assert_eq!(imp.next_seq(0), 2);
        let err = imp.offer(&mut w, 0, 3, "{\"t\":3}").unwrap_err();
        assert!(err.to_string().contains("gapless"), "{err}");
        let err = imp.offer(&mut w, 0, 5, "{\"t\":5}").unwrap_err();
        assert!(err.to_string().contains("past its range"), "{err}");
        let err = imp.offer(&mut w, 9, 0, "{}").unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert_eq!(imp.accepted, 2);
        assert_eq!(imp.duplicates, 1);
        drop(w);

        let scan = Journal::scan(&dir).unwrap();
        let progress = ShardProgress::replay(2, &scan.entries).unwrap();
        assert_eq!(progress.shards[0].payloads, vec!["{\"t\":0}".to_string(), "{\"t\":1}".to_string()]);
    }

    #[test]
    fn resume_positions_the_cursor_after_journaled_trials() {
        let dir = tmp("resume");
        let plan = ShardPlan::new(6, 2);
        let progress = ShardProgress::replay(2, &[]).unwrap();
        let mut w = JournalWriter::create(&dir, meta(6, 2)).unwrap();
        let mut imp = Importer::new(&plan, &progress);
        for seq in 0..2u64 {
            imp.offer(&mut w, 1, seq, &format!("{{\"t\":{seq}}}")).unwrap();
        }
        w.close().unwrap();

        let (mut w, scan) = JournalWriter::resume(&dir).unwrap();
        let progress = ShardProgress::replay(2, &scan.entries).unwrap();
        let mut imp = Importer::new(&plan, &progress);
        assert_eq!(imp.next_seq(1), 2);
        assert!(!imp.range_complete(1));
        assert_eq!(imp.offer(&mut w, 1, 0, "{\"t\":0}").unwrap(), Offer::Duplicate);
        assert_eq!(imp.offer(&mut w, 1, 2, "{\"t\":2}").unwrap(), Offer::Accepted);
        assert!(imp.range_complete(1), "shard 1 of 6/2 has 3 trials");
    }
}
