//! Checkpoint/restart cost modelling with Young/Daly interval optimisation.
//!
//! Paper §6 (CLAMR): "by reducing the DUE rate caused by fault in Sort and
//! Tree, HPC systems can allow lowering the frequency of checkpointing
//! techniques." This module quantifies that: given a machine MTBF (derived
//! from the measured DUE FIT, e.g. via
//! [`sdc_analysis::fit::MachineProjection`]), the Young approximation gives
//! the optimal checkpoint interval `τ* = √(2 δ M)` (δ = checkpoint cost,
//! M = MTBF), and the expected overhead lets one compare hardened vs.
//! unhardened operating points.

use serde::{Deserialize, Serialize};

/// A checkpointed machine: MTBF and per-checkpoint cost, in the same unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointModel {
    /// Mean time between (detected, unrecoverable) failures.
    pub mtbf: f64,
    /// Time to write one checkpoint.
    pub checkpoint_cost: f64,
    /// Time to restart from a checkpoint after a failure.
    pub restart_cost: f64,
}

impl CheckpointModel {
    pub fn new(mtbf: f64, checkpoint_cost: f64, restart_cost: f64) -> Self {
        assert!(mtbf > 0.0 && checkpoint_cost > 0.0 && restart_cost >= 0.0);
        CheckpointModel { mtbf, checkpoint_cost, restart_cost }
    }

    /// Young's optimal checkpoint interval `√(2 δ M)`.
    pub fn young_interval(&self) -> f64 {
        (2.0 * self.checkpoint_cost * self.mtbf).sqrt()
    }

    /// Expected execution-time inflation factor at interval `tau`
    /// (first-order model: checkpoint overhead + expected rework + restart).
    pub fn overhead_factor(&self, tau: f64) -> f64 {
        assert!(tau > 0.0);
        let checkpointing = self.checkpoint_cost / tau;
        let rework = (tau / 2.0 + self.restart_cost) / self.mtbf;
        1.0 + checkpointing + rework
    }

    /// Overhead at the Young-optimal interval.
    pub fn optimal_overhead(&self) -> f64 {
        self.overhead_factor(self.young_interval())
    }

    /// The same machine after a mitigation that scales the DUE rate by
    /// `due_factor` (< 1 ⇒ fewer DUEs ⇒ longer MTBF).
    pub fn with_due_scaled(&self, due_factor: f64) -> Self {
        assert!(due_factor > 0.0);
        CheckpointModel { mtbf: self.mtbf / due_factor, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_interval_matches_formula() {
        let m = CheckpointModel::new(10_000.0, 50.0, 10.0);
        assert!((m.young_interval() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn young_interval_is_near_optimal() {
        let m = CheckpointModel::new(5_000.0, 20.0, 5.0);
        let tau_star = m.young_interval();
        let best = m.overhead_factor(tau_star);
        for mult in [0.25, 0.5, 2.0, 4.0] {
            assert!(m.overhead_factor(tau_star * mult) >= best - 1e-12, "mult {mult}");
        }
    }

    #[test]
    fn hardening_sort_and_tree_lets_checkpoints_relax() {
        // CLAMR's §6 argument: Sort+Tree cause the majority of its DUEs;
        // hardening them (say, 60% DUE reduction) lengthens MTBF, stretches
        // the optimal interval and cuts the overhead.
        let base = CheckpointModel::new(24.0 * 11.0, 0.25, 0.1); // Trinity-ish: one DUE per ~11 days, 15-min checkpoints
        let hardened = base.with_due_scaled(0.4);
        assert!(hardened.young_interval() > base.young_interval() * 1.5);
        assert!(hardened.optimal_overhead() < base.optimal_overhead());
    }

    #[test]
    fn overhead_decreases_with_mtbf() {
        let worse = CheckpointModel::new(100.0, 1.0, 0.5);
        let better = CheckpointModel::new(10_000.0, 1.0, 0.5);
        assert!(better.optimal_overhead() < worse.optimal_overhead());
    }

    proptest::proptest! {
        #[test]
        fn prop_young_is_within_epsilon_of_grid_optimum(mtbf in 100.0f64..1e6, cost in 0.1f64..100.0) {
            let m = CheckpointModel::new(mtbf, cost, cost / 2.0);
            let tau_star = m.young_interval();
            let best = m.overhead_factor(tau_star);
            // Grid search around the optimum must not find anything better.
            for i in 1..50 {
                let tau = tau_star * (0.2 + i as f64 * 0.1);
                proptest::prop_assert!(m.overhead_factor(tau) + 1e-9 >= best);
            }
        }
    }
}
