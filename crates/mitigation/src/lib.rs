//! # mitigation — the hardening techniques the paper's analysis motivates
//!
//! Paper §6.1 and §7: the criticality analysis exists to let developers
//! "apply the most appropriate level of protection to provide the desired
//! level of resilience" and the authors "plan to implement the mitigation
//! techniques based on the radiation and fault injection analysis". This
//! crate implements those techniques:
//!
//! * [`abft`] — algorithm-based fault tolerance for matrix multiplication
//!   (Huang & Abraham, paper ref [26]): row/column checksums that *detect
//!   and correct single, line and random errors in O(1) time* relative to
//!   the multiplication — the paper's §4.3 observation that "for the Xeon
//!   Phi most of the observed SDCs in DGEMM could be corrected by ABFT";
//! * [`residue`] — mod-3 / mod-15 residue checking for integer arithmetic
//!   ("We need only 8 bits to use mod15 for the residue error protection,
//!   or only 2 bits for mod3", §6.1), the technique recommended for the
//!   algebraic benchmarks and for errors ECC cannot see;
//! * [`redundancy`] — selective duplication-with-comparison and triple
//!   modular redundancy for the control variables the injection campaign
//!   flags as critical (§6, DGEMM/LUD recommendations);
//! * [`parity`] — word parity, "for NW, a simple parity would detect most
//!   SDCs since single faults are more critical than the other types";
//! * [`checkpoint`] — Young/Daly checkpoint-interval optimisation, for the
//!   §6 CLAMR observation that reducing the Sort/Tree DUE rate "can allow
//!   lowering the frequency of checkpointing techniques";
//! * [`dwc_target`] — the §7 future work realised: a transparent
//!   [`carolfi::FaultTarget`] wrapper that DWC-protects the control
//!   variables and is validated with the same injection campaigns.

pub mod abft;
pub mod checkpoint;
pub mod dwc_target;
pub mod parity;
pub mod redundancy;
pub mod residue;

pub use abft::{AbftCheckedProduct, AbftOutcome};
pub use checkpoint::CheckpointModel;
pub use dwc_target::DwcControls;
pub use parity::ParityWord;
pub use redundancy::{Dwc, Tmr};
pub use residue::{Residue, ResidueChecked};
