//! Algorithm-based fault tolerance for matrix multiplication
//! (Huang & Abraham 1984; paper refs [26, 41], discussion in §4.3).
//!
//! `C = A × B` is computed with an extra checksum row (column sums of `A`'s
//! product contribution) and checksum column. After the multiplication, row
//! and column checksums localise corrupted elements:
//!
//! * a **single** corrupted element sits at the intersection of one failing
//!   row checksum and one failing column checksum and is corrected in O(1)
//!   from either checksum;
//! * a corrupted **line** (one row or one column, the paper's line pattern)
//!   fails one row checksum and many column checksums (or vice versa) and is
//!   corrected element-wise from the orthogonal checksums;
//! * scattered (**random**) errors with at most one error per row or per
//!   column are likewise correctable; denser squares are *detected* but not
//!   correctable — matching the paper: "the ABFT algorithm for matrix
//!   multiplication can correct single, line, and random errors".

/// Tolerance for checksum comparison, relative to the checksum magnitude
/// (floating-point accumulation noise must not read as corruption).
const CHECK_REL_TOL: f64 = 1e-9;

/// Result of an ABFT verification pass.
#[derive(Debug, Clone, PartialEq)]
pub enum AbftOutcome {
    /// Checksums consistent.
    Clean,
    /// Errors found and corrected in place; coordinates listed.
    Corrected { fixed: Vec<(usize, usize)> },
    /// Inconsistency found that the checksums cannot localise/correct.
    DetectedUncorrectable,
}

/// A checksummed matrix product.
pub struct AbftCheckedProduct {
    pub n: usize,
    /// The product, row-major n×n.
    pub c: Vec<f64>,
    /// Expected row sums (from the checksum-extended computation).
    row_sums: Vec<f64>,
    /// Expected column sums.
    col_sums: Vec<f64>,
}

impl AbftCheckedProduct {
    /// Computes `C = A × B` with checksum protection.
    ///
    /// The checksum vectors are computed from the checksum-extended inputs
    /// (`A` extended with a column-sum row, `B` with a row-sum column), so
    /// they are produced by the same kind of multiply-accumulate pass as `C`
    /// itself — the property that makes ABFT cover faults *during* the
    /// computation, not just at rest.
    pub fn multiply(a: &[f64], b: &[f64], n: usize) -> Self {
        assert_eq!(a.len(), n * n);
        assert_eq!(b.len(), n * n);
        // Column sums of A (the checksum row of the extended A).
        let mut a_colsum = vec![0.0; n];
        for i in 0..n {
            for k in 0..n {
                a_colsum[k] += a[i * n + k];
            }
        }
        // Row sums of B (the checksum column of the extended B).
        let mut b_rowsum = vec![0.0; n];
        for k in 0..n {
            for j in 0..n {
                b_rowsum[k] += b[k * n + j];
            }
        }
        let mut c = vec![0.0; n * n];
        let mut row_sums = vec![0.0; n];
        let mut col_sums = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        // Checksum row: (A_colsum) × B; checksum column: A × (B_rowsum).
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a_colsum[k] * b[k * n + j];
            }
            col_sums[j] = acc;
        }
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b_rowsum[k];
            }
            row_sums[i] = acc;
        }
        AbftCheckedProduct { n, c, row_sums, col_sums }
    }

    fn tol(&self, reference: f64) -> f64 {
        CHECK_REL_TOL * reference.abs().max(self.n as f64)
    }

    /// Verifies the checksums and corrects correctable corruption in place.
    pub fn verify_and_correct(&mut self) -> AbftOutcome {
        let n = self.n;
        // Row and column syndromes: actual − expected.
        let mut row_syn = vec![0.0; n];
        let mut col_syn = vec![0.0; n];
        for (i, syn) in row_syn.iter_mut().enumerate() {
            let actual: f64 = self.c[i * n..(i + 1) * n].iter().sum();
            *syn = actual - self.row_sums[i];
        }
        for (j, syn) in col_syn.iter_mut().enumerate() {
            let actual: f64 = (0..n).map(|i| self.c[i * n + j]).sum();
            *syn = actual - self.col_sums[j];
        }
        // NaN syndromes must register as failing (NaN > x is false, so the
        // comparison is written in the negated form).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let bad_rows: Vec<usize> = (0..n).filter(|&i| !(row_syn[i].abs() <= self.tol(self.row_sums[i]))).collect();
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let bad_cols: Vec<usize> = (0..n).filter(|&j| !(col_syn[j].abs() <= self.tol(self.col_sums[j]))).collect();

        if bad_rows.is_empty() && bad_cols.is_empty() {
            return AbftOutcome::Clean;
        }
        // Non-finite syndromes cannot be repaired arithmetically.
        if row_syn.iter().chain(&col_syn).any(|s| !s.is_finite()) {
            return AbftOutcome::DetectedUncorrectable;
        }

        let mut fixed = Vec::new();
        if bad_rows.len() <= bad_cols.len() && bad_rows.len() <= 1 {
            // ≤1 corrupted row: every failing column has its error in that
            // row (single or row-line case).
            if let Some(&i) = bad_rows.first() {
                for &j in &bad_cols {
                    self.c[i * n + j] -= col_syn[j];
                    fixed.push((i, j));
                }
            } else {
                return AbftOutcome::DetectedUncorrectable;
            }
        } else if bad_cols.len() <= 1 {
            if let Some(&j) = bad_cols.first() {
                for &i in &bad_rows {
                    self.c[i * n + j] -= row_syn[i];
                    fixed.push((i, j));
                }
            } else {
                return AbftOutcome::DetectedUncorrectable;
            }
        } else {
            // Multiple rows AND columns failing: correctable iff the error
            // pattern has at most one error per row and per column AND the
            // syndromes pair up (random-scatter case). Greedy matching: for
            // each failing row, the error column must be identifiable by
            // matching magnitudes.
            let mut remaining_cols: Vec<usize> = bad_cols.clone();
            for &i in &bad_rows {
                let mut matched = None;
                for (ci, &j) in remaining_cols.iter().enumerate() {
                    if (row_syn[i] - col_syn[j]).abs() <= self.tol(self.row_sums[i]) * 10.0 {
                        matched = Some((ci, j));
                        break;
                    }
                }
                match matched {
                    Some((ci, j)) => {
                        self.c[i * n + j] -= row_syn[i];
                        fixed.push((i, j));
                        remaining_cols.remove(ci);
                    }
                    None => return AbftOutcome::DetectedUncorrectable,
                }
            }
            if !remaining_cols.is_empty() {
                return AbftOutcome::DetectedUncorrectable;
            }
        }
        AbftOutcome::Corrected { fixed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn inputs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = carolfi::rng::fork(seed, 0);
        let a = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (a, b)
    }

    #[test]
    fn clean_product_verifies_clean() {
        let (a, b) = inputs(24, 1);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 24);
        assert_eq!(p.verify_and_correct(), AbftOutcome::Clean);
    }

    #[test]
    fn single_error_is_corrected_exactly() {
        let (a, b) = inputs(24, 2);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 24);
        let golden = p.c.clone();
        p.c[7 * 24 + 13] += 3.5;
        match p.verify_and_correct() {
            AbftOutcome::Corrected { fixed } => assert_eq!(fixed, vec![(7, 13)]),
            other => panic!("{other:?}"),
        }
        for (i, (&got, &exp)) in p.c.iter().zip(&golden).enumerate() {
            assert!((got - exp).abs() < 1e-9, "element {i}");
        }
    }

    #[test]
    fn row_line_error_is_corrected() {
        let (a, b) = inputs(16, 3);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 16);
        let golden = p.c.clone();
        for j in 0..16 {
            p.c[5 * 16 + j] += (j as f64) + 1.0;
        }
        match p.verify_and_correct() {
            AbftOutcome::Corrected { fixed } => assert_eq!(fixed.len(), 16),
            other => panic!("{other:?}"),
        }
        for (got, exp) in p.c.iter().zip(&golden) {
            assert!((got - exp).abs() < 1e-9);
        }
    }

    #[test]
    fn column_line_error_is_corrected() {
        let (a, b) = inputs(16, 4);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 16);
        let golden = p.c.clone();
        for i in 0..10 {
            p.c[i * 16 + 3] -= 2.0 + i as f64;
        }
        assert!(matches!(p.verify_and_correct(), AbftOutcome::Corrected { .. }));
        for (got, exp) in p.c.iter().zip(&golden) {
            assert!((got - exp).abs() < 1e-9);
        }
    }

    #[test]
    fn scattered_errors_one_per_row_and_column_are_corrected() {
        let (a, b) = inputs(16, 5);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 16);
        let golden = p.c.clone();
        p.c[2 * 16 + 9] += 1.25;
        p.c[11 * 16 + 4] -= 0.75;
        p.c[14 * 16] += 9.0; // column 0
        assert!(matches!(p.verify_and_correct(), AbftOutcome::Corrected { .. }));
        for (got, exp) in p.c.iter().zip(&golden) {
            assert!((got - exp).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_square_is_detected_but_not_correctable() {
        let (a, b) = inputs(16, 6);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 16);
        for i in 4..8 {
            for j in 4..8 {
                // Asymmetric errors so row/column syndromes cannot pair up
                // (a symmetric square can alias into a miscorrection — the
                // known limitation of single-checksum ABFT).
                p.c[i * 16 + j] += 1000.0 * i as f64 + j as f64;
            }
        }
        assert_eq!(p.verify_and_correct(), AbftOutcome::DetectedUncorrectable);
    }

    #[test]
    fn nan_corruption_is_detected() {
        let (a, b) = inputs(8, 7);
        let mut p = AbftCheckedProduct::multiply(&a, &b, 8);
        p.c[3 * 8 + 3] = f64::NAN;
        assert_eq!(p.verify_and_correct(), AbftOutcome::DetectedUncorrectable);
    }

    #[test]
    fn beam_sdc_patterns_from_dgemm_are_mostly_correctable() {
        // The paper's §4.3 claim, end to end: inject single/line patterns of
        // the kind the beam produces and check ABFT repairs them.
        let (a, b) = inputs(16, 8);
        let mut rng = carolfi::rng::fork(99, 0);
        let mut correctable = 0;
        let trials = 40;
        for _ in 0..trials {
            let mut p = AbftCheckedProduct::multiply(&a, &b, 16);
            // Vector-lane-style line corruption: 8 consecutive elements.
            let start = rng.gen_range(0usize..16 * 16 - 8);
            // Keep it within one row so it models a 512-bit store.
            let start = (start / 16) * 16 + (start % 16).min(8);
            for l in 0..8 {
                p.c[start + l] += rng.gen_range(0.5..2.0);
            }
            if matches!(p.verify_and_correct(), AbftOutcome::Corrected { .. }) {
                correctable += 1;
            }
        }
        assert_eq!(correctable, trials, "line patterns must be ABFT-correctable");
    }

    proptest::proptest! {
        #[test]
        fn prop_any_single_corruption_is_corrected(i in 0usize..12, j in 0usize..12, delta in -1e3f64..1e3) {
            proptest::prop_assume!(delta.abs() > 1e-6);
            let (a, b) = inputs(12, 11);
            let mut p = AbftCheckedProduct::multiply(&a, &b, 12);
            let golden = p.c.clone();
            p.c[i * 12 + j] += delta;
            let corrected = matches!(p.verify_and_correct(), AbftOutcome::Corrected { .. });
            proptest::prop_assert!(corrected);
            for (got, exp) in p.c.iter().zip(&golden) {
                proptest::prop_assert!((got - exp).abs() < 1e-8);
            }
        }
    }
}
