//! Selective duplication-with-comparison and TMR (paper §6).
//!
//! "Selective duplication with comparison can be applied to protect the
//! internal memory structures that contain such control variables […] to
//! improve the resilience at a lower overhead, a selective protection should
//! be preferred" (DGEMM), and "apply redundant multithreading or duplication
//! with comparison to control variables" (LUD). These wrappers protect
//! exactly the variable classes the injection campaign grades as critical,
//! at two or three copies of their (tiny) storage instead of duplicating the
//! whole computation.

/// Duplication with comparison: two copies, read checks agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dwc<T: Copy + Eq> {
    a: T,
    b: T,
}

/// Error raised when redundant copies disagree (detection, not correction —
/// the program turns a would-be SDC into a DUE it can recover from by
/// restart/checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyMismatch;

impl<T: Copy + Eq> Dwc<T> {
    pub fn new(value: T) -> Self {
        Dwc { a: value, b: value }
    }

    /// Reads the value, checking the copies against each other.
    pub fn read(&self) -> Result<T, RedundancyMismatch> {
        if self.a == self.b {
            Ok(self.a)
        } else {
            Err(RedundancyMismatch)
        }
    }

    /// Writes both copies.
    pub fn write(&mut self, value: T) {
        self.a = value;
        self.b = value;
    }

    /// Raw access for fault injection in tests/campaigns.
    pub fn copies_mut(&mut self) -> (&mut T, &mut T) {
        (&mut self.a, &mut self.b)
    }
}

/// Triple modular redundancy: three copies, majority vote corrects one
/// corrupted copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tmr<T: Copy + Eq> {
    copies: [T; 3],
}

impl<T: Copy + Eq> Tmr<T> {
    pub fn new(value: T) -> Self {
        Tmr { copies: [value; 3] }
    }

    /// Majority-voted read; also scrubs the losing copy back into line.
    /// Fails only when all three copies disagree pairwise.
    pub fn read_and_scrub(&mut self) -> Result<T, RedundancyMismatch> {
        let [a, b, c] = self.copies;
        let winner = if a == b || a == c {
            a
        } else if b == c {
            b
        } else {
            return Err(RedundancyMismatch);
        };
        self.copies = [winner; 3];
        Ok(winner)
    }

    pub fn write(&mut self, value: T) {
        self.copies = [value; 3];
    }

    pub fn copies_mut(&mut self) -> &mut [T; 3] {
        &mut self.copies
    }
}

/// Storage overhead of protecting `protected_bytes` of a `total_bytes`
/// working set with `copies`-fold redundancy — the "selective" in selective
/// hardening. Protecting DGEMM's 228×9 control integers costs a vanishing
/// fraction of duplicating its matrices.
pub fn selective_overhead(protected_bytes: usize, total_bytes: usize, copies: usize) -> f64 {
    (protected_bytes * (copies - 1)) as f64 / total_bytes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dwc_detects_any_single_copy_corruption() {
        let mut x = Dwc::new(42u64);
        assert_eq!(x.read(), Ok(42));
        *x.copies_mut().0 ^= 1 << 40;
        assert_eq!(x.read(), Err(RedundancyMismatch));
    }

    #[test]
    fn dwc_write_resynchronises() {
        let mut x = Dwc::new(1u32);
        *x.copies_mut().1 = 99;
        x.write(7);
        assert_eq!(x.read(), Ok(7));
    }

    #[test]
    fn tmr_corrects_one_corrupted_copy() {
        let mut x = Tmr::new(1234u64);
        x.copies_mut()[1] = 0xdead;
        assert_eq!(x.read_and_scrub(), Ok(1234));
        // Scrubbed: a second corruption of a different copy still corrects.
        x.copies_mut()[0] = 0xbeef;
        assert_eq!(x.read_and_scrub(), Ok(1234));
    }

    #[test]
    fn tmr_fails_only_on_triple_disagreement() {
        let mut x = Tmr::new(5u8);
        *x.copies_mut() = [1, 2, 3];
        assert_eq!(x.read_and_scrub(), Err(RedundancyMismatch));
    }

    #[test]
    fn selective_hardening_is_cheap_for_dgemm_controls() {
        // 228 threads × 9 × 8-byte integers vs three 2048² f64 matrices.
        let protected = 228 * 9 * 8;
        let total = 3 * 2048 * 2048 * 8;
        let overhead = selective_overhead(protected, total, 2);
        assert!(overhead < 0.001, "selective DWC overhead {overhead}");
    }

    proptest::proptest! {
        #[test]
        fn prop_tmr_majority_always_wins_single_faults(value: u64, corrupt: u64, slot in 0usize..3) {
            let mut x = Tmr::new(value);
            x.copies_mut()[slot] = corrupt;
            proptest::prop_assert_eq!(x.read_and_scrub(), Ok(value));
        }
    }
}
