//! Word parity (paper §6.1).
//!
//! "For NW, a simple parity would detect most SDCs since single faults are
//! more critical than the others types of faults. Therefore, the ability to
//! disable or to provide weaker mitigation mechanisms will significantly
//! improve the performance and sustain the desired level of resilience."
//!
//! Even parity over a 64-bit word detects every odd-weight corruption —
//! in particular all Single faults, the model the NW campaign grades as its
//! most SDC-critical — at one bit of storage per word.

use serde::{Deserialize, Serialize};

/// A word with an even-parity bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParityWord {
    pub value: u64,
    pub parity: bool,
}

impl ParityWord {
    pub fn new(value: u64) -> Self {
        ParityWord { value, parity: value.count_ones() % 2 == 1 }
    }

    /// True when the stored parity matches the stored value.
    pub fn check(&self) -> bool {
        (self.value.count_ones() % 2 == 1) == self.parity
    }

    /// Updates the value (and parity).
    pub fn write(&mut self, value: u64) {
        *self = ParityWord::new(value);
    }
}

/// Detection coverage of parity against `flips` random bit flips:
/// odd flip counts are always caught, even counts never.
pub fn detects_flip_count(flips: usize) -> bool {
    flips % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_words_check() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert!(ParityWord::new(v).check());
        }
    }

    #[test]
    fn single_fault_model_is_always_detected() {
        for bit in 0..64 {
            let mut w = ParityWord::new(0x1234_5678_9abc_def0);
            w.value ^= 1 << bit;
            assert!(!w.check(), "bit {bit}");
        }
    }

    #[test]
    fn double_fault_model_evades_parity() {
        // The paper's Double model (two bits in one byte) has even weight —
        // exactly the class parity cannot see, which is why parity is only
        // recommended where Single dominates.
        let mut w = ParityWord::new(0xffff_0000_ffff_0000);
        w.value ^= 0b11 << 8;
        assert!(w.check());
    }

    #[test]
    fn zero_fault_detection_depends_on_popcount() {
        let odd = ParityWord { value: 0, parity: ParityWord::new(0b111).parity };
        assert!(!odd.check(), "odd-popcount value zeroed ⇒ detected");
        let even = ParityWord { value: 0, parity: ParityWord::new(0b11).parity };
        assert!(even.check(), "even-popcount value zeroed ⇒ aliases");
    }

    proptest! {
        #[test]
        fn prop_odd_weight_corruption_always_detected(value: u64, mask: u64) {
            prop_assume!(mask != 0);
            let mut w = ParityWord::new(value);
            w.value ^= mask;
            prop_assert_eq!(!w.check(), detects_flip_count(mask.count_ones() as usize));
        }
    }
}
