//! Duplication-with-comparison as a transparent [`FaultTarget`] wrapper —
//! the paper's §7 future work ("we plan to implement the mitigation
//! techniques based on the radiation and fault injection analysis. Then, we
//! will validate them with … fault injection campaigns") made concrete.
//!
//! [`DwcControls`] shadows every *control-class* variable of the wrapped
//! program (the variables the §6 analysis flags as critical for DGEMM and
//! LUD) with a replica. At every step boundary — exactly where the injector
//! can have struck — the replicas are compared: a mismatch raises a typed
//! panic, turning a would-be SDC or wild-pointer crash into an immediate,
//! attributable *detection*. The replicas themselves are exposed as
//! injectable state too (protection hardware is not immune to strikes);
//! corrupting a replica also trips the comparison, which is safe-side.
//!
//! Validated end to end by `cargo run -p bench --bin hardening_validation`
//! and the `dwc_wrapper_*` tests: under the same campaign seed, the wrapper
//! converts control-variable SDCs into detections without touching the
//! masked fraction of non-control faults.

use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};

/// Panic payload raised when a control replica disagrees (recognisable in
/// the DUE crash message).
pub const DWC_DETECTION: &str = "dwc: control-replica mismatch on";

/// A [`FaultTarget`] whose control-class variables are DWC-protected.
pub struct DwcControls<T: FaultTarget> {
    inner: T,
    /// Shadow copies of control variables, keyed by (name, thread).
    shadow: Vec<ShadowSlot>,
    /// Detections counted so far (before the panic unwinds, for tests).
    detections: usize,
}

struct ShadowSlot {
    name: &'static str,
    thread: Option<u16>,
    bytes: Vec<u8>,
}

fn is_protected(info: &VarInfo) -> bool {
    info.class == VarClass::ControlVariable
}

impl<T: FaultTarget> DwcControls<T> {
    pub fn new(mut inner: T) -> Self {
        let shadow = inner
            .variables()
            .iter()
            .filter(|v| is_protected(&v.info))
            .map(|v| ShadowSlot { name: v.info.name, thread: v.info.thread, bytes: v.bytes.to_vec() })
            .collect();
        DwcControls { inner, shadow, detections: 0 }
    }

    /// Number of mismatches detected so far.
    pub fn detections(&self) -> usize {
        self.detections
    }

    /// Compares every protected variable with its replica; panics on the
    /// first mismatch (the detection path).
    fn compare(&mut self) {
        let shadow = std::mem::take(&mut self.shadow);
        {
            let vars = self.inner.variables();
            for (idx, v) in vars.iter().filter(|v| is_protected(&v.info)).enumerate() {
                let slot = &shadow[idx];
                debug_assert_eq!(slot.name, v.info.name);
                if slot.bytes != v.bytes {
                    self.detections += 1;
                    self.shadow = shadow;
                    panic!("{DWC_DETECTION} {} (thread {:?})", v.info.name, v.info.thread);
                }
            }
        }
        self.shadow = shadow;
    }

    /// Refreshes the replicas from the (legitimately updated) originals.
    fn refresh(&mut self) {
        let mut shadow = std::mem::take(&mut self.shadow);
        {
            let vars = self.inner.variables();
            for (idx, v) in vars.iter().filter(|v| is_protected(&v.info)).enumerate() {
                shadow[idx].bytes.clear();
                shadow[idx].bytes.extend_from_slice(v.bytes);
            }
        }
        self.shadow = shadow;
    }
}

impl<T: FaultTarget> FaultTarget for DwcControls<T> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn total_steps(&self) -> usize {
        self.inner.total_steps()
    }
    fn steps_executed(&self) -> usize {
        self.inner.steps_executed()
    }

    fn step(&mut self) -> StepOutcome {
        // The comparison runs where the interrupt can have struck: at the
        // step boundary, before the corrupted value is consumed.
        self.compare();
        let r = self.inner.step();
        // The program legitimately advances its cursors during the step.
        self.refresh();
        r
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        // Expose the original state AND the replicas: the protection
        // storage is itself strike-able.
        let mut vars = self.inner.variables();
        for slot in &mut self.shadow {
            let elem_size = 8.min(slot.bytes.len().max(1));
            vars.push(Variable {
                info: VarInfo {
                    name: slot.name,
                    class: VarClass::Buffer,
                    frame: carolfi::target::FrameId::Sub("dwc_shadow"),
                    thread: slot.thread,
                    file: file!(),
                    line: line!(),
                },
                bytes: &mut slot.bytes,
                elem_size,
            });
        }
        vars
    }

    fn output(&self) -> Output {
        self.inner.output()
    }

    fn reset(&mut self) -> bool {
        // Resettable exactly when the wrapped program is: restore the inner
        // state, then rebuild the replicas from the restored originals.
        if !self.inner.reset() {
            return false;
        }
        self.refresh();
        self.detections = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy victim with one critical control variable.
    struct Toy {
        data: Vec<u64>,
        cursor: u64,
        done: usize,
    }
    impl Toy {
        fn new() -> Self {
            Toy { data: (0..32).collect(), cursor: 0, done: 0 }
        }
    }
    impl FaultTarget for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn total_steps(&self) -> usize {
            8
        }
        fn steps_executed(&self) -> usize {
            self.done
        }
        fn step(&mut self) -> StepOutcome {
            let base = (self.cursor as usize) * 4;
            for i in 0..4 {
                self.data[base + i] = self.data[base + i].wrapping_mul(7).wrapping_add(1);
            }
            self.cursor += 1;
            self.done += 1;
            if self.done >= 8 {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            }
        }
        fn variables(&mut self) -> Vec<Variable<'_>> {
            vec![
                Variable::from_slice(VarInfo::global("data", VarClass::Matrix, file!(), 1), &mut self.data),
                Variable::from_scalar(VarInfo::local("cursor", VarClass::ControlVariable, "loop", 0, file!(), 2), &mut self.cursor),
            ]
        }
        fn output(&self) -> Output {
            Output::I32Grid { dims: [32, 1, 1], data: self.data.iter().map(|&x| x as i32).collect() }
        }
        fn reset(&mut self) -> bool {
            for (i, v) in self.data.iter_mut().enumerate() {
                *v = i as u64;
            }
            self.cursor = 0;
            self.done = 0;
            true
        }
    }

    #[test]
    fn fault_free_run_is_unchanged_by_the_wrapper() {
        let mut plain = Toy::new();
        while plain.step() == StepOutcome::Continue {}
        let mut hardened = DwcControls::new(Toy::new());
        while hardened.step() == StepOutcome::Continue {}
        assert!(hardened.output().matches(&plain.output()));
        assert_eq!(hardened.detections(), 0);
    }

    #[test]
    fn corrupted_control_is_detected_before_use() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let mut hardened = DwcControls::new(Toy::new());
        hardened.step();
        hardened.inner.cursor = 99; // the strike
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hardened.step()));
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("message");
        assert!(msg.contains(DWC_DETECTION), "{msg}");
    }

    #[test]
    fn corrupted_replica_is_also_detected() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let mut hardened = DwcControls::new(Toy::new());
        hardened.step();
        hardened.shadow[0].bytes[0] ^= 0xff;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hardened.step()));
        assert!(r.is_err());
    }

    #[test]
    fn data_faults_pass_through_unprotected() {
        // DWC on controls must not mask data corruption: it still becomes an
        // SDC, exactly as selective hardening intends.
        let mut plain = Toy::new();
        while plain.step() == StepOutcome::Continue {}
        let golden = plain.output();
        let mut hardened = DwcControls::new(Toy::new());
        hardened.step();
        hardened.inner.data[31] ^= 1 << 20;
        while hardened.step() == StepOutcome::Continue {}
        assert!(!hardened.output().matches(&golden));
    }

    #[test]
    fn reset_restores_wrapper_and_replicas() {
        let mut plain = Toy::new();
        while plain.step() == StepOutcome::Continue {}
        let golden = plain.output();

        let mut hardened = DwcControls::new(Toy::new());
        hardened.step();
        hardened.shadow[0].bytes[0] ^= 0xff; // corrupt the replica too
        assert!(hardened.reset(), "wrapper must reset when the inner target does");
        while hardened.step() == StepOutcome::Continue {}
        assert!(hardened.output().bits_equal(&golden), "post-reset rerun must match the golden run");
        assert_eq!(hardened.detections(), 0);
    }

    #[test]
    fn wrapper_exposes_replicas_as_injectable_state() {
        let mut hardened = DwcControls::new(Toy::new());
        let vars = hardened.variables();
        let shadows = vars.iter().filter(|v| v.info.frame == carolfi::target::FrameId::Sub("dwc_shadow")).count();
        assert_eq!(shadows, 1);
    }
}
