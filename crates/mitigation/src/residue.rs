//! Residue arithmetic checking (paper §6.1).
//!
//! "Algebraic applications can be better protected with residue error
//! detection than ECC, which is unable to correct Random or Zero faults nor
//! the logic circuit. We need only 8 bits to use mod15 for the residue error
//! protection, or only 2 bits for mod3."
//!
//! A residue code attaches `x mod m` to each value; because residues are
//! homomorphic over `+`, `-` and `×`, the checker recomputes the residue of
//! every arithmetic *result* from the operand residues and compares it with
//! the residue of the actually produced value — catching both data
//! corruption and faulty ALU results ("logic errors that modify the result
//! of instructions … could not be detected with ECC but could be detected by
//! residue module check").

use serde::{Deserialize, Serialize};

/// A residue checksum modulo `M` (use 3 or 15; `M = 2ᵏ − 1` makes hardware
/// residue extraction a k-bit end-around-carry adder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Residue<const M: u64>(u64);

// `add`/`sub`/`mul` intentionally shadow the operator names without the
// `std::ops` traits: modular arithmetic here is an explicit, checkable act,
// not something to hide behind `+`.
#[allow(clippy::should_implement_trait)]
impl<const M: u64> Residue<M> {
    pub fn of(x: i64) -> Self {
        Residue(x.rem_euclid(M as i64) as u64)
    }

    pub fn value(self) -> u64 {
        self.0
    }

    pub fn add(self, other: Self) -> Self {
        Residue((self.0 + other.0) % M)
    }

    pub fn sub(self, other: Self) -> Self {
        Residue((self.0 + M - other.0) % M)
    }

    pub fn mul(self, other: Self) -> Self {
        Residue((self.0 * other.0) % M)
    }
}

/// An integer carrying its residue; arithmetic updates both, and
/// [`ResidueChecked::check`] validates the pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidueChecked<const M: u64> {
    pub value: i64,
    pub residue: Residue<M>,
}

#[allow(clippy::should_implement_trait)]
impl<const M: u64> ResidueChecked<M> {
    pub fn new(value: i64) -> Self {
        ResidueChecked { value, residue: Residue::of(value) }
    }

    /// True when the stored residue matches the stored value.
    pub fn check(&self) -> bool {
        Residue::<M>::of(self.value) == self.residue
    }

    pub fn add(self, other: Self) -> Self {
        ResidueChecked { value: self.value.wrapping_add(other.value), residue: self.residue.add(other.residue) }
    }

    pub fn sub(self, other: Self) -> Self {
        ResidueChecked { value: self.value.wrapping_sub(other.value), residue: self.residue.sub(other.residue) }
    }

    pub fn mul(self, other: Self) -> Self {
        ResidueChecked { value: self.value.wrapping_mul(other.value), residue: self.residue.mul(other.residue) }
    }
}

/// Fraction of single-bit flips of a value that a mod-`M` residue detects
/// (exhaustive over the 64 bit positions). `2ᵏ − 1` moduli detect **all**
/// single-bit errors because `2^i mod (2^k − 1) ≠ 0` for every `i`.
pub fn single_bit_coverage<const M: u64>(value: i64) -> f64 {
    let mut detected = 0;
    for bit in 0..64 {
        let corrupted = value ^ (1i64 << bit);
        let rc = ResidueChecked::<M> { value: corrupted, residue: Residue::of(value) };
        if !rc.check() {
            detected += 1;
        }
    }
    detected as f64 / 64.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn residue_is_homomorphic() {
        let a = ResidueChecked::<15>::new(12345);
        let b = ResidueChecked::<15>::new(-678);
        assert!(a.add(b).check());
        assert!(a.sub(b).check());
        assert!(a.mul(b).check());
    }

    #[test]
    fn corrupted_value_fails_the_check() {
        let mut a = ResidueChecked::<15>::new(9999);
        a.value ^= 1 << 20;
        assert!(!a.check());
    }

    #[test]
    fn mod3_and_mod15_detect_all_single_bit_flips() {
        for v in [0i64, 1, -1, 123456789, i64::MAX / 3] {
            assert_eq!(single_bit_coverage::<3>(v), 1.0, "mod3 missed a bit on {v}");
            assert_eq!(single_bit_coverage::<15>(v), 1.0, "mod15 missed a bit on {v}");
        }
    }

    #[test]
    fn zero_fault_is_detected_unless_value_was_zero() {
        let a = ResidueChecked::<15>::new(12340);
        let zeroed = ResidueChecked::<15> { value: 0, residue: a.residue };
        // 12340 mod 15 = 10 ≠ 0 ⇒ detected.
        assert!(!zeroed.check());
        let b = ResidueChecked::<15>::new(15);
        let zeroed_b = ResidueChecked::<15> { value: 0, residue: b.residue };
        // 15 mod 15 = 0 ⇒ the Zero fault aliases (the paper's reason residue
        // cannot replace detection for every fault type on its own).
        assert!(zeroed_b.check());
    }

    proptest! {
        #[test]
        fn prop_arithmetic_keeps_residues_consistent(a: i32, b: i32) {
            let x = ResidueChecked::<15>::new(a as i64);
            let y = ResidueChecked::<15>::new(b as i64);
            prop_assert!(x.add(y).check());
            prop_assert!(x.sub(y).check());
            prop_assert!(x.mul(y).check());
        }

        #[test]
        fn prop_random_word_corruption_detected_with_expected_rate(a: i64, noise: i64) {
            prop_assume!(noise != 0 && (a.wrapping_add(noise)) != a);
            let x = ResidueChecked::<15>::new(a);
            let corrupted = ResidueChecked::<15> { value: a.wrapping_add(noise), residue: x.residue };
            // Mod-15 misses exactly the corruptions that preserve value mod 15.
            let aliases = (a.wrapping_add(noise)).rem_euclid(15) == a.rem_euclid(15);
            prop_assert_eq!(corrupted.check(), aliases);
        }
    }
}
