//! End-to-end tests of the campaign service over a real Unix socket, with
//! a synthetic [`Runner`] so scheduling, admission, persistence and
//! streaming are exercised without building kernels: submit, disconnect,
//! reconnect by id, fair-share interleaving, cancel, queue-full rejection,
//! and resume of interrupted campaigns across a daemon restart.

use serde::{Deserialize, Serialize};
use serve::proto::{roundtrip, subscribe, ClientRequest, ServerReply};
use serve::{EventBus, Registry, Runner, ServeConfig, Server, SliceRun, SpecInfo};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Serialize, Deserialize)]
struct TestSpec {
    tag: String,
    total: u64,
    delay_ms: u64,
}

fn spec(tag: &str, total: u64, delay_ms: u64) -> String {
    serde_json::to_string(&TestSpec { tag: tag.into(), total, delay_ms }).unwrap()
}

/// Synthetic runner: progress is a `done` counter file inside the journal
/// directory (durable, so daemon restarts resume), each slice sleeps
/// `delay_ms` to model trial work, and every slice is logged as
/// `(tag, done_before)` for interleaving assertions.
#[derive(Default)]
struct TestRunner {
    log: Mutex<Vec<(String, u64)>>,
    units: AtomicU64,
}

impl TestRunner {
    fn tags(&self) -> Vec<String> {
        self.log.lock().unwrap().iter().map(|(t, _)| t.clone()).collect()
    }
}

impl Runner for TestRunner {
    fn validate(&self, raw: &str) -> Result<SpecInfo, String> {
        let s: TestSpec = serde_json::from_str(raw).map_err(|e| e.to_string())?;
        if s.total == 0 {
            return Err("total must be positive".into());
        }
        Ok(SpecInfo { kind: "test".into(), benchmark: s.tag, total: s.total })
    }

    fn run_slice(&self, raw: &str, journal: &Path, budget: usize) -> io::Result<SliceRun> {
        let s: TestSpec = serde_json::from_str(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::create_dir_all(journal)?;
        let done_file = journal.join("done");
        let done: u64 =
            std::fs::read_to_string(&done_file).ok().and_then(|r| r.trim().parse().ok()).unwrap_or(0);
        self.log.lock().unwrap().push((s.tag.clone(), done));
        std::thread::sleep(Duration::from_millis(s.delay_ms));
        let ran = (budget as u64).min(s.total - done);
        self.units.fetch_add(ran, Ordering::SeqCst);
        let now = done + ran;
        std::fs::write(&done_file, now.to_string())?;
        if now >= s.total {
            Ok(SliceRun::Complete { result: format!("{{\"tag\":{:?},\"ran\":{now}}}", s.tag) })
        } else {
            Ok(SliceRun::Paused { completed: now })
        }
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-serve").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn start_server(dir: &Path, runner: Arc<TestRunner>, max_active: usize, slice: usize) -> Server {
    let mut cfg = ServeConfig::new(dir.join("sock"), dir.join("root"));
    cfg.max_active = max_active;
    cfg.slice = slice;
    Server::start(cfg, runner, Arc::new(EventBus::new())).expect("start server")
}

fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn submit(server: &Server, raw: String) -> String {
    match roundtrip(server.socket(), &ClientRequest::Submit { spec: raw }).expect("submit rpc") {
        ServerReply::Submitted { id } => id,
        other => panic!("unexpected submit reply: {other:?}"),
    }
}

// ---------------------------------------------------------------- registry

/// The fair-share ring is strict round-robin: with two active campaigns
/// each gets every other slice, a third waits in the queue until a ring
/// slot frees, and completion promotes the next waiter.
#[test]
fn registry_ring_is_round_robin_and_promotes_on_completion() {
    let dir = test_dir("registry-ring");
    let runner = TestRunner::default();
    let reg = Registry::open(&dir.join("root"), 2, 64, &runner).expect("open");
    for tag in ["a", "b", "c"] {
        let raw = spec(tag, 30, 0);
        let info = runner.validate(&raw).unwrap();
        reg.submit(raw, info).expect("submit");
    }
    let mut turns = Vec::new();
    // Drive the scheduler loop by hand: a & b alternate while c waits.
    for completed in [10u64, 10, 20, 20] {
        let job = reg.next_job().expect("job");
        turns.push(job.id.clone());
        reg.slice_done(&job.id, Ok(SliceRun::Paused { completed }));
    }
    assert_eq!(turns, ["c0001", "c0002", "c0001", "c0002"]);

    // a completes; c is promoted into the freed slot and alternates with b.
    let job = reg.next_job().expect("job");
    assert_eq!(job.id, "c0001");
    reg.slice_done(&job.id, Ok(SliceRun::Complete { result: "{}".into() }));
    let mut tail = Vec::new();
    for _ in 0..4 {
        let job = reg.next_job().expect("job");
        tail.push(job.id.clone());
        reg.slice_done(&job.id, Ok(SliceRun::Paused { completed: 1 }));
    }
    assert_eq!(tail, ["c0002", "c0003", "c0002", "c0003"]);
    let done = reg.status("c0001").expect("status");
    assert_eq!((done.state.as_str(), done.completed), ("done", 30));
}

/// Admission control: the waiting queue rejects beyond `max_queue` with a
/// reason, and a stopping daemon rejects everything.
#[test]
fn admission_rejects_when_queue_is_full_or_stopping() {
    let dir = test_dir("registry-admission");
    let runner = TestRunner::default();
    // No scheduler thread: nothing drains the queue, so the cap is exact.
    let reg = Registry::open(&dir.join("root"), 1, 2, &runner).expect("open");
    let admit = |tag: &str| {
        let raw = spec(tag, 10, 0);
        let info = runner.validate(&raw).unwrap();
        reg.submit(raw, info)
    };
    assert!(admit("a").is_ok());
    assert!(admit("b").is_ok());
    let reason = admit("c").expect_err("third submit must be rejected");
    assert!(reason.contains("full"), "unexpected rejection reason: {reason}");

    reg.stop();
    let reason = admit("d").expect_err("stopping daemon must reject");
    assert!(reason.contains("shutting down"), "unexpected rejection reason: {reason}");
}

/// A cancel on a queued campaign is immediate and durable (the marker
/// survives a registry re-open).
#[test]
fn cancel_of_a_queued_campaign_is_immediate_and_durable() {
    let dir = test_dir("registry-cancel");
    let root = dir.join("root");
    let runner = TestRunner::default();
    let reg = Registry::open(&root, 1, 64, &runner).expect("open");
    let raw = spec("a", 10, 0);
    let info = runner.validate(&raw).unwrap();
    let id = reg.submit(raw, info).expect("submit");
    let status = reg.cancel(&id).expect("cancel");
    assert_eq!(status.state, "cancelled");

    let reopened = Registry::open(&root, 1, 64, &runner).expect("reopen");
    assert_eq!(reopened.status(&id).expect("status").state, "cancelled");
}

// ---------------------------------------------------------------- service

/// The ISSUE's integration scenario: submit over the socket, disconnect
/// (every `roundtrip` is its own connection), reconnect by id mid-run, and
/// receive the completed result on a third connection.
#[test]
fn submit_disconnect_reconnect_by_id_and_fetch_result() {
    let dir = test_dir("service-reconnect");
    let runner = Arc::new(TestRunner::default());
    let server = start_server(&dir, runner.clone(), 2, 10);
    let id = submit(&server, spec("alpha", 40, 15));

    // New connection: the id alone recovers status while the run is live.
    match roundtrip(server.socket(), &ClientRequest::Status { id: id.clone() }).expect("status rpc") {
        ServerReply::Status { status } => {
            assert_eq!(status.id, id);
            assert_eq!(status.benchmark, "alpha");
            assert_eq!(status.total, 40);
            assert!(matches!(status.state.as_str(), "queued" | "running"), "state: {}", status.state);
        }
        other => panic!("unexpected status reply: {other:?}"),
    }

    // Third connection blocks for the result.
    match roundtrip(server.socket(), &ClientRequest::Result { id: id.clone(), wait_ms: 20_000 })
        .expect("result rpc")
    {
        ServerReply::Result { id: rid, result } => {
            assert_eq!(rid, id);
            assert_eq!(result, "{\"tag\":\"alpha\",\"ran\":40}");
        }
        other => panic!("unexpected result reply: {other:?}"),
    }

    // The result is persisted, and List sees the terminal state.
    let persisted = std::fs::read_to_string(server.root().join(&id).join("result.json")).expect("result.json");
    assert_eq!(persisted, "{\"tag\":\"alpha\",\"ran\":40}");
    match roundtrip(server.socket(), &ClientRequest::List).expect("list rpc") {
        ServerReply::List { campaigns } => {
            let c = campaigns.iter().find(|c| c.id == id).expect("listed");
            assert_eq!((c.state.as_str(), c.completed, c.total), ("done", 40, 40));
        }
        other => panic!("unexpected list reply: {other:?}"),
    }
    server.stop();
}

/// Two concurrent campaigns interleave slices (neither runs to completion
/// before the other starts) and subscribers see per-slice progress events.
#[test]
fn concurrent_campaigns_share_fairly_and_stream_progress() {
    let dir = test_dir("service-fair-share");
    let runner = Arc::new(TestRunner::default());
    let server = start_server(&dir, runner.clone(), 2, 10);
    let a = submit(&server, spec("a", 30, 25));
    let b = submit(&server, spec("b", 30, 25));

    // Subscribe to campaign b and collect its stream until Done.
    let mut stream = subscribe(server.socket(), &b, 100).expect("subscribe");
    let mut events: Vec<ServerReply> = Vec::new();
    loop {
        let reply: ServerReply =
            carolfi::warden::read_frame_blocking(&mut stream).expect("stream frame");
        if matches!(reply, ServerReply::Done) {
            break;
        }
        events.push(reply);
    }

    for id in [&a, &b] {
        match roundtrip(server.socket(), &ClientRequest::Result { id: id.clone(), wait_ms: 20_000 })
            .expect("result rpc")
        {
            ServerReply::Result { result, .. } => assert!(result.contains("\"ran\":30"), "result: {result}"),
            other => panic!("unexpected result reply: {other:?}"),
        }
    }

    // Interleaving: b ran before a finished and a ran before b finished —
    // i.e. the slice log is not two contiguous blocks.
    let tags = runner.tags();
    let first_b = tags.iter().position(|t| t == "b").expect("b ran");
    let last_a = tags.iter().rposition(|t| t == "a").expect("a ran");
    let first_a = tags.iter().position(|t| t == "a").expect("a ran");
    let last_b = tags.iter().rposition(|t| t == "b").expect("b ran");
    assert!(first_b < last_a && first_a < last_b, "no fair-share interleaving in slice log: {tags:?}");
    assert_eq!(tags.iter().filter(|t| *t == "a").count(), 3, "slice log: {tags:?}");
    assert_eq!(tags.iter().filter(|t| *t == "b").count(), 3, "slice log: {tags:?}");

    // The subscriber saw b's progress advance slice by slice: slice_end /
    // campaign_terminal payloads carry the status with `completed`.
    let mut completions = Vec::new();
    let mut gauges = 0;
    for reply in &events {
        match reply {
            ServerReply::Event { id, kind, payload } => {
                assert_eq!(id, &b, "subscription leaked another campaign's event");
                if kind == "slice_end" || kind == "campaign_terminal" {
                    let status: Option<serve::proto::CampaignStatus> =
                        serde_json::from_str(payload).expect("status payload");
                    completions.push(status.expect("status present").completed);
                }
            }
            ServerReply::Gauges { status, .. } => {
                assert_eq!(status.id, b);
                gauges += 1;
            }
            other => panic!("unexpected stream frame: {other:?}"),
        }
    }
    assert_eq!(completions, [10, 20, 30], "streamed progress: {completions:?}");
    assert!(gauges >= 2, "expected the initial and final gauge frames at least");
    server.stop();
}

/// Cancelling a running campaign takes effect at the next slice boundary
/// and `Result` then reports the cancellation instead of blocking forever.
#[test]
fn cancel_of_a_running_campaign_lands_at_the_slice_boundary() {
    let dir = test_dir("service-cancel");
    let runner = Arc::new(TestRunner::default());
    let server = start_server(&dir, runner.clone(), 1, 10);
    let id = submit(&server, spec("long", 10_000, 20));
    wait_for("campaign to start", || runner.units.load(Ordering::SeqCst) > 0);

    match roundtrip(server.socket(), &ClientRequest::Cancel { id: id.clone() }).expect("cancel rpc") {
        ServerReply::Status { status } => assert!(
            matches!(status.state.as_str(), "running" | "cancelled"),
            "state after cancel: {}",
            status.state
        ),
        other => panic!("unexpected cancel reply: {other:?}"),
    }
    match roundtrip(server.socket(), &ClientRequest::Result { id: id.clone(), wait_ms: 20_000 })
        .expect("result rpc")
    {
        ServerReply::Error { reason } => {
            assert!(reason.contains("cancelled"), "unexpected reason: {reason}")
        }
        other => panic!("unexpected result reply: {other:?}"),
    }
    let ran = runner.units.load(Ordering::SeqCst);
    assert!(ran < 10_000, "cancel did not stop the campaign (ran {ran} trials)");
    server.stop();
}

/// Unknown ids are errors, not hangs; invalid specs are rejected at
/// admission with the runner's reason.
#[test]
fn unknown_ids_and_invalid_specs_are_rejected() {
    let dir = test_dir("service-rejects");
    let runner = Arc::new(TestRunner::default());
    let server = start_server(&dir, runner, 1, 10);
    match roundtrip(server.socket(), &ClientRequest::Status { id: "c9999".into() }).expect("status rpc") {
        ServerReply::Error { reason } => assert!(reason.contains("c9999")),
        other => panic!("unexpected reply: {other:?}"),
    }
    match roundtrip(server.socket(), &ClientRequest::Submit { spec: spec("zero", 0, 0) }).expect("submit rpc") {
        ServerReply::Rejected { reason } => {
            assert!(reason.contains("total must be positive"), "reason: {reason}")
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    match roundtrip(server.socket(), &ClientRequest::Submit { spec: "not json".into() }).expect("submit rpc") {
        ServerReply::Rejected { reason } => assert!(reason.contains("invalid spec"), "reason: {reason}"),
        other => panic!("unexpected reply: {other:?}"),
    }
    server.stop();
}

/// A daemon stopped mid-campaign and restarted on the same root resumes
/// the interrupted campaign from its journal — by the same id, without
/// redoing finished work.
#[test]
fn restart_on_the_same_root_resumes_interrupted_campaigns_by_id() {
    let dir = test_dir("service-restart");
    let runner = Arc::new(TestRunner::default());
    let server = start_server(&dir, runner.clone(), 1, 5);
    let id = submit(&server, spec("resume", 40, 20));
    wait_for("some progress before the stop", || runner.units.load(Ordering::SeqCst) >= 5);
    server.stop();

    let before = runner.units.load(Ordering::SeqCst);
    assert!(before < 40, "campaign already finished; nothing to resume");

    let server = start_server(&dir, runner.clone(), 1, 5);
    match roundtrip(server.socket(), &ClientRequest::Result { id: id.clone(), wait_ms: 20_000 })
        .expect("result rpc")
    {
        ServerReply::Result { id: rid, result } => {
            assert_eq!(rid, id, "restart reassigned the campaign id");
            assert_eq!(result, "{\"tag\":\"resume\",\"ran\":40}");
        }
        other => panic!("unexpected result reply: {other:?}"),
    }
    // Exactly `total` units ran across both daemon lifetimes: the restart
    // resumed from the journal instead of starting over.
    assert_eq!(runner.units.load(Ordering::SeqCst), 40);
    let resumed = runner.log.lock().unwrap().iter().any(|(t, done)| t == "resume" && *done >= before);
    assert!(resumed, "no slice resumed from the journaled progress");
    server.stop();
}

/// The socket claim protocol: a live endpoint is refused, a foreign file
/// is never deleted, and a stale socket file is cleaned up.
#[test]
fn socket_claim_refuses_live_endpoints_and_foreign_files() {
    let dir = test_dir("service-claim");
    let runner = Arc::new(TestRunner::default());
    let server = start_server(&dir, runner.clone(), 1, 10);

    // Second daemon on the same (live) socket must fail, not hijack it.
    let cfg = ServeConfig::new(dir.join("sock"), dir.join("root2"));
    let err = match Server::start(cfg, runner.clone(), Arc::new(EventBus::new())) {
        Err(e) => e,
        Ok(_) => panic!("second daemon bound a live socket"),
    };
    assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "unexpected error: {err}");
    server.stop();

    // A regular file at the socket path is refused and left intact.
    let decoy = dir.join("sock");
    std::fs::write(&decoy, b"precious data").expect("write decoy");
    let cfg = ServeConfig::new(decoy.clone(), dir.join("root3"));
    let err = match Server::start(cfg, runner.clone(), Arc::new(EventBus::new())) {
        Err(e) => e,
        Ok(_) => panic!("daemon replaced a foreign file with its socket"),
    };
    assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "unexpected error: {err}");
    assert_eq!(std::fs::read(&decoy).expect("decoy survives"), b"precious data");
    std::fs::remove_file(&decoy).expect("cleanup decoy");

    // A stale socket file (its listener is gone, as after SIGKILL) is
    // cleaned up and rebound instead of refusing forever.
    let stale = dir.join("stale.sock");
    let listener = carolfi::monitor::claim_socket(&stale).expect("first claim");
    drop(listener); // fd closed, socket file left behind — a dead endpoint
    assert!(stale.exists(), "closing the listener should leave the file");
    let _relisten = carolfi::monitor::claim_socket(&stale).expect("stale socket must be reclaimed");
}
