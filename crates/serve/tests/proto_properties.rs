//! Property tests for the campaign-service wire protocol: any
//! request/reply frame survives a socket round-trip byte-exactly, and the
//! codec rejects oversized and truncated frames instead of hanging or
//! misparsing.

use carolfi::warden::{read_frame_blocking, write_frame, MAX_FRAME};
use proptest::prelude::*;
use serve::proto::{CampaignStatus, ClientRequest, ServerReply};
use std::io::Write as _;
use std::os::unix::net::UnixStream;

/// Decodes a `(selector, a, b)` triple into a request, exercising every
/// verb and awkward id/spec characters (quotes, newlines, non-ASCII).
fn request(sel: u64, a: u64, b: u64) -> ClientRequest {
    let id = format!("c{:04}", a % 10_000);
    match sel % 6 {
        0 => ClientRequest::Submit {
            spec: format!("{{\"benchmark\":\"q\\\"uote\\nnewline-µ\",\"trials\":{a},\"seed\":{b}}}"),
        },
        1 => ClientRequest::Status { id },
        2 => ClientRequest::List,
        3 => ClientRequest::Events { id, gauge_ms: b },
        4 => ClientRequest::Result { id, wait_ms: b },
        _ => ClientRequest::Cancel { id },
    }
}

fn status(a: u64, b: u64) -> CampaignStatus {
    CampaignStatus {
        id: format!("c{:04}", a % 10_000),
        state: ["queued", "running", "done", "failed", "cancelled"][(b % 5) as usize].to_string(),
        kind: if a.is_multiple_of(2) { "inject" } else { "beam" }.to_string(),
        benchmark: "hotspot-µ".to_string(),
        completed: a,
        total: a.wrapping_add(b),
        error: if b.is_multiple_of(3) { String::new() } else { format!("error \"{b}\"\nwith newline") },
    }
}

/// Decodes a triple into a reply (the `Gauges` variant is exercised by the
/// service integration tests; its payload types have their own round-trip
/// coverage in carolfi/obs).
fn reply(sel: u64, a: u64, b: u64) -> ServerReply {
    match sel % 7 {
        0 => ServerReply::Submitted { id: format!("c{a}") },
        1 => ServerReply::Rejected { reason: format!("queue full ({b} waiting) — µ") },
        2 => ServerReply::Status { status: status(a, b) },
        3 => ServerReply::List { campaigns: vec![status(a, b), status(b, a)] },
        4 => ServerReply::Event { id: format!("c{a}"), kind: "trial".into(), payload: format!("{{\"t\":{b}}}") },
        5 => ServerReply::Result { id: format!("c{a}"), result: format!("{{\"crc\":{b},\"rows\":\"x\\ny\"}}") },
        _ => ServerReply::Error { reason: format!("unknown campaign id \"c{b}\"") },
    }
}

fn roundtrip_frame<T: serde::Serialize + for<'de> serde::Deserialize<'de>>(msg: &T) -> T {
    let (mut a, mut b) = UnixStream::pair().expect("socketpair");
    write_frame(&mut a, msg).expect("write frame");
    read_frame_blocking(&mut b).expect("read frame")
}

proptest! {
    #[test]
    fn requests_roundtrip(
        triples in prop::collection::vec((0u64..6, any::<u64>(), any::<u64>()), 1..20),
    ) {
        for &(s, a, b) in &triples {
            let req = request(s, a, b);
            prop_assert_eq!(roundtrip_frame(&req), req);
        }
    }

    #[test]
    fn replies_roundtrip_byte_exactly(
        triples in prop::collection::vec((0u64..7, any::<u64>(), any::<u64>()), 1..20),
    ) {
        for &(s, a, b) in &triples {
            let msg = reply(s, a, b);
            let back = roundtrip_frame(&msg);
            // ServerReply has no PartialEq (Gauges embeds float-bearing
            // snapshots); serialized equality is the wire-level contract.
            prop_assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(&msg).unwrap()
            );
        }
    }

    #[test]
    fn oversized_length_headers_are_rejected(excess in 1u64..(1 << 20)) {
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        let len = (MAX_FRAME as u64 + excess) as u32;
        a.write_all(&len.to_le_bytes()).expect("write header");
        let err = read_frame_blocking::<ClientRequest>(&mut b).expect_err("oversized frame must be rejected");
        prop_assert!(err.to_string().contains("cap"), "unexpected error: {err}");
    }
}

#[test]
fn oversized_writes_are_rejected_at_the_sender() {
    let (mut a, _b) = UnixStream::pair().expect("socketpair");
    let req = ClientRequest::Submit { spec: "x".repeat(MAX_FRAME) };
    let err = write_frame(&mut a, &req).expect_err("oversized frame must not be sent");
    assert!(err.to_string().contains("cap"), "unexpected error: {err}");
}

#[test]
fn truncated_frames_error_instead_of_hanging() {
    // Header promises 100 bytes, the peer dies after 40: the reader must
    // surface EOF, not block forever or misparse.
    let (mut a, mut b) = UnixStream::pair().expect("socketpair");
    a.write_all(&100u32.to_le_bytes()).expect("write header");
    a.write_all(&[b'{'; 40]).expect("write partial body");
    drop(a);
    let err = read_frame_blocking::<ClientRequest>(&mut b).expect_err("truncated frame must error");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "unexpected error: {err}");
}

#[test]
fn truncated_length_header_errors() {
    let (mut a, mut b) = UnixStream::pair().expect("socketpair");
    a.write_all(&[7u8, 0]).expect("write half a header");
    drop(a);
    assert!(read_frame_blocking::<ClientRequest>(&mut b).is_err());
}
