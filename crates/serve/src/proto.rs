//! Wire protocol of the campaign service.
//!
//! Frames reuse the warden codec — 4-byte little-endian length prefix, JSON
//! body, [`MAX_FRAME`](carolfi::warden::MAX_FRAME) cap — so every endpoint
//! in the system (supervision sockets, `--monitor`, `phi-serve`) speaks one
//! framing. A connection carries one [`ClientRequest`] and its replies:
//! every verb answers with exactly one [`ServerReply`] frame except
//! `Events`, which streams `Event`/`Gauges` frames and terminates with
//! `Done` once the campaign reaches a terminal state.

use carolfi::monitor::StatusSnapshot;
use carolfi::warden::{read_frame_blocking, write_frame, MetricsFrame};
use serde::{Deserialize, Serialize};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Default period between `Gauges` frames on an `Events` subscription.
pub const DEFAULT_GAUGE_MS: u64 = 1000;

/// Client → daemon verbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Submit a campaign spec (opaque JSON, validated by the daemon's
    /// runner). Answered with `Submitted` or `Rejected`.
    Submit { spec: String },
    /// One status frame for a campaign id.
    Status { id: String },
    /// Status of every registered campaign.
    List,
    /// Stream the campaign's obs events plus a `Gauges` frame every
    /// `gauge_ms` until it reaches a terminal state (then `Done`).
    Events { id: String, gauge_ms: u64 },
    /// The campaign's result document. `wait_ms` > 0 blocks until the
    /// campaign terminates or the deadline passes (then `Error`);
    /// `wait_ms` = 0 answers immediately.
    Result { id: String, wait_ms: u64 },
    /// Cancel a campaign: immediately when queued, at the next slice
    /// boundary when running. Answered with its (updated) status.
    Cancel { id: String },
}

/// One campaign's externally visible state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    pub id: String,
    /// `queued` / `running` / `done` / `failed` / `cancelled`.
    pub state: String,
    pub kind: String,
    pub benchmark: String,
    /// Trials journaled so far, as of the last slice boundary (0 for a
    /// just-recovered campaign until its first slice runs).
    pub completed: u64,
    pub total: u64,
    /// Failure reason; empty unless `state` is `failed`.
    pub error: String,
}

/// Daemon → client frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerReply {
    /// Admission granted; the campaign is registered under `id`.
    Submitted { id: String },
    /// Admission denied (queue full, invalid spec, shutting down).
    Rejected { reason: String },
    Status { status: CampaignStatus },
    List { campaigns: Vec<CampaignStatus> },
    /// One obs event attributed to the subscribed campaign (`kind` is the
    /// obs event kind, e.g. `trial`, or `plan` for an adaptive planner's
    /// allocation decision — stratum, widest CI width, batch trial list;
    /// `payload` its JSON).
    Event { id: String, kind: String, payload: String },
    /// Periodic live gauges on an `Events` subscription: the campaign's
    /// registry status, the process-wide monitor snapshot (the slice the
    /// shared pool is executing *right now*, which under fair-share may
    /// belong to another campaign), and the merged metrics. Boxed: the
    /// snapshot dwarfs every other variant.
    Gauges { status: CampaignStatus, live: Box<StatusSnapshot>, metrics: MetricsFrame },
    /// The campaign's result document, verbatim.
    Result { id: String, result: String },
    /// The verb could not be answered (unknown id, timeout, failure).
    Error { reason: String },
    /// End of an `Events` stream: the campaign is terminal.
    Done,
}

/// Connect attempts tolerated before giving up (a daemon launched in
/// parallel with its client needs a moment to bind the socket).
const CONNECT_ATTEMPTS: u32 = 20;

/// Deterministic capped backoff between connect attempts: 5 ms doubling to
/// a 100 ms ceiling — ~1.8 s total budget across [`CONNECT_ATTEMPTS`].
fn connect_backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(5u64.saturating_mul(1 << attempt.min(5)).min(100))
}

/// True for the two errors a not-yet-bound daemon socket produces: the
/// path does not exist yet, or it exists but nothing is accepting.
fn not_yet_bound(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused)
}

/// Connects to the daemon socket, absorbing the startup race: a socket
/// that is not bound yet (`NotFound` / `ConnectionRefused`) is retried
/// with bounded deterministic backoff before the error is surfaced
/// verbatim — so `phi-serve ... & phi-cli submit ...` works without an
/// explicit poll loop, and a genuinely absent daemon still produces the
/// same diagnostic as before, just ~2 s later.
fn connect_with_retry(socket: &Path) -> std::io::Result<UnixStream> {
    let mut attempt = 0u32;
    loop {
        match UnixStream::connect(socket) {
            Ok(stream) => return Ok(stream),
            Err(e) if not_yet_bound(&e) && attempt < CONNECT_ATTEMPTS => {
                std::thread::sleep(connect_backoff(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One-shot client call: connect, send `req`, read a single reply.
pub fn roundtrip(socket: &Path, req: &ClientRequest) -> std::io::Result<ServerReply> {
    let mut stream = connect_with_retry(socket)?;
    write_frame(&mut stream, req)?;
    read_frame_blocking(&mut stream)
}

/// Opens a streaming `Events` subscription; read replies off the returned
/// stream with [`read_frame_blocking`] until `Done`.
pub fn subscribe(socket: &Path, id: &str, gauge_ms: u64) -> std::io::Result<UnixStream> {
    let mut stream = connect_with_retry(socket)?;
    write_frame(&mut stream, &ClientRequest::Events { id: id.to_string(), gauge_ms })?;
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_backoff_is_deterministic_and_capped() {
        let ms: Vec<u64> = (0..8).map(|a| connect_backoff(a).as_millis() as u64).collect();
        assert_eq!(ms, vec![5, 10, 20, 40, 80, 100, 100, 100]);
        let total: u64 = (0..CONNECT_ATTEMPTS).map(|a| connect_backoff(a).as_millis() as u64).sum();
        assert!(total < 3000, "retry budget stays bounded, got {total} ms");
    }

    #[test]
    fn absent_socket_still_surfaces_the_original_diagnostic() {
        // Retries exhaust, then the raw error comes through: scripts keyed
        // on the NotFound/ConnectionRefused kinds keep working.
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-proto-retry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let e = connect_with_retry(&dir.join("never-bound.sock")).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn late_bound_socket_is_reached() {
        use std::os::unix::net::UnixListener;
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/test-proto-retry-late");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("late.sock");
        let bind_at = sock.clone();
        let binder = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(60));
            UnixListener::bind(&bind_at).unwrap()
        });
        let stream = connect_with_retry(&sock);
        let _listener = binder.join().unwrap();
        assert!(stream.is_ok(), "client should outwait the daemon's bind: {stream:?}");
    }
}
