//! Wire protocol of the campaign service.
//!
//! Frames reuse the warden codec — 4-byte little-endian length prefix, JSON
//! body, [`MAX_FRAME`](carolfi::warden::MAX_FRAME) cap — so every endpoint
//! in the system (supervision sockets, `--monitor`, `phi-serve`) speaks one
//! framing. A connection carries one [`ClientRequest`] and its replies:
//! every verb answers with exactly one [`ServerReply`] frame except
//! `Events`, which streams `Event`/`Gauges` frames and terminates with
//! `Done` once the campaign reaches a terminal state.

use carolfi::monitor::StatusSnapshot;
use carolfi::warden::{read_frame_blocking, write_frame, MetricsFrame};
use serde::{Deserialize, Serialize};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Default period between `Gauges` frames on an `Events` subscription.
pub const DEFAULT_GAUGE_MS: u64 = 1000;

/// Client → daemon verbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Submit a campaign spec (opaque JSON, validated by the daemon's
    /// runner). Answered with `Submitted` or `Rejected`.
    Submit { spec: String },
    /// One status frame for a campaign id.
    Status { id: String },
    /// Status of every registered campaign.
    List,
    /// Stream the campaign's obs events plus a `Gauges` frame every
    /// `gauge_ms` until it reaches a terminal state (then `Done`).
    Events { id: String, gauge_ms: u64 },
    /// The campaign's result document. `wait_ms` > 0 blocks until the
    /// campaign terminates or the deadline passes (then `Error`);
    /// `wait_ms` = 0 answers immediately.
    Result { id: String, wait_ms: u64 },
    /// Cancel a campaign: immediately when queued, at the next slice
    /// boundary when running. Answered with its (updated) status.
    Cancel { id: String },
}

/// One campaign's externally visible state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    pub id: String,
    /// `queued` / `running` / `done` / `failed` / `cancelled`.
    pub state: String,
    pub kind: String,
    pub benchmark: String,
    /// Trials journaled so far, as of the last slice boundary (0 for a
    /// just-recovered campaign until its first slice runs).
    pub completed: u64,
    pub total: u64,
    /// Failure reason; empty unless `state` is `failed`.
    pub error: String,
}

/// Daemon → client frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerReply {
    /// Admission granted; the campaign is registered under `id`.
    Submitted { id: String },
    /// Admission denied (queue full, invalid spec, shutting down).
    Rejected { reason: String },
    Status { status: CampaignStatus },
    List { campaigns: Vec<CampaignStatus> },
    /// One obs event attributed to the subscribed campaign (`kind` is the
    /// obs event kind, e.g. `trial`, or `plan` for an adaptive planner's
    /// allocation decision — stratum, widest CI width, batch trial list;
    /// `payload` its JSON).
    Event { id: String, kind: String, payload: String },
    /// Periodic live gauges on an `Events` subscription: the campaign's
    /// registry status, the process-wide monitor snapshot (the slice the
    /// shared pool is executing *right now*, which under fair-share may
    /// belong to another campaign), and the merged metrics. Boxed: the
    /// snapshot dwarfs every other variant.
    Gauges { status: CampaignStatus, live: Box<StatusSnapshot>, metrics: MetricsFrame },
    /// The campaign's result document, verbatim.
    Result { id: String, result: String },
    /// The verb could not be answered (unknown id, timeout, failure).
    Error { reason: String },
    /// End of an `Events` stream: the campaign is terminal.
    Done,
}

/// One-shot client call: connect, send `req`, read a single reply.
pub fn roundtrip(socket: &Path, req: &ClientRequest) -> std::io::Result<ServerReply> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, req)?;
    read_frame_blocking(&mut stream)
}

/// Opens a streaming `Events` subscription; read replies off the returned
/// stream with [`read_frame_blocking`] until `Done`.
pub fn subscribe(socket: &Path, id: &str, gauge_ms: u64) -> std::io::Result<UnixStream> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, &ClientRequest::Events { id: id.to_string(), gauge_ms })?;
    Ok(stream)
}
