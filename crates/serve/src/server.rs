//! The daemon: socket accept loop, per-connection protocol handling, and
//! the fair-share scheduler thread.
//!
//! One scheduler thread drains the registry ring; each turn runs **one
//! slice** (`cfg.slice` trials) of one campaign through the runner, which
//! drives the whole shared worker pool for that slice. Fair share is
//! round-robin over slices: with `max_active` campaigns in the ring each
//! gets every `max_active`-th slice, so throughput divides evenly without
//! preempting trials mid-flight. Slices are plain store budgets, so a
//! campaign interrupted at any boundary (or by SIGKILL of the daemon)
//! resumes bit-identically.

use crate::bus::EventBus;
use crate::proto::{ClientRequest, ServerReply};
use crate::registry::Registry;
use crate::Runner;
use carolfi::monitor;
use carolfi::warden::{read_frame_blocking, write_frame, MetricsFrame};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Daemon knobs. `socket`/`root` name the endpoint and the registry
/// directory; the rest are scheduling policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket the daemon listens on.
    pub socket: PathBuf,
    /// Registry root: one subdirectory per campaign.
    pub root: PathBuf,
    /// Fair-share ring capacity: campaigns advancing concurrently.
    pub max_active: usize,
    /// Admission cap on the waiting queue; submissions beyond it are
    /// rejected with a reason.
    pub max_queue: usize,
    /// Trials per scheduling turn (the store budget of one slice).
    pub slice: usize,
}

impl ServeConfig {
    pub fn new(socket: PathBuf, root: PathBuf) -> Self {
        ServeConfig { socket, root, max_active: 2, max_queue: 64, slice: 256 }
    }
}

/// A running campaign service. Dropping the handle does **not** stop it;
/// call [`Server::stop`] for a graceful shutdown (finishes the in-flight
/// slice, then joins the scheduler and accept threads).
pub struct Server {
    cfg: ServeConfig,
    registry: Arc<Registry>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Recovers the registry from `cfg.root`, claims `cfg.socket` (stale
    /// socket files are cleaned; a live endpoint is an error) and starts
    /// the accept and scheduler threads. Interrupted campaigns found in
    /// the registry re-queue immediately.
    pub fn start(cfg: ServeConfig, runner: Arc<dyn Runner>, bus: Arc<EventBus>) -> std::io::Result<Server> {
        let registry = Arc::new(Registry::open(&cfg.root, cfg.max_active, cfg.max_queue, runner.as_ref())?);
        let listener = monitor::claim_socket(&cfg.socket)?;
        let mut threads = Vec::new();

        let (reg, bus_s, run_s, slice) = (registry.clone(), bus.clone(), runner.clone(), cfg.slice.max(1));
        threads.push(
            std::thread::Builder::new()
                .name("phi-serve-sched".into())
                .spawn(move || scheduler_loop(&reg, run_s.as_ref(), &bus_s, slice))?,
        );

        let (reg, bus_a, run_a) = (registry.clone(), bus, runner);
        threads.push(std::thread::Builder::new().name("phi-serve-accept".into()).spawn(move || {
            for conn in listener.incoming() {
                if reg.stopping() {
                    return;
                }
                let Ok(stream) = conn else { continue };
                let (reg_c, bus_c, run_c) = (reg.clone(), bus_a.clone(), run_a.clone());
                let _ = std::thread::Builder::new().name("phi-serve-conn".into()).spawn(move || {
                    let _ = handle_connection(stream, &reg_c, run_c.as_ref(), &bus_c);
                });
            }
        })?);

        Ok(Server { cfg, registry, threads: Mutex::new(threads) })
    }

    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub fn socket(&self) -> &Path {
        &self.cfg.socket
    }

    pub fn root(&self) -> &Path {
        &self.cfg.root
    }

    /// Graceful shutdown: stop admitting, let the in-flight slice finish
    /// (its journal checkpoint makes the campaign resumable), wake every
    /// waiter, join the scheduler and accept threads, remove the socket.
    pub fn stop(&self) {
        self.registry.stop();
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.cfg.socket);
        let mut threads = self.threads.lock().unwrap_or_else(|e| e.into_inner());
        for t in threads.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.cfg.socket);
    }
}

fn scheduler_loop(reg: &Registry, runner: &dyn Runner, bus: &EventBus, slice: usize) {
    while let Some(job) = reg.next_job() {
        bus.publish(&job.id, "slice_start", &format!("{{\"id\":{:?},\"budget\":{slice}}}", job.id));
        // The one-slice-at-a-time invariant is what makes this attribution
        // sound: every obs event until set_current(None) is this campaign's.
        bus.set_current(Some(&job.id));
        let outcome = runner.run_slice(&job.spec, &reg.journal_dir(&job.id), slice);
        bus.set_current(None);
        let state = reg.slice_done(&job.id, outcome);
        let status = reg.status(&job.id);
        let payload = serde_json::to_string(&status).unwrap_or_else(|_| "null".into());
        bus.publish(&job.id, if state.is_terminal() { "campaign_terminal" } else { "slice_end" }, &payload);
    }
}

fn handle_connection(
    mut stream: UnixStream,
    reg: &Registry,
    runner: &dyn Runner,
    bus: &EventBus,
) -> std::io::Result<()> {
    let req: ClientRequest = read_frame_blocking(&mut stream)?;
    let reply = match req {
        ClientRequest::Submit { spec } => match runner.validate(&spec) {
            Err(reason) => ServerReply::Rejected { reason: format!("invalid spec: {reason}") },
            Ok(info) => match reg.submit(spec, info) {
                Ok(id) => ServerReply::Submitted { id },
                Err(reason) => ServerReply::Rejected { reason },
            },
        },
        ClientRequest::Status { id } => match reg.status(&id) {
            Some(status) => ServerReply::Status { status },
            None => ServerReply::Error { reason: format!("unknown campaign id {id:?}") },
        },
        ClientRequest::List => ServerReply::List { campaigns: reg.list() },
        ClientRequest::Cancel { id } => match reg.cancel(&id) {
            Some(status) => ServerReply::Status { status },
            None => ServerReply::Error { reason: format!("unknown campaign id {id:?}") },
        },
        ClientRequest::Result { id, wait_ms } => {
            match reg.wait_result(&id, Duration::from_millis(wait_ms)) {
                Err(reason) => ServerReply::Error { reason },
                Ok((status, result)) => match result {
                    Some(result) => ServerReply::Result { id, result },
                    // Terminal without a result document: failed/cancelled.
                    None => ServerReply::Error {
                        reason: format!("campaign {id} is {}: {}", status.state, status.error),
                    },
                },
            }
        }
        ClientRequest::Events { id, gauge_ms } => return stream_events(stream, reg, bus, &id, gauge_ms),
    };
    write_frame(&mut stream, &reply)
}

/// Streams `Event` frames as the bus delivers them, a `Gauges` frame every
/// `gauge_ms`, and a final `Gauges` + `Done` once the campaign is terminal.
fn stream_events(mut stream: UnixStream, reg: &Registry, bus: &EventBus, id: &str, gauge_ms: u64) -> std::io::Result<()> {
    let Some(status) = reg.status(id) else {
        return write_frame(&mut stream, &ServerReply::Error { reason: format!("unknown campaign id {id:?}") });
    };
    let rx = bus.subscribe(id);
    let gauge_every = Duration::from_millis(gauge_ms.clamp(50, 60_000));
    write_frame(&mut stream, &gauges(status))?;
    loop {
        match rx.recv_timeout(gauge_every) {
            Ok((ev_id, kind, payload)) => {
                write_frame(&mut stream, &ServerReply::Event { id: ev_id, kind, payload })?;
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                let Some(status) = reg.status(id) else { break };
                let terminal = status.state != "queued" && status.state != "running";
                if terminal || reg.stopping() {
                    // Flush events already queued behind the terminal tick.
                    while let Ok((ev_id, kind, payload)) = rx.try_recv() {
                        write_frame(&mut stream, &ServerReply::Event { id: ev_id, kind, payload })?;
                    }
                    write_frame(&mut stream, &gauges(status))?;
                    return write_frame(&mut stream, &ServerReply::Done);
                }
                write_frame(&mut stream, &gauges(status))?;
            }
        }
    }
    Ok(())
}

fn gauges(status: crate::proto::CampaignStatus) -> ServerReply {
    ServerReply::Gauges {
        status,
        live: Box::new(monitor::status()),
        metrics: MetricsFrame::from_snapshot(&obs::merged_snapshot()),
    }
}
