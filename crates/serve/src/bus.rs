//! Per-campaign event fan-out.
//!
//! The daemon installs one [`EventBus`] as the process's global
//! [`obs::Recorder`]. Counters and spans delegate to an inner
//! [`obs::CounterRecorder`], so everything downstream of `obs::snapshot`
//! (the monitor plane, `MetricsHub` merging, telemetry footers) keeps
//! working unchanged; structured events (`trial`, `trial_retry`, …) are
//! *additionally* fanned out to subscribers of the campaign whose slice is
//! currently executing.
//!
//! Attribution relies on the scheduler invariant that the shared pool runs
//! **one slice at a time**: [`EventBus::set_current`] brackets each
//! `run_slice` call, so every event emitted in between belongs to that
//! campaign. Subscriber channels are bounded; a slow client loses events
//! (counted under `serve/events_dropped`) rather than stalling trial
//! execution.

use obs::Recorder;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Mutex, RwLock};

/// One event delivered to a subscriber: (campaign id, kind, payload JSON).
pub type BusEvent = (String, String, String);

/// Events a slow subscriber may buffer before the bus starts dropping.
const SUBSCRIBER_BUFFER: usize = 1024;

struct Sub {
    campaign: String,
    tx: SyncSender<BusEvent>,
}

/// Global recorder with per-campaign event subscriptions.
pub struct EventBus {
    inner: obs::CounterRecorder,
    current: RwLock<Option<String>>,
    subs: Mutex<Vec<Sub>>,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::new()
    }
}

impl EventBus {
    pub fn new() -> Self {
        EventBus { inner: obs::CounterRecorder::new(), current: RwLock::new(None), subs: Mutex::new(Vec::new()) }
    }

    /// Marks the campaign whose slice is about to run (`None` between
    /// slices). Events recorded while unset are counted but not fanned out.
    pub fn set_current(&self, id: Option<&str>) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = id.map(str::to_string);
    }

    /// Subscribes to one campaign's events. Dropping the receiver ends the
    /// subscription (it is pruned on the next publish).
    pub fn subscribe(&self, campaign: &str) -> Receiver<BusEvent> {
        let (tx, rx) = std::sync::mpsc::sync_channel(SUBSCRIBER_BUFFER);
        self.subs.lock().unwrap_or_else(|e| e.into_inner()).push(Sub { campaign: campaign.to_string(), tx });
        rx
    }

    /// Delivers an event to the campaign's subscribers. Used directly by
    /// the scheduler for lifecycle events (`slice_start`, `campaign_done`,
    /// …) and via the [`obs::Recorder`] impl for per-trial obs events.
    pub fn publish(&self, campaign: &str, kind: &str, payload: &str) {
        let mut subs = self.subs.lock().unwrap_or_else(|e| e.into_inner());
        subs.retain(|sub| {
            if sub.campaign != campaign {
                return true;
            }
            match sub.tx.try_send((campaign.to_string(), kind.to_string(), payload.to_string())) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    self.inner.incr("serve/events_dropped", 1);
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }
}

impl obs::Recorder for EventBus {
    fn incr(&self, counter: &'static str, by: u64) {
        self.inner.incr(counter, by);
    }

    fn observe_ns(&self, span: &'static str, ns: u64) {
        self.inner.observe_ns(span, ns);
    }

    fn event(&self, kind: &'static str, payload_json: &str) {
        self.inner.event(kind, payload_json);
        let current = self.current.read().unwrap_or_else(|e| e.into_inner());
        if let Some(id) = current.as_deref() {
            self.publish(id, kind, payload_json);
        }
    }

    fn snapshot(&self) -> Option<obs::MetricsSnapshot> {
        Some(self.inner.snapshot())
    }
}
