//! Durable campaign registry: admission control, the fair-share ring, and
//! per-campaign persistence.
//!
//! On disk, each campaign owns `<root>/<id>/` with `spec.json` (the
//! submitted spec, verbatim), `journal/` (the phi-store journal the runner
//! appends to), `result.json` (the final result document, written
//! atomically on completion) and a `cancelled` marker. Restarting the
//! daemon on the same root rebuilds the registry from this layout:
//! finished campaigns report their persisted results, cancelled ones stay
//! cancelled, everything else re-queues and resumes from its journal — so
//! resume-by-id survives SIGKILL of the daemon itself. Run exactly one
//! daemon per root: nothing locks the directory against a second instance.
//!
//! ## Lifecycle
//!
//! ```text
//! submit ──> queued ──> running ──> done
//!               │          │  └───> failed     (runner/store error)
//!               └──────────┴──────> cancelled  (queued: immediately;
//!                                    running: at the next slice boundary)
//! ```
//!
//! `done`, `failed` and `cancelled` are terminal. `queued → running` is
//! promotion into the fair-share ring (capacity `max_active`); a running
//! campaign goes to the back of the ring after every slice, so all active
//! campaigns advance at the same trials-per-turn rate.

use crate::proto::CampaignStatus;
use crate::{Runner, SliceRun, SpecInfo};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduling state of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl CampaignState {
    pub fn label(self) -> &'static str {
        match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Done => "done",
            CampaignState::Failed => "failed",
            CampaignState::Cancelled => "cancelled",
        }
    }

    pub fn is_terminal(self) -> bool {
        matches!(self, CampaignState::Done | CampaignState::Failed | CampaignState::Cancelled)
    }
}

struct Entry {
    spec: String,
    info: SpecInfo,
    state: CampaignState,
    completed: u64,
    result: Option<String>,
    error: String,
    cancel_requested: bool,
}

struct RegState {
    next_id: u64,
    entries: BTreeMap<String, Entry>,
    /// Admitted but not yet promoted into the ring (FIFO).
    queue: VecDeque<String>,
    /// The fair-share ring: campaigns taking scheduling turns.
    ring: VecDeque<String>,
}

/// One scheduling turn handed to the scheduler thread.
pub struct Job {
    pub id: String,
    pub spec: String,
}

/// Thread-safe campaign registry; shared by the scheduler and every client
/// connection.
pub struct Registry {
    root: PathBuf,
    max_active: usize,
    max_queue: usize,
    inner: Mutex<RegState>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl Registry {
    /// Opens (creating if needed) a registry root and recovers every
    /// campaign directory found in it. `runner` re-validates persisted
    /// specs; a spec the current runner rejects surfaces as a `failed`
    /// campaign rather than poisoning startup.
    pub fn open(root: &Path, max_active: usize, max_queue: usize, runner: &dyn Runner) -> io::Result<Registry> {
        std::fs::create_dir_all(root)?;
        let mut state =
            RegState { next_id: 1, entries: BTreeMap::new(), queue: VecDeque::new(), ring: VecDeque::new() };
        let mut ids: Vec<String> = std::fs::read_dir(root)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("spec.json").is_file())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        ids.sort();
        for id in ids {
            let dir = root.join(&id);
            let spec = std::fs::read_to_string(dir.join("spec.json"))?;
            if let Some(n) = id.strip_prefix('c').and_then(|s| s.parse::<u64>().ok()) {
                state.next_id = state.next_id.max(n + 1);
            }
            let entry = match runner.validate(&spec) {
                Err(reason) => Entry {
                    spec,
                    info: SpecInfo { kind: String::new(), benchmark: String::new(), total: 0 },
                    state: CampaignState::Failed,
                    completed: 0,
                    result: None,
                    error: format!("recovered spec no longer validates: {reason}"),
                    cancel_requested: false,
                },
                Ok(info) => {
                    if let Ok(result) = std::fs::read_to_string(dir.join("result.json")) {
                        let total = info.total;
                        Entry {
                            spec,
                            info,
                            state: CampaignState::Done,
                            completed: total,
                            result: Some(result),
                            error: String::new(),
                            cancel_requested: false,
                        }
                    } else if dir.join("cancelled").exists() {
                        Entry {
                            spec,
                            info,
                            state: CampaignState::Cancelled,
                            completed: 0,
                            result: None,
                            error: String::new(),
                            cancel_requested: false,
                        }
                    } else {
                        state.queue.push_back(id.clone());
                        Entry {
                            spec,
                            info,
                            state: CampaignState::Queued,
                            completed: 0,
                            result: None,
                            error: String::new(),
                            cancel_requested: false,
                        }
                    }
                }
            };
            state.entries.insert(id, entry);
        }
        Ok(Registry {
            root: root.to_path_buf(),
            max_active: max_active.max(1),
            max_queue,
            inner: Mutex::new(state),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The phi-store journal directory of one campaign.
    pub fn journal_dir(&self, id: &str) -> PathBuf {
        self.root.join(id).join("journal")
    }

    /// Admission: registers a validated spec, or rejects with a reason
    /// when the waiting queue is at capacity or the daemon is stopping.
    pub fn submit(&self, spec: String, info: SpecInfo) -> Result<String, String> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err("daemon is shutting down".into());
        }
        let mut st = self.lock();
        if st.queue.len() >= self.max_queue {
            return Err(format!("admission queue is full ({} campaigns waiting)", st.queue.len()));
        }
        let id = format!("c{:04}", st.next_id);
        st.next_id += 1;
        let dir = self.root.join(&id);
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        std::fs::write(dir.join("spec.json"), &spec).map_err(|e| format!("persist spec for {id}: {e}"))?;
        st.entries.insert(
            id.clone(),
            Entry {
                spec,
                info,
                state: CampaignState::Queued,
                completed: 0,
                result: None,
                error: String::new(),
                cancel_requested: false,
            },
        );
        st.queue.push_back(id.clone());
        self.cv.notify_all();
        Ok(id)
    }

    /// Blocks until a campaign is due a scheduling turn (or `None` on
    /// shutdown). Promotes queued campaigns into the ring up to
    /// `max_active`, then rotates the ring.
    pub fn next_job(&self) -> Option<Job> {
        let mut guard = self.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            let st = &mut *guard;
            while st.ring.len() < self.max_active {
                let Some(id) = st.queue.pop_front() else { break };
                if let Some(e) = st.entries.get_mut(&id) {
                    if e.cancel_requested {
                        self.finish_cancel(e, &id);
                        continue;
                    }
                    e.state = CampaignState::Running;
                    st.ring.push_back(id);
                }
            }
            if let Some(id) = st.ring.pop_front() {
                let e = st.entries.get_mut(&id).expect("ring ids are registered");
                if e.cancel_requested {
                    self.finish_cancel(e, &id);
                    self.cv.notify_all();
                    continue;
                }
                return Some(Job { id: id.clone(), spec: e.spec.clone() });
            }
            guard = self.cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records the outcome of one scheduling turn: rotates a paused
    /// campaign to the back of the ring, retires a finished/failed one,
    /// honours a cancel requested mid-slice. Returns the resulting state.
    pub fn slice_done(&self, id: &str, outcome: io::Result<SliceRun>) -> CampaignState {
        let mut guard = self.lock();
        let st = &mut *guard;
        let Some(e) = st.entries.get_mut(id) else { return CampaignState::Failed };
        let state = match outcome {
            Ok(SliceRun::Paused { completed }) => {
                e.completed = completed;
                if e.cancel_requested {
                    self.finish_cancel(e, id);
                } else {
                    st.ring.push_back(id.to_string());
                }
                e.state
            }
            Ok(SliceRun::Complete { result }) => {
                // Persist before exposing: a client told "done" must be able
                // to fetch the result from a freshly restarted daemon.
                match self.persist_result(id, &result) {
                    Ok(()) => {
                        e.completed = e.info.total;
                        e.result = Some(result);
                        e.state = CampaignState::Done;
                    }
                    Err(err) => {
                        e.error = format!("persist result: {err}");
                        e.state = CampaignState::Failed;
                    }
                }
                e.state
            }
            Err(err) => {
                e.error = err.to_string();
                e.state = CampaignState::Failed;
                e.state
            }
        };
        self.cv.notify_all();
        state
    }

    /// Requests cancellation. Queued campaigns cancel immediately; running
    /// ones at their next slice boundary. Terminal states are unchanged.
    pub fn cancel(&self, id: &str) -> Option<CampaignStatus> {
        {
            let mut guard = self.lock();
            let st = &mut *guard;
            if let Some(e) = st.entries.get_mut(id) {
                if !e.state.is_terminal() {
                    e.cancel_requested = true;
                    if e.state == CampaignState::Queued {
                        st.queue.retain(|q| q != id);
                        self.finish_cancel(e, id);
                    }
                }
            }
            self.cv.notify_all();
        }
        self.status(id)
    }

    pub fn status(&self, id: &str) -> Option<CampaignStatus> {
        let st = self.lock();
        st.entries.get(id).map(|e| status_of(id, e))
    }

    pub fn list(&self) -> Vec<CampaignStatus> {
        let st = self.lock();
        st.entries.iter().map(|(id, e)| status_of(id, e)).collect()
    }

    /// Blocks until the campaign is terminal or `wait` elapses. `Ok` holds
    /// the terminal status plus the result document for `done` campaigns;
    /// `Err` is a reason (unknown id / timeout / shutdown).
    pub fn wait_result(&self, id: &str, wait: Duration) -> Result<(CampaignStatus, Option<String>), String> {
        let deadline = Instant::now() + wait;
        let mut st = self.lock();
        loop {
            let Some(e) = st.entries.get(id) else { return Err(format!("unknown campaign id {id:?}")) };
            if e.state.is_terminal() {
                return Ok((status_of(id, e), e.result.clone()));
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return Err("daemon is shutting down".into());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(format!("campaign {id} still {} after the wait deadline", e.state.label()));
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// True once [`Registry::stop`] ran.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Begins shutdown: wakes the scheduler and every waiter.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Transitions an entry to `cancelled` and persists the marker. Caller
    /// holds the state lock and has removed the id from queue/ring.
    fn finish_cancel(&self, e: &mut Entry, id: &str) {
        e.state = CampaignState::Cancelled;
        let _ = std::fs::write(self.root.join(id).join("cancelled"), b"cancelled by client\n");
    }

    fn persist_result(&self, id: &str, result: &str) -> io::Result<()> {
        let dir = self.root.join(id);
        let tmp = dir.join("result.json.tmp");
        std::fs::write(&tmp, result)?;
        std::fs::rename(&tmp, dir.join("result.json"))
    }
}

fn status_of(id: &str, e: &Entry) -> CampaignStatus {
    CampaignStatus {
        id: id.to_string(),
        state: e.state.label().to_string(),
        kind: e.info.kind.clone(),
        benchmark: e.info.benchmark.clone(),
        completed: e.completed,
        total: e.info.total,
        error: e.error.clone(),
    }
}
