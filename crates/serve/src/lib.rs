//! `phi-serve` — campaign-as-a-service.
//!
//! The figure binaries run one campaign per process; this crate turns the
//! same orchestration machinery into a long-running daemon many clients
//! share. A [`server::Server`] listens on a Unix socket speaking the
//! warden's length-prefixed JSON framing ([`carolfi::warden::write_frame`]
//! / [`read_frame_blocking`](carolfi::warden::read_frame_blocking)),
//! accepts campaign specs as JSON, and schedules them with:
//!
//! * **admission control** — submissions beyond the waiting-queue cap (or
//!   with invalid specs) are rejected with a reason, never silently
//!   dropped;
//! * **fair-share scheduling** — up to `max_active` campaigns advance in a
//!   round-robin ring, each turn running one bounded *slice* of trials
//!   through the shared worker pool, so a big campaign cannot starve a
//!   small one;
//! * **durability** — every campaign persists in a registry directory
//!   (`<root>/<id>/{spec.json,journal/,result.json}`) under a
//!   server-assigned id, so clients can disconnect, reconnect by id, and a
//!   restarted daemon resumes interrupted campaigns from their journals;
//! * **streaming** — subscribed clients receive per-trial obs events plus
//!   periodic [`StatusSnapshot`](carolfi::monitor::StatusSnapshot) /
//!   [`MetricsFrame`](carolfi::warden::MetricsFrame) gauges.
//!
//! The crate is deliberately **kernel-free**: it never builds a benchmark
//! or runs a trial itself. Specs are opaque JSON validated and executed by
//! a [`Runner`] the embedder provides (`bench::SpecRunner` in the real
//! daemon), which keeps the scheduling/persistence layer testable with
//! synthetic runners and keeps the byte-identity guarantee where it
//! belongs: the runner reuses the exact `run_campaign_stored` /
//! `drive_isolated` paths the figure binaries call, and slices are plain
//! store *budgets*, whose resume machinery is already pinned bit-identical
//! for any interruption pattern.

pub mod bus;
pub mod proto;
pub mod registry;
pub mod server;

pub use bus::EventBus;
pub use proto::{ClientRequest, ServerReply};
pub use registry::{CampaignState, Registry};
pub use server::{Server, ServeConfig};

use std::path::Path;

/// What validating a campaign spec yields: enough identity for status
/// lines and progress accounting, without the service layer understanding
/// the spec itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecInfo {
    /// Campaign kind (`"inject"` / `"beam"` for the real runner).
    pub kind: String,
    /// Benchmark label, for status displays.
    pub benchmark: String,
    /// Total trials (or strikes) the campaign will run.
    pub total: u64,
}

/// Outcome of one scheduling turn over a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceRun {
    /// The slice budget ran out before the campaign finished; `completed`
    /// trials are journaled so far.
    Paused { completed: u64 },
    /// The campaign finished; `result` is its serialized result document
    /// (opaque to the service — persisted verbatim as `result.json` and
    /// returned verbatim to clients).
    Complete { result: String },
}

/// Executes campaign specs on behalf of the service.
///
/// Contract for [`run_slice`](Runner::run_slice): create the journal under
/// `journal` on the first call, resume it on every later call, run at most
/// `budget` further trials, and report [`SliceRun::Paused`] or
/// [`SliceRun::Complete`]. The same spec sliced any way must yield the
/// same journal records and the same final `result` — the store's
/// budget/resume determinism provides exactly this for the real runner.
pub trait Runner: Send + Sync + 'static {
    /// Checks a spec without running anything; `Err` is the
    /// admission-rejection reason shown to the client.
    fn validate(&self, spec: &str) -> Result<SpecInfo, String>;

    /// Runs one slice of at most `budget` trials against the journal
    /// directory.
    fn run_slice(&self, spec: &str, journal: &Path, budget: usize) -> std::io::Result<SliceRun>;
}
