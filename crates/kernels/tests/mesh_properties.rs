//! Property-based tests over CLAMR's mesh substrate: any mesh produced by
//! random refinement must tile the domain exactly, build into a consistent
//! spatial tree, and answer every point query with the covering cell.

use kernels::clamr::sort::{gather, merge_sort_by_key, morton_key};
use kernels::clamr::tree;
use proptest::prelude::*;

/// Cells as (ox, oy, extent, idx) produced by randomly refining a base grid.
fn random_mesh(size: u32, levels: u32, decisions: &[bool]) -> Vec<(u32, u32, u32, u32)> {
    let mut cells: Vec<(u32, u32, u32)> = Vec::new();
    // Start with the coarsest tiling.
    let coarse = 1u32 << levels;
    assert!(coarse <= size);
    for y in 0..size / coarse {
        for x in 0..size / coarse {
            cells.push((x * coarse, y * coarse, coarse));
        }
    }
    // Refine cells according to the decision stream.
    let mut d = 0usize;
    let mut i = 0usize;
    while i < cells.len() && d < decisions.len() {
        let (ox, oy, s) = cells[i];
        if s > 1 && decisions[d] {
            let h = s / 2;
            cells[i] = (ox, oy, h);
            cells.push((ox + h, oy, h));
            cells.push((ox, oy + h, h));
            cells.push((ox + h, oy + h, h));
        }
        d += 1;
        i += 1;
    }
    cells.into_iter().enumerate().map(|(idx, (ox, oy, s))| (ox, oy, s, idx as u32)).collect()
}

proptest! {
    #[test]
    fn random_meshes_tile_and_roundtrip(decisions in prop::collection::vec(any::<bool>(), 0..64)) {
        let size = 16u32;
        let cells = random_mesh(size, 2, &decisions);
        // Tiling invariant: areas sum to the domain.
        let area: u64 = cells.iter().map(|&(_, _, s, _)| (s as u64) * (s as u64)).sum();
        prop_assert_eq!(area, (size as u64) * (size as u64));

        let mut child = Vec::new();
        let mut leaf = Vec::new();
        tree::build(&mut child, &mut leaf, size, &cells);

        // Every point maps to the unique covering cell.
        for y in 0..size {
            for x in 0..size {
                let hit = tree::query(&child, &leaf, size, x, y).expect("covered");
                let (ox, oy, s, idx) = cells[hit as usize];
                prop_assert_eq!(idx, hit);
                prop_assert!(x >= ox && x < ox + s && y >= oy && y < oy + s, "({x},{y}) not in cell ({ox},{oy},{s})");
            }
        }
    }

    #[test]
    fn morton_sort_orders_any_mesh_consistently(decisions in prop::collection::vec(any::<bool>(), 0..64)) {
        let cells = random_mesh(16, 2, &decisions);
        let keys: Vec<u64> = cells.iter().map(|&(ox, oy, _, _)| morton_key(ox, oy)).collect();
        let mut idx: Vec<u32> = (0..cells.len() as u32).collect();
        let mut scratch = vec![0u32; cells.len()];
        merge_sort_by_key(&mut idx, &keys, &mut scratch);
        for w in idx.windows(2) {
            prop_assert!(keys[w[0] as usize] <= keys[w[1] as usize]);
        }
        // The permutation is a bijection: gathering 0..n through it keeps
        // every element exactly once.
        let ids: Vec<u32> = (0..cells.len() as u32).collect();
        let mut gathered = Vec::new();
        gather(&idx, &ids, &mut gathered);
        let mut sorted = gathered.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, ids);
    }

    #[test]
    fn fault_models_change_at_most_the_promised_bits(
        seed in 0u64..5000,
        word in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        use carolfi::models::FaultModel;
        let mut rng = carolfi::rng::fork(seed, 0);
        for model in FaultModel::ALL {
            let mut w = word.clone();
            let bits = model.apply(&mut w, &mut rng);
            let changed: u32 = w.iter().zip(&word).map(|(a, b)| (a ^ b).count_ones()).sum();
            match model {
                FaultModel::Single => prop_assert_eq!(changed, 1),
                FaultModel::Double => prop_assert_eq!(changed, 2),
                FaultModel::Random | FaultModel::Zero => prop_assert_eq!(changed as usize, bits.len()),
            }
            if model == FaultModel::Zero {
                prop_assert!(w.iter().all(|&b| b == 0));
            }
        }
    }
}
