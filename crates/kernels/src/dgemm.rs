//! DGEMM — blocked dense matrix multiplication (paper §3.2).
//!
//! "DGEMM is an optimized version of a matrix multiplication algorithm […] a
//! compute-bound program that is often used to rank supercomputers."
//!
//! The port computes `C = A × B` over double-precision square matrices with
//! a blocked k-loop: each cooperative step multiplies one k-panel, so a run
//! takes `⌈n / block⌉` steps. Rows of `C` are statically partitioned over
//! the logical threads (the paper's 228 OpenMP threads); every logical
//! thread carries **nine private integer loop-control variables** — the
//! population the paper singles out: "each of the 228 threads active in
//! parallel on the Xeon Phi allocates those nine integers to have its own
//! copy of the loop control variables" (§6, DGEMM). Corrupting them skips or
//! repeats panels (line/square SDCs) or drives indexing out of bounds
//! (crash DUEs); corrupted loop *bounds* that spin without touching memory
//! exhaust the fuel watchdog (timeout DUEs).

use crate::par::{par_for_each, static_partition};
use carolfi::fuel::Fuel;
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};
use rand::Rng;

/// DGEMM sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct DgemmParams {
    /// Matrix dimension (n × n).
    pub n: usize,
    /// k-panel width per step.
    pub block: usize,
    /// Logical (OpenMP-style) threads.
    pub logical_threads: usize,
    /// OS worker threads for the inner loops.
    pub workers: usize,
    /// Input-generation seed.
    pub seed: u64,
}

impl DgemmParams {
    /// Tiny instance for unit tests.
    pub fn test() -> Self {
        DgemmParams { n: 48, block: 8, logical_threads: 16, workers: 1, seed: 0xD6E3 }
    }

    /// Small instance for fast campaigns.
    pub fn small() -> Self {
        DgemmParams { n: 128, block: 16, logical_threads: 64, workers: 1, seed: 0xD6E3 }
    }

    /// Paper-shaped instance (228 logical threads).
    pub fn paper() -> Self {
        DgemmParams { n: 256, block: 16, logical_threads: phidev::KNC_LOGICAL_THREADS, workers: 1, seed: 0xD6E3 }
    }
}

/// Per-logical-thread control block: the nine integers of paper §6.
#[derive(Debug, Clone, Copy)]
struct Ctrl {
    /// Next k-panel this thread processes.
    kb: u64,
    /// First row of the thread's C stripe.
    row_start: u64,
    /// One past the last row of the stripe.
    row_end: u64,
    /// Thread-local copy of the matrix dimension (kept in a register by the
    /// original OpenMP code; injectable like any local).
    n_local: u64,
    /// Thread-local copy of the panel width.
    block_local: u64,
    /// Thread-local copy of the panel count.
    nb_local: u64,
    /// Resume cursors for the i/j/k loops (zero at step boundaries in a
    /// fault-free run).
    i_cur: u64,
    j_cur: u64,
    k_cur: u64,
    /// Accumulator / index scratch, rewritten before every use.
    acc_scratch: f64,
    aidx_scratch: u64,
}

/// The DGEMM fault target.
#[derive(Clone)]
pub struct Dgemm {
    p: DgemmParams,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    ctrl: Vec<Ctrl>,
    /// Pointer base for the input matrices (the C code's pointer local;
    /// injectable — the segfault path).
    ptr_a: u64,
    done: usize,
    total: usize,
    /// Pristine pre-run snapshot taken at the end of `new()` (its own
    /// `pristine` is `None`); `reset()` restores from it in place.
    pristine: Option<Box<Dgemm>>,
    /// Transposed k-panel of `b`, rebuilt from `b` every fast-path step so
    /// injected corruption in `b` flows through identically. Harness
    /// scratch: not injectable, not part of the pristine snapshot contract.
    bt: Vec<f64>,
}

impl Dgemm {
    pub fn new(p: DgemmParams) -> Self {
        assert!(p.n > 0 && p.block > 0 && p.logical_threads > 0);
        let mut rng = carolfi::rng::fork(p.seed, 0);
        let a: Vec<f64> = (0..p.n * p.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..p.n * p.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let nb = p.n.div_ceil(p.block);
        let ctrl = (0..p.logical_threads)
            .map(|t| {
                let (s, e) = static_partition(p.n, p.logical_threads, t);
                Ctrl {
                    kb: 0,
                    row_start: s as u64,
                    row_end: e as u64,
                    n_local: p.n as u64,
                    block_local: p.block as u64,
                    nb_local: nb as u64,
                    i_cur: 0,
                    j_cur: 0,
                    k_cur: 0,
                    acc_scratch: 0.0,
                    aidx_scratch: 0,
                }
            })
            .collect();
        let mut g = Dgemm { p, a, b, c: vec![0.0; p.n * p.n], ctrl, ptr_a: 0, done: 0, total: nb, pristine: None, bt: Vec::new() };
        g.pristine = Some(Box::new(g.clone()));
        g
    }

    /// True when every injectable byte that steers the panel loops still
    /// holds the value a fault-free run has at this step boundary, so the
    /// specialized panel loop in [`Dgemm::fast_step`] is observably
    /// identical to [`thread_panel`]. Any corruption of the control
    /// population (or the pointer base) fails the check and drops the
    /// run back to the exact per-thread path.
    fn control_is_pristine(&self) -> bool {
        if self.ptr_a != 0 || self.p.n == 0 || !self.p.n.is_multiple_of(self.p.block) {
            return false;
        }
        let step = self.done as u64;
        let (n, block, nb) = (self.p.n as u64, self.p.block as u64, self.total as u64);
        self.ctrl.iter().enumerate().all(|(t, c)| {
            let (s, e) = static_partition(self.p.n, self.p.logical_threads, t);
            c.kb == step
                && c.row_start == s as u64
                && c.row_end == e as u64
                && c.n_local == n
                && c.block_local == block
                && c.nb_local == nb
                && c.i_cur == 0
                && c.j_cur == 0
                && c.k_cur == 0
        })
    }

    /// One clean-state step: every thread multiplies its C stripe by the
    /// current k-panel with the per-iteration bookkeeping hoisted out —
    /// no resume-cursor writes, no per-element fuel burns (provably
    /// unreachable in a clean state), and the k-panel of `b` transposed
    /// once so both input streams are contiguous. Floating-point
    /// accumulation order (k ascending, one acc per (i, j)) is identical
    /// to [`thread_panel`], so outputs are bit-identical.
    fn fast_step(&mut self) -> StepOutcome {
        let n = self.p.n;
        let block = self.p.block;
        if self.done < self.total {
            let k0 = self.done * block;
            self.bt.resize(n * block, 0.0);
            for kk in 0..block {
                let brow = &self.b[(k0 + kk) * n..(k0 + kk) * n + n];
                for (j, &v) in brow.iter().enumerate() {
                    self.bt[j * block + kk] = v;
                }
            }
            for ctl in self.ctrl.iter_mut() {
                let rs = ctl.row_start as usize;
                let rows = (ctl.row_end - ctl.row_start) as usize;
                let mut last_acc = None;
                for i in 0..rows {
                    let arow = (rs + i) * n;
                    let ap = &self.a[arow + k0..arow + k0 + block];
                    for j in 0..n {
                        let bp = &self.bt[j * block..j * block + block];
                        let mut acc = 0.0;
                        for (&x, &y) in ap.iter().zip(bp) {
                            acc += x * y;
                        }
                        self.c[arow + j] += acc;
                        last_acc = Some(acc);
                    }
                }
                // The slow path's scratch writes are overwritten every
                // iteration; only the final values survive a step.
                if let Some(acc) = last_acc {
                    ctl.acc_scratch = acc;
                    ctl.aidx_scratch = ((rs + rows - 1) * n + (n - 1)) as u64;
                }
                ctl.kb += 1;
            }
        }
        self.done += 1;
        if self.done >= self.total {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    /// Reference (unblocked, sequential) product for correctness tests.
    pub fn reference(p: DgemmParams) -> Vec<f64> {
        let g = Dgemm::new(p);
        let n = p.n;
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += g.a[i * n + k] * g.b[k * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }
}

/// One logical thread's share of one step: multiply its C stripe by one
/// k-panel. All reads are driven by the (injectable) control block; writes
/// land in the thread's pre-partitioned physical stripe, so corrupted
/// control can produce wrong values or panics but never a data race.
fn thread_panel(ctl: &mut Ctrl, c_stripe: &mut [f64], a: &[f64], b: &[f64], n_phys: usize, pa: usize) {
    if ctl.kb >= ctl.nb_local {
        return; // finished all panels (or corrupted past the end — work lost)
    }
    let n_l = ctl.n_local as usize;
    let block_l = ctl.block_local as usize;
    let k0 = (ctl.kb as usize).saturating_mul(block_l);
    let rows = match ctl.row_end.checked_sub(ctl.row_start) {
        Some(r) => r as usize,
        None => panic!("corrupted row bounds: start {} > end {}", ctl.row_start, ctl.row_end),
    };
    // Fuel bounds the loop *counts* (a corrupted bound that spins without
    // touching memory); OOB indexing panics on its own.
    let mut fuel = Fuel::with_factor((rows as u64 + 1) * (n_phys as u64 + 1), 4.0);
    let i0 = if rows == 0 { 0 } else { (ctl.i_cur as usize) % rows };
    for i in i0..rows {
        fuel.burn(1);
        ctl.i_cur = i as u64;
        let arow = (ctl.row_start as usize + i) * n_l;
        let crow = i * n_l;
        let j0 = (ctl.j_cur as usize) % n_l.max(1);
        for j in j0..n_l {
            fuel.burn(1);
            let mut acc = 0.0;
            let kstart = k0 + (ctl.k_cur as usize) % block_l.max(1);
            for k in kstart..k0 + block_l {
                acc += a[pa + arow + k] * b[pa + k * n_l + j];
            }
            ctl.k_cur = 0;
            ctl.acc_scratch = acc;
            ctl.aidx_scratch = (arow + j) as u64;
            c_stripe[crow + j] += acc;
        }
        ctl.j_cur = 0;
    }
    ctl.i_cur = 0;
    ctl.kb += 1;
}

impl FaultTarget for Dgemm {
    fn name(&self) -> &'static str {
        "dgemm"
    }

    fn total_steps(&self) -> usize {
        self.total
    }

    fn steps_executed(&self) -> usize {
        self.done
    }

    fn step(&mut self) -> StepOutcome {
        let n = self.p.n;
        // Zip each logical thread's control block with its physical C stripe.
        struct Item<'a> {
            ctl: &'a mut Ctrl,
            stripe: &'a mut [f64],
        }
        let mut items: Vec<Item<'_>> = Vec::with_capacity(self.ctrl.len());
        {
            let mut rest: &mut [f64] = &mut self.c;
            let mut prev_end = 0usize;
            for (t, ctl) in self.ctrl.iter_mut().enumerate() {
                let (s, e) = static_partition(n, self.p.logical_threads, t);
                debug_assert_eq!(s, prev_end);
                let (stripe, tail) = rest.split_at_mut((e - s) * n);
                rest = tail;
                prev_end = e;
                items.push(Item { ctl, stripe });
            }
        }
        let a = &self.a;
        let b = &self.b;
        let pa = self.ptr_a as usize;
        par_for_each(&mut items, self.p.workers, |_, item| {
            thread_panel(item.ctl, item.stripe, a, b, n, pa);
        });
        self.done += 1;
        if self.done >= self.total {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn run_until(&mut self, step_bound: usize, fuel: &mut Fuel) -> StepOutcome {
        // Run-ahead specialization (ZOFI-style full-speed phase): while the
        // control population is provably fault-free, take the monomorphic
        // panel loop; any injected divergence falls back to the exact
        // resumable path for that step. One fuel unit per step, burned
        // before the step — same accounting as the default implementation.
        while self.done < step_bound {
            fuel.burn(1);
            let out = if self.control_is_pristine() { self.fast_step() } else { self.step() };
            if let StepOutcome::Done = out {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        let mut vars = Vec::with_capacity(3 + 9 * self.ctrl.len());
        vars.push(Variable::from_slice(VarInfo::global("matrix_a", VarClass::Matrix, file!(), 30), &mut self.a));
        vars.push(Variable::from_slice(VarInfo::global("matrix_b", VarClass::Matrix, file!(), 31), &mut self.b));
        vars.push(Variable::from_slice(VarInfo::global("matrix_c", VarClass::Matrix, file!(), 32), &mut self.c));
        vars.push(Variable::from_scalar(VarInfo::global("matrix_ptr", VarClass::Pointer, file!(), 33), &mut self.ptr_a));
        for (t, ctl) in self.ctrl.iter_mut().enumerate() {
            let t16 = t as u16;
            let f = "gemm_kernel";
            vars.push(Variable::from_scalar(VarInfo::local("kb", VarClass::ControlVariable, f, t16, file!(), 60), &mut ctl.kb));
            vars.push(Variable::from_scalar(VarInfo::local("row_start", VarClass::ControlVariable, f, t16, file!(), 61), &mut ctl.row_start));
            vars.push(Variable::from_scalar(VarInfo::local("row_end", VarClass::ControlVariable, f, t16, file!(), 62), &mut ctl.row_end));
            vars.push(Variable::from_scalar(VarInfo::local("n_local", VarClass::ControlVariable, f, t16, file!(), 63), &mut ctl.n_local));
            vars.push(Variable::from_scalar(VarInfo::local("block_local", VarClass::ControlVariable, f, t16, file!(), 64), &mut ctl.block_local));
            vars.push(Variable::from_scalar(VarInfo::local("nb_local", VarClass::ControlVariable, f, t16, file!(), 65), &mut ctl.nb_local));
            vars.push(Variable::from_scalar(VarInfo::local("i_cur", VarClass::ControlVariable, f, t16, file!(), 66), &mut ctl.i_cur));
            vars.push(Variable::from_scalar(VarInfo::local("j_cur", VarClass::ControlVariable, f, t16, file!(), 67), &mut ctl.j_cur));
            vars.push(Variable::from_scalar(VarInfo::local("k_cur", VarClass::ControlVariable, f, t16, file!(), 68), &mut ctl.k_cur));
            vars.push(Variable::from_scalar(VarInfo::local("acc", VarClass::Buffer, f, t16, file!(), 69), &mut ctl.acc_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("a_idx", VarClass::Buffer, f, t16, file!(), 70), &mut ctl.aidx_scratch));
        }
        vars
    }

    fn output(&self) -> Output {
        Output::F64Grid { dims: [self.p.n, self.p.n, 1], data: self.c.clone() }
    }

    fn reset(&mut self) -> bool {
        let Some(pristine) = self.pristine.take() else { return false };
        self.a.copy_from_slice(&pristine.a);
        self.b.copy_from_slice(&pristine.b);
        self.c.copy_from_slice(&pristine.c);
        self.ctrl.copy_from_slice(&pristine.ctrl);
        self.ptr_a = 0;
        self.done = 0;
        self.pristine = Some(pristine);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_done(mut g: Dgemm) -> Output {
        while g.step() == StepOutcome::Continue {}
        g.output()
    }

    /// Every injectable bit of state: C, the control population, the
    /// pointer base, and the step counter. The fast path must leave all of
    /// it bit-identical to the resumable path.
    fn state_digest(g: &Dgemm) -> Vec<u64> {
        let mut d: Vec<u64> = g.c.iter().map(|v| v.to_bits()).collect();
        for c in &g.ctrl {
            d.extend([
                c.kb,
                c.row_start,
                c.row_end,
                c.n_local,
                c.block_local,
                c.nb_local,
                c.i_cur,
                c.j_cur,
                c.k_cur,
                c.acc_scratch.to_bits(),
                c.aidx_scratch,
            ]);
        }
        d.push(g.ptr_a);
        d.push(g.done as u64);
        d
    }

    #[test]
    fn run_until_fast_path_is_bit_identical_to_step() {
        let p = DgemmParams::test();
        let mut slow = Dgemm::new(p);
        let mut fast = Dgemm::new(p);
        assert!(fast.control_is_pristine());
        let mut fuel = Fuel::new(u64::MAX);
        // Partial phase (run-ahead to an interior step), then to completion —
        // exercising both Continue and Done exits of the specialization.
        assert_eq!(fast.run_until(2, &mut fuel), StepOutcome::Continue);
        for _ in 0..2 {
            slow.step();
        }
        assert_eq!(state_digest(&slow), state_digest(&fast), "mid-run divergence");
        assert_eq!(fast.run_until(usize::MAX, &mut fuel), StepOutcome::Done);
        while slow.step() == StepOutcome::Continue {}
        assert_eq!(state_digest(&slow), state_digest(&fast), "final state divergence");
        assert_eq!(u64::MAX - fuel.remaining(), slow.done as u64, "one fuel unit per step");
    }

    #[test]
    fn corrupted_control_falls_back_to_the_exact_path() {
        let p = DgemmParams::test();
        let mut slow = Dgemm::new(p);
        let mut fast = Dgemm::new(p);
        let mut fuel = Fuel::new(u64::MAX);
        fast.run_until(2, &mut fuel);
        for _ in 0..2 {
            slow.step();
        }
        // Inject the same control fault into both: thread 3 repeats a panel.
        slow.ctrl[3].kb = 0;
        fast.ctrl[3].kb = 0;
        assert!(!fast.control_is_pristine());
        assert_eq!(fast.run_until(usize::MAX, &mut fuel), StepOutcome::Done);
        while slow.step() == StepOutcome::Continue {}
        assert_eq!(state_digest(&slow), state_digest(&fast), "faulty-run divergence");
    }

    #[test]
    fn matches_reference_product() {
        let p = DgemmParams::test();
        let reference = Dgemm::reference(p);
        let out = run_to_done(Dgemm::new(p));
        let Output::F64Grid { data, .. } = out else { panic!() };
        for (i, (&got, &exp)) in data.iter().zip(&reference).enumerate() {
            assert!((got - exp).abs() <= 1e-10 * exp.abs().max(1.0), "element {i}: {got} vs {exp}");
        }
    }

    #[test]
    fn is_deterministic_across_runs_and_workers() {
        let p = DgemmParams::test();
        let a = run_to_done(Dgemm::new(p));
        let b = run_to_done(Dgemm::new(p));
        let c = run_to_done(Dgemm::new(DgemmParams { workers: 4, ..p }));
        assert!(a.matches(&b));
        assert!(a.matches(&c));
    }

    #[test]
    fn exposes_nine_controls_per_thread() {
        let p = DgemmParams::test();
        let mut g = Dgemm::new(p);
        let vars = g.variables();
        let controls = vars.iter().filter(|v| v.info.class == VarClass::ControlVariable).count();
        assert_eq!(controls, 9 * p.logical_threads);
        let matrices = vars.iter().filter(|v| v.info.class == VarClass::Matrix).count();
        assert_eq!(matrices, 3);
    }

    #[test]
    fn total_steps_is_panel_count() {
        let p = DgemmParams::test();
        assert_eq!(Dgemm::new(p).total_steps(), p.n.div_ceil(p.block));
    }

    #[test]
    fn corrupted_row_bounds_panic() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let mut g = Dgemm::new(DgemmParams::test());
        g.step();
        g.ctrl[0].row_start = 1000;
        g.ctrl[0].row_end = 0;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.step()));
        assert!(r.is_err());
    }

    #[test]
    fn corrupted_kb_skips_work_silently() {
        let p = DgemmParams::test();
        let golden = run_to_done(Dgemm::new(p));
        let mut g = Dgemm::new(p);
        g.step();
        g.ctrl[3].kb = g.ctrl[3].nb_local; // thread 3 believes it is done
        while g.step() == StepOutcome::Continue {}
        let m = g.output().mismatches(&golden);
        assert!(!m.is_empty(), "missing panels must corrupt thread 3's stripe");
        // All corrupted elements lie inside thread 3's row stripe.
        let (s, e) = static_partition(p.n, p.logical_threads, 3);
        for mm in &m {
            assert!(mm.coord[0] >= s && mm.coord[0] < e);
        }
    }

    #[test]
    fn corrupted_n_local_causes_due_or_sdc_not_hang() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let mut g = Dgemm::new(DgemmParams::test());
        g.step();
        g.ctrl[1].n_local = u64::MAX / 2;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| while g.step() == StepOutcome::Continue {}));
        // Either a crash DUE (OOB) or fuel timeout; must not hang.
        assert!(r.is_err());
    }
}
