//! Output quantisation matching Rodinia's text result files.
//!
//! The paper's harness "gathers results, comparing them with a pre-computed
//! golden output" (§4.1) — for the Rodinia benchmarks that ship file-based
//! outputs the comparison granularity is the printed representation
//! (`%g` ⇒ 6 significant decimal digits), so relative differences below
//! ~1e-6 never register as SDCs. These helpers reproduce that granularity.

/// Rounds to 6 significant decimal digits (the `%g` default).
pub fn sig6_f32(v: f32) -> f32 {
    sig_digits_f32(v, 6)
}

/// Rounds to `d` significant decimal digits.
pub fn sig_digits_f32(v: f32, d: i32) -> f32 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let exp = (v.abs().log10().floor()) as i32;
    let scale = 10f64.powi(d - 1 - exp);
    ((v as f64 * scale).round() / scale) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_digits_keep_the_leading_figures() {
        assert_eq!(sig6_f32(123.4567), 123.457);
        assert_eq!(sig6_f32(0.001234567), 0.00123457);
        assert_eq!(sig6_f32(-9876543.0), -9876540.0);
    }

    #[test]
    fn sub_precision_differences_collapse() {
        let a = 330.123_45_f32;
        let b = a + a * 1e-7;
        assert_eq!(sig6_f32(a), sig6_f32(b));
    }

    #[test]
    fn visible_differences_survive() {
        let a = 330.0_f32;
        let b = a * 1.001;
        assert_ne!(sig6_f32(a), sig6_f32(b));
    }

    #[test]
    fn zero_and_non_finite_pass_through() {
        assert_eq!(sig6_f32(0.0), 0.0);
        assert!(sig6_f32(f32::NAN).is_nan());
        assert_eq!(sig6_f32(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn quantisation_is_idempotent() {
        for v in [1.2345678f32, 0.000543219, 87654.32, -3.3333333] {
            let q = sig6_f32(v);
            assert_eq!(sig6_f32(q), q);
        }
    }
}
