//! HotSpot — iterative thermal simulation of a chip floorplan (paper §3.2).
//!
//! "HotSpot simulates the heat dissipation in an architectural floor plan to
//! estimate processor temperature. HotSpot is a memory-bound algorithm as
//! its arithmetic intensity is low."
//!
//! The port keeps the Rodinia OpenMP version's structure: single-precision
//! temperature and power grids, an explicit finite-difference update per
//! iteration with the physical constants (`Rx`, `Ry`, `Rz`, `Cap`, ambient
//! temperature) kept live through the whole run. Those constants, together
//! with the per-thread loop controls, are the variables the paper found to
//! cause most of HotSpot's SDCs and DUEs — while corruption of the
//! temperature grid itself is *attenuated* by the open-system dissipation
//! term, the mechanism behind HotSpot's dramatic FIT reduction under a
//! small output tolerance (Fig. 3: −95 % at a 2 % tolerance).
//!
//! One cooperative step = one stencil iteration over the double-buffered
//! grid, rows statically partitioned over the logical threads.

use crate::par::{par_for_each, static_partition};
use carolfi::fuel::Fuel;
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};
use rand::Rng;

// Rodinia hotspot physical constants.
const CHIP_HEIGHT: f32 = 0.016;
const CHIP_WIDTH: f32 = 0.016;
const T_CHIP: f32 = 0.0005;
const FACTOR_CHIP: f32 = 0.5;
const SPEC_HEAT_SI: f32 = 1.75e6;
const K_SI: f32 = 100.0;
const MAX_PD: f32 = 3.0e6;
/// Solver tolerance driving the timestep. Rodinia ships 0.001, which yields
/// a per-iteration dissipation of ~0.1 % — physically fine but requiring the
/// hours-long runs of the real experiments for perturbations to visibly
/// decay. We run far fewer iterations per execution, so we use a coarser
/// (still stable: the update coefficient stays ≈0.13 < 1) timestep that
/// reproduces the paper's observed behaviour — injected temperature errors
/// spread over the grid while their peak magnitude attenuates — within a
/// 20–60-iteration run.
const PRECISION: f32 = 0.1;
const AMB_TEMP: f32 = 80.0;

/// HotSpot sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct HotspotParams {
    pub rows: usize,
    pub cols: usize,
    /// Stencil iterations (= cooperative steps).
    pub iterations: usize,
    pub logical_threads: usize,
    pub workers: usize,
    pub seed: u64,
}

impl HotspotParams {
    pub fn test() -> Self {
        HotspotParams { rows: 48, cols: 48, iterations: 20, logical_threads: 16, workers: 1, seed: 0x407 }
    }

    pub fn small() -> Self {
        HotspotParams { rows: 96, cols: 96, iterations: 120, logical_threads: 64, workers: 1, seed: 0x407 }
    }

    pub fn paper() -> Self {
        HotspotParams { rows: 160, cols: 160, iterations: 150, logical_threads: phidev::KNC_LOGICAL_THREADS, workers: 1, seed: 0x407 }
    }
}

/// Per-logical-thread loop-control block.
///
/// In the OpenMP original the stripe bounds are *recomputed from the thread
/// id at every parallel region*, so `row_start`/`row_end` are dead at the
/// interrupt points and corrupting them is masked; the sticky state is the
/// thread id and the grid-dimension copies.
#[derive(Debug, Clone, Copy)]
struct Ctrl {
    /// Dead-at-boundary bounds, rewritten each iteration (masked targets).
    row_start: u64,
    row_end: u64,
    /// Sticky thread identity and geometry copies (live targets).
    tid_local: u64,
    nthreads_local: u64,
    rows_local: u64,
    cols_local: u64,
    iter_local: u64,
    /// Inner-loop scratch, rewritten before every use (dead at interrupts).
    idx_scratch: u64,
    gr_scratch: u64,
    t_scratch: f32,
    top_scratch: f32,
    left_scratch: f32,
    delta_scratch: f32,
}

/// Live physical constants (injectable `Constant`-class scalars).
#[derive(Debug, Clone, Copy)]
struct Consts {
    step_div_cap: f32,
    rx_1: f32,
    ry_1: f32,
    rz_1: f32,
    amb: f32,
}

/// The HotSpot fault target.
#[derive(Clone)]
pub struct Hotspot {
    p: HotspotParams,
    t_src: Vec<f32>,
    t_dst: Vec<f32>,
    power: Vec<f32>,
    consts: Consts,
    ctrl: Vec<Ctrl>,
    /// Pointer base for the grids (injectable; the segfault path).
    ptr_temp: u64,
    /// Raw setup parameters, dead once the derived constants are computed —
    /// CAROL-FI still sees them in the frame, and injections there are
    /// masked, the dominant fate of HotSpot's constant-class injections.
    raw: [f32; 6],
    done: usize,
    /// Pristine pre-run snapshot taken at the end of `new()` (its own
    /// `pristine` is `None`); `reset()` restores from it in place.
    pristine: Option<Box<Hotspot>>,
}

impl Hotspot {
    pub fn new(p: HotspotParams) -> Self {
        assert!(p.rows > 2 && p.cols > 2 && p.iterations > 0);
        let mut rng = carolfi::rng::fork(p.seed, 0);
        let n = p.rows * p.cols;
        // Rodinia's input files hold temperatures ≈ 323–343 K and power
        // densities up to ~0.01 W per cell; we generate the same ranges.
        let t_src: Vec<f32> = (0..n).map(|_| 323.0 + 20.0 * rng.gen::<f32>()).collect();
        let power: Vec<f32> = (0..n).map(|_| 0.01 * rng.gen::<f32>()).collect();

        let grid_height = CHIP_HEIGHT / p.rows as f32;
        let grid_width = CHIP_WIDTH / p.cols as f32;
        let cap = FACTOR_CHIP * SPEC_HEAT_SI * T_CHIP * grid_width * grid_height;
        let rx = grid_width / (2.0 * K_SI * T_CHIP * grid_height);
        let ry = grid_height / (2.0 * K_SI * T_CHIP * grid_width);
        let rz = T_CHIP / (K_SI * grid_height * grid_width);
        let max_slope = MAX_PD / (FACTOR_CHIP * T_CHIP * SPEC_HEAT_SI);
        let step = PRECISION / max_slope;

        let consts = Consts { step_div_cap: step / cap, rx_1: 1.0 / rx, ry_1: 1.0 / ry, rz_1: 1.0 / rz, amb: AMB_TEMP };
        let ctrl = (0..p.logical_threads)
            .map(|t| {
                let (s, e) = static_partition(p.rows, p.logical_threads, t);
                Ctrl {
                    row_start: s as u64,
                    row_end: e as u64,
                    tid_local: t as u64,
                    nthreads_local: p.logical_threads as u64,
                    rows_local: p.rows as u64,
                    cols_local: p.cols as u64,
                    iter_local: 0,
                    idx_scratch: 0,
                    gr_scratch: 0,
                    t_scratch: 0.0,
                    top_scratch: 0.0,
                    left_scratch: 0.0,
                    delta_scratch: 0.0,
                }
            })
            .collect();
        let mut h =
            Hotspot { p, t_dst: t_src.clone(), t_src, power, consts, ctrl, ptr_temp: 0, raw: [rx, ry, rz, cap, step, max_slope], done: 0, pristine: None };
        h.pristine = Some(Box::new(h.clone()));
        h
    }

    /// Sequential reference implementation (one full run) for tests.
    pub fn reference(p: HotspotParams) -> Vec<f32> {
        let mut h = Hotspot::new(p);
        let (rows, cols) = (p.rows, p.cols);
        for _ in 0..p.iterations {
            for r in 0..rows {
                for c in 0..cols {
                    let idx = r * cols + c;
                    let t = h.t_src[idx];
                    let top = h.t_src[if r > 0 { idx - cols } else { idx }];
                    let bottom = h.t_src[if r + 1 < rows { idx + cols } else { idx }];
                    let left = h.t_src[if c > 0 { idx - 1 } else { idx }];
                    let right = h.t_src[if c + 1 < cols { idx + 1 } else { idx }];
                    h.t_dst[idx] = t + h.consts.step_div_cap
                        * (h.power[idx]
                            + (top + bottom - 2.0 * t) * h.consts.ry_1
                            + (left + right - 2.0 * t) * h.consts.rx_1
                            + (h.consts.amb - t) * h.consts.rz_1);
                }
            }
            std::mem::swap(&mut h.t_src, &mut h.t_dst);
        }
        h.t_src
    }
}

/// One logical thread's share of one stencil iteration.
fn thread_rows(ctl: &mut Ctrl, dst_stripe: &mut [f32], src: &[f32], power: &[f32], k: &Consts, ptrs: (usize, usize)) {
    let (pt, pp) = ptrs;
    let rows_l = ctl.rows_local as usize;
    let cols_l = ctl.cols_local as usize;
    // The parallel region recomputes the stripe bounds from the sticky
    // thread identity (so an injection into row_start/row_end is dead here,
    // but a corrupted tid/nthreads/rows copy derails the recomputation).
    let nthreads = ctl.nthreads_local as usize;
    let tid = ctl.tid_local as usize;
    if nthreads == 0 || tid >= nthreads {
        panic!("corrupted thread identity: tid {tid} of {nthreads}");
    }
    let (s, e) = crate::par::static_partition(rows_l, nthreads, tid);
    ctl.row_start = s as u64;
    ctl.row_end = e as u64;
    let stripe_rows = match ctl.row_end.checked_sub(ctl.row_start) {
        Some(r) => r as usize,
        None => panic!("corrupted row bounds: start {} > end {}", ctl.row_start, ctl.row_end),
    };
    let mut fuel = Fuel::with_factor((stripe_rows as u64 + 1) * (cols_l as u64 + 1), 4.0);
    for r in 0..stripe_rows {
        fuel.burn(1);
        let gr = ctl.row_start as usize + r;
        for c in 0..cols_l {
            fuel.burn(1);
            let idx = gr * cols_l + c;
            ctl.idx_scratch = idx as u64;
            ctl.gr_scratch = gr as u64;
            let t = src[pt + idx];
            let top = src[pt + if gr > 0 { idx - cols_l } else { idx }];
            let bottom = src[pt + if gr + 1 < rows_l { idx + cols_l } else { idx }];
            let left = src[pt + if c > 0 { idx - 1 } else { idx }];
            let right = src[pt + if c + 1 < cols_l { idx + 1 } else { idx }];
            let delta = k.step_div_cap
                * (power[pp + idx] + (top + bottom - 2.0 * t) * k.ry_1 + (left + right - 2.0 * t) * k.rx_1 + (k.amb - t) * k.rz_1);
            ctl.t_scratch = t;
            ctl.top_scratch = top;
            ctl.left_scratch = left;
            ctl.delta_scratch = delta;
            dst_stripe[r * cols_l + c] = t + delta;
        }
    }
    ctl.iter_local += 1;
}

impl FaultTarget for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn total_steps(&self) -> usize {
        self.p.iterations
    }

    fn steps_executed(&self) -> usize {
        self.done
    }

    fn run_until(&mut self, step_bound: usize, fuel: &mut Fuel) -> StepOutcome {
        // Monomorphic run-ahead loop (ZOFI-style full-speed phase): one
        // decrement-and-branch plus a direct, inlinable step call per
        // step — no virtual dispatch through `dyn FaultTarget`.
        while self.done < step_bound {
            fuel.burn(1);
            if let StepOutcome::Done = self.step() {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    fn step(&mut self) -> StepOutcome {
        struct Item<'a> {
            ctl: &'a mut Ctrl,
            stripe: &'a mut [f32],
        }
        let cols = self.p.cols;
        let mut items: Vec<Item<'_>> = Vec::with_capacity(self.ctrl.len());
        {
            let mut rest: &mut [f32] = &mut self.t_dst;
            for (t, ctl) in self.ctrl.iter_mut().enumerate() {
                let (s, e) = static_partition(self.p.rows, self.p.logical_threads, t);
                let (stripe, tail) = rest.split_at_mut((e - s) * cols);
                rest = tail;
                items.push(Item { ctl, stripe });
            }
        }
        let src = &self.t_src;
        let power = &self.power;
        let consts = self.consts;
        let ptrs = (self.ptr_temp as usize, self.ptr_temp as usize);
        par_for_each(&mut items, self.p.workers, |_, item| {
            thread_rows(item.ctl, item.stripe, src, power, &consts, ptrs);
        });
        std::mem::swap(&mut self.t_src, &mut self.t_dst);
        self.done += 1;
        if self.done >= self.p.iterations {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        let mut vars = Vec::with_capacity(8 + 5 * self.ctrl.len());
        vars.push(Variable::from_slice(VarInfo::global("temp", VarClass::Matrix, file!(), 1), &mut self.t_src));
        vars.push(Variable::from_slice(VarInfo::global("temp_scratch", VarClass::Matrix, file!(), 2), &mut self.t_dst));
        vars.push(Variable::from_slice(VarInfo::global("power", VarClass::InputArray, file!(), 3), &mut self.power));
        vars.push(Variable::from_scalar(VarInfo::global("step_div_cap", VarClass::Constant, file!(), 4), &mut self.consts.step_div_cap));
        vars.push(Variable::from_scalar(VarInfo::global("rx_1", VarClass::Constant, file!(), 5), &mut self.consts.rx_1));
        vars.push(Variable::from_scalar(VarInfo::global("ry_1", VarClass::Constant, file!(), 6), &mut self.consts.ry_1));
        vars.push(Variable::from_scalar(VarInfo::global("rz_1", VarClass::Constant, file!(), 7), &mut self.consts.rz_1));
        vars.push(Variable::from_scalar(VarInfo::global("amb_temp", VarClass::Constant, file!(), 8), &mut self.consts.amb));
        vars.push(Variable::from_scalar(VarInfo::global("temp_ptr", VarClass::Pointer, file!(), 9), &mut self.ptr_temp));
        {
            let [rx, ry, rz, cap, step, slope] = &mut self.raw;
            vars.push(Variable::from_scalar(VarInfo::global("rx", VarClass::Constant, file!(), 9), rx));
            vars.push(Variable::from_scalar(VarInfo::global("ry", VarClass::Constant, file!(), 9), ry));
            vars.push(Variable::from_scalar(VarInfo::global("rz", VarClass::Constant, file!(), 9), rz));
            vars.push(Variable::from_scalar(VarInfo::global("cap", VarClass::Constant, file!(), 9), cap));
            vars.push(Variable::from_scalar(VarInfo::global("step", VarClass::Constant, file!(), 9), step));
            vars.push(Variable::from_scalar(VarInfo::global("max_slope", VarClass::Constant, file!(), 9), slope));
        }
        for (t, ctl) in self.ctrl.iter_mut().enumerate() {
            let t16 = t as u16;
            let f = "hotspot_kernel";
            vars.push(Variable::from_scalar(VarInfo::local("row_start", VarClass::ControlVariable, f, t16, file!(), 10), &mut ctl.row_start));
            vars.push(Variable::from_scalar(VarInfo::local("row_end", VarClass::ControlVariable, f, t16, file!(), 11), &mut ctl.row_end));
            vars.push(Variable::from_scalar(VarInfo::local("tid_local", VarClass::ControlVariable, f, t16, file!(), 11), &mut ctl.tid_local));
            vars.push(Variable::from_scalar(VarInfo::local("nthreads_local", VarClass::ControlVariable, f, t16, file!(), 11), &mut ctl.nthreads_local));
            vars.push(Variable::from_scalar(VarInfo::local("rows_local", VarClass::ControlVariable, f, t16, file!(), 12), &mut ctl.rows_local));
            vars.push(Variable::from_scalar(VarInfo::local("cols_local", VarClass::ControlVariable, f, t16, file!(), 13), &mut ctl.cols_local));
            vars.push(Variable::from_scalar(VarInfo::local("iter_local", VarClass::ControlVariable, f, t16, file!(), 14), &mut ctl.iter_local));
            vars.push(Variable::from_scalar(VarInfo::local("idx", VarClass::ControlVariable, f, t16, file!(), 15), &mut ctl.idx_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("gr", VarClass::ControlVariable, f, t16, file!(), 16), &mut ctl.gr_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("t_val", VarClass::Buffer, f, t16, file!(), 17), &mut ctl.t_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("top_val", VarClass::Buffer, f, t16, file!(), 18), &mut ctl.top_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("left_val", VarClass::Buffer, f, t16, file!(), 19), &mut ctl.left_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("delta", VarClass::Buffer, f, t16, file!(), 20), &mut ctl.delta_scratch));
        }
        vars
    }

    fn output(&self) -> Output {
        // Rodinia's HotSpot writes its result with `%g` (6 significant
        // digits) and the experimental harness compares output files, so
        // sub-1e-6 relative differences are invisible. Quantising here
        // reproduces that comparison granularity.
        let data = self.t_src.iter().map(|&t| crate::quantize::sig6_f32(t)).collect();
        Output::F32Grid { dims: [self.p.rows, self.p.cols, 1], data }
    }

    fn reset(&mut self) -> bool {
        let Some(pristine) = self.pristine.take() else { return false };
        self.t_src.copy_from_slice(&pristine.t_src);
        self.t_dst.copy_from_slice(&pristine.t_dst);
        self.power.copy_from_slice(&pristine.power);
        self.consts = pristine.consts;
        self.ctrl.copy_from_slice(&pristine.ctrl);
        self.ptr_temp = 0;
        self.raw = pristine.raw;
        self.done = 0;
        self.pristine = Some(pristine);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_done(mut h: Hotspot) -> Output {
        while h.step() == StepOutcome::Continue {}
        h.output()
    }

    #[test]
    fn matches_sequential_reference_bitexactly() {
        let p = HotspotParams::test();
        let reference: Vec<f32> = Hotspot::reference(p).iter().map(|&t| crate::quantize::sig6_f32(t)).collect();
        let Output::F32Grid { data, .. } = run_to_done(Hotspot::new(p)) else { panic!() };
        assert_eq!(data, reference, "parallel stencil must be bit-identical to the sequential one");
    }

    #[test]
    fn deterministic_across_workers() {
        let p = HotspotParams::test();
        let a = run_to_done(Hotspot::new(p));
        let b = run_to_done(Hotspot::new(HotspotParams { workers: 3, ..p }));
        assert!(a.matches(&b));
    }

    #[test]
    fn temperatures_stay_physical() {
        let Output::F32Grid { data, .. } = run_to_done(Hotspot::new(HotspotParams::test())) else { panic!() };
        for &t in &data {
            assert!(t.is_finite());
            assert!((70.0..400.0).contains(&t), "temperature {t} out of physical range");
        }
    }

    #[test]
    fn grid_perturbation_attenuates() {
        // The open-system term must shrink an injected temperature error —
        // the paper's explanation of HotSpot's tolerance behaviour.
        let p = HotspotParams::test();
        let golden = run_to_done(Hotspot::new(p));
        let mut h = Hotspot::new(p);
        for _ in 0..5 {
            h.step();
        }
        let victim = (p.rows / 2) * p.cols + p.cols / 2;
        let injected = 40.0f32;
        h.t_src[victim] += injected;
        while h.step() == StepOutcome::Continue {}
        let m = h.output().mismatches(&golden);
        assert!(!m.is_empty());
        let worst = m.iter().map(|mm| (mm.got - mm.expected).abs()).fold(0.0f64, f64::max);
        assert!(worst < injected as f64 * 0.9, "perturbation grew: {worst} vs {injected}");
        // ... and it spreads beyond the struck cell.
        assert!(m.len() > 1, "stencil coupling must spread the error");
    }

    #[test]
    fn constant_corruption_is_global_and_severe() {
        let p = HotspotParams::test();
        let golden = run_to_done(Hotspot::new(p));
        let mut h = Hotspot::new(p);
        h.step();
        h.consts.amb = 8000.0; // corrupted ambient temperature
        while h.step() == StepOutcome::Continue {}
        let m = h.output().mismatches(&golden);
        assert_eq!(m.len(), p.rows * p.cols, "every cell is driven by the ambient constant");
    }

    #[test]
    fn exposes_constants_and_controls() {
        let mut h = Hotspot::new(HotspotParams::test());
        let vars = h.variables();
        // 5 live derived constants + 6 dead raw setup parameters.
        assert_eq!(vars.iter().filter(|v| v.info.class == VarClass::Constant).count(), 11);
        assert_eq!(
            vars.iter().filter(|v| v.info.class == VarClass::ControlVariable).count(),
            9 * HotspotParams::test().logical_threads
        );
    }
}
