//! Injectable Rust ports of the six SC'17 benchmarks.
pub mod clamr;
pub mod dgemm;
pub mod hotspot;
pub mod lavamd;
pub mod lud;
pub mod nw;
pub mod par;
pub mod quantize;
pub mod registry;

pub use registry::{build, golden, Benchmark, SizeClass};
