//! LUD — blocked LU decomposition (paper §3.2).
//!
//! "LUD is a dense linear algebra like DGEMM. However, LUD uses less memory
//! than DGEMM and has more interdependencies resulting in an algorithm that
//! is less compute-bound than DGEMM."
//!
//! The port follows Rodinia's blocked, pivot-free Doolittle factorisation
//! over a single-precision matrix made diagonally dominant at generation
//! time (as Rodinia's inputs are). Each diagonal block index `d` takes three
//! cooperative steps — *diagonal* factorisation, *perimeter* panels, and the
//! *internal* trailing-submatrix update — so a run has `3 × (n / b)` steps.
//! The trailing update (the hot phase) is parallelised over logical threads
//! with the usual fixed physical partition + injectable control reads, which
//! lets corrupted thread state produce the row/column interdependency
//! effects the paper observed: mid-run injections are the most critical
//! because the middle of the run maximises (work touched so far) ×
//! (iterations left to spread it).

use crate::par::{par_for_each, static_partition};
use carolfi::fuel::Fuel;
use carolfi::output::Output;
use carolfi::target::{FaultTarget, StepOutcome, VarClass, VarInfo, Variable};
use rand::Rng;

/// LUD sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct LudParams {
    /// Matrix dimension; must be a multiple of `block`.
    pub n: usize,
    pub block: usize,
    pub logical_threads: usize,
    pub workers: usize,
    pub seed: u64,
}

impl LudParams {
    pub fn test() -> Self {
        LudParams { n: 48, block: 8, logical_threads: 16, workers: 1, seed: 0x10D }
    }

    pub fn small() -> Self {
        LudParams { n: 128, block: 16, logical_threads: 64, workers: 1, seed: 0x10D }
    }

    pub fn paper() -> Self {
        LudParams { n: 192, block: 16, logical_threads: phidev::KNC_LOGICAL_THREADS, workers: 1, seed: 0x10D }
    }
}

/// Per-logical-thread control block for the trailing update.
#[derive(Debug, Clone, Copy)]
struct Ctrl {
    d_local: u64,
    n_local: u64,
    b_local: u64,
    nb_local: u64,
    col_cur: u64,
    /// Inner-loop scratch, rewritten before every use (dead at interrupts).
    acc_scratch: f32,
    l_scratch: f32,
    u_scratch: f32,
    row_scratch: u64,
    col_scratch: u64,
}

/// Factorisation phases within one diagonal index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Diagonal,
    Perimeter,
    Internal,
}

/// The LUD fault target.
#[derive(Clone)]
pub struct Lud {
    p: LudParams,
    a: Vec<f32>,
    /// Global diagonal cursor (injectable).
    d: u64,
    /// Pointer base of the matrix (injectable; the segfault path).
    ptr_m: u64,
    ctrl: Vec<Ctrl>,
    done: usize,
    total: usize,
    /// Pristine pre-run snapshot taken at the end of `new()` (its own
    /// `pristine` is `None`); `reset()` restores from it in place.
    pristine: Option<Box<Lud>>,
}

impl Lud {
    pub fn new(p: LudParams) -> Self {
        assert!(p.n.is_multiple_of(p.block), "n must be a multiple of block");
        let nb = p.n / p.block;
        let mut rng = carolfi::rng::fork(p.seed, 0);
        let mut a: Vec<f32> = (0..p.n * p.n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for i in 0..p.n {
            a[i * p.n + i] += p.n as f32; // diagonal dominance ⇒ pivot-free LU is stable
        }
        let ctrl = (0..p.logical_threads)
            .map(|_| Ctrl {
                d_local: 0,
                n_local: p.n as u64,
                b_local: p.block as u64,
                nb_local: nb as u64,
                col_cur: 0,
                acc_scratch: 0.0,
                l_scratch: 0.0,
                u_scratch: 0.0,
                row_scratch: 0,
                col_scratch: 0,
            })
            .collect();
        let mut l = Lud { p, a, d: 0, ptr_m: 0, ctrl, done: 0, total: 3 * nb, pristine: None };
        l.pristine = Some(Box::new(l.clone()));
        l
    }

    /// Input matrix of a fresh instance (for verification tests).
    pub fn input(p: LudParams) -> Vec<f32> {
        Lud::new(p).a
    }

    /// Sequential unblocked Doolittle LU for correctness tests.
    pub fn reference(p: LudParams) -> Vec<f32> {
        let mut a = Lud::input(p);
        let n = p.n;
        for k in 0..n {
            for i in k + 1..n {
                a[i * n + k] /= a[k * n + k];
                for j in k + 1..n {
                    a[i * n + j] -= a[i * n + k] * a[k * n + j];
                }
            }
        }
        a
    }

    fn b(&self) -> usize {
        self.p.block
    }
    fn n(&self) -> usize {
        self.p.n
    }

    fn phase(&self) -> Phase {
        match self.done % 3 {
            0 => Phase::Diagonal,
            1 => Phase::Perimeter,
            _ => Phase::Internal,
        }
    }

    /// Factors the diagonal block at the (injectable) global cursor.
    fn step_diagonal(&mut self) {
        let (n, b) = (self.n(), self.b());
        let d = self.d as usize; // corrupted cursor ⇒ wrong/OOB block
        let base = d * b;
        let pm = self.ptr_m as usize;
        let mut fuel = Fuel::with_factor((b * b) as u64 + 1, 8.0);
        for k in 0..b {
            for i in k + 1..b {
                fuel.burn(1);
                let pivot = self.a[pm + (base + k) * n + base + k];
                let l = self.a[pm + (base + i) * n + base + k] / pivot;
                self.a[pm + (base + i) * n + base + k] = l;
                for j in k + 1..b {
                    let u = self.a[pm + (base + k) * n + base + j];
                    self.a[pm + (base + i) * n + base + j] -= l * u;
                }
            }
        }
    }

    /// Updates the row and column panels right/below the diagonal block.
    fn step_perimeter(&mut self) {
        let (n, b) = (self.n(), self.b());
        let d = self.d as usize;
        let base = d * b;
        let nb = n / b;
        let mut fuel = Fuel::with_factor((n * b) as u64 + 1, 8.0);
        // Row panel: solve L · X = A[d][j] for each block column j > d.
        for jb in d + 1..nb {
            let cbase = jb * b;
            for c in 0..b {
                for k in 0..b {
                    fuel.burn(1);
                    let x = self.a[(base + k) * n + cbase + c];
                    for i in k + 1..b {
                        let l = self.a[(base + i) * n + base + k];
                        self.a[(base + i) * n + cbase + c] -= l * x;
                    }
                }
            }
        }
        // Column panel: solve X · U = A[i][d] for each block row i > d.
        for ib in d + 1..nb {
            let rbase = ib * b;
            for r in 0..b {
                for k in 0..b {
                    fuel.burn(1);
                    let mut x = self.a[(rbase + r) * n + base + k];
                    for m in 0..k {
                        x -= self.a[(rbase + r) * n + base + m] * self.a[(base + m) * n + base + k];
                    }
                    self.a[(rbase + r) * n + base + k] = x / self.a[(base + k) * n + base + k];
                }
            }
        }
    }

    /// Trailing-submatrix update, parallel over logical threads.
    fn step_internal(&mut self) {
        let (n, b) = (self.n(), self.b());
        let d = self.d as usize;
        let row0 = (d + 1) * b;
        if row0 >= n {
            return; // last diagonal block has no trailing matrix
        }
        let trailing_rows = n - row0;
        // `head` holds the already-factored panel rows (shared read);
        // `tail` is physically partitioned into per-thread write stripes.
        let (head, tail) = self.a.split_at_mut(row0 * n);
        struct Item<'a> {
            ctl: &'a mut Ctrl,
            stripe: &'a mut [f32],
            stripe_row0: usize,
        }
        let mut items: Vec<Item<'_>> = Vec::with_capacity(self.ctrl.len());
        {
            let mut rest: &mut [f32] = tail;
            for (t, ctl) in self.ctrl.iter_mut().enumerate() {
                let (s, e) = static_partition(trailing_rows, self.p.logical_threads, t);
                let (stripe, next) = rest.split_at_mut((e - s) * n);
                rest = next;
                items.push(Item { ctl, stripe, stripe_row0: row0 + s });
            }
        }
        let head_ref: &[f32] = head;
        par_for_each(&mut items, self.p.workers, |_, item| {
            thread_trailing(item.ctl, item.stripe, item.stripe_row0, head_ref, n, b);
        });
        for ctl in &mut self.ctrl {
            ctl.d_local += 1;
        }
    }
}

/// One thread's trailing update: stripe -= L-panel × U-panel. Reads are
/// driven by the injectable control block; writes stay in the stripe.
fn thread_trailing(ctl: &mut Ctrl, stripe: &mut [f32], stripe_row0: usize, head: &[f32], n_phys: usize, _b_phys: usize) {
    let n_l = ctl.n_local as usize;
    let b_l = ctl.b_local as usize;
    let d_l = ctl.d_local as usize;
    let base = d_l.saturating_mul(b_l);
    let rows = stripe.len() / n_phys;
    let mut fuel = Fuel::with_factor(((rows + 1) * (n_phys + 1)) as u64, 4.0);
    let col0 = base + b_l + (ctl.col_cur as usize) % n_l.max(1);
    for r in 0..rows {
        fuel.burn(1);
        for j in col0..n_l {
            fuel.burn(1);
            let mut acc = 0.0;
            for k in 0..b_l {
                // L element lives in this thread's own stripe columns.
                let l = stripe[r * n_l + base + k];
                // U element lives in the factored head rows.
                let u = head[(base + k) * n_l + j];
                ctl.l_scratch = l;
                ctl.u_scratch = u;
                acc += l * u;
            }
            ctl.acc_scratch = acc;
            ctl.row_scratch = r as u64;
            ctl.col_scratch = j as u64;
            stripe[r * n_l + j] -= acc;
        }
        let _ = stripe_row0;
    }
    ctl.col_cur = 0;
}

impl FaultTarget for Lud {
    fn name(&self) -> &'static str {
        "lud"
    }

    fn total_steps(&self) -> usize {
        self.total
    }

    fn steps_executed(&self) -> usize {
        self.done
    }

    fn run_until(&mut self, step_bound: usize, fuel: &mut Fuel) -> StepOutcome {
        // Monomorphic run-ahead loop (ZOFI-style full-speed phase): one
        // decrement-and-branch plus a direct, inlinable step call per
        // step — no virtual dispatch through `dyn FaultTarget`.
        while self.done < step_bound {
            fuel.burn(1);
            if let StepOutcome::Done = self.step() {
                return StepOutcome::Done;
            }
        }
        StepOutcome::Continue
    }

    fn step(&mut self) -> StepOutcome {
        match self.phase() {
            Phase::Diagonal => self.step_diagonal(),
            Phase::Perimeter => self.step_perimeter(),
            Phase::Internal => {
                self.step_internal();
                self.d += 1;
            }
        }
        self.done += 1;
        if self.done >= self.total {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        }
    }

    fn variables(&mut self) -> Vec<Variable<'_>> {
        let mut vars = Vec::with_capacity(2 + 5 * self.ctrl.len());
        vars.push(Variable::from_slice(VarInfo::global("matrix", VarClass::Matrix, file!(), 1), &mut self.a));
        vars.push(Variable::from_scalar(VarInfo::global("diag_cursor", VarClass::ControlVariable, file!(), 2), &mut self.d));
        vars.push(Variable::from_scalar(VarInfo::global("matrix_ptr", VarClass::Pointer, file!(), 3), &mut self.ptr_m));
        for (t, ctl) in self.ctrl.iter_mut().enumerate() {
            let t16 = t as u16;
            let f = "lud_internal";
            vars.push(Variable::from_scalar(VarInfo::local("d_local", VarClass::ControlVariable, f, t16, file!(), 10), &mut ctl.d_local));
            vars.push(Variable::from_scalar(VarInfo::local("n_local", VarClass::ControlVariable, f, t16, file!(), 11), &mut ctl.n_local));
            vars.push(Variable::from_scalar(VarInfo::local("b_local", VarClass::ControlVariable, f, t16, file!(), 12), &mut ctl.b_local));
            vars.push(Variable::from_scalar(VarInfo::local("nb_local", VarClass::ControlVariable, f, t16, file!(), 13), &mut ctl.nb_local));
            vars.push(Variable::from_scalar(VarInfo::local("col_cur", VarClass::ControlVariable, f, t16, file!(), 14), &mut ctl.col_cur));
            vars.push(Variable::from_scalar(VarInfo::local("acc", VarClass::Buffer, f, t16, file!(), 15), &mut ctl.acc_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("l_val", VarClass::Buffer, f, t16, file!(), 16), &mut ctl.l_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("u_val", VarClass::Buffer, f, t16, file!(), 17), &mut ctl.u_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("row", VarClass::ControlVariable, f, t16, file!(), 18), &mut ctl.row_scratch));
            vars.push(Variable::from_scalar(VarInfo::local("col", VarClass::ControlVariable, f, t16, file!(), 19), &mut ctl.col_scratch));
        }
        vars
    }

    fn output(&self) -> Output {
        Output::F32Grid { dims: [self.p.n, self.p.n, 1], data: self.a.clone() }
    }

    fn reset(&mut self) -> bool {
        let Some(pristine) = self.pristine.take() else { return false };
        self.a.copy_from_slice(&pristine.a);
        self.d = 0;
        self.ptr_m = 0;
        self.ctrl.copy_from_slice(&pristine.ctrl);
        self.done = 0;
        self.pristine = Some(pristine);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_done(mut l: Lud) -> Output {
        while l.step() == StepOutcome::Continue {}
        l.output()
    }

    #[test]
    fn matches_unblocked_reference() {
        let p = LudParams::test();
        let reference = Lud::reference(p);
        let Output::F32Grid { data, .. } = run_to_done(Lud::new(p)) else { panic!() };
        for (i, (&got, &exp)) in data.iter().zip(&reference).enumerate() {
            let tol = 1e-3 * exp.abs().max(1.0);
            assert!((got - exp).abs() <= tol, "element {i}: {got} vs {exp}");
        }
    }

    #[test]
    fn lu_product_reconstructs_input() {
        let p = LudParams::test();
        let input = Lud::input(p);
        let Output::F32Grid { data: lu, .. } = run_to_done(Lud::new(p)) else { panic!() };
        let n = p.n;
        // (L·U)[i][j] with L unit-lower and U upper from the packed result.
        for i in (0..n).step_by(7) {
            for j in (0..n).step_by(7) {
                let mut acc = 0.0f64;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] as f64 };
                    let u = lu[k * n + j] as f64;
                    acc += l * u;
                }
                let exp = input[i * n + j] as f64;
                assert!((acc - exp).abs() < 2e-2 * exp.abs().max(1.0), "LU({i},{j}) = {acc}, input {exp}");
            }
        }
    }

    #[test]
    fn deterministic_across_workers() {
        let p = LudParams::test();
        let a = run_to_done(Lud::new(p));
        let b = run_to_done(Lud::new(LudParams { workers: 3, ..p }));
        assert!(a.matches(&b));
    }

    #[test]
    fn total_steps_is_three_per_block() {
        let p = LudParams::test();
        assert_eq!(Lud::new(p).total_steps(), 3 * (p.n / p.block));
    }

    #[test]
    fn corrupted_global_cursor_crashes_or_corrupts() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = LudParams::test();
        let golden = run_to_done(Lud::new(p));
        let mut l = Lud::new(p);
        for _ in 0..6 {
            l.step();
        }
        l.d = 1000; // way out of range
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while l.step() == StepOutcome::Continue {}
            l.output()
        }));
        match r {
            Err(_) => {}                                 // crash DUE
            Ok(out) => assert!(!out.matches(&golden)),   // or an SDC
        }
    }

    #[test]
    fn corrupted_thread_dlocal_gives_sdc() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let p = LudParams::test();
        let golden = run_to_done(Lud::new(p));
        let mut l = Lud::new(p);
        for _ in 0..3 {
            l.step();
        }
        l.ctrl[2].d_local = 0; // thread 2 falls one diagonal behind
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while l.step() == StepOutcome::Continue {}
            l.output()
        }));
        match r {
            Err(_) => {}
            Ok(out) => assert!(!out.matches(&golden)),
        }
    }
}
