//! The spatial tree — the *Tree* portion of CLAMR (paper §6, CLAMR).
//!
//! "The Tree part of CLAMR includes the functions responsible for the
//! creation and operation of a K-D Tree. 20 % of all the faults in Tree
//! generate an SDC and 41 % cause a DUE."
//!
//! CLAMR locates face neighbours of adaptive cells through a spatial tree
//! rebuilt every timestep. Because AMR cells are power-of-two aligned, the
//! tree here is the axis-aligned special case of a k-d tree (alternating
//! midpoint splits — a region quadtree laid out in flat arrays): interior
//! nodes hold four child links, leaves hold a cell index. The flat arrays
//! are the injectable *TreeState*; a corrupted link either redirects a
//! neighbour query to the wrong cell (SDC) or walks out of the node arrays /
//! into a cycle (crash DUE — the 41 %).

/// Sentinel for "no child" / "no cell".
pub const NIL: i32 = -1;
/// Maximum descent depth before a query declares the tree corrupted
/// (a fault-free tree over a 2^16 grid has depth ≤ 16).
const MAX_DEPTH: usize = 64;

/// Builds the tree over `cells` into the injectable flat arrays.
///
/// Each cell is `(ox, oy, s, idx)`: fine-grid origin, fine-grid extent
/// (power of two) and the cell's index in the mesh arrays. `size` is the
/// fine-grid extent of the whole domain (power of two).
///
/// `child` holds 4 links per node (quadrants: `[SW, SE, NW, NE]` by
/// (x ≥ mid, y ≥ mid)); `cellarr` holds the leaf payloads.
pub fn build(child: &mut Vec<i32>, cellarr: &mut Vec<i32>, size: u32, cells: &[(u32, u32, u32, u32)]) {
    assert!(size.is_power_of_two(), "domain extent must be a power of two");
    child.clear();
    cellarr.clear();
    child.extend_from_slice(&[NIL; 4]);
    cellarr.push(NIL);
    for &(ox, oy, s, idx) in cells {
        assert!(s.is_power_of_two() && s <= size, "invalid cell extent {s}");
        // Descend from the root, creating interior nodes as needed.
        let mut node = 0usize;
        let (mut nx, mut ny, mut ns) = (0u32, 0u32, size);
        while ns > s {
            let half = ns / 2;
            let qx = u32::from(ox >= nx + half);
            let qy = u32::from(oy >= ny + half);
            let q = (qy * 2 + qx) as usize;
            let link = child[node * 4 + q];
            let next = if link == NIL {
                let new = cellarr.len();
                child.extend_from_slice(&[NIL; 4]);
                cellarr.push(NIL);
                child[node * 4 + q] = new as i32;
                new
            } else {
                link as usize
            };
            nx += qx * half;
            ny += qy * half;
            ns = half;
            node = next;
        }
        assert!(ns == s && nx == ox && ny == oy, "cell ({ox},{oy},{s}) misaligned with the quadtree grid");
        assert!(cellarr[node] == NIL, "overlapping cells at ({ox},{oy},{s})");
        cellarr[node] = idx as i32;
    }
}

/// Finds the cell containing fine-grid point `(x, y)`.
///
/// Returns `None` for points outside the domain or over uncovered regions.
/// Panics (a DUE) when corrupted links walk out of the arrays or descend
/// past [`MAX_DEPTH`].
pub fn query(child: &[i32], cellarr: &[i32], size: u32, x: u32, y: u32) -> Option<u32> {
    if x >= size || y >= size {
        return None;
    }
    let mut node = 0usize;
    let (mut nx, mut ny, mut ns) = (0u32, 0u32, size);
    for _depth in 0..MAX_DEPTH {
        let leaf = cellarr[node]; // corrupted node index ⇒ OOB panic (DUE)
        if leaf != NIL {
            return Some(leaf as u32);
        }
        if ns <= 1 {
            return None; // uncovered point at finest resolution
        }
        let half = ns / 2;
        let qx = u32::from(x >= nx + half);
        let qy = u32::from(y >= ny + half);
        let link = child[node * 4 + (qy * 2 + qx) as usize];
        if link == NIL {
            return None;
        }
        node = link as usize;
        nx += qx * half;
        ny += qy * half;
        ns = half;
    }
    panic!("spatial tree corrupted: descent exceeded {MAX_DEPTH} levels");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny valid AMR cover: one 2×2 coarse cell + four 1×1 cells.
    fn sample_cells() -> Vec<(u32, u32, u32, u32)> {
        vec![
            (0, 0, 2, 0),
            (2, 0, 1, 1),
            (3, 0, 1, 2),
            (2, 1, 1, 3),
            (3, 1, 1, 4),
            (0, 2, 2, 5),
            (2, 2, 2, 6),
        ]
    }

    #[test]
    fn query_finds_every_covered_point() {
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 4, &sample_cells());
        // Point (1,1) is inside the coarse cell 0.
        assert_eq!(query(&child, &cells, 4, 1, 1), Some(0));
        assert_eq!(query(&child, &cells, 4, 2, 0), Some(1));
        assert_eq!(query(&child, &cells, 4, 3, 1), Some(4));
        assert_eq!(query(&child, &cells, 4, 0, 3), Some(5));
        assert_eq!(query(&child, &cells, 4, 3, 3), Some(6));
    }

    #[test]
    fn query_outside_domain_is_none() {
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 4, &sample_cells());
        assert_eq!(query(&child, &cells, 4, 4, 0), None);
        assert_eq!(query(&child, &cells, 4, 0, 7), None);
    }

    #[test]
    fn uncovered_region_is_none() {
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 4, &[(0, 0, 2, 0)]); // only one quadrant covered
        assert_eq!(query(&child, &cells, 4, 1, 1), Some(0));
        assert_eq!(query(&child, &cells, 4, 3, 3), None);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_cells_are_rejected() {
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 4, &[(0, 0, 2, 0), (0, 0, 2, 1)]);
    }

    #[test]
    fn corrupted_link_cycle_terminates() {
        // A link cycle cannot loop forever: the region extent halves on
        // every hop, so the walk bottoms out (returning None — the caller
        // then computes with a wrong neighbour, an SDC) instead of hanging.
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 4, &sample_cells());
        for link in child.iter_mut() {
            if *link != NIL {
                *link = 0; // every interior link points back at the root
            }
        }
        assert_eq!(query(&child, &cells, 4, 3, 3), None);
    }

    #[test]
    fn corrupted_link_out_of_bounds_panics() {
        let _quiet = carolfi::panic_guard::silence_panics();
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 4, &sample_cells());
        child[0] = 1_000_000;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| query(&child, &cells, 4, 0, 0)));
        assert!(r.is_err());
    }

    #[test]
    fn full_uniform_cover_roundtrips() {
        // 8×8 fine grid fully covered by 1×1 cells.
        let mut spec = Vec::new();
        for y in 0..8u32 {
            for x in 0..8u32 {
                spec.push((x, y, 1, y * 8 + x));
            }
        }
        let mut child = Vec::new();
        let mut cells = Vec::new();
        build(&mut child, &mut cells, 8, &spec);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(query(&child, &cells, 8, x, y), Some(y * 8 + x));
            }
        }
    }
}
